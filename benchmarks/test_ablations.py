"""Ablation benches: §1 star-vs-tree, §6 Iolus, §7 hybrid, batch extension."""

from conftest import BENCH_SCALE, populated_server

from repro.batch import BatchRekeyServer
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.experiments import ablations
from repro.iolus import IolusSystem


def test_star_vs_tree(benchmark):
    table = benchmark.pedantic(ablations.star_vs_tree, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    ratios = [row[3] for row in table.rows]
    assert ratios == sorted(ratios) and ratios[-1] > ratios[0] * 3
    print()
    print(table.format())


def test_iolus_membership_round(benchmark):
    system = IolusSystem(agent_fanout=4, agent_levels=2, seed=b"bench")
    for i in range(64):
        system.join(f"c{i}")
    counter = [0]

    def round_trip():
        counter[0] += 1
        system.leave(f"c{counter[0] % 64}")
        system.join(f"c{counter[0] % 64}")

    benchmark(round_trip)


def test_iolus_data_message(benchmark):
    system = IolusSystem(agent_fanout=4, agent_levels=2, seed=b"bench")
    for i in range(64):
        system.join(f"c{i}")
    record, received = benchmark(system.multicast, "c0", b"payload")
    assert len(received) == 64
    benchmark.extra_info["crypto_ops"] = record.crypto_ops


def test_lkh_data_message(benchmark):
    server = populated_server(n=64)
    outbound = benchmark(server.seal_group_message, b"payload")
    assert outbound.receivers
    benchmark.extra_info["crypto_ops"] = 1  # one group-key encryption


def test_iolus_comparison_table(benchmark):
    table = benchmark.pedantic(ablations.iolus_comparison,
                               args=(BENCH_SCALE,), rounds=1, iterations=1)
    for row in table.rows:
        assert row[3] < row[7]   # Iolus membership < LKH membership
        assert row[8] < row[4]   # LKH data < Iolus data
    print()
    print(table.format())


def test_hybrid_tradeoff(benchmark):
    table = benchmark.pedantic(ablations.hybrid_tradeoff,
                               args=(BENCH_SCALE,), rounds=1, iterations=1)
    rows = {row[0]: row for row in table.rows}
    assert rows["group"][1] <= rows["hybrid"][1] <= rows["key"][1]
    assert rows["hybrid"][2] < rows["group"][2]
    print()
    print(table.format())


def test_batch_flush(benchmark):
    server = BatchRekeyServer(degree=4, suite=PAPER_SUITE_NO_SIG,
                              seed=b"bench-batch")
    server.bootstrap([(f"u{i}", server.new_individual_key())
                      for i in range(256)])
    state = {"next": 0}

    def batch_round():
        # Leave the 8 oldest members, admit 8 fresh ones, flush once.
        for victim in server.tree.users()[:8]:
            server.request_leave(victim)
        for _ in range(8):
            state["next"] += 1
            server.request_join(f"fresh{state['next']}",
                                server.new_individual_key())
        return server.flush()

    result = benchmark(batch_round)
    assert result.encryptions < result.individual_cost_estimate


def test_batch_saving_table(benchmark):
    table = benchmark.pedantic(ablations.batch_saving, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    savings = [row[3] for row in table.rows]
    assert savings[-1] > savings[0]
    print()
    print(table.format())

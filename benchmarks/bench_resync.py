"""Recovery benchmark: resync latency, chaos convergence, eviction cost.

Measures what PR 5's robustness layer costs and guarantees:

* **resync_reply_build** — server-side cost of building one resync
  reply (the unicast that repairs any gap), for tree and cluster
  backends: this bounds how fast a recovery storm can be served;
* **resync_roundtrip** — full repair: cold client + reply + install,
  verifying the one-unicast-repairs-everything property at speed;
* **chaos convergence** — the quick scenario matrix under its fault
  profiles, reporting recovery rounds to convergence (the bound
  ``--check`` gates) and resync pushes spent;
* **shed_ratio** — rekey messages per evicted member when a mass
  failure is shed through one batch flush (must stay ~1/N vs the
  per-leave path).

Usage::

    python benchmarks/bench_resync.py             # full run
    python benchmarks/bench_resync.py --quick     # CI smoke
    python benchmarks/bench_resync.py --check     # enforce bounds
    python benchmarks/bench_resync.py --out X.json

Writes a ``repro-bench/1`` JSON report (default ``BENCH_PR5.json`` at
the repo root) via :mod:`bench_io`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.chaos import quick_matrix, run_scenario  # noqa: E402
from repro.chaos.scenarios import ScenarioConfig  # noqa: E402
from repro.core.client import GroupClient  # noqa: E402
from repro.core.server import GroupKeyServer, ServerConfig  # noqa: E402
from repro.crypto.suite import PAPER_SUITE_NO_SIG  # noqa: E402
from repro.recovery import RecoveryPolicy  # noqa: E402

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR5.json")

#: ``--check`` bounds.  Recovery must converge within the manager's
#: backoff envelope — a handful of rounds, not a drawn-out crawl — and
#: shedding must make a mass eviction strictly cheaper than N rekeys.
MAX_RECOVERY_ROUNDS = 8
MAX_SHED_MESSAGES_PER_EVICTION = 1.0


def bench_resync_build(n=512, quick=False):
    """(replies/s, group size) for server-side reply construction."""
    size = 64 if quick else 512
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"bench-resync"))
    members = [(f"u{i}", server.new_individual_key()) for i in range(size)]
    server.bootstrap(members)
    rounds = 50 if quick else n
    started = time.perf_counter()
    for i in range(rounds):
        server.resync(f"u{i % size}")
    elapsed = time.perf_counter() - started
    return rounds / elapsed, size, server, dict(members)


def bench_resync_roundtrip(server, members, quick=False):
    """(repairs/s): cold client fully repaired per reply."""
    uids = sorted(members)[: 20 if quick else 100]
    group_key = server.group_key()
    started = time.perf_counter()
    for uid in uids:
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(members[uid])
        client.process_resync(server.resync(uid).encoded)
        assert client.group_key() == group_key
    elapsed = time.perf_counter() - started
    return len(uids) / elapsed


def bench_convergence(quick=False):
    """Worst recovery-round count and resync pushes over the matrix."""
    worst_rounds = 0
    total_resyncs = 0
    for config in quick_matrix():
        report = run_scenario(config)
        assert report.passed, f"scenario {config.name} failed to recover"
        worst_rounds = max(worst_rounds, report.recovery_rounds)
        total_resyncs += report.resyncs
    return worst_rounds, total_resyncs


def bench_shed_ratio(quick=False):
    """Multicast rekey messages per member in a shed mass eviction."""
    n_dead = 4 if quick else 8
    config = ScenarioConfig(
        name="bench-shed", stack="batch", profile="clean",
        n_initial=16 if quick else 32, rounds=6,
        crash_at={2: [f"u{i}" for i in range(n_dead)]},
        policy=RecoveryPolicy(dead_after=3, shed_threshold=3),
        seed=b"bench-shed")
    report = run_scenario(config)
    assert report.passed and len(report.evicted) == n_dead
    # One shed flush produces one multicast rekey for the whole queue.
    return report.shed_flushes / len(report.evicted), n_dead


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Recovery/resync benchmark (PR 5).")
    parser.add_argument("--quick", action="store_true",
                        help="tiny iteration counts for CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="enforce the recovery bounds")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default BENCH_PR5.json)")
    args = parser.parse_args(argv)

    report = bench_io.new_report("PR5", args.quick)

    replies_per_s, size, server, members = bench_resync_build(
        quick=args.quick)
    bench_io.add_metric(report, f"resync_reply_build_n{size}",
                        "replies/s", round(replies_per_s, 1))

    repairs_per_s = bench_resync_roundtrip(server, members,
                                           quick=args.quick)
    bench_io.add_metric(report, "resync_roundtrip_repair",
                        "repairs/s", round(repairs_per_s, 1))

    worst_rounds, total_resyncs = bench_convergence(quick=args.quick)
    bench_io.add_metric(report, "chaos_worst_recovery_rounds",
                        "rounds", worst_rounds)
    bench_io.add_metric(report, "chaos_matrix_resync_pushes",
                        "resyncs", total_resyncs)

    shed_ratio, n_dead = bench_shed_ratio(quick=args.quick)
    bench_io.add_metric(report, f"shed_flushes_per_eviction_n{n_dead}",
                        "flushes/member", round(shed_ratio, 3))

    bench_io.write_report(args.out, report)
    print(f"wrote {args.out}")
    for name, metric in report["metrics"].items():
        print(f"  {name}: {metric['value']} {metric['unit']}")

    if args.check:
        failures = []
        if worst_rounds > MAX_RECOVERY_ROUNDS:
            failures.append(
                f"recovery took {worst_rounds} rounds "
                f"(bound {MAX_RECOVERY_ROUNDS})")
        if shed_ratio > MAX_SHED_MESSAGES_PER_EVICTION / n_dead:
            failures.append(
                f"shed ratio {shed_ratio:.3f} flushes/member exceeds "
                f"{MAX_SHED_MESSAGES_PER_EVICTION / n_dead:.3f} "
                f"(one flush for all {n_dead})")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed: recovery bounds hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

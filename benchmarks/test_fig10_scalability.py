"""Figure 10 bench: server processing time per request vs group size.

Benchmarks a join+leave round at each group size (the figure's
x-axis) and asserts the headline claim: time grows with log(n), far
sublinearly in n.
"""

import pytest
from conftest import BENCH_SCALE, churn_round, populated_server

from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_ENC_ONLY
from repro.experiments import fig10

SIZES = (32, 256, 2048)


@pytest.mark.parametrize("n", SIZES)
def test_round_encryption_only(benchmark, n):
    server = populated_server(n=n, suite=PAPER_SUITE_ENC_ONLY,
                              signing="none")
    benchmark(churn_round, server, counter=[0])
    benchmark.extra_info["group_size"] = n


@pytest.mark.parametrize("n", SIZES)
def test_round_with_signature(benchmark, n):
    server = populated_server(n=n, suite=PAPER_SUITE, signing="merkle")
    benchmark(churn_round, server, counter=[0])
    benchmark.extra_info["group_size"] = n


def test_fig10_regeneration(benchmark):
    table = benchmark.pedantic(fig10.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    series = fig10.series(table)
    for (protection, strategy), points in series.items():
        points = sorted(points)
        (n0, t0), (n1, t1) = points[0], points[-1]
        # 32x more users must cost nowhere near 32x the time.
        assert t1 / t0 < (n1 / n0) / 4, (protection, strategy)
    benchmark.extra_info["series"] = {
        f"{p}/{s}": [(n, round(ms, 2)) for n, ms in sorted(v)]
        for (p, s), v in series.items()}
    print()
    print(table.format())

"""Shared helpers for the benchmark harness.

Each ``bench_*`` / ``test_*`` module regenerates one of the paper's
tables or figures (see DESIGN.md's per-experiment index), attaches the
rows via ``benchmark.extra_info`` and asserts the paper's qualitative
shape.  Absolute msec values are substrate-dependent (pure Python vs
1998 C on an SGI Origin 200); shapes are what must reproduce.
"""

import pytest

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG
from repro.experiments.common import Scale

BENCH_SCALE = Scale(name="bench", initial_size=256, n_requests=50,
                    group_sizes=(32, 256, 1024), degrees=(2, 4, 8, 16),
                    n_sequences=1)


def populated_server(n=256, degree=4, strategy="group",
                     suite=PAPER_SUITE_NO_SIG, signing="none",
                     seed=b"bench") -> GroupKeyServer:
    server = GroupKeyServer(ServerConfig(
        degree=degree, strategy=strategy, suite=suite, signing=signing,
        seed=seed))
    server.bootstrap([(f"m{i}", server.new_individual_key())
                      for i in range(n)])
    return server


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


def churn_round(server, counter=[0]):
    """One state-neutral join+leave pair (the benchmarkable unit)."""
    counter[0] += 1
    user = f"bench-user-{counter[0]}"
    server.join(user, server.new_individual_key())
    server.leave(user)

"""Table 5 bench: number and size of rekey messages sent by the server."""

from conftest import BENCH_SCALE

from repro.experiments import table5


def test_table5(benchmark):
    table = benchmark.pedantic(table5.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [[str(c) for c in row]
                                    for row in table.rows]
    rows = {(row[0], row[1]): row for row in table.rows}
    degrees = sorted({row[0] for row in table.rows})
    for degree in degrees:
        # Group-oriented: exactly 1 leave message, 2 join messages.
        assert rows[(degree, "group")][11] == 1.0
        # User/key-oriented leave message count grows with degree.
        assert rows[(degree, "user")][11] > degree
    # Group leave message size grows with d (paper: 1005 -> 1293 -> 1869).
    sizes = [rows[(degree, "group")][5] for degree in degrees]
    assert sizes == sorted(sizes)
    print()
    print(table.format())

"""Micro-benchmarks of key-tree operations."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.tree import KeyTree


def make_tree(n, degree=4):
    source = HmacDrbg(b"bench-tree")
    keygen = lambda: source.generate(8)
    return KeyTree.build([(f"u{i}", keygen()) for i in range(n)],
                         degree, keygen), keygen


@pytest.mark.parametrize("n", [256, 4096])
def test_tree_build(benchmark, n):
    source = HmacDrbg(b"bench-build")
    keygen = lambda: source.generate(8)
    members = [(f"u{i}", keygen()) for i in range(n)]
    tree = benchmark(KeyTree.build, members, 4, keygen)
    assert tree.n_users == n


@pytest.mark.parametrize("n", [256, 4096])
def test_tree_join_leave_round(benchmark, n):
    tree, keygen = make_tree(n)
    counter = [0]

    def round_trip():
        counter[0] += 1
        user = f"x{counter[0]}"
        tree.join(user, keygen())
        tree.leave(user)

    benchmark(round_trip)
    assert tree.n_users == n


def test_tree_userset_root(benchmark, n=4096):
    tree, _keygen = make_tree(n)
    users = benchmark(tree.userset, tree.root)
    assert len(users) == n


def test_tree_user_key_path(benchmark, n=4096):
    tree, _keygen = make_tree(n)
    path = benchmark(tree.user_key_path, "u100")
    assert path[-1] is tree.root

"""Table 4 bench: per-message signatures vs one Merkle signature.

Benchmarks the server's per-request processing under both signing
policies for the strategy where the difference is largest
(user-oriented), and regenerates the full table.
"""

from conftest import BENCH_SCALE, populated_server

from repro.crypto.suite import PAPER_SUITE
from repro.experiments import table4


def _request_round(server):
    counter = getattr(server, "_bench_counter", 0) + 1
    server._bench_counter = counter
    user = f"x{counter}"
    server.join(user, server.new_individual_key())
    server.leave(user)


def test_per_message_signing_round(benchmark):
    server = populated_server(n=256, degree=4, strategy="user",
                              suite=PAPER_SUITE, signing="per-message")
    benchmark(_request_round, server)
    leaves = [r for r in server.history if r.op == "leave"]
    benchmark.extra_info["signatures_per_leave"] = leaves[-1].signatures
    assert leaves[-1].signatures == leaves[-1].n_rekey_messages


def test_merkle_signing_round(benchmark):
    server = populated_server(n=256, degree=4, strategy="user",
                              suite=PAPER_SUITE, signing="merkle")
    benchmark(_request_round, server)
    leaves = [r for r in server.history if r.op == "leave"]
    benchmark.extra_info["signatures_per_leave"] = leaves[-1].signatures
    assert leaves[-1].signatures == 1


def test_table4_regeneration(benchmark):
    table = benchmark.pedantic(table4.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    ratios = table4.speedup(table)
    benchmark.extra_info["speedup"] = {k: round(v, 2)
                                       for k, v in ratios.items()}
    assert ratios["user"] > 1.3
    assert ratios["key"] > 1.3
    print()
    print(table.format())
    print(f"merkle speedup (ave ms, per-message/merkle): "
          f"{ {k: round(v, 2) for k, v in ratios.items()} }")

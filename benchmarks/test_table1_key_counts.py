"""Table 1 bench: key-count accounting for star / tree / complete."""

from conftest import BENCH_SCALE

from repro.experiments import table1


def test_table1(benchmark):
    table = benchmark.pedantic(table1.run, args=(BENCH_SCALE,),
                               rounds=3, iterations=1)
    benchmark.extra_info["rows"] = [[str(c) for c in row]
                                    for row in table.rows]
    star, tree, complete = table.rows
    # Analytic == built, for all three classes (Table 1).
    assert star[2] == 82 and star[4] == 2
    assert tree[2] == 121 and tree[4] == 5
    assert complete[2] == 255 and complete[4] == 128
    print()
    print(table.format())

"""Crypto fast-path benchmark: fast implementations vs frozen references.

Measures the motivated workload — a rekey-item stream: many independent
two-block CBC items under a rotating working set of keys, exactly the
shape the pipeline's encrypt stage sees during star rekeys and interval
batch flushes — through both the fast path (key-schedule cache + table
rounds + batch engine) and the pre-optimization formulations preserved
in :mod:`repro.crypto.reference` (per-item cipher construction +
byte-wise chaining, as shipped before the fast path), plus RSA signing
(cached-CRT vs textbook full exponentiation) and end-to-end server
rekey throughput (star vs tree at n=1024).

Usage::

    python benchmarks/bench_fastpath.py            # full run
    python benchmarks/bench_fastpath.py --quick    # CI smoke (seconds)
    python benchmarks/bench_fastpath.py --check    # enforce speedup floors
    python benchmarks/bench_fastpath.py --out X.json

Writes a ``repro-bench/1`` JSON report (default ``BENCH_PR2.json`` at
the repo root) via :mod:`bench_io`.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.core.server import GroupKeyServer, ServerConfig  # noqa: E402
from repro.crypto import batchenc, modes, reference, rsa  # noqa: E402
from repro.crypto.keycache import SHARED_CACHE  # noqa: E402
from repro.crypto.reference import ReferenceAES, ReferenceDES  # noqa: E402
from repro.crypto.suite import (CipherSuite,  # noqa: E402
                                PAPER_SUITE_NO_SIG)

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR2.json")

#: Acceptance floors (``--check``): fast path vs reference baseline.
SPEEDUP_FLOORS = {
    "aes_cbc_rekey_stream": 5.0,
    "des_cbc_rekey_stream": 3.0,
    "rsa_sign_512": 2.0,
}

_WORKING_SET = 32          # distinct keys rotating through the stream
_BATCH = 256               # encrypt-stage batch size for the fast path


def _baseline_cbc_nopad(cipher, padded: bytes, iv: bytes) -> bytes:
    """Byte-wise CBC without padding — the pre-fast-path modes loop."""
    block = cipher.block_size
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(
            reference._xor_bytes(padded[i:i + block], previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def _rekey_stream(rng, key_size: int, block_size: int, n_items: int):
    """(keys, items): two-block payloads keyed round-robin over the set."""
    keys = [rng.randbytes(key_size) for _ in range(_WORKING_SET)]
    items = [(keys[i % _WORKING_SET],
              rng.randbytes(2 * block_size),
              rng.randbytes(block_size))
             for i in range(n_items)]
    return items


def _bench_cipher_stream(report, name, suite, reference_cls, n_items, rng):
    """One cipher metric: MB/s through fast path vs reference baseline."""
    items = _rekey_stream(rng, suite.key_size, suite.block_size, n_items)
    total_bytes = sum(len(payload) for _, payload, _ in items)

    # Fast path: cached schedules + the batch engine, exactly as the
    # pipeline encrypt stage consumes a batch (chunks of _BATCH items).
    SHARED_CACHE.clear()
    start = time.perf_counter()
    fast_out = []
    for chunk_start in range(0, len(items), _BATCH):
        chunk = items[chunk_start:chunk_start + _BATCH]
        jobs = [(suite.new_cipher(key), payload, iv)
                for key, payload, iv in chunk]
        fast_out.extend(batchenc.cbc_encrypt_nopad_many(jobs))
    fast_seconds = time.perf_counter() - start

    # Baseline: per-item construction + byte-wise chaining (pre-PR shape:
    # ``suite.encrypt`` built a fresh cipher for every call).
    start = time.perf_counter()
    base_out = [_baseline_cbc_nopad(reference_cls(key), payload, iv)
                for key, payload, iv in items]
    base_seconds = time.perf_counter() - start

    if fast_out != base_out:
        raise AssertionError(f"{name}: fast path diverged from reference")
    fast_mbs = total_bytes / fast_seconds / 1e6
    base_mbs = total_bytes / base_seconds / 1e6
    bench_io.add_metric(report, name, "MB/s", fast_mbs, baseline=base_mbs)
    return fast_mbs, base_mbs


def _bench_rsa(report, n_signs, rng):
    keypair = rsa.generate_keypair(512, seed=b"bench-fastpath-rsa")
    digests = [rng.randbytes(16) for _ in range(n_signs)]
    keypair.raw_sign(2)                      # warm the cached CRT components

    start = time.perf_counter()
    fast_sigs = [rsa.sign_digest(keypair, digest, "md5")
                 for digest in digests]
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    base_sigs = [reference.reference_sign_digest(keypair, digest, "md5")
                 for digest in digests]
    base_seconds = time.perf_counter() - start

    if fast_sigs != base_sigs:
        raise AssertionError("rsa: CRT signatures diverged from reference")
    fast_rate = n_signs / fast_seconds
    base_rate = n_signs / base_seconds
    bench_io.add_metric(report, "rsa_sign_512", "signs/s", fast_rate,
                        baseline=base_rate)
    return fast_rate, base_rate


def _bench_rekeys(report, graph: str, n_members: int, rounds: int):
    """End-to-end server churn throughput (no baseline: absolute rate)."""
    config = ServerConfig(graph=graph, degree=4, strategy="group",
                          suite=PAPER_SUITE_NO_SIG, signing="none",
                          seed=b"bench-rekeys")
    server = GroupKeyServer(config)
    server.bootstrap([(f"m{i}", server.new_individual_key())
                      for i in range(n_members)])
    start = time.perf_counter()
    for i in range(rounds):
        user = f"churn-{i}"
        server.join(user, server.new_individual_key())
        server.leave(user)
    seconds = time.perf_counter() - start
    rate = (2 * rounds) / seconds
    bench_io.add_metric(report, f"{graph}_rekeys_n{n_members}", "rekeys/s",
                        rate)
    return rate


def run(quick: bool, out_path: str, check: bool) -> int:
    rng = random.Random(20260806)
    report = bench_io.new_report("PR2", quick)

    n_items = 1500 if quick else 12000
    n_signs = 40 if quick else 400
    n_members = 256 if quick else 1024
    rounds = 4 if quick else 30

    print(f"crypto fast-path benchmark ({'quick' if quick else 'full'} run)")
    aes_suite = CipherSuite("aes128")
    fast, base = _bench_cipher_stream(report, "aes_cbc_rekey_stream",
                                      aes_suite, ReferenceAES, n_items, rng)
    print(f"  aes-cbc rekey stream : {fast:8.2f} MB/s vs {base:6.2f} MB/s "
          f"reference ({fast / base:.1f}x)")

    des_suite = CipherSuite("des")
    fast, base = _bench_cipher_stream(report, "des_cbc_rekey_stream",
                                      des_suite, ReferenceDES, n_items, rng)
    print(f"  des-cbc rekey stream : {fast:8.2f} MB/s vs {base:6.2f} MB/s "
          f"reference ({fast / base:.1f}x)")

    fast, base = _bench_rsa(report, n_signs, rng)
    print(f"  rsa-512 signing      : {fast:8.1f} signs/s vs {base:6.1f} "
          f"signs/s reference ({fast / base:.1f}x)")

    star = _bench_rekeys(report, "star", n_members, rounds)
    tree = _bench_rekeys(report, "tree", n_members, rounds)
    print(f"  server churn n={n_members}  : star {star:7.1f} rekeys/s, "
          f"tree {tree:7.1f} rekeys/s")

    cache = SHARED_CACHE.stats()
    print(f"  key-schedule cache   : {cache['hits']} hits / "
          f"{cache['misses']} misses / {cache['evictions']} evictions")

    bench_io.write_report(out_path, report)
    print(f"wrote {out_path}")

    if check:
        failures = []
        for name, floor in SPEEDUP_FLOORS.items():
            speedup = report["metrics"][name]["speedup"]
            status = "ok" if speedup >= floor else "FAIL"
            print(f"  floor {name}: {speedup:.2f}x >= {floor}x  [{status}]")
            if speedup < floor:
                failures.append(name)
        if failures:
            print(f"speedup floors not met: {', '.join(failures)}",
                  file=sys.stderr)
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny iteration counts (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the PR's speedup floors are met")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    return run(args.quick, args.out, args.check)


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 6 bench: rekey messages as received by clients."""

from conftest import BENCH_SCALE

from repro.experiments import table6


def test_table6(benchmark):
    table = benchmark.pedantic(table6.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [[str(c) for c in row]
                                    for row in table.rows]
    for degree in sorted({row[0] for row in table.rows}):
        sizes = {row[1]: (row[2], row[3]) for row in table.rows
                 if row[0] == degree}
        # The paper's client-side ranking: user < key < group.
        assert sizes["user"][0] < sizes["key"][0] < sizes["group"][0]
        assert sizes["user"][1] < sizes["key"][1] < sizes["group"][1]
    # Exactly one rekey message per client per request (all strategies).
    for row in table.rows:
        assert abs(row[4] - 1.0) < 0.15
    print()
    print(table.format())

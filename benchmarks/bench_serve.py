"""Async serving benchmark (PR 7): sustained rate, latency, shedding.

Self-hosts a sharded cluster behind the async front end on loopback,
drives it with the :mod:`repro.serve.loadgen` client pool, and reports:

* **sustained req/s** — server-side, from ``serve_requests_total``
  scrape deltas bracketing exactly the steady window (not the ramp,
  and not client-side optimism: only requests the server *counted*);
* **latency** — client-observed p50/p99 for acked joins and resyncs;
* **shed rate** — ``MSG_BUSY`` replies as a fraction of requests, plus
  a deliberate overload burst that must provoke shedding (a server
  that never sheds under a 4x-inflight burst has no admission control).

Usage::

    python benchmarks/bench_serve.py              # full run, 10k clients
    python benchmarks/bench_serve.py --quick      # CI smoke, 500 clients
    python benchmarks/bench_serve.py --check      # enforce the floors

``--check`` floors (full mode): sustained >= 5,000 req/s, >= 99% of
clients joined, resync p99 <= 15 s, overload sheds > 0.  Quick mode
keeps the behavioural gates (join fraction, shedding) but scales the
rate floor down — CI boxes prove behaviour, not hardware.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.serve.loadgen import (ClientPool, LoadProfile,  # noqa: E402
                                 LoadStats, run_load, scrape,
                                 self_hosted_cluster)

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR7.json")

#: --check floors.  Rate floors are per-mode; behaviour gates are not.
MIN_SUSTAINED_REQ_PER_S = 5_000.0
MIN_SUSTAINED_REQ_PER_S_QUICK = 100.0
MIN_JOIN_FRACTION = 0.99
MAX_RESYNC_P99_MS = 15_000.0


def _profile(quick: bool) -> LoadProfile:
    if quick:
        return LoadProfile(clients=500, sockets=8, duration=3.0,
                           churn_clients=25, heartbeat_interval=0.4,
                           resync_fraction=0.02, ramp_concurrency=48)
    return LoadProfile(clients=10_000, sockets=32, duration=10.0,
                       churn_clients=10, heartbeat_interval=0.8,
                       resync_fraction=0.002, ramp_concurrency=48,
                       request_timeout=6.0)


def _served_total(document) -> float:
    """Sum every serve_requests_total sample in a merged snapshot."""
    total = 0.0
    counters = document["metrics"]["counters"]
    for name, entry in counters.items():
        if name.startswith("serve_requests_total"):
            total += sum(series["value"]
                         for series in entry.get("series", []))
    return total


def _shed_total(document) -> float:
    counters = document["metrics"]["counters"]
    return sum(series["value"]
               for name, entry in counters.items()
               if name.startswith("serve_shed_total")
               for series in entry.get("series", []))


def _stage_latency(documents) -> dict:
    """Per-stage p50/p99 (ms) from ``rekey_stage_seconds`` histograms.

    Merges each stage's series across every shard snapshot (counts are
    summed bucket-wise), then runs the same in-bucket interpolation the
    observability report uses — so the attribution answers *where* a
    rekey's latency went: plan, encrypt, sign, or dispatch.
    """
    from repro.observability.export import _HistView
    merged = {}
    bounds = None
    for document in documents:
        if document is None:
            continue
        entry = document["metrics"]["histograms"].get("rekey_stage_seconds")
        if entry is None:
            continue
        bounds = entry["bounds"]
        for series in entry["series"]:
            stage = series["labels"].get("stage", "?")
            into = merged.setdefault(stage, {
                "counts": [0] * len(series["counts"]), "count": 0,
                "sum": 0.0, "min": float("inf"), "max": 0.0})
            for index, value in enumerate(series["counts"]):
                into["counts"][index] += value
            into["count"] += series["count"]
            into["sum"] += series["sum"]
            into["min"] = min(into["min"], series["min"])
            into["max"] = max(into["max"], series["max"])
    stages = {}
    for stage, series in merged.items():
        if not series["count"]:
            continue
        view = _HistView(bounds, series)
        stages[stage] = {"count": series["count"],
                         "p50_ms": round(view.quantile(0.5) * 1000.0, 3),
                         "p99_ms": round(view.quantile(0.99) * 1000.0, 3)}
    return stages


async def _overload_probe(n_requests: int = 96) -> dict:
    """Prove admission control sheds under a genuine overload.

    Runs against its *own* small service with a deliberately tiny
    ``max_inflight`` — probing the 10k service instead races the UDP
    receive buffer (the kernel sheds before the server gets the
    chance) and makes the result timing-dependent.  Joins (not
    heartbeats or resyncs) are the inflight-bounded op class; a
    concurrent join burst several times the inflight cap must draw
    ``MSG_BUSY`` replies, observable on both sides of the wire."""
    from repro.core.messages import MSG_BUSY, MSG_JOIN_REQUEST
    from repro.serve import ServeConfig
    service = await self_hosted_cluster(
        n_shards=3, seed=b"bench-overload",
        config=ServeConfig(max_inflight=8, tick_interval=0))
    profile = LoadProfile(clients=n_requests, sockets=4,
                          request_timeout=30.0, request_deadline=30.0,
                          retry_budget=0)
    pool = ClientPool([service.udp_addresses[0]], profile, LoadStats())
    await pool.start()
    try:
        # With a zero retry budget the pool absorbs each MSG_BUSY into
        # its stats rather than returning it.
        await asyncio.gather(*(
            pool.rpc(index, MSG_JOIN_REQUEST, f"burst-{index:05d}")
            for index in range(n_requests)))
        busy = pool.stats.busy
        document = await scrape(service.udp_addresses[0], timeout=10.0)
        sheds = _shed_total(document) if document else 0.0
        return {"busy": busy, "sheds": sheds}
    finally:
        await pool.aclose()
        await service.aclose()


async def _run(quick: bool, log) -> dict:
    profile = _profile(quick)
    service = await self_hosted_cluster(n_shards=3)
    marks = {}

    documents = {}

    async def on_phase(label):
        # One (timestamp, count) sample *per shard*, stamped around the
        # scrape that produced it.  A single post-hoc timestamp for the
        # whole sweep would mis-time the early shards by however long
        # the later scrapes took — under saturation that skew inflates
        # (or deflates) the computed rate by double-digit percents.
        samples = []
        docs = []
        for address in service.udp_addresses:
            before = time.monotonic()
            document = await scrape(address)
            after = time.monotonic()
            docs.append(document)
            samples.append(((before + after) / 2,
                            _served_total(document) if document else None))
        marks[label] = samples
        documents[label] = docs

    try:
        stats = await run_load(service.udp_addresses, profile,
                               log=log, on_phase=on_phase)
        results = stats.as_dict()

        # Per-shard rate over that shard's own bracketed window, summed.
        rate = 0.0
        for (t0, c0), (t1, c1) in zip(marks["steady-start"],
                                      marks["steady-end"]):
            if c0 is None or c1 is None:
                continue
            rate += (c1 - c0) / max(t1 - t0, 1e-9)
        results["server_steady_req_per_s"] = rate
        results["stage_latency"] = _stage_latency(
            documents.get("steady-end", []))

        return results
    finally:
        await service.aclose()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Async serving benchmark (PR 7).")
    parser.add_argument("--quick", action="store_true",
                        help="500 clients / short windows for CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="enforce the serving floors")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default BENCH_PR7.json)")
    args = parser.parse_args(argv)

    def log(text):
        print(text, file=sys.stderr)

    results = asyncio.run(_run(args.quick, log))
    overload = asyncio.run(_overload_probe())
    results["overload_busy_replies"] = overload["busy"]
    results["overload_sheds"] = overload["sheds"]

    profile = _profile(args.quick)
    join_fraction = results["ramp_joined"] / profile.clients
    sustained = results["server_steady_req_per_s"]
    shed_rate = (results["busy_replies"]
                 / max(results["requests_total"], 1))
    resync_p99 = results["latency"]["resync"].get("p99_ms", 0.0)
    join_p99 = results["latency"]["join"].get("p99_ms", 0.0)

    report = bench_io.new_report("PR7", args.quick)
    bench_io.add_metric(report, f"serve_sustained_n{profile.clients}",
                        "req/s", round(sustained, 1))
    bench_io.add_metric(report, "serve_client_steady_rate",
                        "req/s", round(results["steady_req_per_s"], 1))
    bench_io.add_metric(report, "serve_join_fraction",
                        "fraction", round(join_fraction, 4))
    bench_io.add_metric(report, "serve_join_p50",
                        "ms", results["latency"]["join"]["p50_ms"])
    bench_io.add_metric(report, "serve_join_p99", "ms", join_p99)
    if results["latency"]["resync"]["count"]:
        bench_io.add_metric(report, "serve_resync_p50", "ms",
                            results["latency"]["resync"]["p50_ms"])
        bench_io.add_metric(report, "serve_resync_p99", "ms",
                            resync_p99)
    bench_io.add_metric(report, "serve_shed_rate",
                        "fraction", round(shed_rate, 5))
    bench_io.add_metric(report, "serve_overload_sheds",
                        "sheds", results["overload_sheds"])
    bench_io.add_metric(report, "serve_ramp_seconds",
                        "s", round(results["ramp_seconds"], 2))
    # Where a rekey's server-side latency went, per pipeline stage —
    # the client p99 above decomposes into these plus queueing.
    for stage, stats in sorted(results["stage_latency"].items()):
        bench_io.add_metric(report, f"serve_stage_{stage}_p50", "ms",
                            stats["p50_ms"])
        bench_io.add_metric(report, f"serve_stage_{stage}_p99", "ms",
                            stats["p99_ms"])

    bench_io.write_report(args.out, report)
    print(f"wrote {args.out}")
    for name, metric in report["metrics"].items():
        print(f"  {name}: {metric['value']} {metric['unit']}")

    if args.check:
        floor = (MIN_SUSTAINED_REQ_PER_S_QUICK if args.quick
                 else MIN_SUSTAINED_REQ_PER_S)
        failures = []
        if sustained < floor:
            failures.append(f"sustained {sustained:.0f} req/s "
                            f"under floor {floor:.0f}")
        if join_fraction < MIN_JOIN_FRACTION:
            failures.append(f"only {join_fraction:.1%} of clients "
                            f"joined (floor {MIN_JOIN_FRACTION:.0%})")
        if results["overload_sheds"] <= 0:
            failures.append("overload burst provoked no shedding")
        if resync_p99 > MAX_RESYNC_P99_MS:
            failures.append(f"resync p99 {resync_p99:.0f}ms over "
                            f"{MAX_RESYNC_P99_MS:.0f}ms")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed: serving floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

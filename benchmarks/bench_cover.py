"""Key-covering benchmark: cover size and compute across subset shapes.

Three tiers, mirroring how the covering engine is actually used:

* **set-cover instances** (tiny universes) — ``exact_cover`` vs
  ``greedy_cover`` vs ``partition_cover``: the NP-hard general problem
  where exhaustive search is still feasible, establishing how far the
  approximations sit from optimal;
* **medium trees** (n=4096) — ``greedy_tree_cover`` vs the structural
  ``tree_subset_cover`` on both size and compute, across three subset
  shapes: *random* (uniform sample), *clustered* (contiguous member
  windows, the friendly case for subtree covers), and *adversarial*
  (every-other-leaf striding, which defeats all internal nodes);
* **flat at scale** (n=100k quick / n=1M full) — the array-backed
  ``tree_subset_cover`` fast path covering ``|S|=10k`` subsets without
  materializing a single userset.

Usage::

    python benchmarks/bench_cover.py            # full run (n=1M)
    python benchmarks/bench_cover.py --quick    # CI smoke (n=100k)
    python benchmarks/bench_cover.py --check    # enforce the floors
    python benchmarks/bench_cover.py --out X.json

Writes a ``repro-bench/1`` JSON report (default ``BENCH_PR9.json`` at
the repo root) via :mod:`bench_io`.  ``--check`` gates the structural
cover at <= 2x the greedy cover size wherever both run, and the flat
``|S|=10k`` cover compute under one second.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.keygraph.backend import build_tree  # noqa: E402
from repro.keygraph.covering import (exact_cover,  # noqa: E402
                                     greedy_cover, greedy_tree_cover,
                                     group_from_set_cover, is_cover,
                                     partition_cover, tree_subset_cover)

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR9.json")
DEGREE = 4
MEDIUM_N = 4096
SUBSET_SIZE = 10_000

#: ``--check`` floors.
COVER_RATIO_CEILING = 2.0     # structural cover <= 2x greedy, per shape
SUBSET_TIME_CEILING_S = 1.0   # flat tree_subset_cover, |S|=10k


def _counter_keygen():
    state = [0]

    def keygen():
        state[0] += 1
        return state[0].to_bytes(8, "big")
    return keygen


def _subset(shape: str, users, size: int, rng) -> list:
    """One subset of ``size`` members in the named shape."""
    if shape == "random":
        return rng.sample(users, size)
    if shape == "clustered":
        # A handful of contiguous windows: the friendly case, where
        # whole subtrees are fully selected and the cover collapses.
        windows = max(1, size // 512)
        width = size // windows
        picked = []
        for _ in range(windows):
            start = rng.randrange(len(users) - width + 1)
            picked.extend(users[start:start + width])
        seen = set()
        return [u for u in picked
                if u not in seen and not seen.add(u)][:size] or picked[:size]
    if shape == "adversarial":
        # Every other leaf: no internal node is ever fully selected, so
        # the cover degenerates to |S| individual keys — the worst case.
        start = rng.randrange(2)
        return users[start:start + 2 * size:2][:size]
    raise ValueError(f"unknown shape {shape!r}")


def _bench_set_cover(report, rng):
    """Tiny NP-hard instances: exact vs the two approximations."""
    sizes = {"exact": 0, "greedy": 0, "partition": 0}
    rounds = 24
    for _ in range(rounds):
        n = rng.randint(8, 14)
        universe = list(range(n))
        subsets = [rng.sample(universe, rng.randint(1, n))
                   for _ in range(rng.randint(3, 6))]
        group = group_from_set_cover(universe, subsets)
        target = [f"e{e}" for e in rng.sample(universe, rng.randint(2, n))]
        exact = exact_cover(group, target)
        greedy = greedy_cover(group, target)
        approx = partition_cover(group, target)
        for cover in (exact, greedy, approx):
            assert is_cover(group, cover, target)
        sizes["exact"] += len(exact)
        sizes["greedy"] += len(greedy)
        sizes["partition"] += len(approx)
    for name in ("greedy", "partition"):
        ratio = sizes[name] / sizes["exact"]
        bench_io.add_metric(report, f"setcover_{name}_vs_exact", "ratio",
                            ratio)
        print(f"  set-cover {name:>9} vs exact : {ratio:.3f}x "
              f"({sizes[name]} vs {sizes['exact']} keys, {rounds} instances)")


def _bench_medium_tree(report, rng):
    """n=4096 tree: greedy vs structural, three subset shapes."""
    users = [f"m{index:05d}" for index in range(MEDIUM_N)]
    tree = build_tree("flat", [(u, bytes(8)) for u in users], DEGREE,
                      _counter_keygen())
    ratios = {}
    for shape in ("random", "clustered", "adversarial"):
        subset = _subset(shape, users, 512, rng)
        start = time.perf_counter()
        structural = tree_subset_cover(tree, subset)
        structural_s = time.perf_counter() - start
        start = time.perf_counter()
        greedy = greedy_tree_cover(tree, subset)
        greedy_s = time.perf_counter() - start
        ratio = len(structural) / len(greedy)
        ratios[shape] = ratio
        bench_io.add_metric(report, f"tree4096_{shape}_cover_keys", "keys",
                            len(structural))
        bench_io.add_metric(report, f"tree4096_{shape}_size_ratio", "ratio",
                            ratio)
        bench_io.add_metric(report, f"tree4096_{shape}_structural_ms", "ms",
                            structural_s * 1e3)
        bench_io.add_metric(report, f"tree4096_{shape}_greedy_ms", "ms",
                            greedy_s * 1e3)
        print(f"  n=4096 {shape:>11} |S|=512 : {len(structural):4d} keys, "
              f"structural {structural_s * 1e3:7.2f} ms vs greedy "
              f"{greedy_s * 1e3:7.2f} ms")
    return ratios


def _bench_flat_scale(report, n_members: int, rng):
    """The flat fast path at scale: |S|=10k covers, per shape."""
    users = [f"u{index:07d}" for index in range(n_members)]
    print(f"  building flat tree n={n_members} ...", end="", flush=True)
    start = time.perf_counter()
    tree = build_tree("flat", [(u, bytes(8)) for u in users], DEGREE,
                      _counter_keygen())
    build_s = time.perf_counter() - start
    print(f" {build_s:.1f} s")
    bench_io.add_metric(report, f"flat_build_n{n_members}", "s", build_s)

    times = {}
    for shape in ("random", "clustered", "adversarial"):
        subset = _subset(shape, users, SUBSET_SIZE, rng)
        start = time.perf_counter()
        cover = tree_subset_cover(tree, subset)
        elapsed = time.perf_counter() - start
        times[shape] = elapsed
        bench_io.add_metric(report, f"flat_{shape}_subset10k_cover_keys",
                            "keys", len(cover))
        bench_io.add_metric(report, f"flat_{shape}_subset10k_cover_s", "s",
                            elapsed)
        print(f"  n={n_members} {shape:>11} |S|=10k : {len(cover):5d} keys "
              f"in {elapsed * 1e3:7.1f} ms")
    return times


def run(quick: bool, out_path: str, check: bool) -> int:
    rng = random.Random(0x90441)
    report = bench_io.new_report("PR9", quick)
    n_members = 100_000 if quick else 1_000_000
    print(f"key-covering benchmark ({'quick' if quick else 'full'} run)")

    _bench_set_cover(report, rng)
    ratios = _bench_medium_tree(report, rng)
    times = _bench_flat_scale(report, n_members, rng)

    bench_io.write_report(out_path, report)
    print(f"wrote {out_path}")

    if check:
        failures = []
        for shape, ratio in ratios.items():
            status = "ok" if ratio <= COVER_RATIO_CEILING else "FAIL"
            print(f"  ceiling tree4096_{shape}: {ratio:.3f}x <= "
                  f"{COVER_RATIO_CEILING}x  [{status}]")
            if ratio > COVER_RATIO_CEILING:
                failures.append(f"{shape} cover ratio {ratio:.3f}")
        worst = max(times.values())
        status = "ok" if worst <= SUBSET_TIME_CEILING_S else "FAIL"
        print(f"  ceiling flat |S|=10k cover: {worst * 1e3:.1f} ms <= "
              f"{SUBSET_TIME_CEILING_S * 1e3:.0f} ms  [{status}]")
        if worst > SUBSET_TIME_CEILING_S:
            failures.append(f"flat cover {worst:.3f} s")
        if failures:
            print(f"cover checks failed: {', '.join(failures)}",
                  file=sys.stderr)
            return 1
        print("all cover checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="n=100k trees (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the cover size/time ceilings")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    return run(args.quick, args.out, args.check)


if __name__ == "__main__":
    raise SystemExit(main())

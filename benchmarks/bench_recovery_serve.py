"""Crash-recovery serving benchmark (PR 10): TTR, availability, no dups.

Self-hosts a supervised 3-shard cluster, drives it with the loadgen
client pool, and crashes one shard (SIGKILL-equivalent, torn journal
tail) in the middle of the steady window.  The watchdog must notice
and revive it while clients ride out the gap on deadline/backoff
retries.  Reported and gated:

* **time-to-recover** — declared-dead to serving-again, supervisor
  clock (``--check``: <= 5 s);
* **availability** — logical client ops that reached a terminal answer
  despite the crash, retries included (``--check``: >= 99%; the crash
  window itself is masked by the retry deadline, which outlives the
  restart);
* **duplicate suppression** — a deliberate retry storm (the same join
  re-sent with one correlation token, many times) must produce exactly
  one execution: zero follow-up rekeys, every duplicate answered by
  replay (``--check``: double-applies == 0);
* **byte identity** — every shard's journal replays to the live
  server's exact snapshot after the dust settles.

Usage::

    python benchmarks/bench_recovery_serve.py            # full run
    python benchmarks/bench_recovery_serve.py --quick    # CI smoke
    python benchmarks/bench_recovery_serve.py --check    # enforce gates
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.core.messages import MSG_JOIN_REQUEST, Message  # noqa: E402
from repro.core.server import ServerConfig  # noqa: E402
from repro.serve import ServeConfig  # noqa: E402
from repro.serve.loadgen import LoadProfile, run_load  # noqa: E402
from repro.serve.supervise import (SupervisePolicy,  # noqa: E402
                                   Supervisor, SupervisorError)
from repro.serve.wire import attach_corr_trailer  # noqa: E402

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR10.json")

#: --check gates (mode-independent: these are behaviour, not hardware).
MAX_RECOVER_SECONDS = 5.0
MIN_AVAILABILITY = 0.99
MIN_JOIN_FRACTION = 0.9
STORM_DUPLICATES = 32


def _profile(quick: bool) -> LoadProfile:
    if quick:
        return LoadProfile(clients=64, sockets=8, duration=3.0,
                           churn_clients=8, heartbeat_interval=0.4,
                           resync_fraction=0.02, ramp_concurrency=32,
                           request_timeout=0.5, request_deadline=6.0,
                           retry_budget=8)
    return LoadProfile(clients=400, sockets=16, duration=8.0,
                       churn_clients=24, heartbeat_interval=0.5,
                       resync_fraction=0.01, ramp_concurrency=48,
                       request_timeout=0.5, request_deadline=6.0,
                       retry_budget=8)


async def _retry_storm(supervisor, n_duplicates: int) -> dict:
    """One join, re-sent ``n_duplicates`` times with the same token.

    The server's idempotency cache must absorb every duplicate: the
    sequence counter moves for the first execution only, and each
    duplicate that arrives after completion replays the original reply.
    """
    shard = supervisor.shard(0)
    server = shard.server
    user = "storm-user"
    server.register_individual_key(user, b"\x51" * server.suite.key_size)
    token = 0x57CA11
    request = attach_corr_trailer(
        Message(msg_type=MSG_JOIN_REQUEST, body=user.encode()).encode(),
        token)
    first: list = []
    await shard.core.submit(request, first.append, path_id=None)
    if not server.is_member(user):
        raise SupervisorError("storm join did not apply")
    seq_before = server._seq
    replayed = 0
    for _ in range(n_duplicates):
        box: list = []
        await shard.core.submit(request, box.append, path_id=None)
        if box and first and box[0] == first[0]:
            replayed += 1
    double_applies = server._seq - seq_before
    return {"duplicates": n_duplicates, "replayed": replayed,
            "double_applies": double_applies}


async def _run(quick: bool, log) -> dict:
    import tempfile
    profile = _profile(quick)
    journal_dir = tempfile.mkdtemp(prefix="bench-recovery-")
    policy = SupervisePolicy(probe_interval=0.1, probe_deadline=0.75,
                             probe_misses=1, restart_backoff=0.1,
                             mode="journal")
    supervisor = Supervisor(
        3,
        server_config=ServerConfig(signing="none", backend="flat",
                                   seed=b"bench-recovery"),
        serve_config=ServeConfig(tcp_port=None, max_inflight=256,
                                 tick_interval=0.5),
        journal_dir=journal_dir, policy=policy)
    await supervisor.start()
    victim = supervisor.shard(1)
    crash: dict = {}

    async def chaos() -> None:
        await asyncio.sleep(max(0.5, profile.duration * 0.3))
        generation = victim.generation
        started = time.monotonic()
        # SIGKILL-equivalent plus a torn tail: the hardest journal case.
        await supervisor.kill(victim.shard_id, tear_tail=7)
        log(f"killed {victim.name} (journal tail torn)")
        while victim.generation == generation or victim.state != "up":
            if victim.state == "failed":
                raise SupervisorError(f"{victim.name} failed to restart")
            await asyncio.sleep(0.02)
        crash["recover_seconds"] = time.monotonic() - started
        log(f"{victim.name} recovered in "
            f"{crash['recover_seconds'] * 1e3:.0f} ms")

    async def on_phase(phase: str) -> None:
        if phase == "steady-start" and "task" not in crash:
            crash["task"] = asyncio.create_task(chaos())

    try:
        stats = await run_load(supervisor.addresses, profile,
                               log=log, on_phase=on_phase)
        if "task" in crash:
            await crash["task"]
        results = stats.as_dict()
        results["recover_seconds"] = crash.get("recover_seconds")
        results["victim_restarts"] = victim.restarts

        # Availability: logical ops that reached a terminal answer.
        # Retries are the instrument, not a failure — only a request
        # that ran its whole deadline/budget out counts against it.
        terminal = results["acked_ops"] + results["denied"]
        attempted = terminal + results["budget_exhausted"]
        results["availability"] = (terminal / attempted if attempted
                                   else 0.0)

        results["storm"] = await _retry_storm(supervisor, STORM_DUPLICATES)

        results["journal_identical"] = all(
            supervisor.verify_shard(shard.shard_id)
            for shard in supervisor.shards)
        return results
    finally:
        await supervisor.aclose()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash-recovery serving benchmark (PR 10).")
    parser.add_argument("--quick", action="store_true",
                        help="small cluster / short windows for CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="enforce the recovery gates")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default BENCH_PR10.json)")
    args = parser.parse_args(argv)

    def log(text):
        print(text, file=sys.stderr)

    results = asyncio.run(_run(args.quick, log))

    profile = _profile(args.quick)
    join_fraction = results["ramp_joined"] / profile.clients
    recover = results["recover_seconds"] or float("inf")
    storm = results["storm"]

    report = bench_io.new_report("PR10", args.quick)
    bench_io.add_metric(report, "recovery_time_to_recover", "s",
                        round(recover, 4))
    bench_io.add_metric(report, "recovery_availability", "fraction",
                        round(results["availability"], 5))
    bench_io.add_metric(report, "recovery_join_fraction", "fraction",
                        round(join_fraction, 4))
    bench_io.add_metric(report, "recovery_client_retries", "retries",
                        results["retries"])
    bench_io.add_metric(report, "recovery_budget_exhausted", "requests",
                        results["budget_exhausted"])
    bench_io.add_metric(report, "recovery_storm_duplicates", "requests",
                        storm["duplicates"])
    bench_io.add_metric(report, "recovery_storm_replayed", "requests",
                        storm["replayed"])
    bench_io.add_metric(report, "recovery_storm_double_applies", "ops",
                        storm["double_applies"])
    bench_io.add_metric(report, "recovery_journal_identical", "bool",
                        1.0 if results["journal_identical"] else 0.0)
    bench_io.add_metric(report, "recovery_victim_restarts", "restarts",
                        results["victim_restarts"])

    bench_io.write_report(args.out, report)
    print(f"wrote {args.out}")
    for name, metric in report["metrics"].items():
        print(f"  {name}: {metric['value']} {metric['unit']}")

    if args.check:
        failures = []
        if recover > MAX_RECOVER_SECONDS:
            failures.append(f"time-to-recover {recover:.2f}s over "
                            f"{MAX_RECOVER_SECONDS:.0f}s")
        if results["availability"] < MIN_AVAILABILITY:
            failures.append(
                f"availability {results['availability']:.2%} under "
                f"{MIN_AVAILABILITY:.0%}")
        if join_fraction < MIN_JOIN_FRACTION:
            failures.append(f"only {join_fraction:.1%} of clients joined")
        if results["victim_restarts"] < 1:
            failures.append("victim shard records no restart")
        if storm["double_applies"] != 0:
            failures.append(f"retry storm double-applied "
                            f"{storm['double_applies']} ops")
        if storm["replayed"] < 1:
            failures.append("retry storm saw no idempotent replays")
        if not results["journal_identical"]:
            failures.append("journal replay diverged from a live shard")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed: recovery floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

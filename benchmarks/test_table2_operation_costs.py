"""Table 2 bench: per-operation cost of star vs tree joins/leaves.

Benchmarks the actual protocol operation and asserts the measured
encryption counts against the paper's closed forms.
"""

import math

from conftest import populated_server

from repro.core import costs


def test_star_leave_costs_n_minus_1(benchmark):
    server = populated_server(n=128, strategy="group")
    star = populated_server(n=128, strategy="group", seed=b"star-bench")
    # Rebuild as a star graph.
    from repro.core.server import GroupKeyServer, ServerConfig
    from repro.crypto.suite import PAPER_SUITE_NO_SIG
    star = GroupKeyServer(ServerConfig(graph="star",
                                       suite=PAPER_SUITE_NO_SIG,
                                       signing="none", seed=b"star-bench"))
    star.bootstrap([(f"m{i}", star.new_individual_key())
                    for i in range(128)])
    counter = [0]

    def round_trip():
        counter[0] += 1
        user = f"x{counter[0]}"
        star.join(user, star.new_individual_key())
        return star.leave(user)

    outcome = benchmark(round_trip)
    # Table 2c star leave: n - 1 encryptions.
    assert outcome.record.encryptions == 128
    benchmark.extra_info["star_leave_encryptions"] = outcome.record.encryptions


def test_tree_join_costs_2h_minus_2(benchmark):
    server = populated_server(n=256, degree=4, strategy="key")
    height = costs.tree_height(256, 4)  # 5
    counter = [0]

    def join_then_cleanup():
        counter[0] += 1
        user = f"x{counter[0]}"
        outcome = server.join(user, server.new_individual_key())
        server.leave(user)
        return outcome

    outcome = benchmark(join_then_cleanup)
    # Table 2c tree join: 2(h-1), within one level of heuristic wobble.
    measured = outcome.record.encryptions
    assert 2 * (height - 2) <= measured <= 2 * height
    benchmark.extra_info["tree_join_encryptions"] = measured
    benchmark.extra_info["analytic"] = 2 * (height - 1)


def test_tree_leave_costs_d_h_minus_1(benchmark):
    server = populated_server(n=256, degree=4, strategy="key")
    height = costs.tree_height(256, 4)
    counter = [0]

    def leave_after_join():
        counter[0] += 1
        user = f"x{counter[0]}"
        server.join(user, server.new_individual_key())
        return server.leave(user)

    outcome = benchmark(leave_after_join)
    measured = outcome.record.encryptions
    # Table 2c tree leave: ~d(h-1); exact count is
    # (d-1)(h-1) + (h-2) on a full tree, so allow the band between.
    assert (4 - 1) * (height - 2) <= measured <= 4 * height
    benchmark.extra_info["tree_leave_encryptions"] = measured
    benchmark.extra_info["analytic"] = 4 * (height - 1)

"""Benchmark report schema, writer and validator.

Every benchmark emitter (``bench_fastpath.py``, future PR harnesses)
funnels its numbers through this module so regression tracking has one
stable on-disk shape.  A report is a JSON object:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "label": "PR2",
      "python": "3.11.7",
      "platform": "Linux-...",
      "quick": false,
      "metrics": {
        "aes_cbc_rekey_stream": {
          "unit": "MB/s", "value": 12.3,
          "baseline": 2.1, "speedup": 5.86
        }
      }
    }

``value`` is the fast-path measurement; ``baseline``, when present, is
the same workload through the frozen pre-optimization reference
implementations (:mod:`repro.crypto.reference`) measured by the same
harness in the same process, and ``speedup`` is their ratio.  Metrics
without a ``baseline`` are absolute throughput observations.

Run ``python benchmarks/bench_io.py <report.json>`` to validate a file
(CI's bench-smoke job does this for the quick-run output).
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Optional

SCHEMA_VERSION = "repro-bench/1"

_TOP_LEVEL_REQUIRED = ("schema", "label", "python", "platform", "quick",
                       "metrics")


def new_report(label: str, quick: bool) -> dict:
    """An empty report shell stamped with the environment."""
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": bool(quick),
        "metrics": {},
    }


def add_metric(report: dict, name: str, unit: str, value: float,
               baseline: Optional[float] = None) -> dict:
    """Record one metric; computes ``speedup`` when a baseline is given."""
    metric: dict = {"unit": unit, "value": round(float(value), 4)}
    if baseline is not None:
        metric["baseline"] = round(float(baseline), 4)
        metric["speedup"] = (round(value / baseline, 2) if baseline > 0
                             else None)
    report["metrics"][name] = metric
    return metric


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` conforms to the schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    for field_name in _TOP_LEVEL_REQUIRED:
        if field_name not in report:
            raise ValueError(f"report missing field {field_name!r}")
    if report["schema"] != SCHEMA_VERSION:
        raise ValueError(f"unknown schema {report['schema']!r}")
    if not isinstance(report["quick"], bool):
        raise ValueError("'quick' must be a boolean")
    metrics = report["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("'metrics' must be a non-empty object")
    for name, metric in metrics.items():
        if not isinstance(metric, dict):
            raise ValueError(f"metric {name!r} must be an object")
        for required in ("unit", "value"):
            if required not in metric:
                raise ValueError(f"metric {name!r} missing {required!r}")
        if not isinstance(metric["value"], (int, float)):
            raise ValueError(f"metric {name!r} value must be numeric")
        if "baseline" in metric:
            if not isinstance(metric["baseline"], (int, float)):
                raise ValueError(f"metric {name!r} baseline must be numeric")
            if "speedup" not in metric:
                raise ValueError(f"metric {name!r} has baseline but no speedup")


def write_report(path: str, report: dict) -> None:
    """Validate then write ``report`` as stable, diff-friendly JSON."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> dict:
    """Read and validate a report file."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    validate_report(report)
    return report


def main(argv) -> int:
    if len(argv) != 2:
        print("usage: python benchmarks/bench_io.py <report.json>",
              file=sys.stderr)
        return 2
    try:
        report = load_report(argv[1])
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {argv[1]} ({report['label']}, "
          f"{len(report['metrics'])} metrics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

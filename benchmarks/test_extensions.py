"""Benchmarks for the extension subsystems.

Not tied to a specific paper table; they quantify the extensions'
claims: FEC coding throughput, channel seal/open cost, snapshot size
and restore time, covering-driven graph rekeys, and refresh cost.
"""

from conftest import populated_server

from repro.core.channel import SecureGroupChannel
from repro.core.persistence import restore, snapshot
from repro.crypto.drbg import HmacDrbg
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.keygraph.materialized import MaterializedKeyGraph
from repro.transport.fec import ReedSolomonCode, decode_packets, encode_packets


def test_fec_encode(benchmark):
    payload = bytes(range(256)) * 4  # ~1 KB, a large rekey message
    packets = benchmark(encode_packets, payload, 4, 3)
    assert len(packets) == 7


def test_fec_decode_with_erasures(benchmark):
    payload = bytes(range(256)) * 4
    packets = encode_packets(payload, 4, 3)
    survivors = [packets[1], packets[3], packets[4], packets[6]]
    result = benchmark(decode_packets, survivors, 4)
    assert result == payload


def test_rs_parity_generation(benchmark):
    code = ReedSolomonCode(8, 4)
    blocks = [bytes([i]) * 128 for i in range(8)]
    parity = benchmark(code.encode, blocks)
    assert len(parity) == 4


def test_channel_seal(benchmark):
    server = populated_server(n=64)
    channel = SecureGroupChannel.for_server(server)
    frame = benchmark(channel.seal, b"a chat line of ordinary length")
    assert frame


def test_channel_open(benchmark):
    server = populated_server(n=64)
    sender = SecureGroupChannel.for_server(server)
    receiver = SecureGroupChannel(
        server.suite, "probe",
        key_source=lambda: (*server.group_key_ref(), server.group_key()))
    frames = [sender.seal(b"a chat line of ordinary length")
              for _ in range(20000)]
    frames_iter = iter(frames)
    payload, _sender, _seq = benchmark(
        lambda: receiver.open(next(frames_iter)))
    assert payload == b"a chat line of ordinary length"


def test_snapshot(benchmark):
    server = populated_server(n=1024)
    blob = benchmark(snapshot, server)
    assert len(blob) > 10_000
    benchmark.extra_info["snapshot_bytes"] = len(blob)


def test_restore(benchmark):
    server = populated_server(n=1024)
    blob = snapshot(server)
    standby = benchmark(restore, blob)
    assert standby.n_users == 1024


def test_graph_covering_leave(benchmark):
    """Covering-driven rekey on the Figure 1 graph (rebuilt per round)."""
    source = HmacDrbg(b"bench-graph")
    keygen = lambda: source.generate(8)

    def build_and_leave():
        group, _individual = MaterializedKeyGraph.figure1(
            PAPER_SUITE_NO_SIG, keygen)
        return group.leave("u1")

    outcome = benchmark(build_and_leave)
    assert outcome.encryptions == 2


def test_refresh(benchmark):
    server = populated_server(n=1024)
    outcome = benchmark(server.refresh)
    assert outcome.record.encryptions == 1

"""Table 3 bench: average per-operation cost, star vs tree."""

from conftest import BENCH_SCALE

from repro.experiments import table3


def test_table3(benchmark):
    table = benchmark.pedantic(table3.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [[str(c) for c in row]
                                    for row in table.rows]
    server_row, user_row = table.rows
    star_measured, tree_measured = server_row[2], server_row[4]
    # Table 3: star averages ~n/2, the tree a few multiples of log n.
    assert star_measured > 5 * tree_measured
    # User cost ~1 (star) vs ~d/(d-1) (tree) — both tiny.
    assert user_row[2] < 1.4
    assert 1.0 < user_row[4] < 2.0
    # §3.5: the optimal degree is four.
    assert "d = 4" in table.notes
    print()
    print(table.format())

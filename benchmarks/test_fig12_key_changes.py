"""Figure 12 bench: average key changes by a client per request."""

from conftest import BENCH_SCALE

from repro.experiments import fig12


def test_fig12(benchmark):
    table = benchmark.pedantic(fig12.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    degree_points = fig12.degree_series(table)
    for degree, measured, bound in degree_points:
        # "very close to the analytical result d/(d-1)".
        assert abs(measured - bound) < 0.45, degree
    # Monotonically decreasing toward 1 as d grows (top panel's shape).
    values = [measured for _d, measured, _b in degree_points]
    assert values == sorted(values, reverse=True)
    # Bottom panel: flat in group size.
    size_points = fig12.size_series(table)
    sizes = [measured for _n, measured, _b in size_points]
    assert max(sizes) - min(sizes) < 0.6
    benchmark.extra_info["vs_degree"] = [
        (d, round(m, 3)) for d, m, _ in degree_points]
    benchmark.extra_info["vs_size"] = [
        (n, round(m, 3)) for n, m, _ in size_points]
    print()
    print(table.format())

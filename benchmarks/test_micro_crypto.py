"""Micro-benchmarks of the crypto substrate.

These calibrate the cost model behind every table: the paper's premise
is encryption << digest << signature.  The measured ratios are attached
as extra_info so EXPERIMENTS.md can cite them.
"""

from repro.core.messages import KeyRecord, encrypt_records
from repro.core.signing import MerkleSigner, MerkleTree
from repro.crypto import rsa
from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.crypto.suite import PAPER_SUITE


def test_des_block(benchmark):
    cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    block = bytes(8)
    result = benchmark(cipher.encrypt_block, block)
    assert cipher.decrypt_block(result) == block


def test_aes_block(benchmark):
    cipher = AES(bytes(range(16)))
    block = bytes(16)
    result = benchmark(cipher.encrypt_block, block)
    assert cipher.decrypt_block(result) == block


def test_des_key_schedule(benchmark):
    benchmark(DES, bytes.fromhex("133457799BBCDFF1"))


def test_md5_rekey_message(benchmark):
    data = bytes(range(256)) * 4  # ~1 KB, a large rekey message
    digest = benchmark(lambda: md5(data).digest())
    assert len(digest) == 16


def test_sha1_rekey_message(benchmark):
    data = bytes(range(256)) * 4
    digest = benchmark(lambda: sha1(data).digest())
    assert len(digest) == 20


def test_rsa512_sign(benchmark):
    keypair = rsa.generate_keypair(512, seed=b"bench-rsa")
    digest = bytes(16)
    signature = benchmark(rsa.sign_digest, keypair, digest, "md5")
    rsa.verify_digest(keypair.public_key, digest, signature, "md5")


def test_rsa512_verify(benchmark):
    keypair = rsa.generate_keypair(512, seed=b"bench-rsa")
    signature = rsa.sign_digest(keypair, bytes(16), "md5")
    benchmark(rsa.verify_digest, keypair.public_key, bytes(16), signature,
              "md5")


def test_rekey_item_encryption(benchmark):
    """One {K'}_{K} item: the unit the Table 2 cost model counts."""
    record = [KeyRecord(1, 1, bytes(8))]
    item = benchmark(encrypt_records, PAPER_SUITE, bytes(8), bytes(8),
                     record, 2, 0)
    assert len(item.ciphertext) == 16


def test_merkle_seal_20_messages(benchmark):
    """The §4 technique on a user-oriented-leave-sized batch."""
    keypair = PAPER_SUITE.generate_signing_keypair(seed=b"bench-merkle")
    from repro.core.messages import MSG_REKEY, EncryptedItem, Message

    def seal():
        signer = MerkleSigner(PAPER_SUITE, keypair)
        messages = [Message(msg_type=MSG_REKEY, seq=i,
                            items=[EncryptedItem(i, 0, bytes(8),
                                                 bytes(16), 16)])
                    for i in range(20)]
        signer.seal(messages)
        return messages

    messages = benchmark(seal)
    assert messages[0].auth.signature


def test_merkle_tree_path_verification(benchmark):
    digest_fn = lambda data: md5(data).digest()
    leaves = [digest_fn(bytes([i])) for i in range(20)]
    tree = MerkleTree(leaves, digest_fn)
    path = tree.path(13)
    assert benchmark(MerkleTree.verify_path, leaves[13], 13, path,
                     tree.root, digest_fn)

"""Figure 11 bench: server processing time vs key tree degree."""

import pytest
from conftest import BENCH_SCALE, churn_round, populated_server

from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.experiments import fig11

DEGREES = (2, 4, 16)


@pytest.mark.parametrize("degree", DEGREES)
def test_round_by_degree(benchmark, degree):
    server = populated_server(n=256, degree=degree, strategy="group")
    benchmark(churn_round, server, counter=[0])
    benchmark.extra_info["degree"] = degree
    leaves = [r for r in server.history if r.op == "leave"]
    benchmark.extra_info["leave_encryptions"] = leaves[-1].encryptions


def test_fig11_regeneration(benchmark):
    table = benchmark.pedantic(fig11.run, args=(BENCH_SCALE,),
                               rounds=1, iterations=1)
    # §3.5 / Figure 11: encryption work is minimised near degree 4.
    for strategy, points in fig11.encryption_series(table).items():
        by_degree = dict(points)
        assert by_degree[4] < by_degree[2], strategy
        assert by_degree[4] < by_degree[16], strategy
    # Server-side ranking at every degree: group <= key <= user.
    enc_rows = [row for row in table.rows if row[0] == "encryption-only"]
    for degree in {row[2] for row in enc_rows}:
        cost = {row[1]: row[4] + row[5] for row in enc_rows
                if row[2] == degree}
        assert cost["group"] <= cost["key"] <= cost["user"]
    benchmark.extra_info["optimal_degree_region"] = 4
    print()
    print(table.format())

"""Telemetry overhead benchmark: disabled instrumentation must be ~free.

The observability subsystem promises that components can declare
metric families and open spans unconditionally because the null
objects (``NULL_INSTRUMENTATION`` — null registry + null tracer) make
every call a no-op.  This harness verifies the promise with an
in-process A/B on the staged rekey pipeline:

* **control** — a frozen copy of the pipeline run loop exactly as it
  shipped before span tracing and registry histograms were added
  (stage clock and hook points only, no tracer spans, no
  ``record_run``), following the same frozen-baseline idiom as
  ``repro.crypto.reference``;
* **treatment** — the real :meth:`~repro.core.pipeline.RekeyPipeline.
  run` with ``NULL_INSTRUMENTATION`` (the default), which enters five
  null spans and makes one no-op ``record_run`` call per operation.

Both drive the same planner — a group-oriented-shaped rekey (several
multicast messages of real CBC encryptions, sized like a join on a
four-level tree) — over the same pipeline instance, interleaved in
alternating batches so clock drift and cache warmth cancel out.

A second pair measures telemetry *enabled* (real registry + tracer) so
the cost of turning it on is recorded too (informational; the paper's
measurement path keeps it on — its cost is part of measured server
processing time only insofar as stage clocks always ran).

A third A/B covers the async serving layer the same way: **control**
is the ``ImmediateServingCore`` submit/rekey path frozen at its
pre-tracing shape (corr trailer only, untimed op lock, no flight
recorder, no spans), **treatment** is the real ``submit`` with the
default instrumentation (null tracer, flight recorder ON — the
shipping default).  Both drive leave+join churn over the *same* live
core, interleaved in alternating batches, so the measured delta is
exactly what distributed tracing plumbing costs when disabled.

Usage::

    python benchmarks/bench_observability.py            # full run
    python benchmarks/bench_observability.py --quick    # CI smoke
    python benchmarks/bench_observability.py --check    # enforce <2%
    python benchmarks/bench_observability.py --out X.json

Writes a ``repro-bench/1`` JSON report (default ``BENCH_PR8.json`` at
the repo root) via :mod:`bench_io`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.core.messages import (Destination, KeyRecord,  # noqa: E402
                                 OutboundMessage)
from repro.core.pipeline import (KeyMaterialSource,  # noqa: E402
                                 PipelineRun, RekeyPipeline)
from repro.core.strategies.base import PlannedMessage  # noqa: E402
from repro.crypto.suite import PAPER_SUITE_NO_SIG  # noqa: E402
from repro.observability import (NULL_INSTRUMENTATION,  # noqa: E402
                                 Instrumentation, StageClock, Tracer)

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR8.json")

#: Acceptance ceiling (``--check``): disabled telemetry vs control.
DISABLED_OVERHEAD_CEILING_PCT = 2.0

# Workload shape: a group-oriented join on a degree-4, four-level tree
# sends ~4 multicast messages carrying ~2 key records each.
_N_MESSAGES = 4
_RECORDS_PER_MESSAGE = 2


def _make_planner(material):
    """A plan stage shaped like a tree join: real keys, real encrypts."""
    receivers = tuple(f"u{i}" for i in range(8))

    def planner(ctx):
        plans = []
        for index in range(_N_MESSAGES):
            records = [
                KeyRecord(100 + index * 8 + offset, 1, material.new_key())
                for offset in range(_RECORDS_PER_MESSAGE)]
            item = ctx.encrypt(material.new_key(), records,
                               50 + index, 1)
            plans.append(PlannedMessage(Destination.to_all(), [item],
                                        lambda: receivers))
        return plans

    return planner


def control_run(pipeline, op, planner, *, strategy_code=0, root_ref=None,
                user_id=""):
    """The pipeline run loop frozen at its pre-telemetry shape.

    Byte-for-byte the same staged work as ``RekeyPipeline.run`` —
    stage clock, hook points, receiver resolution after the clock —
    minus the telemetry call sites added with the observability
    subsystem (tracer spans, ``record_run``, the error-path guard).
    """
    clock = StageClock()
    ctx = pipeline.new_context()
    run = PipelineRun(op=op, user_id=user_id,
                      strategy_code=strategy_code, context=ctx)

    with clock.stage("plan"):
        run.plans = list(planner(ctx))
    pipeline._fire("plan", run)

    with clock.stage("encrypt"):
        ctx.materialize()
    pipeline._fire("encrypt", run)

    with clock.stage("sign"):
        run.wire_messages = pipeline._assemble(run, root_ref)
        run.signatures = pipeline._seal(run.wire_messages)
    pipeline._fire("sign", run)

    with clock.stage("dispatch"):
        run.messages = [
            OutboundMessage(plan.destination, message, (),
                            message.encode())
            for plan, message in zip(run.plans, run.wire_messages)]
    run.seconds = clock.stop()

    for outbound, plan in zip(run.messages, run.plans):
        outbound.receivers = plan.resolve_receivers()
    pipeline._fire("dispatch", run)

    run.stage_seconds = dict(clock.stages)
    return run


def _drive(pipeline, driver, planner, n_runs):
    """Time ``n_runs`` operations through ``driver``; returns seconds."""
    start = time.perf_counter()
    for _ in range(n_runs):
        driver(pipeline, planner)
    return time.perf_counter() - start


def _ab_compare(make_pipeline, n_runs, n_batches):
    """Interleaved A/B: returns best (control_s, treatment_s) per batch.

    Batches of the two arms alternate, and each arm is scored by its
    *fastest* batch — the min-of-batches estimator discards scheduler
    preemption and thermal noise, which only ever slow a batch down.
    """
    pipeline = make_pipeline()
    material = pipeline.material
    planner = _make_planner(material)

    def control(p, plan):
        control_run(p, "join", plan, root_ref=lambda: (1, 1))

    def treatment(p, plan):
        p.run("join", plan, root_ref=lambda: (1, 1))

    # Warm up both paths (key-schedule cache, bytecode, allocator).
    _drive(pipeline, control, planner, max(2, n_runs // 10))
    _drive(pipeline, treatment, planner, max(2, n_runs // 10))

    per_batch = max(1, n_runs // n_batches)
    control_best = float("inf")
    treatment_best = float("inf")
    for _ in range(n_batches):
        control_best = min(control_best,
                           _drive(pipeline, control, planner, per_batch))
        treatment_best = min(treatment_best,
                             _drive(pipeline, treatment, planner, per_batch))
    return control_best, treatment_best, per_batch


# -- the async serving layer A/B ---------------------------------------------


def _serve_imports():
    """Deferred: the serve stack is only needed for its own A/B."""
    import asyncio

    from repro.core.messages import (DEST_USER, MSG_JOIN_REQUEST,
                                     MSG_LEAVE_REQUEST, Message)
    from repro.core.server import GroupKeyServer, ServerConfig
    from repro.serve import ImmediateServingCore, ServeConfig
    from repro.serve.core import _DIRECT_TYPES, _corr
    from repro.serve.wire import split_corr_trailer
    return (asyncio, DEST_USER, MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST,
            Message, GroupKeyServer, ServerConfig, ImmediateServingCore,
            ServeConfig, _DIRECT_TYPES, _corr, split_corr_trailer)


def serve_ab_compare(n_ops, n_batches):
    """A/B the serve request path; returns (control_s, real_s, per_batch).

    ``control`` replays the submit/rekey loop frozen at its PR7 shape:
    corr-trailer split, untimed op-lock acquire, plan on the loop,
    staged encrypt/seal/finish on the pool, ``_corr``-only routing — no
    ``split_trailers``, no spans, no flight events, no wait histograms.
    ``treatment`` is the real :meth:`ImmediateServingCore.submit` with
    the shipping defaults (null tracer, flight recorder enabled).  Both
    arms drive leave+join pairs of the *same* members over one live
    core, so tree state cancels out; min-of-batches scores each arm.
    """
    (asyncio, DEST_USER, MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST, Message,
     GroupKeyServer, ServerConfig, ImmediateServingCore, ServeConfig,
     _DIRECT_TYPES, _corr, split_corr_trailer) = _serve_imports()

    members = [f"bench-{i:03d}" for i in range(64)]

    async def control_submit(core, data, reply):
        payload, token = split_corr_trailer(data)
        message = Message.decode(payload)
        core._m_requests.inc(
            type="join" if message.msg_type == MSG_JOIN_REQUEST else "leave")
        user_id = message.body.decode("utf-8")
        op = "join" if message.msg_type == MSG_JOIN_REQUEST else "leave"
        core._admit_rate(user_id)
        core._inflight += 1
        core._m_inflight.set(core._inflight)
        try:
            server = core.server
            if not core._op_lock.acquire(blocking=False):
                await core._acquire_op_lock()
            try:
                staged = (server.begin_join(user_id) if op == "join"
                          else server.begin_leave(user_id))
            finally:
                core._op_lock.release()
            outcome = await core._in_executor(
                lambda: staged.encrypt().seal().finish())
            # PR7 routing: direct acks back on the reply path, the
            # rest to the fan-out (same split the real _route makes).
            for out in outcome.all_messages:
                wire = out.encoded or out.message.encode()
                if (out.destination.kind == DEST_USER
                        and out.destination.user_id == user_id
                        and out.message.msg_type in _DIRECT_TYPES):
                    reply(_corr(wire, token))
                else:
                    core.fanout.send(out, payload=wire)
            await core._track(op, user_id)
        finally:
            core._inflight -= 1
            core._m_inflight.set(core._inflight)

    def real_submit(core, data, reply):
        return core.submit(data, reply, path_id=None)

    def request(msg_type, user_id):
        return Message(msg_type=msg_type, body=user_id.encode()).encode()

    sink = []

    async def churn(core, submit, n_pairs, offset, keys):
        # leave + rejoin the same member: tree size is invariant, so
        # both arms do identical cryptographic work every pair.  A
        # leave forgets the member's key, so rejoin re-registers it —
        # identically cheap in both arms.
        for index in range(n_pairs):
            user = members[(offset + index) % len(members)]
            await submit(core, request(MSG_LEAVE_REQUEST, user),
                         sink.append)
            core.server.register_individual_key(user, keys[user])
            await submit(core, request(MSG_JOIN_REQUEST, user),
                         sink.append)
        sink.clear()

    async def run():
        server = GroupKeyServer(ServerConfig(
            signing="none", seed=b"bench-observability-serve",
            backend="flat"))
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=False))
        try:
            roster = [(uid, server.new_individual_key()) for uid in members]
            keys = dict(roster)
            server.bootstrap(roster)

            per_batch = max(1, n_ops // n_batches)
            # Warm both arms (executor threads, key schedules, caches).
            await churn(core, control_submit, max(2, per_batch // 4), 0,
                        keys)
            await churn(core, real_submit, max(2, per_batch // 4), 7, keys)

            control_best = float("inf")
            real_best = float("inf")
            for batch in range(n_batches):
                start = time.perf_counter()
                await churn(core, control_submit, per_batch, batch, keys)
                control_best = min(control_best,
                                   time.perf_counter() - start)
                start = time.perf_counter()
                await churn(core, real_submit, per_batch, batch, keys)
                real_best = min(real_best, time.perf_counter() - start)
            return control_best, real_best, per_batch * 2
        finally:
            await core.aclose()

    return asyncio.run(run())


def _make_disabled_pipeline():
    material = KeyMaterialSource(PAPER_SUITE_NO_SIG, b"bench-observability")
    return RekeyPipeline(PAPER_SUITE_NO_SIG, material, signer=None,
                         instrumentation=NULL_INSTRUMENTATION)


def _make_enabled_pipeline():
    material = KeyMaterialSource(PAPER_SUITE_NO_SIG, b"bench-observability")
    instrumentation = Instrumentation("bench", tracer=Tracer(capacity=512))
    return RekeyPipeline(PAPER_SUITE_NO_SIG, material, signer=None,
                         instrumentation=instrumentation)


def run_benchmarks(quick: bool) -> dict:
    report = bench_io.new_report("PR8-observability", quick)
    n_runs = 400 if quick else 4000
    n_batches = 8 if quick else 20

    control_s, disabled_s, runs = _ab_compare(_make_disabled_pipeline,
                                              n_runs, n_batches)
    disabled_pct = 100.0 * (disabled_s - control_s) / control_s
    bench_io.add_metric(report, "pipeline_control_runs_per_s", "runs/s",
                        runs / control_s)
    bench_io.add_metric(report, "pipeline_disabled_runs_per_s", "runs/s",
                        runs / disabled_s)
    bench_io.add_metric(report, "disabled_telemetry_overhead_pct", "%",
                        disabled_pct)

    control_s, enabled_s, runs = _ab_compare(_make_enabled_pipeline,
                                             n_runs, n_batches)
    enabled_pct = 100.0 * (enabled_s - control_s) / control_s
    bench_io.add_metric(report, "pipeline_enabled_runs_per_s", "runs/s",
                        runs / enabled_s)
    bench_io.add_metric(report, "enabled_telemetry_overhead_pct", "%",
                        enabled_pct)

    n_ops = 200 if quick else 1600
    serve_batches = 6 if quick else 12
    control_s, real_s, ops = serve_ab_compare(n_ops, serve_batches)
    serve_pct = 100.0 * (real_s - control_s) / control_s
    bench_io.add_metric(report, "serve_control_ops_per_s", "ops/s",
                        ops / control_s)
    bench_io.add_metric(report, "serve_default_ops_per_s", "ops/s",
                        ops / real_s)
    bench_io.add_metric(report, "serve_disabled_overhead_pct", "%",
                        serve_pct)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI smoke (seconds, noisier)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless disabled overhead is under "
                             f"{DISABLED_OVERHEAD_CEILING_PCT}%%")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="report path (default BENCH_PR3.json)")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.quick)
    bench_io.write_report(args.out, report)
    for name, metric in sorted(report["metrics"].items()):
        print(f"{name:40s} {metric['value']:>12.4f} {metric['unit']}")
    print(f"\nwrote {args.out}")

    if args.check:
        failed = False
        for name in ("disabled_telemetry_overhead_pct",
                     "serve_disabled_overhead_pct"):
            overhead = report["metrics"][name]["value"]
            if overhead >= DISABLED_OVERHEAD_CEILING_PCT:
                print(f"CHECK FAILED: {name} {overhead:.2f}% >= "
                      f"{DISABLED_OVERHEAD_CEILING_PCT}%", file=sys.stderr)
                failed = True
            else:
                print(f"CHECK OK: {name} {overhead:.2f}% < "
                      f"{DISABLED_OVERHEAD_CEILING_PCT}%")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

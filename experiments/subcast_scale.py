"""Subcast at scale: sealed subgroup delivery in a million-member group.

The headline claim of the subcast subsystem (PR 9): addressing an
arbitrary 10k-member subset of an n=1,000,000 flat-backend group costs
one structural-cover computation over the array tree — no usersets are
ever materialized — plus one sealed message, and **exactly** the
targets can open it.  This experiment proves the claim live:

* build the million-member group, subcast to a 10k random subset,
  decrypt-check *every* target and a sampled slice of outsiders;
* evict a member and show its stale keys fail closed;
* ``--cluster`` re-runs the delivery proof end to end through the
  async serving stack: a 3-shard cluster behind real UDP endpoints,
  targets attached via heartbeat, one ``MSG_SUBCAST_REQUEST`` on the
  wire, per-target fan-out receipt + decrypt, and a scrape of the
  merged metrics snapshot (validated against the snapshot schema).

Usage::

    python experiments/subcast_scale.py              # full (n=1M)
    python experiments/subcast_scale.py --quick      # n=100k (CI smoke)
    python experiments/subcast_scale.py --cluster    # + async cluster leg
    python experiments/subcast_scale.py --check      # enforce the floors
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import socket as socket_module
import sys
import time
from dataclasses import replace

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), os.path.join(_ROOT, "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.cluster.coordinator import (ClusterConfig,  # noqa: E402
                                       ClusterCoordinator)
from repro.core.client import (GroupClient,  # noqa: E402
                               SubcastNotAddressed)
from repro.core.messages import (MSG_HEARTBEAT,  # noqa: E402
                                 MSG_STATS_REQUEST, MSG_STATS_RESPONSE,
                                 MSG_SUBCAST, MSG_SUBCAST_REQUEST, Message)
from repro.core.server import (GroupKeyServer,  # noqa: E402
                               ServerConfig, ServerError)
from repro.keygraph.covering import tree_subset_cover  # noqa: E402
from repro.observability.export import validate_snapshot  # noqa: E402
from repro.serve import (AsyncClusterService,  # noqa: E402
                         ClusterServingCore, ServeConfig)
from repro.serve.wire import (attach_corr_trailer,  # noqa: E402
                              split_corr_trailer)
from repro.subcast import encode_subcast_request  # noqa: E402

SUBSET_SIZE = 10_000
OUTSIDER_SAMPLE = 1_000
COVER_TIME_CEILING_S = 1.0
_BUFFER = 65535


def _prime(server_like, tree, suite, user, verify=True):
    leaf = tree.leaf_of(user)
    client = GroupClient(user, suite, verify=verify)
    client.set_individual_key(leaf.key)
    client.set_leaf(leaf.node_id)
    for node in leaf.path_to_root():
        client.keys[node.node_id] = (node.version, node.key)
    return client


def run_local(n_members: int, check: bool) -> list:
    failures = []
    print(f"subcast scale experiment: n={n_members}, |S|={SUBSET_SIZE}")
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", signing="none",
        seed=b"subcast-scale", backend="flat"))
    members = [f"u{index:07d}" for index in range(n_members)]
    started = time.perf_counter()
    server.bootstrap([(user, server.new_individual_key())
                      for user in members])
    print(f"  bootstrap           : {time.perf_counter() - started:7.1f} s")

    rng = random.Random(0x5CA1E)
    targets = rng.sample(members, SUBSET_SIZE)
    payload = b"million-member subset payload"
    started = time.perf_counter()
    cover = tree_subset_cover(server.tree, targets)
    cover_s = time.perf_counter() - started
    started = time.perf_counter()
    out = server.subcast(targets, payload)
    subcast_s = time.perf_counter() - started
    cover_keys = len(out.message.items) - 1
    print(f"  cover compute       : {cover_s * 1e3:7.1f} ms "
          f"({len(cover)} keys)")
    print(f"  cover+seal          : {subcast_s * 1e3:7.1f} ms "
          f"({cover_keys} cover keys, {len(out.encoded)} wire bytes)")
    if check and cover_s > COVER_TIME_CEILING_S:
        failures.append(f"cover compute took {cover_s:.2f} s "
                        f"> {COVER_TIME_CEILING_S} s")

    # Establish message integrity once: the first target opens the
    # full wire blob with digest verification on.
    first = _prime(server, server.tree, server.suite, targets[0])
    if first.open_subcast(out.encoded) != payload:
        failures.append("full-message verified decrypt failed")

    # A member can only ever open cover items whose node ids it holds
    # (the leaf-to-root path), so pruning the 10k-item message down to
    # each member's path items is decrypt-equivalent — and turns the
    # verification sweep from O(|S|·|cover|) into O(|S|·log n).
    # Integrity was checked on the full blob above; pruning invalidates
    # the whole-message digest, so the sweep clients skip it.
    message = Message.decode(out.encoded)
    by_node = {item.enc_node_id: item for item in message.items[1:]}

    def open_pruned(blob_message, index, user):
        client = _prime(server, server.tree, server.suite, user,
                        verify=False)
        held = [client.leaf_node_id, *client.keys]
        matched = [index[nid] for nid in held if nid in index]
        mini = replace(blob_message,
                       items=[blob_message.items[0], *matched])
        return client.open_subcast(mini)

    started = time.perf_counter()
    for user in targets:
        if open_pruned(message, by_node, user) != payload:
            failures.append(f"target {user} failed to decrypt")
            break
    print(f"  {len(targets)} target decrypts: "
          f"{time.perf_counter() - started:7.1f} s — all exact")

    outsiders = rng.sample(sorted(set(members) - set(targets)),
                           OUTSIDER_SAMPLE)
    denied = 0
    for user in outsiders:
        try:
            open_pruned(message, by_node, user)
            failures.append(f"outsider {user} decrypted the subcast")
            break
        except SubcastNotAddressed:
            denied += 1
    print(f"  {denied}/{len(outsiders)} sampled outsiders denied")

    # Clustered subset: a contiguous member window collapses to whole
    # subtrees, so the cover shrinks by orders of magnitude vs random.
    start = rng.randrange(n_members - SUBSET_SIZE)
    window = members[start:start + SUBSET_SIZE]
    clustered_payload = b"clustered window payload"
    out_window = server.subcast(window, clustered_payload)
    window_keys = len(out_window.message.items) - 1
    print(f"  clustered |S|={SUBSET_SIZE}: {window_keys} cover keys "
          f"(vs {cover_keys} random)")
    if check and window_keys > 256:
        failures.append(f"clustered cover used {window_keys} keys; a "
                        f"contiguous window should collapse to O(d log n)")
    window_message = Message.decode(out_window.encoded)
    window_index = {item.enc_node_id: item
                    for item in window_message.items[1:]}
    for user in rng.sample(window, 200):
        if open_pruned(window_message, window_index,
                       user) != clustered_payload:
            failures.append(f"clustered target {user} failed to decrypt")
            break
    for user in (members[:100] if start > 100 else members[-100:]):
        try:
            open_pruned(window_message, window_index, user)
            failures.append(f"clustered outsider {user} decrypted")
            break
        except SubcastNotAddressed:
            pass

    victim = targets[0]
    stale = _prime(server, server.tree, server.suite, victim)
    server.leave(victim)
    out2 = server.subcast(targets[1:50], b"post-eviction")
    try:
        stale.open_subcast(out2.encoded)
        failures.append("evicted member decrypted a later subcast")
    except SubcastNotAddressed:
        print("  evicted member      : fails closed (stale path keys)")
    try:
        server.subcast([victim], b"gone")
        failures.append("server subcast to an ex-member succeeded")
    except ServerError:
        pass
    return failures


class _Probe:
    """Raw-datagram UDP probe for the async cluster endpoints."""

    def __init__(self, address):
        self.address = address
        self.sock = socket_module.socket(socket_module.AF_INET,
                                         socket_module.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.setblocking(False)
        self._token = 1

    def close(self):
        self.sock.close()

    def send_raw(self, data):
        self.sock.sendto(data, self.address)

    async def rpc_body(self, msg_type, body, timeout=10.0):
        loop = asyncio.get_running_loop()
        token = self._token
        self._token += 1
        request = attach_corr_trailer(
            Message(msg_type=msg_type, body=body).encode(), token)
        self.sock.sendto(request, self.address)
        deadline = loop.time() + timeout
        while True:
            data = await asyncio.wait_for(
                loop.sock_recv(self.sock, _BUFFER),
                deadline - loop.time())
            payload, got = split_corr_trailer(data)
            if got == token:
                return Message.decode(payload)

    async def drain(self, window=0.5):
        loop = asyncio.get_running_loop()
        messages = []
        try:
            while True:
                data = await asyncio.wait_for(
                    loop.sock_recv(self.sock, _BUFFER), window)
                payload, _token = split_corr_trailer(data)
                messages.append(Message.decode(payload))
        except asyncio.TimeoutError:
            return messages


async def _run_cluster(n_members: int) -> list:
    failures = []
    print(f"cluster leg: 3 shards, n={n_members}, async front end")
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=3, degree=4, signing="none", seed=b"subcast-scale-cl",
        backend="flat"))
    members = [f"c{index:06d}" for index in range(n_members)]
    coordinator.bootstrap([(user, coordinator.new_individual_key())
                           for user in members])

    rng = random.Random(0xC105E)
    targets = rng.sample(members, 12)
    clients = {}
    for user in targets:
        shard = coordinator.shard_of(user)
        client = _prime(coordinator, shard.server.tree,
                        coordinator.suite, user)
        for record in coordinator.root_layer.path_records(shard.name):
            client.keys[record.node_id] = (record.version, record.key)
        clients[user] = client

    core = ClusterServingCore(coordinator, ServeConfig(tick_interval=0))
    root_id, root_version = coordinator.group_key_ref()
    payload = b"cluster subcast over the wire"
    async with AsyncClusterService(core) as service:
        sender = _Probe(service.udp_addresses[0])
        probes = {user: _Probe(service.udp_addresses[index % 3])
                  for index, user in enumerate(targets)}
        try:
            # Attach each target's socket via an up-to-date heartbeat.
            for user, probe in probes.items():
                probe.send_raw(Message(
                    msg_type=MSG_HEARTBEAT, root_node_id=root_id,
                    root_version=root_version,
                    body=user.encode()).encode())
            await asyncio.sleep(0.3)

            body = encode_subcast_request(members[0], targets, payload)
            reply = await sender.rpc_body(MSG_SUBCAST_REQUEST, body)
            if reply.msg_type != MSG_SUBCAST:
                failures.append(f"requester ack was type {reply.msg_type}")

            received = 0
            for user, probe in probes.items():
                fanned = [m for m in await probe.drain()
                          if m.msg_type == MSG_SUBCAST]
                if not fanned:
                    failures.append(f"{user} received no fan-out copy")
                    continue
                if clients[user].open_subcast(fanned[0].encode()) != payload:
                    failures.append(f"{user} decrypted the wrong payload")
                    continue
                received += 1
            print(f"  fan-out receipt     : {received}/{len(targets)} "
                  f"targets received and decrypted")

            reply = await sender.rpc_body(MSG_STATS_REQUEST, b"")
            if reply.msg_type != MSG_STATS_RESPONSE:
                failures.append("stats scrape failed")
            else:
                document = json.loads(reply.body.decode("utf-8"))
                validate_snapshot(document)
                counters = document["metrics"]["counters"]
                if "subcast_messages_total" not in counters:
                    failures.append("scrape missing subcast_messages_total")
                requests = counters.get("serve_requests_total",
                                        {}).get("series", [])
                if not any(series["labels"].get("type") == "subcast"
                           and series["value"] >= 1
                           for series in requests):
                    failures.append("scrape missing serve subcast series")
                print("  scrape              : snapshot valid, "
                      "subcast series present")
        finally:
            sender.close()
            for probe in probes.values():
                probe.close()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="n=100k local / n=300 cluster (CI smoke)")
    parser.add_argument("--cluster", action="store_true",
                        help="also run the async 3-shard delivery leg")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on any exactness/timing failure")
    args = parser.parse_args(argv)

    n_local = 100_000 if args.quick else 1_000_000
    n_cluster = 300 if args.quick else 3_000
    failures = run_local(n_local, args.check)
    if args.cluster:
        failures.extend(asyncio.run(_run_cluster(n_cluster)))
    for failure in failures:
        print(f"FAILED: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("all subcast scale checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Cluster scaling sweep: per-op rekey cost vs shard count x group size.

The point of sharding the key server (paper §5's scalability concern)
is that a join/leave touches only the owning shard's LKH path plus an
O(log n_shards) root layer — so per-operation cost is bounded by the
**shard** size, not the total group size.  This sweep demonstrates that
on the real cluster:

* rows with a fixed shard size but 1 -> 16 shards (64x total members)
  must show a *flat* mean shard-layer cost, and
* rows with a fixed shard count but growing shard size must show the
  cost *growing* (logarithmically) with the shard size, and
* root-layer cost must depend only on the shard count.

Usage::

    python experiments/cluster_scale.py              # full sweep
    python experiments/cluster_scale.py --quick      # CI smoke (seconds)
    python experiments/cluster_scale.py --check      # enforce the floors
    python experiments/cluster_scale.py --out X.json

Writes a ``repro-bench/1`` JSON report (default ``BENCH_PR4.json`` at
the repo root) via :mod:`bench_io`.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for _path in (os.path.join(_ROOT, "src"), os.path.join(_ROOT, "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_io  # noqa: E402
from repro.cluster import ClusterConfig, ClusterCoordinator  # noqa: E402

DEFAULT_OUT = os.path.join(_ROOT, "BENCH_PR4.json")
DEGREE = 4

#: (n_shards, n_users) rows.  The first triple holds the shard size
#: fixed while the cluster grows 64x; the second holds the shard count
#: fixed while the shard size grows 64x.
FULL_ROWS = {
    "fixed_shard_size": [(1, 1024), (4, 4096), (16, 16384)],
    "fixed_shard_count": [(16, 1024), (16, 16384), (16, 65536)],
}
QUICK_ROWS = {
    "fixed_shard_size": [(1, 64), (4, 256), (16, 1024)],
    "fixed_shard_count": [(16, 256), (16, 1024), (16, 4096)],
}

#: ``--check`` floors: flat means max/min <= FLAT_CEILING across the
#: fixed-shard-size rows; growing means largest/smallest >= GROWTH_FLOOR
#: across the fixed-shard-count rows.
FLAT_CEILING = 1.35
GROWTH_FLOOR = 1.25
ROOT_SPREAD_CEILING = 1.05


def run_row(n_shards: int, n_users: int, n_ops: int) -> dict:
    seed = b"cluster-scale/%d/%d" % (n_shards, n_users)
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=n_shards, degree=DEGREE,
                      root_degree=DEGREE, seed=seed))
    members = [(f"u{index:06d}", coordinator.new_individual_key())
               for index in range(n_users)]
    started = time.perf_counter()
    coordinator.bootstrap(members)
    bootstrap_s = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(n_ops // 2):
        coordinator.join(f"walkin-{index:04d}",
                         coordinator.new_individual_key())
        coordinator.leave(f"u{index:06d}")
    elapsed = time.perf_counter() - started

    records = coordinator.history[-(2 * (n_ops // 2)):]
    return {
        "n_shards": n_shards,
        "n_users": n_users,
        "shard_size": n_users / n_shards,
        "bootstrap_s": bootstrap_s,
        "ops_per_s": len(records) / elapsed if elapsed > 0 else 0.0,
        "shard_enc_per_op": (sum(record.shard_encryptions
                                 for record in records) / len(records)),
        "root_enc_per_op": (sum(record.root_encryptions
                                for record in records) / len(records)),
    }


def run(quick: bool, out_path: str, check: bool) -> int:
    rows_by_role = QUICK_ROWS if quick else FULL_ROWS
    n_ops = 8 if quick else 32
    report = bench_io.new_report("PR4", quick)
    print(f"cluster scaling sweep ({'quick' if quick else 'full'} run)")

    results: dict = {}
    for role, rows in rows_by_role.items():
        for n_shards, n_users in rows:
            key = (n_shards, n_users)
            if key not in results:
                print(f"  {n_shards:>2} shard(s) x {n_users:>6} users ...",
                      end="", flush=True)
                results[key] = run_row(n_shards, n_users, n_ops)
                row = results[key]
                print(f" shard {row['shard_enc_per_op']:6.2f} enc/op, "
                      f"root {row['root_enc_per_op']:5.2f} enc/op, "
                      f"{row['ops_per_s']:8.1f} ops/s")
            prefix = f"s{n_shards}_u{n_users}"
            row = results[key]
            bench_io.add_metric(report, f"{prefix}_shard_enc_per_op",
                                "encryptions", row["shard_enc_per_op"])
            bench_io.add_metric(report, f"{prefix}_root_enc_per_op",
                                "encryptions", row["root_enc_per_op"])
            bench_io.add_metric(report, f"{prefix}_ops_per_s", "ops/s",
                                row["ops_per_s"])

    flat_costs = [results[key]["shard_enc_per_op"]
                  for key in rows_by_role["fixed_shard_size"]]
    growth_rows = sorted(rows_by_role["fixed_shard_count"],
                         key=lambda key: key[1])
    growth_costs = [results[key]["shard_enc_per_op"] for key in growth_rows]
    root_costs = [results[key]["root_enc_per_op"] for key in growth_rows]
    flat_ratio = max(flat_costs) / min(flat_costs)
    growth_ratio = growth_costs[-1] / growth_costs[0]
    root_spread = max(root_costs) / min(root_costs)
    # The root layer spans n_shards leaves: its cost is O(d log_d N).
    n_shards = growth_rows[0][0]
    root_bound = DEGREE * (math.ceil(math.log(max(n_shards, 2), DEGREE)) + 2)
    bench_io.add_metric(report, "flat_ratio_fixed_shard_size", "ratio",
                        flat_ratio)
    bench_io.add_metric(report, "growth_ratio_fixed_shard_count", "ratio",
                        growth_ratio)
    bench_io.add_metric(report, "root_cost_spread", "ratio", root_spread)

    bench_io.write_report(out_path, report)
    print(f"wrote {out_path}")
    print(f"  flat ratio   {flat_ratio:.3f} (ceiling {FLAT_CEILING}) — "
          f"shard cost across 64x total growth at fixed shard size")
    print(f"  growth ratio {growth_ratio:.3f} (floor {GROWTH_FLOOR}) — "
          f"shard cost across 16x shard-size growth")
    print(f"  root spread  {root_spread:.3f} (ceiling {ROOT_SPREAD_CEILING})"
          f", root cost <= {root_bound}")

    if check:
        failures = []
        if flat_ratio > FLAT_CEILING:
            failures.append(
                f"shard cost not flat in total group size: max/min "
                f"{flat_ratio:.3f} > {FLAT_CEILING} at fixed shard size")
        if growth_ratio < GROWTH_FLOOR:
            failures.append(
                f"shard cost did not grow with shard size: "
                f"{growth_ratio:.3f} < {GROWTH_FLOOR}")
        if root_spread > ROOT_SPREAD_CEILING:
            failures.append(
                f"root-layer cost varied with group size: spread "
                f"{root_spread:.3f} > {ROOT_SPREAD_CEILING}")
        if max(root_costs) > root_bound:
            failures.append(
                f"root-layer cost {max(root_costs):.2f} exceeds the "
                f"O(d log_d n_shards) bound {root_bound}")
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("all scaling checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="enforce the scaling floors (exit 1 on fail)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    return run(args.quick, args.out, args.check)


if __name__ == "__main__":
    raise SystemExit(main())

"""Cluster subcast: per-shard covers plus root-layer lifting.

A partially-targeted shard contributes a cover on its own subtree; a
fully-targeted shard is lifted into the root layer where one key can
address several whole shards at once.  Members prime exactly what the
cluster actually gives them (shard path + root-layer path records), so
decrypt-exactness here proves the wire references line up end to end.
"""

import pytest

from repro.cluster.coordinator import (ROOT_LAYER_BASE, ClusterConfig,
                                       ClusterCoordinator, ClusterError)
from repro.core.client import GroupClient, SubcastNotAddressed
from repro.core.messages import MSG_SUBCAST_REQUEST, Message
from repro.subcast import encode_subcast_request

MEMBERS = [f"c{index:03d}" for index in range(96)]


@pytest.fixture(scope="module")
def cluster():
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=3, degree=4, signing="per-message", seed=b"subcast-cl",
        backend="flat"))
    coordinator.bootstrap([(user, coordinator.new_individual_key())
                           for user in MEMBERS])
    clients = {}
    for user in MEMBERS:
        shard = coordinator.shard_of(user)
        leaf = shard.server.tree.leaf_of(user)
        client = GroupClient(user, coordinator.suite,
                             coordinator.public_key)
        client.set_individual_key(leaf.key)
        client.set_leaf(leaf.node_id)
        for node in leaf.path_to_root():
            client.keys[node.node_id] = (node.version, node.key)
        for record in coordinator.root_layer.path_records(shard.name):
            client.keys[record.node_id] = (record.version, record.key)
        client.root_ref = coordinator.group_key_ref()
        clients[user] = client
    shard_members = {}
    for user in MEMBERS:
        shard_members.setdefault(
            coordinator.shard_of(user).shard_id, []).append(user)
    return coordinator, clients, shard_members


def assert_exact(coordinator, clients, targets, payload):
    out = coordinator.subcast(targets, payload)
    delivered = [user for user, client in clients.items()
                 if _opens(client, out.encoded, payload)]
    assert sorted(delivered) == sorted(set(targets))
    return out


def _opens(client, blob, payload):
    try:
        assert client.open_subcast(blob) == payload
        return True
    except SubcastNotAddressed:
        return False


def test_partial_shards_cover_on_shard_trees(cluster):
    coordinator, clients, shard_members = cluster
    targets = shard_members[0][:5] + shard_members[2][3:9]
    out = assert_exact(coordinator, clients, targets, b"partial")
    # No whole shard targeted: every cover key is a shard-tree key,
    # below the root-layer namespace.
    for item in out.message.items[1:]:
        assert item.enc_node_id < ROOT_LAYER_BASE


def test_full_shard_lifts_into_the_root_layer(cluster):
    coordinator, clients, shard_members = cluster
    targets = shard_members[1] + shard_members[0][:4]
    out = assert_exact(coordinator, clients, targets, b"lifted")
    refs = [(item.enc_node_id, item.enc_version)
            for item in out.message.items[1:]]
    # The fully-covered shard rides its live subtree-root reference
    # (what its members hold), recorded in the root layer.
    shard_name = coordinator.shards[1].name
    assert coordinator.root_layer._shard_refs[shard_name] in refs


def test_whole_group_costs_one_root_layer_key(cluster):
    coordinator, clients, _shard_members = cluster
    out = assert_exact(coordinator, clients, MEMBERS, b"everyone")
    assert len(out.message.items) == 2
    assert out.message.items[1].enc_node_id >= ROOT_LAYER_BASE


def test_cluster_rejects_bad_targets(cluster):
    coordinator, _clients, _shard_members = cluster
    with pytest.raises(ClusterError):
        coordinator.subcast([], b"none")
    with pytest.raises(ClusterError):
        coordinator.subcast(["ghost"], b"ghost")


def test_cluster_datagram_entry_point(cluster):
    coordinator, clients, shard_members = cluster
    targets = shard_members[0][:3]
    request = Message(
        msg_type=MSG_SUBCAST_REQUEST,
        body=encode_subcast_request(MEMBERS[0], targets, b"dg"))
    outputs = coordinator.handle_datagram(request.encode())
    assert len(outputs) == 1
    assert clients[targets[0]].open_subcast(outputs[0].encoded) == b"dg"
    with pytest.raises(ClusterError):
        coordinator.handle_datagram(Message(
            msg_type=MSG_SUBCAST_REQUEST,
            body=encode_subcast_request("ghost", targets,
                                        b"x")).encode())


def test_subcast_survives_membership_churn():
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=3, degree=4, signing="none", seed=b"churn-cl",
        backend="flat"))
    members = [f"x{index:02d}" for index in range(24)]
    coordinator.bootstrap([(user, coordinator.new_individual_key())
                           for user in members])
    coordinator.leave(members[0])
    coordinator.register_individual_key(
        "late", coordinator.new_individual_key())
    coordinator.join("late")
    survivors = [user for user in members[1:]] + ["late"]
    out = coordinator.subcast(survivors[:10], b"after churn")
    assert sorted(out.receivers) == sorted(survivors[:10])
    with pytest.raises(ClusterError):
        coordinator.subcast([members[0]], b"gone")

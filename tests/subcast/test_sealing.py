"""Byte-determinism of the sealing layer.

The subcast wire bytes are part of the reproducibility contract: same
seed, same membership history, same targets, same payload => identical
``MSG_SUBCAST`` bytes, on either tree backend, pinned by a golden
digest.  And sealing draws from a dedicated DRBG personalization, so a
run with interleaved subcasts keeps every *rekey* message byte-for-byte
identical to its subcast-free control run.
"""

import hashlib
import time as _time
from contextlib import contextmanager

import pytest

from repro.core.client import GroupClient
from repro.core.messages import (MSG_SUBCAST, SUBCAST_MESSAGE_KEY, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.subcast import SubcastError, SubcastSealer


@contextmanager
def frozen_clock(value_ns=1_234_567_891_000):
    real = _time.time_ns
    _time.time_ns = lambda: value_ns
    try:
        yield
    finally:
        _time.time_ns = real


MEMBERS = [f"u{index:03d}" for index in range(48)]
TARGETS = MEMBERS[8:24] + MEMBERS[40:43]
GOLDEN = "4e19a0bb0d5f12a4a9fe127cd72aef7a4cd80ead7de7103702512a0f62f4b6d2"


def build_server(backend, seed=b"seal-golden"):
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", signing="none", seed=seed,
        backend=backend))
    server.bootstrap([(user, server.new_individual_key())
                      for user in MEMBERS])
    return server


def test_flat_and_object_backends_seal_identical_bytes():
    with frozen_clock():
        blob_obj = build_server("object").subcast(TARGETS, b"golden").encoded
    with frozen_clock():
        blob_flat = build_server("flat").subcast(TARGETS, b"golden").encoded
    assert blob_obj == blob_flat


def test_golden_digest_pins_the_wire_bytes():
    with frozen_clock():
        blob = build_server("flat").subcast(TARGETS, b"golden").encoded
    assert hashlib.sha256(blob).hexdigest() == GOLDEN


def test_message_layout():
    with frozen_clock():
        out = build_server("flat").subcast(TARGETS, b"layout-check")
    message = Message.decode(out.encoded)
    assert message.msg_type == MSG_SUBCAST
    # items[0] is the payload ciphertext under the fresh message key,
    # referenced by the sentinel id and the subcast id.
    payload_item = message.items[0]
    assert payload_item.enc_node_id == SUBCAST_MESSAGE_KEY
    assert payload_item.enc_version == message.seq & 0xFFFFFFFF
    assert payload_item.plaintext_len == len(b"layout-check")
    # Cover items reference real tree keys, in ascending node-id order.
    cover_ids = [item.enc_node_id for item in message.items[1:]]
    assert cover_ids == sorted(cover_ids)
    assert all(node_id != SUBCAST_MESSAGE_KEY for node_id in cover_ids)
    assert sorted(out.receivers) == sorted(set(TARGETS))


def test_sealer_rejects_empty_inputs():
    server = build_server("flat")
    sealer = server.subcast_sealer
    assert isinstance(sealer, SubcastSealer)
    with pytest.raises(SubcastError):
        sealer.seal([], b"x", receivers=["u001"], root_ref=(1, 0))
    cover = [(1, 0, bytes(server.suite.key_size))]
    with pytest.raises(SubcastError):
        sealer.seal(cover, b"x", receivers=[], root_ref=(1, 0))


def run_history(backend, with_subcasts):
    server = build_server(backend, seed=b"seal-perturb")
    rekey_blobs = []
    with frozen_clock():
        for index in range(5):
            joiner = f"j{index}"
            server.register_individual_key(joiner,
                                           server.new_individual_key())
            outcome = server.join(joiner)
            rekey_blobs.extend(m.encoded for m in outcome.rekey_messages)
            if with_subcasts:
                server.subcast(MEMBERS[index:index + 4], b"interleaved")
            outcome = server.leave(MEMBERS[index])
            rekey_blobs.extend(m.encoded for m in outcome.rekey_messages)
    return rekey_blobs


def strip_seq(blobs):
    """Rekey item bytes without the header (subcasts shift seq/ts)."""
    stripped = []
    for blob in blobs:
        message = Message.decode(blob)
        stripped.append(tuple(
            (item.enc_node_id, item.enc_version, item.iv, item.ciphertext,
             item.plaintext_len) for item in message.items))
    return stripped


@pytest.mark.parametrize("backend", ["object", "flat"])
def test_subcasts_never_perturb_the_rekey_stream(backend):
    control = run_history(backend, with_subcasts=False)
    interleaved = run_history(backend, with_subcasts=True)
    assert strip_seq(control) == strip_seq(interleaved)


def test_open_subcast_round_trip_on_both_backends():
    for backend in ("object", "flat"):
        server = build_server(backend)
        user = TARGETS[0]
        leaf = server.tree.leaf_of(user)
        client = GroupClient(user, server.suite)
        client.set_individual_key(leaf.key)
        client.set_leaf(leaf.node_id)
        for node in leaf.path_to_root():
            client.keys[node.node_id] = (node.version, node.key)
        out = server.subcast(TARGETS, b"round-trip")
        assert client.open_subcast(out.encoded) == b"round-trip"
        assert client.stats.subcasts_opened == 1

"""End-to-end subcast delivery: exactly the targets decrypt.

Covers the immediate server and the batch server, the datagram entry
point, the ``subcast_cover`` ablation flag, and the security negatives:
non-members, non-targeted members, and evicted members holding stale
key versions all fail closed with :class:`SubcastNotAddressed`.
"""

import pytest

from repro.batch.rekeying import BatchError, BatchRekeyServer
from repro.core.client import GroupClient, SubcastNotAddressed
from repro.core.messages import MSG_SUBCAST_REQUEST, Message
from repro.core.server import GroupKeyServer, ServerConfig, ServerError
from repro.subcast import encode_subcast_request

MEMBERS = [f"m{index:03d}" for index in range(60)]


def immediate_server(backend="flat", subcast_cover="tree",
                     signing="per-message"):
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", signing=signing, seed=b"deliver",
        backend=backend, subcast_cover=subcast_cover))
    server.bootstrap([(user, server.new_individual_key())
                      for user in MEMBERS])
    return server


def primed_client(server, user):
    leaf = server.tree.leaf_of(user)
    client = GroupClient(user, server.suite, server.public_key)
    client.set_individual_key(leaf.key)
    client.set_leaf(leaf.node_id)
    for node in leaf.path_to_root():
        client.keys[node.node_id] = (node.version, node.key)
    client.root_ref = server.group_key_ref()
    return client


def assert_exact_delivery(server, clients, targets, payload):
    out = server.subcast(targets, payload)
    delivered = []
    for user, client in clients.items():
        try:
            assert client.open_subcast(out.encoded) == payload
            delivered.append(user)
        except SubcastNotAddressed:
            pass
    assert sorted(delivered) == sorted(set(targets))
    return out


@pytest.mark.parametrize("backend", ["object", "flat"])
def test_exactly_the_targets_decrypt(backend):
    server = immediate_server(backend)
    clients = {user: primed_client(server, user) for user in MEMBERS}
    assert_exact_delivery(server, clients, MEMBERS[10:30] + MEMBERS[50:52],
                          b"subset payload")
    # Single target: sealed under that leaf's individual key.
    out = assert_exact_delivery(server, clients, [MEMBERS[0]], b"solo")
    assert len(out.message.items) == 2
    # Everyone: one cover key — the group key.
    out = assert_exact_delivery(server, clients, MEMBERS, b"everyone")
    assert len(out.message.items) == 2
    assert out.message.items[1].enc_node_id == server.group_key_ref()[0]


def test_greedy_flag_produces_the_same_cover():
    tree_out = immediate_server().subcast(MEMBERS[5:25], b"flag")
    greedy_out = immediate_server(
        subcast_cover="greedy").subcast(MEMBERS[5:25], b"flag")
    tree_refs = [(item.enc_node_id, item.enc_version)
                 for item in tree_out.message.items[1:]]
    greedy_refs = [(item.enc_node_id, item.enc_version)
                   for item in greedy_out.message.items[1:]]
    assert tree_refs == greedy_refs


def test_subcast_cover_flag_is_validated():
    with pytest.raises(ServerError):
        ServerConfig(subcast_cover="exhaustive").validate()


def test_non_member_cannot_decrypt():
    server = immediate_server()
    out = server.subcast(MEMBERS[:8], b"secret")
    outsider = GroupClient("mallory", server.suite, server.public_key)
    outsider.set_individual_key(bytes(server.suite.key_size))
    with pytest.raises(SubcastNotAddressed):
        outsider.open_subcast(out.encoded)


def test_evicted_member_fails_closed():
    server = immediate_server()
    victim = MEMBERS[7]
    clients = {user: primed_client(server, user) for user in MEMBERS}
    server.leave(victim)
    # The victim still holds its old path keys, but the leave rotated
    # every key on that path: version-exact lookup finds nothing.
    out = server.subcast(MEMBERS[:7], b"post-eviction")
    with pytest.raises(SubcastNotAddressed):
        clients[victim].open_subcast(out.encoded)
    # And the server refuses to target an ex-member at all.
    with pytest.raises(ServerError):
        server.subcast([victim], b"nope")


def test_subcast_requires_targets_and_tree():
    server = immediate_server()
    with pytest.raises(ServerError):
        server.subcast([], b"empty")
    with pytest.raises(ServerError):
        server.subcast(["ghost"], b"ghost")
    star = GroupKeyServer(ServerConfig(graph="star", signing="none",
                                       seed=b"star"))
    star.bootstrap([("s0", star.new_individual_key())])
    with pytest.raises(ServerError):
        star.subcast(["s0"], b"star")


def test_datagram_entry_point():
    server = immediate_server()
    clients = {user: primed_client(server, user) for user in MEMBERS}
    targets = MEMBERS[12:20]
    request = Message(
        msg_type=MSG_SUBCAST_REQUEST,
        body=encode_subcast_request(MEMBERS[0], targets, b"via-datagram"))
    outputs = server.handle_datagram(request.encode())
    assert len(outputs) == 1
    assert clients[targets[0]].open_subcast(
        outputs[0].encoded) == b"via-datagram"
    # Malformed body and non-member sender are both rejected.
    with pytest.raises(ServerError):
        server.handle_datagram(Message(
            msg_type=MSG_SUBCAST_REQUEST, body=b"\xff").encode())
    with pytest.raises(ServerError):
        server.handle_datagram(Message(
            msg_type=MSG_SUBCAST_REQUEST,
            body=encode_subcast_request("ghost", targets,
                                        b"x")).encode())


def test_batch_server_subcast():
    server = BatchRekeyServer(degree=4, signing="per-message",
                              seed=b"batch-deliver", backend="flat")
    server.bootstrap([(user, server.new_individual_key())
                      for user in MEMBERS])
    targets = MEMBERS[4:14]
    out = server.subcast(targets, b"batch subset")
    delivered = []
    for user in MEMBERS:
        leaf = server.tree.leaf_of(user)
        client = GroupClient(user, server.suite,
                             server.signing_keypair.public_key)
        client.set_individual_key(leaf.key)
        client.set_leaf(leaf.node_id)
        for node in leaf.path_to_root():
            client.keys[node.node_id] = (node.version, node.key)
        try:
            assert client.open_subcast(out.encoded) == b"batch subset"
            delivered.append(user)
        except SubcastNotAddressed:
            pass
    assert delivered == targets
    # A queued joiner holds no tree keys yet and cannot be targeted.
    server.request_join("pending", server.new_individual_key())
    with pytest.raises(BatchError):
        server.subcast(["pending"], b"early")

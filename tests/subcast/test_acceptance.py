"""PR 9 acceptance invariant at a moderate scale.

A sealed subcast to a random subset of a few-thousand-member flat
group decrypts for every target and for no one else.  The full
million-member run lives in ``experiments/subcast_scale.py``; this is
the same invariant kept fast enough for the tier-1 suite by checking
every target plus a random sample of non-targets.
"""

import random

import pytest

from repro.core.client import GroupClient, SubcastNotAddressed
from repro.core.server import GroupKeyServer, ServerConfig, ServerError

N_MEMBERS = 2048
N_TARGETS = 128
SAMPLED_OUTSIDERS = 64


@pytest.fixture(scope="module")
def group():
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", signing="none",
        seed=b"acceptance", backend="flat"))
    members = [f"a{index:05d}" for index in range(N_MEMBERS)]
    server.bootstrap([(user, server.new_individual_key())
                      for user in members])
    return server, members


def primed(server, user):
    leaf = server.tree.leaf_of(user)
    client = GroupClient(user, server.suite)
    client.set_individual_key(leaf.key)
    client.set_leaf(leaf.node_id)
    for node in leaf.path_to_root():
        client.keys[node.node_id] = (node.version, node.key)
    return client


def test_random_subset_decrypts_exactly(group):
    server, members = group
    rng = random.Random(0x5EED)
    targets = rng.sample(members, N_TARGETS)
    out = server.subcast(targets, b"acceptance payload")
    # The cover never exceeds what per-user individual keys would cost.
    assert 1 <= len(out.message.items) - 1 <= len(targets)
    for user in targets:
        assert primed(server, user).open_subcast(
            out.encoded) == b"acceptance payload"
    outsiders = rng.sample(sorted(set(members) - set(targets)),
                           SAMPLED_OUTSIDERS)
    for user in outsiders:
        with pytest.raises(SubcastNotAddressed):
            primed(server, user).open_subcast(out.encoded)


def test_eviction_revokes_subcast_access(group):
    server, members = group
    victim = members[-1]
    stale = primed(server, victim)
    server.leave(victim)
    survivors = members[:16]
    out = server.subcast(survivors, b"post-leave")
    with pytest.raises(SubcastNotAddressed):
        stale.open_subcast(out.encoded)
    with pytest.raises(ServerError):
        server.subcast([victim], b"gone")
    for user in survivors[:4]:
        assert primed(server, user).open_subcast(
            out.encoded) == b"post-leave"

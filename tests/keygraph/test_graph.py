"""Generic key graphs and the (U, K, R) model (paper §2)."""

import pytest

from repro.keygraph.graph import (KeyGraph, KeyGraphError, SecureGroup,
                                  figure1_example)


@pytest.fixture()
def figure1():
    return figure1_example()


def test_figure1_matches_paper(figure1):
    """The exact secure group of the paper's Figure 1."""
    figure1.validate()
    assert figure1.keyset("u1") == {"k1", "k12", "k1234"}
    assert figure1.keyset("u2") == {"k2", "k12", "k234", "k1234"}
    assert figure1.keyset("u3") == {"k3", "k234", "k1234"}
    assert figure1.keyset("u4") == {"k4", "k234", "k1234"}
    assert figure1.userset("k234") == {"u2", "u3", "u4"}
    assert figure1.userset("k1234") == {"u1", "u2", "u3", "u4"}
    assert figure1.userset("k12") == {"u1", "u2"}
    assert figure1.userset("k3") == {"u3"}


def test_generalized_keyset_userset(figure1):
    assert figure1.keyset_of_users(["u1", "u3"]) == (
        {"k1", "k12", "k1234", "k3", "k234"})
    assert figure1.userset_of_keys(["k12", "k3"]) == {"u1", "u2", "u3"}
    assert figure1.keyset_of_users([]) == frozenset()
    assert figure1.userset_of_keys([]) == frozenset()


def test_secure_group_derivation(figure1):
    group = figure1.secure_group()
    assert group.users == {"u1", "u2", "u3", "u4"}
    assert len(group.keys) == 7
    assert group.holds("u1", "k12")
    assert not group.holds("u3", "k12")
    assert group.group_keys() == {"k1234"}
    assert group.individual_keys("u1") == {"k1"}
    assert group.keyset("u4") == figure1.keyset("u4")
    assert group.userset("k234") == figure1.userset("k234")


def test_individual_keys_only_counts_exclusive(figure1):
    group = figure1.secure_group()
    # k12 is held by u1 and u2, so it is individual to neither.
    assert "k12" not in group.individual_keys("u1")


def test_multiple_roots_allowed():
    graph = KeyGraph()
    graph.add_u_node("u")
    graph.add_k_node("k1")
    graph.add_k_node("k2")
    graph.add_edge("u", "k1")
    graph.add_edge("u", "k2")
    graph.validate()
    assert graph.roots == {"k1", "k2"}


def test_duplicate_node_rejected():
    graph = KeyGraph()
    graph.add_u_node("x")
    with pytest.raises(KeyGraphError):
        graph.add_k_node("x")
    with pytest.raises(KeyGraphError):
        graph.add_u_node("x")


def test_edge_validation():
    graph = KeyGraph()
    graph.add_u_node("u")
    graph.add_k_node("k")
    with pytest.raises(KeyGraphError):
        graph.add_edge("u", "missing")
    with pytest.raises(KeyGraphError):
        graph.add_edge("k", "u")  # edges must end at k-nodes
    with pytest.raises(KeyGraphError):
        graph.add_edge("k", "k")  # self loop


def test_cycle_rejected():
    graph = KeyGraph()
    graph.add_k_node("a")
    graph.add_k_node("b")
    graph.add_u_node("u")
    graph.add_edge("u", "a")
    graph.add_edge("a", "b")
    with pytest.raises(KeyGraphError):
        graph.add_edge("b", "a")


def test_validate_catches_rule_violations():
    # u-node without outgoing edge.
    graph = KeyGraph()
    graph.add_u_node("u")
    graph.add_k_node("k")
    with pytest.raises(KeyGraphError):
        graph.validate()
    # k-node without incoming edge (the same graph: k has no incoming).
    graph.add_edge("u", "k")
    graph.validate()
    graph2 = KeyGraph()
    graph2.add_u_node("u")
    graph2.add_k_node("k")
    graph2.add_k_node("orphan")
    graph2.add_edge("u", "k")
    with pytest.raises(KeyGraphError):
        graph2.validate()


def test_remove_node(figure1):
    figure1.remove_node("u1")
    # k1 loses its only incoming edge -> invalid.
    with pytest.raises(KeyGraphError):
        figure1.validate()
    figure1.remove_node("k1")
    figure1.validate()
    assert figure1.userset("k12") == {"u2"}


def test_remove_unknown_node():
    with pytest.raises(KeyGraphError):
        KeyGraph().remove_node("ghost")


def test_keyset_userset_type_checks(figure1):
    with pytest.raises(KeyGraphError):
        figure1.keyset("k12")       # not a u-node
    with pytest.raises(KeyGraphError):
        figure1.userset("u1")       # not a k-node
    with pytest.raises(KeyGraphError):
        figure1.keyset("missing")


def test_secure_group_consistency_checks():
    with pytest.raises(KeyGraphError):
        SecureGroup([], ["k"], [])
    with pytest.raises(KeyGraphError):
        SecureGroup(["u"], [], [])
    with pytest.raises(KeyGraphError):
        SecureGroup(["u"], ["k"], [("u", "ghost")])
    group = SecureGroup(["u"], ["k"], [("u", "k")])
    with pytest.raises(KeyGraphError):
        group.keyset("ghost")
    with pytest.raises(KeyGraphError):
        group.userset("ghost")


def test_len(figure1):
    assert len(figure1) == 11  # 4 u-nodes + 7 k-nodes

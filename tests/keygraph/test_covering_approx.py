"""Property tests for the approximation covers (PR 9).

Three families of invariants:

* every covering algorithm returns a *valid exact* cover (union equals
  the target, nothing outside it) whenever one exists;
* at small instance sizes the sizes nest: ``len(exact) <= len(greedy)``
  and greedy respects the classic ``H_k`` approximation bound;
* on key trees the structural covers agree across backends — the flat
  array fast path returns the identical (node id, version) cover the
  object walk does on lockstep trees, and ``tree_cover`` is exactly
  ``complement_cover({user})``.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.backend import build_tree
from repro.keygraph.covering import (complement_cover, exact_cover,
                                     greedy_cover, greedy_tree_cover,
                                     group_from_set_cover, is_cover,
                                     partition_cover, tree_cover,
                                     tree_subset_cover)


def make_keygen(seed):
    source = HmacDrbg(seed)
    return lambda: source.generate(8)


# -- random set-cover instances ------------------------------------------------


@st.composite
def cover_instances(draw):
    """A small universe, random candidate subsets, a random target."""
    n = draw(st.integers(min_value=2, max_value=8))
    universe = list(range(n))
    n_subsets = draw(st.integers(min_value=1, max_value=5))
    subsets = [draw(st.lists(st.sampled_from(universe), min_size=1,
                             max_size=n, unique=True))
               for _ in range(n_subsets)]
    target_elements = draw(st.lists(st.sampled_from(universe), min_size=1,
                                    max_size=n, unique=True))
    return universe, subsets, [f"e{e}" for e in target_elements]


@settings(max_examples=120, deadline=None)
@given(cover_instances())
def test_all_algorithms_return_valid_exact_covers(instance):
    universe, subsets, target = instance
    group = group_from_set_cover(universe, subsets)
    # Individual keys guarantee an exact cover always exists.
    exact = exact_cover(group, target)
    greedy = greedy_cover(group, target)
    approx = partition_cover(group, target)
    for cover in (exact, greedy, approx):
        assert is_cover(group, cover, target)


@settings(max_examples=120, deadline=None)
@given(cover_instances())
def test_cover_sizes_nest_within_the_greedy_bound(instance):
    universe, subsets, target = instance
    group = group_from_set_cover(universe, subsets)
    exact = exact_cover(group, target)
    greedy = greedy_cover(group, target)
    approx = partition_cover(group, target)
    assert len(exact) <= len(greedy)
    assert len(exact) <= len(approx)
    # Classic greedy set-cover guarantee: H_k-approximate, where k is
    # the largest admissible userset.
    k = max((len(group.userset(key)) for key in group.keys
             if group.userset(key) and
             set(group.userset(key)) <= set(target)), default=1)
    h_k = sum(1.0 / i for i in range(1, k + 1))
    assert len(greedy) <= math.ceil(len(exact) * h_k) + 1e-9


@settings(max_examples=60, deadline=None)
@given(cover_instances())
def test_partition_cover_is_minimum_on_laminar_instances(instance):
    universe, subsets, target = instance
    # Laminarize: nested prefixes of the universe only.
    laminar = [universe[:length]
               for length in range(1, len(universe) + 1)]
    group = group_from_set_cover(universe, laminar)
    exact = exact_cover(group, target)
    approx = partition_cover(group, target)
    assert is_cover(group, approx, target)
    assert len(approx) == len(exact)


# -- tree covers across backends -----------------------------------------------


def lockstep_trees(n, degree, seed):
    members = [(f"u{index:03d}", bytes([index % 251]) * 8)
               for index in range(n)]
    obj = build_tree("object", members, degree, make_keygen(seed))
    flat = build_tree("flat", members, degree, make_keygen(seed))
    return obj, flat, [name for name, _key in members]


def refs(cover):
    return [(node.node_id, node.version) for node in cover]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=2, max_value=5),
       st.randoms(use_true_random=False))
def test_flat_and_object_subset_covers_are_identical(n, degree, rng):
    obj, flat, users = lockstep_trees(n, degree, b"approx-eq")
    subset = rng.sample(users, rng.randint(1, n))
    cover_obj = tree_subset_cover(obj, subset)
    cover_flat = tree_subset_cover(flat, subset)
    assert refs(cover_obj) == refs(cover_flat)
    covered = [user for node in cover_obj for user in obj.userset(node)]
    assert sorted(covered) == sorted(subset)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=2, max_value=5),
       st.randoms(use_true_random=False))
def test_greedy_tree_cover_matches_structural_cover(n, degree, rng):
    obj, flat, users = lockstep_trees(n, degree, b"approx-greedy")
    subset = rng.sample(users, rng.randint(1, n))
    for tree in (obj, flat):
        assert refs(greedy_tree_cover(tree, subset)) == \
            refs(tree_subset_cover(tree, subset))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=2, max_value=5),
       st.randoms(use_true_random=False))
def test_tree_cover_is_single_exclusion_complement_cover(n, degree, rng):
    obj, flat, users = lockstep_trees(n, degree, b"approx-compl")
    victim = rng.choice(users)
    for tree in (obj, flat):
        single = tree_cover(tree, victim)
        compl = complement_cover(tree, [victim])
        assert sorted(refs(single)) == sorted(refs(compl))
    if n > 1:
        excluded = rng.sample(users, rng.randint(1, n - 1))
        for tree in (obj, flat):
            cover = complement_cover(tree, excluded)
            covered = [user for node in cover
                       for user in tree.userset(node)]
            assert sorted(covered) == sorted(set(users) - set(excluded))


def test_complement_cover_edge_cases():
    obj, flat, users = lockstep_trees(9, 3, b"approx-edge")
    for tree in (obj, flat):
        # Excluding nobody: the group key alone.
        assert refs(complement_cover(tree, [])) == \
            [(tree.group_key_node().node_id,
              tree.group_key_node().version)]
        # Excluding everybody: the empty cover.
        assert complement_cover(tree, users) == []

"""Star and complete key graph classes (paper §2.2, Tables 1-2)."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.complete import CompleteGroup, CompleteGroupError
from repro.keygraph.star import StarGroup, StarError


def make_keygen(seed=b"star"):
    source = HmacDrbg(seed)
    return lambda: source.generate(8)


# -- star ----------------------------------------------------------------------


def test_star_key_counts():
    star = StarGroup(make_keygen())
    for i in range(10):
        star.join(f"u{i}", bytes([i]) * 8)
    assert len(star) == 10
    assert star.n_keys == 11  # Table 1: n + 1
    assert len(star.keyset("u3")) == 2  # Table 1: 2 per user


def test_star_join_cost_and_rekey_plan():
    star = StarGroup(make_keygen())
    first = star.join("a", b"indiv-a-k")
    # First member: no old group to multicast to.
    assert first.n_encryptions == 1
    old_group_key = star.group_key
    second = star.join("b", b"indiv-b-k")
    # Table 2c: join costs 2 encryptions.
    assert second.n_encryptions == 2
    assert second.multicast_under_old_group_key == old_group_key
    assert second.encrypt_for == [("b", b"indiv-b-k")]
    assert star.group_key != old_group_key


def test_star_leave_cost():
    star = StarGroup(make_keygen())
    for i in range(8):
        star.join(f"u{i}", bytes([i]) * 8)
    rekey = star.leave("u0")
    # Table 2c: leave costs n - 1 encryptions, one per remaining member.
    assert rekey.n_encryptions == 7
    assert {uid for uid, _key in rekey.encrypt_for} == {
        f"u{i}" for i in range(1, 8)}
    assert not rekey.multicast_under_old_group_key


def test_star_group_key_rotates_every_operation():
    star = StarGroup(make_keygen())
    versions = [star.group_key_version]
    star.join("a", b"a-indiv-k")
    versions.append(star.group_key_version)
    star.join("b", b"b-indiv-k")
    versions.append(star.group_key_version)
    star.leave("a")
    versions.append(star.group_key_version)
    assert versions == [0, 1, 2, 3]


def test_star_errors():
    star = StarGroup(make_keygen())
    star.join("a", b"a-indiv-k")
    with pytest.raises(StarError):
        star.join("a", b"again-key")
    with pytest.raises(StarError):
        star.leave("ghost")
    with pytest.raises(StarError):
        star.individual_key("ghost")


def test_star_key_graph_export():
    star = StarGroup(make_keygen())
    for name in ("a", "b", "c"):
        star.join(name, name.encode() * 8)
    graph = star.to_key_graph()
    graph.validate()
    group = graph.secure_group()
    assert group.userset("k-group") == {"a", "b", "c"}
    assert group.keyset("a") == {"k-a", "k-group"}


# -- complete -----------------------------------------------------------------


def test_complete_key_counts():
    group = CompleteGroup([f"u{i}" for i in range(5)], make_keygen())
    assert group.n_keys == 2**5 - 1          # Table 1
    assert len(group.keyset("u0")) == 2**4   # Table 1


def test_complete_group_key_shared_by_all():
    users = ["a", "b", "c"]
    group = CompleteGroup(users, make_keygen())
    assert group.key_for(users) == group.group_key()
    assert group.userset(["a", "b"]) == {"a", "b"}


def test_complete_leave_costs_nothing_and_preserves_subset_keys():
    group = CompleteGroup(["a", "b", "c", "d"], make_keygen())
    survivors_key = group.key_for(["a", "b", "c"])
    assert group.leave("d") == 0             # Table 2: leave cost 0
    # The remaining members' group key already existed — unchanged.
    assert group.group_key() == survivors_key
    assert group.n_keys == 2**3 - 1


def test_complete_join_cost_is_exponential():
    group = CompleteGroup(["a", "b", "c"], make_keygen())
    created, joiner_keys = group.join("d")
    assert created == 2**3                   # Table 2: join creates 2^n keys
    assert joiner_keys == 2**3
    assert group.n_keys == 2**4 - 1


def test_complete_guards():
    with pytest.raises(CompleteGroupError):
        CompleteGroup([], make_keygen())
    with pytest.raises(CompleteGroupError):
        CompleteGroup(["a", "a"], make_keygen())
    with pytest.raises(CompleteGroupError):
        CompleteGroup([f"u{i}" for i in range(17)], make_keygen())
    group = CompleteGroup(["a"], make_keygen())
    with pytest.raises(CompleteGroupError):
        group.join("a")
    with pytest.raises(CompleteGroupError):
        group.leave("ghost")
    with pytest.raises(CompleteGroupError):
        group.keyset("ghost")
    with pytest.raises(CompleteGroupError):
        group.key_for(["ghost"])


def test_complete_key_graph_export():
    group = CompleteGroup(["a", "b", "c"], make_keygen())
    graph = group.to_key_graph()
    graph.validate()
    derived = graph.secure_group()
    assert len(derived.keys) == 7
    assert len(derived.keyset("a")) == 4

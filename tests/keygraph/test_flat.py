"""Flat array-backed key tree: arena, handles, descent, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.flat import _INF, FlatKeyTree, FlatNode, KeyArena
from repro.keygraph.tree import KeyTree, KeyTreeError


def make_keygen(seed=b"flat-test"):
    source = HmacDrbg(seed)
    return lambda: source.generate(8)


def build(n, degree=3, seed=b"flat-test"):
    keygen = make_keygen(seed)
    return FlatKeyTree.build([(f"u{i}", keygen()) for i in range(n)],
                             degree, keygen)


# -- KeyArena ---------------------------------------------------------------

def test_arena_store_get_roundtrip():
    arena = KeyArena()
    arena.store(0, b"aaaaaaaa")
    arena.store(5, b"bbbbbbbb")
    assert arena.stride == 8
    assert arena.get(0) == b"aaaaaaaa"
    assert arena.get(5) == b"bbbbbbbb"
    # Slots never written read as zero bytes, not garbage.
    assert arena.get(2) == b"\x00" * 8


def test_arena_overwrite_in_place():
    arena = KeyArena()
    arena.store(3, b"x" * 8)
    before = arena.nbytes
    arena.store(3, b"y" * 8)
    assert arena.get(3) == b"y" * 8
    assert arena.nbytes == before


def test_arena_odd_length_overflow():
    arena = KeyArena()
    arena.store(0, b"standard")          # stride locks to 8
    arena.store(1, b"a-very-long-key-indeed")
    assert arena.get(1) == b"a-very-long-key-indeed"
    # Replacing with a stride-sized key clears the overflow entry.
    arena.store(1, b"regular!")
    assert arena.get(1) == b"regular!"
    assert not arena._odd


def test_arena_view_and_discard():
    arena = KeyArena()
    arena.store(0, b"12345678")
    assert bytes(arena.view(0)) == b"12345678"
    arena.store(1, b"odd")
    assert bytes(arena.view(1)) == b"odd"
    arena.discard(1)
    assert 1 not in arena._odd


# -- handles ----------------------------------------------------------------

def test_handles_compare_by_slot_not_identity():
    tree = build(9)
    a = tree.root
    b = tree.root
    assert a is not b
    assert a == b
    assert hash(a) == hash(b)
    assert a != tree.leaf_of("u0")
    assert a != None  # noqa: E711 - NotImplemented fallback must work


def test_handle_matches_treenode_by_node_id():
    flat = build(9)
    obj = KeyTree.build([(f"u{i}", bytes([i]) * 8) for i in range(9)], 3,
                        make_keygen())
    assert flat.root == obj.root
    assert flat.leaf_of("u4") == obj.leaf_of("u4")
    assert flat.leaf_of("u4") != obj.leaf_of("u5")


def test_handle_surface_matches_treenode():
    tree = build(10)
    leaf = tree.leaf_of("u7")
    assert leaf.is_leaf and leaf.user_id == "u7" and leaf.size == 1
    path = leaf.path_to_root()
    assert path[0] == leaf and path[-1] == tree.root
    root = tree.root
    assert not root.is_leaf and root.parent is None
    assert sum(child.size for child in root.children) == root.size == 10
    old_version, old_key = root.version, root.key
    root.replace_key(b"fresh-k!")
    assert root.version == old_version + 1
    assert root.key == b"fresh-k!" != old_key


# -- queries ----------------------------------------------------------------

def test_n_keys_and_height_match_object_backend():
    keygen_a, keygen_b = make_keygen(), make_keygen()
    members = [(f"u{i}", bytes([i]) * 8) for i in range(23)]
    flat = FlatKeyTree.build(members, 4, keygen_a)
    obj = KeyTree.build(members, 4, keygen_b)
    assert flat.n_keys == obj.n_keys
    assert flat.height() == obj.height()
    flat_depths = sorted((n.node_id, d) for n, d in flat.nodes_with_depth())
    obj_depths = sorted((n.node_id, d) for n, d in obj.nodes_with_depth())
    assert flat_depths == obj_depths


def test_userset_and_subtree_size():
    tree = build(12, degree=3)
    for node in tree.nodes():
        userset = tree.userset(node)
        assert len(userset) == tree.subtree_size(node)
    assert sorted(tree.userset(tree.root)) == sorted(tree.users())


# -- joining-point descent --------------------------------------------------

def _bfs_joining_point(tree):
    """Reference: the paper's breadth-first scan (object-backend logic)."""
    from collections import deque
    queue = deque([tree.root])
    while queue:
        node = queue.popleft()
        if not node.is_leaf and len(node.children) < tree.degree:
            return node, None
        queue.extend(node.children)
    queue = deque([tree.root])
    while queue:
        node = queue.popleft()
        if node.is_leaf:
            return node, node
        queue.extend(node.children)
    raise AssertionError("unreachable on a non-empty tree")


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_descent_matches_breadth_first_scan(data):
    """The O(log n) aggregate descent lands on the exact node the
    paper's O(n) breadth-first scan would pick, at every churn step."""
    degree = data.draw(st.integers(min_value=2, max_value=4))
    n = data.draw(st.integers(min_value=1, max_value=30))
    tree = build(n, degree, seed=b"descent")
    keygen = make_keygen(b"descent-ops")
    alive = [f"u{i}" for i in range(n)]
    for step in range(data.draw(st.integers(min_value=0, max_value=15))):
        expected_spot, expected_split = _bfs_joining_point(tree)
        spot, split = tree.find_joining_point()
        assert spot == expected_spot
        assert split == expected_split
        if data.draw(st.booleans()) or len(alive) <= 1:
            name = f"x{step}"
            tree.join(name, keygen())
            alive.append(name)
        else:
            index = data.draw(
                st.integers(min_value=0, max_value=len(alive) - 1))
            tree.leave(alive.pop(index))
        tree.validate()


# -- surgery and slot recycling --------------------------------------------

def test_leave_recycles_slots_and_ids_stay_increasing():
    tree = build(8, degree=2)
    slots_before = len(tree._parent)
    high_id = max(node.node_id for node in tree.nodes())
    for i in range(4):
        tree.leave(f"u{i}")
    for i in range(4):
        tree.join(f"r{i}", bytes([i]) * 8)
    tree.validate()
    # Rejoins reuse freed slots instead of growing the arrays...
    assert len(tree._parent) <= slots_before + 1
    # ...but node ids keep increasing (never reused).
    new_ids = [tree.leaf_of(f"r{i}").node_id for i in range(4)]
    assert min(new_ids) > high_id
    assert len(set(new_ids)) == 4


def test_leave_result_snapshots_survive_recycling():
    tree = build(6, degree=2)
    result = tree.leave("u3")
    removed_id = result.removed_leaf.node_id
    removed_key = result.removed_leaf.key
    tree.join("fresh", b"fresh-k!")  # may recycle the freed slot
    assert result.removed_leaf.node_id == removed_id
    assert result.removed_leaf.key == removed_key


def test_shift_node_ids():
    tree = build(5)
    before = {node.node_id for node in tree.nodes()}
    tree.shift_node_ids(1000)
    after = {node.node_id for node in tree.nodes()}
    assert after == {node_id + 1000 for node_id in before}
    assert tree._next_id >= max(after)
    tree.validate()


def test_empty_tree_edge_cases():
    tree = FlatKeyTree(3, make_keygen())
    assert tree.root is None and tree.n_users == 0 and tree.n_keys == 0
    assert tree.height() == 0
    assert list(tree.nodes()) == list(tree.nodes_with_depth()) == []
    with pytest.raises(KeyTreeError):
        tree.group_key_node()
    with pytest.raises(KeyTreeError):
        tree.leave("ghost")
    tree.validate()


def test_last_leave_clears_root():
    tree = build(1)
    tree.leave("u0")
    assert tree.root is None and tree.n_users == 0
    tree.validate()
    tree.join("back", b"back-key")
    assert tree.n_users == 1 and tree.root is not None


# -- validation -------------------------------------------------------------

def test_validate_catches_stale_size():
    tree = build(9)
    tree._size[tree._root] += 1
    with pytest.raises(KeyTreeError, match="size cache stale"):
        tree.validate()


def test_validate_catches_stale_aggregates():
    tree = build(9)
    tree._open_d[tree._root] = _INF - 1
    with pytest.raises(KeyTreeError, match="aggregates stale"):
        tree.validate()


def test_validate_catches_registry_drift():
    tree = build(4)
    tree._leaves["phantom"] = tree._leaves["u0"]
    with pytest.raises(KeyTreeError, match="leaf registry"):
        tree.validate()


def test_storage_bytes_accounts_arrays_and_arena():
    tree = build(50, degree=4)
    total = tree.storage_bytes()
    assert total >= tree.arena.nbytes > 0
    # Flat storage at n=50 stays far under one object-node per key.
    assert total < 50 * 200


def test_duplicate_join_rejected():
    tree = build(3)
    with pytest.raises(KeyTreeError, match="already a member"):
        tree.join("u1", b"dup-key!")
    with pytest.raises(KeyTreeError, match="already a member"):
        tree.new_leaf("u2", b"dup-key!")

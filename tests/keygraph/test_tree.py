"""Key tree structure, balance heuristic and edit semantics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.tree import KeyTree, KeyTreeError


def make_keygen(seed=b"tree-test"):
    source = HmacDrbg(seed)
    return lambda: source.generate(8)


def build(n, degree=3, seed=b"tree-test"):
    keygen = make_keygen(seed)
    return KeyTree.build([(f"u{i}", keygen()) for i in range(n)],
                         degree, keygen)


def expected_height(n, d):
    if n <= 1:
        return 2
    return math.ceil(math.log(n, d)) + 1


@pytest.mark.parametrize("n,degree", [
    (1, 2), (2, 2), (3, 2), (9, 3), (10, 3), (27, 3), (64, 4), (100, 4),
    (256, 4), (8, 8), (17, 4),
])
def test_build_shapes(n, degree):
    tree = build(n, degree)
    tree.validate()
    assert tree.n_users == n
    assert len(tree) == n
    assert tree.height() <= expected_height(n, degree) + 1
    assert set(tree.users()) == {f"u{i}" for i in range(n)}


def test_build_full_balanced_counts():
    # n = d^(h-1): Table 1's ~d/(d-1) n keys, h keys per user.
    tree = build(27, 3)
    assert tree.n_keys == 27 + 9 + 3 + 1
    assert tree.height() == 4
    for i in range(27):
        assert len(tree.user_key_path(f"u{i}")) == 4


def test_empty_build():
    tree = KeyTree.build([], 3, make_keygen())
    assert tree.root is None
    assert tree.n_users == 0
    with pytest.raises(KeyTreeError):
        tree.group_key_node()


def test_single_user_has_distinct_group_key():
    tree = build(1)
    assert tree.height() == 2
    leaf = tree.leaf_of("u0")
    assert tree.root is not leaf
    assert tree.root.key != leaf.key


def test_degree_validation():
    with pytest.raises(KeyTreeError):
        KeyTree(1, make_keygen())


def test_join_rekeys_path_to_root():
    tree = build(9, 3)
    root_key_before = tree.root.key
    result = tree.join("新user", b"indivkey")
    tree.validate()
    assert tree.has_user("新user")
    # Every changed node got a fresh key and bumped version.
    assert result.changes[0].node is tree.root
    assert tree.root.key != root_key_before
    for change in result.changes:
        assert change.new_key == change.node.key
        assert change.old_key != change.new_key
        assert change.node.version == change.old_version + 1
    # The changes list is exactly the joiner's path above its leaf.
    path = tree.user_key_path("新user")
    assert [c.node for c in result.changes] == list(reversed(path[1:]))


def test_join_prefers_non_full_interior():
    tree = build(8, 3)  # root full? 8 users, d=3 -> some interior has room
    result = tree.join("u8", b"someindiv")
    assert result.split_leaf is None
    tree.validate()


def test_join_splits_leaf_when_full():
    tree = build(9, 3)  # perfect 3-ary tree: every interior full
    height_before = tree.height()
    result = tree.join("u9", b"newindivk")
    assert result.split_leaf is not None
    displaced = result.split_leaf
    # The displaced leaf now hangs under the fresh interior with the joiner.
    assert displaced.parent is result.joining_point
    assert result.leaf.parent is result.joining_point
    assert tree.height() == height_before + 1
    tree.validate()


def test_join_duplicate_rejected():
    tree = build(4)
    with pytest.raises(KeyTreeError):
        tree.join("u0", b"whatever")


def test_join_into_empty_tree():
    tree = KeyTree(3, make_keygen())
    result = tree.join("first", b"indiv-key")
    tree.validate()
    assert tree.n_users == 1
    assert result.changes[0].node is tree.root


def test_leave_rekeys_path():
    tree = build(27, 3)
    victim_path = tree.user_key_path("u5")
    result = tree.leave("u5")
    tree.validate()
    assert not tree.has_user("u5")
    assert result.removed_leaf is victim_path[0]
    # Every non-leaf node of the old path was either rekeyed or spliced.
    changed = {c.node.node_id for c in result.changes}
    spliced = {s.node_id for s in result.spliced}
    for node in victim_path[1:]:
        assert node.node_id in changed | spliced


def test_leave_splices_single_child_interior():
    tree = build(4, 2)  # perfect binary tree of 4
    result = tree.leave("u0")  # u1's parent now has one child
    assert len(result.spliced) == 1
    tree.validate()
    # u1's path shortened by one.
    assert len(tree.user_key_path("u1")) == 2


def test_leave_unknown_user():
    tree = build(4)
    with pytest.raises(KeyTreeError):
        tree.leave("ghost")


def test_leave_last_user_empties_tree():
    tree = build(1)
    result = tree.leave("u0")
    assert tree.root is None
    assert tree.n_users == 0
    assert result.changes == []


def test_leave_to_single_user_keeps_root():
    tree = build(2, 2)
    tree.leave("u0")
    tree.validate()
    assert tree.n_users == 1
    # Root retained (group key node id stable) even with one child.
    assert tree.root is not None
    assert not tree.root.is_leaf


def test_userset_and_sizes():
    tree = build(27, 3)
    assert sorted(tree.userset(tree.root)) == sorted(tree.users())
    for child in tree.root.children:
        assert len(tree.userset(child)) == tree.subtree_size(child) == 9
    leaf = tree.leaf_of("u13")
    assert tree.userset(leaf) == ["u13"]
    assert tree.subtree_size(tree.root) == 27


def test_to_key_graph_equivalence():
    tree = build(10, 3)
    graph = tree.to_key_graph()
    graph.validate()
    group = graph.secure_group()
    # Graph keyset == path nodes for every user.
    for user in tree.users():
        path_ids = {node.node_id for node in tree.user_key_path(user)}
        assert group.keyset(user) == path_ids
    # Root userset is everyone.
    assert group.userset(tree.root.node_id) == set(tree.users())


def test_node_ids_are_unique_and_stable():
    tree = build(20, 4)
    ids = [node.node_id for node in tree.nodes()]
    assert len(ids) == len(set(ids))
    root_id = tree.root.node_id
    tree.join("newbie", b"newbie-k")
    tree.leave("u3")
    assert tree.root.node_id == root_id  # rekeyed, not replaced


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_random_churn_invariants(data):
    """Property: any join/leave sequence keeps the tree valid, balanced
    within one level of optimal, and consistent with its key graph."""
    degree = data.draw(st.integers(min_value=2, max_value=5))
    n_initial = data.draw(st.integers(min_value=1, max_value=40))
    tree = build(n_initial, degree, seed=b"churn")
    keygen = make_keygen(b"churn-ops")
    alive = [f"u{i}" for i in range(n_initial)]
    counter = 0
    ops = data.draw(st.lists(st.booleans(), max_size=30))
    for is_join in ops:
        if is_join or not alive:
            name = f"x{counter}"
            counter += 1
            tree.join(name, keygen())
            alive.append(name)
        else:
            index = data.draw(st.integers(min_value=0, max_value=len(alive) - 1))
            tree.leave(alive.pop(index))
        tree.validate()
        if alive:
            n = len(alive)
            assert tree.n_users == n
            # Balance: within one level of the ideal height.
            assert tree.height() <= expected_height(n, degree) + 1
            # Every user can still reach the root.
            for user in alive[:3]:
                assert tree.user_key_path(user)[-1] is tree.root
        else:
            assert tree.root is None


def test_version_monotonicity_under_churn():
    tree = build(16, 4)
    root = tree.root
    versions = [root.version]
    for i in range(6):
        tree.join(f"j{i}", bytes([i]) * 8)
        versions.append(root.version)
        tree.leave(f"j{i}")
        versions.append(root.version)
    assert versions == sorted(versions)
    assert versions[-1] == versions[0] + 12  # one bump per operation

"""Tree shape analysis and the balance-heuristic drift ablation."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.analysis import (TreeShape, assert_balanced,
                                     leaf_depth_histogram, measure)
from repro.keygraph.tree import KeyTree


def make_tree(n, degree=4, seed=b"analysis"):
    source = HmacDrbg(seed)
    keygen = lambda: source.generate(8)
    return KeyTree.build([(f"u{i}", keygen()) for i in range(n)],
                         degree, keygen), keygen


def test_perfect_tree_shape():
    tree, _ = make_tree(64, 4)
    shape = measure(tree)
    assert shape.n_users == 64
    assert shape.height == shape.optimal_height == 4
    assert shape.height_slack == 0
    assert shape.min_leaf_depth == 4
    assert shape.mean_leaf_depth == 4.0
    assert shape.interior_fill == 1.0
    assert shape.key_overhead == pytest.approx(85 / (4 / 3 * 64))


def test_single_user_shape():
    tree, _ = make_tree(1)
    shape = measure(tree)
    assert shape.height == shape.optimal_height == 2


def test_empty_tree_rejected():
    tree = KeyTree(3, lambda: bytes(8))
    with pytest.raises(ValueError):
        measure(tree)


def test_leaf_depth_histogram():
    tree, _ = make_tree(64, 4)
    assert leaf_depth_histogram(tree) == {4: 64}
    tree2, _ = make_tree(10, 3)
    histogram = leaf_depth_histogram(tree2)
    assert sum(histogram.values()) == 10
    assert set(histogram) <= {3, 4}


def test_assert_balanced_passes_and_fails():
    tree, keygen = make_tree(27, 3)
    assert_balanced(tree, slack=0)
    # Degenerate tree: chain joins into a 2-ary tree built by splits.
    skewed, keygen = make_tree(2, 2, seed=b"skew")
    # Force artificial depth by splitting the same branch repeatedly:
    # manual surgery (analysis must catch what edits would never make).
    leaf = skewed.leaf_of("u0")
    from repro.keygraph.tree import TreeNode
    for extra in range(4):
        interior = TreeNode(1000 + extra, bytes(8))
        parent = leaf.parent
        parent.children[parent.children.index(leaf)] = interior
        interior.parent = parent
        leaf.parent = interior
        interior.children.append(leaf)
        interior.size = 1
    with pytest.raises(AssertionError):
        assert_balanced(skewed, slack=1)


def test_heuristic_keeps_balance_under_churn():
    tree, keygen = make_tree(100, 4, seed=b"churn")
    source = HmacDrbg(b"churn-ops")
    alive = [f"u{i}" for i in range(100)]
    for step in range(300):
        if source.randint_below(2) or len(alive) < 2:
            name = f"x{step}"
            tree.join(name, keygen())
            alive.append(name)
        else:
            index = source.randint_below(len(alive))
            tree.leave(alive.pop(index))
        shape = assert_balanced(tree, slack=1)
        assert shape.interior_fill > 0.5


def test_drift_ablation_table():
    from repro.experiments.ablations import tree_drift
    from repro.experiments.common import Scale
    tiny = Scale(name="drift-test", initial_size=64, n_requests=0,
                 group_sizes=(), degrees=(), n_sequences=1)
    table = tree_drift(tiny, n_operations=400, checkpoints=4)
    assert len(table.rows) >= 4
    for row in table.rows:
        _ops, _users, _height, _optimal, slack, fill, overhead = row
        assert slack <= 1
        assert fill > 0.5
        assert overhead < 1.5

"""Rekeying over arbitrary key graphs via key covering (paper §2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import GroupClient
from repro.core.messages import INDIVIDUAL_KEY, decrypt_records
from repro.crypto.drbg import HmacDrbg
from repro.keygraph.covering import CoverError
from repro.keygraph.materialized import (GraphRekeyOutcome,
                                         MaterializedGraphError,
                                         MaterializedKeyGraph)
from repro.crypto.suite import PAPER_SUITE_NO_SIG as SUITE


def make_figure1(seed=b"materialized"):
    source = HmacDrbg(seed)
    return MaterializedKeyGraph.figure1(SUITE, lambda: source.generate(8))


def make_client(user, individual_key, group):
    """A GroupClient primed with the user's current graph keyset."""
    client = GroupClient(user, SUITE, verify=False)
    client.set_individual_key(individual_key)
    for name in group.keyset(user):
        wire_id, version = group.wire_ref(name)
        client.keys[wire_id] = (version, group.key_bytes(name))
    group_key = group.group_key_name()
    if group_key is not None:
        client.root_ref = group.wire_ref(group_key)
    return client


def test_figure1_materializes():
    group, individual = make_figure1()
    assert group.users() == ["u1", "u2", "u3", "u4"]
    assert group.keyset("u2") == {"k2", "k12", "k234", "k1234"}
    assert group.group_key_name() == "k1234"


def test_leave_replaces_exactly_the_shared_keys():
    group, _ = make_figure1()
    old_group_key = group.key_bytes("k1234")
    outcome = group.leave("u1")
    # u1 held k1 (exclusive: removed), k12 (shared with u2), k1234.
    assert sorted(outcome.replaced) == ["k12", "k1234"]
    assert "k1" not in group.graph.k_nodes
    assert group.key_bytes("k1234") != old_group_key
    # Untouched keys stay untouched.
    assert group.wire_ref("k234")[1] == 0


def test_leave_cover_avoids_leaver_keys():
    group, individual = make_figure1()
    u1_keyset = {group.wire_ref(name) for name in group.keyset("u1")}
    outcome = group.leave("u1")
    for message in outcome.messages:
        for item in message.message.items:
            assert (item.enc_node_id, item.enc_version) not in u1_keyset


def test_leave_remaining_users_can_follow():
    group, individual = make_figure1()
    clients = {user: make_client(user, individual[user], group)
               for user in ("u2", "u3", "u4")}
    outcome = group.leave("u1")
    for message in outcome.messages:
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    new_group_ref = group.wire_ref("k1234")
    new_group_key = group.key_bytes("k1234")
    for user, client in clients.items():
        assert client.keys[new_group_ref[0]] == (
            new_group_ref[1], new_group_key), user
    # u2 also follows the k12 change.
    k12_ref = group.wire_ref("k12")
    assert clients["u2"].keys[k12_ref[0]] == (k12_ref[1],
                                              group.key_bytes("k12"))


def test_leave_uses_minimal_cover_on_figure1():
    group, _ = make_figure1()
    outcome = group.leave("u1")
    # k12 -> {u2} covered by k2 (1 item); k1234 -> {u2,u3,u4} covered by
    # k234 (1 item): 2 encryptions total.
    assert outcome.encryptions == 2


def test_leave_unknown_user():
    group, _ = make_figure1()
    with pytest.raises(MaterializedGraphError):
        group.leave("ghost")


def test_join_rekeys_gained_closure():
    group, individual = make_figure1()
    source = HmacDrbg(b"joiner")
    new_key = source.generate(8)
    clients = {user: make_client(user, individual[user], group)
               for user in group.users()}
    old_k234_version = group.wire_ref("k234")[1]
    outcome = group.join("u5", new_key, ["k234"])
    assert sorted(outcome.replaced) == ["k1234", "k234"]
    assert group.wire_ref("k234")[1] == old_k234_version + 1
    # Existing users follow via old-key encryptions.
    for message in outcome.messages:
        for receiver in message.receivers:
            if receiver in clients:
                clients[receiver].process_message(message.encoded)
    # The joiner learns exactly its closure from its bundle.
    joiner = GroupClient("u5", SUITE, verify=False)
    joiner.set_individual_key(new_key)
    bundle = outcome.messages[-1]
    assert bundle.receivers == ("u5",)
    joiner.process_message(bundle.encoded)
    for name in ("k234", "k1234"):
        wire_id, version = group.wire_ref(name)
        assert joiner.keys[wire_id] == (version, group.key_bytes(name))
    for user in ("u2", "u3", "u4"):
        wire_id, version = group.wire_ref("k1234")
        assert clients[user].keys[wire_id] == (
            version, group.key_bytes("k1234")), user


def test_join_backward_secrecy():
    """The joiner's bundle holds only NEW versions; captured pre-join
    items are useless to it."""
    group, individual = make_figure1()
    pre_join = group.leave("u3")  # generates some traffic first
    source = HmacDrbg(b"late")
    key = source.generate(8)
    outcome = group.join("u9", key, ["k234"])
    joiner = GroupClient("u9", SUITE, verify=False)
    joiner.set_individual_key(key)
    joiner.process_message(outcome.messages[-1].encoded)
    for message in pre_join.messages:
        for item in message.message.items:
            held = joiner.keys.get(item.enc_node_id)
            assert held is None or held[0] != item.enc_version


def test_cover_failure_when_no_safe_keys():
    """A graph where a user's every key is shared with the leaver is
    unservable — the covering machinery must say so, not mis-serve."""
    source = HmacDrbg(b"bad-graph")
    group = MaterializedKeyGraph(SUITE, lambda: source.generate(8))
    group.add_key("shared")
    group.add_user("a", source.generate(8), ["shared"])
    group.add_user("b", source.generate(8), ["shared"])
    with pytest.raises(CoverError):
        group.leave("a")


def test_multi_root_graph():
    """Key graphs may have several roots (paper §2.1)."""
    source = HmacDrbg(b"multiroot")
    group = MaterializedKeyGraph(SUITE, lambda: source.generate(8))
    for name in ("ka", "kb", "kab1", "kab2"):
        group.add_key(name)
    group.add_user("a", source.generate(8), ["ka", "kab1", "kab2"])
    group.add_user("b", source.generate(8), ["kb", "kab1", "kab2"])
    group.validate()
    outcome = group.leave("a")
    # Both shared roots replaced, each covered by kb.
    assert sorted(outcome.replaced) == ["kab1", "kab2"]
    assert outcome.encryptions == 2


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_random_graph_leave_properties(data):
    """Random layered graphs: after a leave, (1) the departed user's old
    keyset decrypts nothing, (2) every remaining user can recover every
    replaced key it holds."""
    source = HmacDrbg(b"random-graph")
    keygen = lambda: source.generate(8)
    group = MaterializedKeyGraph(SUITE, keygen)
    n_users = data.draw(st.integers(min_value=2, max_value=6))
    n_shared = data.draw(st.integers(min_value=1, max_value=4))
    # Individual graph keys (one per user) + shared keys over subsets.
    for index in range(n_users):
        group.add_key(f"own{index}")
    shared_members = []
    for index in range(n_shared):
        group.add_key(f"shared{index}")
        members = data.draw(st.sets(st.integers(0, n_users - 1),
                                    min_size=2, max_size=n_users))
        shared_members.append(sorted(members))
    individual = {}
    for index in range(n_users):
        keys = [f"own{index}"] + [f"shared{s}" for s in range(n_shared)
                                  if index in shared_members[s]]
        key = keygen()
        individual[f"u{index}"] = key
        group.add_user(f"u{index}", key, keys)
    group.validate()

    victim = f"u{data.draw(st.integers(0, n_users - 1))}"
    clients = {user: make_client(user, individual[user], group)
               for user in group.users() if user != victim}
    victim_refs = {group.wire_ref(name) for name in group.keyset(victim)}
    outcome = group.leave(victim)
    for message in outcome.messages:
        for item in message.message.items:
            assert (item.enc_node_id, item.enc_version) not in victim_refs
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    for user, client in clients.items():
        for name in group.keyset(user):
            wire_id, version = group.wire_ref(name)
            assert client.keys.get(wire_id) == (
                version, group.key_bytes(name)), (user, name)


def test_join_with_duplicate_key_names():
    """Duplicate entries in the joiner's key list collapse to one edge."""
    source = HmacDrbg(b"dup")
    group, _ = MaterializedKeyGraph.figure1(SUITE, lambda: source.generate(8))
    try:
        group.join("u9", source.generate(8), ["k234", "k234"])
    except Exception:
        return  # rejecting duplicates outright is also acceptable
    assert group.keyset("u9") == {"k234", "k1234"}
    group.validate()

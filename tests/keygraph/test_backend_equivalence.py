"""Object vs flat backend lockstep: same ids, same keys, same bytes.

The flat backend's contract is byte-identity, not just behavioural
equivalence: both backends draw from the keygen in the same order,
assign the same node ids, and pick the same joining points, so every
rekey message is bit-for-bit identical.  These properties drive random
join/leave/refresh histories through both backends in lockstep and
compare topology, versions, key material and wire bytes at every step.

Message headers embed a wall-clock timestamp, so the wire-byte tests
freeze ``time.time_ns`` around both servers.
"""

import time as _time
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.rekeying import BatchRekeyServer
from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.drbg import HmacDrbg
from repro.keygraph.backend import BACKENDS, build_tree, make_tree
from repro.keygraph.flat import FlatKeyTree
from repro.keygraph.tree import KeyTree


def make_keygen(seed):
    source = HmacDrbg(seed)
    return lambda: source.generate(8)


def topology(tree):
    """Full structural fingerprint in BFS order (ids, versions, keys)."""
    return [(node.node_id, node.version, node.user_id, node.key,
             [child.node_id for child in node.children])
            for node in tree.nodes()]


@contextmanager
def frozen_clock(value_ns=1_234_567_891_000):
    """Pin ``time.time_ns`` so message timestamps can't differ."""
    real = _time.time_ns
    _time.time_ns = lambda: value_ns
    try:
        yield
    finally:
        _time.time_ns = real


def test_backend_registry():
    assert BACKENDS == {"object": KeyTree, "flat": FlatKeyTree}
    assert isinstance(make_tree("flat", 3, make_keygen(b"r")), FlatKeyTree)
    assert isinstance(make_tree(None, 3, make_keygen(b"r")), KeyTree)


def test_build_is_byte_identical():
    members = [(f"u{i}", bytes([i]) * 8) for i in range(37)]
    for degree in (2, 3, 4, 7):
        obj = KeyTree.build(members, degree, make_keygen(b"build"))
        flat = FlatKeyTree.build(members, degree, make_keygen(b"build"))
        assert topology(obj) == topology(flat)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_lockstep_churn_is_byte_identical(data):
    """Property: any join/leave/refresh history leaves both backends
    with identical node ids, versions, key bytes and structure — and
    identical edit results at every single step."""
    degree = data.draw(st.integers(min_value=2, max_value=5))
    n = data.draw(st.integers(min_value=0, max_value=25))
    members = [(f"u{i}", bytes([i]) * 8) for i in range(n)]
    obj = build_tree("object", members, degree, make_keygen(b"lock"))
    flat = build_tree("flat", members, degree, make_keygen(b"lock"))
    alive = [user_id for user_id, _ in members]
    counter = 0
    for _ in range(data.draw(st.integers(min_value=0, max_value=25))):
        op = data.draw(st.sampled_from(
            ["join", "leave", "refresh"] if alive else ["join"]))
        if op == "join":
            name = f"x{counter}"
            counter += 1
            key = bytes([counter % 251]) * 8
            result_a, result_b = obj.join(name, key), flat.join(name, key)
            alive.append(name)
        elif op == "leave":
            index = data.draw(
                st.integers(min_value=0, max_value=len(alive) - 1))
            name = alive.pop(index)
            result_a, result_b = obj.leave(name), flat.leave(name)
        else:
            obj.root.replace_key(b"refresh!")
            flat.root.replace_key(b"refresh!")
            result_a = result_b = None
        if result_a is not None:
            assert [(c.node.node_id, c.old_key, c.old_version, c.new_key)
                    for c in result_a.changes] == \
                   [(c.node.node_id, c.old_key, c.old_version, c.new_key)
                    for c in result_b.changes]
        flat.validate()
        obj.validate()
        assert topology(obj) == topology(flat)
        assert obj.height() == flat.height()
        assert obj.n_keys == flat.n_keys


def drive(server, script):
    """Run an op script against a server, collecting every wire byte."""
    wire = []
    for op, user_id in script:
        if op == "join":
            outcome = server.join(user_id, b"\x11" * 8)
        elif op == "leave":
            outcome = server.leave(user_id)
        else:
            outcome = server.refresh()
        wire.extend(m.encoded for m in outcome.all_messages)
    return wire


@given(st.data())
@settings(max_examples=10, deadline=None)
def test_server_wire_bytes_identical(data):
    """Property: a GroupKeyServer emits bit-identical rekey messages on
    either backend, for every strategy."""
    strategy = data.draw(st.sampled_from(["user", "key", "group", "hybrid"]))
    n = data.draw(st.integers(min_value=1, max_value=12))
    members = [(f"m{i}", bytes([40 + i]) * 8) for i in range(n)]
    alive = [user_id for user_id, _ in members]
    script = []
    counter = 0
    for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
        op = data.draw(st.sampled_from(
            ["join", "leave", "refresh"] if len(alive) > 1 else ["join"]))
        if op == "join":
            name = f"n{counter}"
            counter += 1
            alive.append(name)
            script.append(("join", name))
        elif op == "leave":
            index = data.draw(
                st.integers(min_value=0, max_value=len(alive) - 1))
            script.append(("leave", alive.pop(index)))
        else:
            script.append(("refresh", None))

    wires = {}
    with frozen_clock():
        for backend in ("object", "flat"):
            server = GroupKeyServer(ServerConfig(
                degree=3, strategy=strategy, seed=b"wire-equiv",
                backend=backend))
            server.bootstrap(members)
            wires[backend] = drive(server, script)
    assert wires["object"] == wires["flat"]


def test_batch_flush_wire_bytes_identical():
    """BatchRekeyServer: queued joins/leaves flush to identical bytes."""
    members = [(f"b{i}", bytes([i + 1]) * 8) for i in range(17)]
    wires = {}
    with frozen_clock():
        for backend in ("object", "flat"):
            server = BatchRekeyServer(degree=3, seed=b"batch-equiv",
                                      backend=backend)
            server.bootstrap(members)
            wire = []
            for interval in range(4):
                for k in range(3):
                    server.request_join(f"j{interval}-{k}",
                                        server.new_individual_key())
                server.request_leave(f"b{interval * 3}")
                server.request_leave(f"j{interval}-1")  # cancels its join
                result = server.flush()
                if result.rekey_message is not None:
                    wire.append(result.rekey_message.encoded)
                wire.extend(m.encoded for m in result.joiner_messages)
            wires[backend] = wire
    assert wires["object"] == wires["flat"]
    assert wires["object"]  # the comparison actually saw traffic


def test_cluster_wire_bytes_identical():
    """Sharded cluster: per-shard trees and the root layer both follow
    the configured backend and emit identical bytes."""
    members = [(f"c{i}", bytes([i + 3]) * 8) for i in range(24)]
    wires = {}
    with frozen_clock():
        for backend in ("object", "flat"):
            cluster = ClusterCoordinator(ClusterConfig(
                n_shards=3, degree=3, seed=b"cluster-equiv",
                backend=backend))
            cluster.bootstrap(members)
            wire = []
            for i in range(6):
                outcome = cluster.join(f"cx{i}", bytes([100 + i]) * 8)
                wire.extend(m.encoded for m in outcome.all_messages)
                outcome = cluster.leave(f"c{i * 2}")
                wire.extend(m.encoded for m in outcome.all_messages)
            wires[backend] = wire
    assert wires["object"] == wires["flat"]
    assert wires["object"]


def test_flat_backend_golden_digest_inputs():
    """The fingerprint the golden-digest suite hashes (topology + key
    bytes) is backend-independent even through leaf splits and splices."""
    keygen_a, keygen_b = make_keygen(b"gold"), make_keygen(b"gold")
    obj = KeyTree(2, keygen_a)
    flat = FlatKeyTree(2, keygen_b)
    for i in range(9):  # grow from empty: exercises start_root + splits
        obj.join(f"g{i}", bytes([i + 7]) * 8)
        flat.join(f"g{i}", bytes([i + 7]) * 8)
    for user_id in ("g0", "g3", "g8"):
        obj.leave(user_id)
        flat.leave(user_id)
    assert topology(obj) == topology(flat)

"""The key-covering problem (paper §2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.keygraph.covering import (CoverError, exact_cover, greedy_cover,
                                     is_cover, tree_cover)
from repro.keygraph.graph import figure1_example
from repro.keygraph.tree import KeyTree


@pytest.fixture()
def figure1_group():
    return figure1_example().secure_group()


def test_exact_cover_on_figure1(figure1_group):
    # Leave of u1: cover {u2, u3, u4} — exactly key k234.
    cover = exact_cover(figure1_group, ["u2", "u3", "u4"])
    assert cover == ["k234"]
    assert is_cover(figure1_group, cover, ["u2", "u3", "u4"])


def test_exact_cover_needs_two_keys(figure1_group):
    cover = exact_cover(figure1_group, ["u1", "u2", "u3"])
    # No single key has userset {u1,u2,u3}; minimum is 2 (e.g. k12 + k3).
    assert len(cover) == 2
    assert is_cover(figure1_group, cover, ["u1", "u2", "u3"])


def test_exact_cover_single_user(figure1_group):
    cover = exact_cover(figure1_group, ["u3"])
    assert cover == ["k3"]


def test_exact_cover_empty_target(figure1_group):
    assert exact_cover(figure1_group, []) == []
    assert greedy_cover(figure1_group, []) == []


def test_cover_unknown_user(figure1_group):
    with pytest.raises(CoverError):
        exact_cover(figure1_group, ["ghost"])
    with pytest.raises(CoverError):
        greedy_cover(figure1_group, ["ghost"])


def test_greedy_cover_is_correct_on_figure1(figure1_group):
    for target in (["u2", "u3", "u4"], ["u1", "u2"], ["u1", "u2", "u3"],
                   ["u1", "u2", "u3", "u4"]):
        cover = greedy_cover(figure1_group, target)
        assert is_cover(figure1_group, cover, target)


def test_greedy_matches_exact_size_on_figure1(figure1_group):
    for target in (["u2", "u3", "u4"], ["u1", "u2", "u3", "u4"]):
        assert len(greedy_cover(figure1_group, target)) == len(
            exact_cover(figure1_group, target))


def test_exact_cover_guard():
    # A complete-ish group over 6 users has too many admissible keys.
    from repro.keygraph.complete import CompleteGroup
    source = HmacDrbg(b"guard")
    group = CompleteGroup([f"u{i}" for i in range(6)],
                          lambda: source.generate(8)).to_key_graph()
    secure = group.secure_group()
    with pytest.raises(CoverError):
        exact_cover(secure, [f"u{i}" for i in range(5)], max_keys=10)
    # Greedy handles it: the exact subset key exists, one pick suffices.
    cover = greedy_cover(secure, [f"u{i}" for i in range(5)])
    assert len(cover) == 1


def test_no_cover_exists():
    # Group where u1 shares every key with u2: {u1} alone is uncoverable.
    from repro.keygraph.graph import KeyGraph
    graph = KeyGraph()
    graph.add_u_node("u1")
    graph.add_u_node("u2")
    graph.add_k_node("k12")
    graph.add_edge("u1", "k12")
    graph.add_edge("u2", "k12")
    secure = graph.secure_group()
    with pytest.raises(CoverError):
        exact_cover(secure, ["u1"])
    with pytest.raises(CoverError):
        greedy_cover(secure, ["u1"])


def make_tree(n, degree, seed=b"cover-tree"):
    source = HmacDrbg(seed)
    keygen = lambda: source.generate(8)
    return KeyTree.build([(f"u{i}", keygen()) for i in range(n)],
                         degree, keygen)


def test_tree_cover_structure():
    tree = make_tree(27, 3)
    cover = tree_cover(tree, "u0")
    users_covered = set()
    for node in cover:
        users_covered.update(tree.userset(node))
    assert users_covered == set(tree.users()) - {"u0"}
    # Bound: at most (d-1)(h-1) nodes.
    assert len(cover) <= (3 - 1) * (tree.height() - 1)


def test_tree_cover_is_disjoint():
    tree = make_tree(16, 4)
    cover = tree_cover(tree, "u7")
    seen = set()
    for node in cover:
        users = set(tree.userset(node))
        assert not (users & seen)  # tree covers never overlap
        seen |= users


@given(n=st.integers(min_value=2, max_value=30),
       degree=st.integers(min_value=2, max_value=4),
       victim=st.integers(min_value=0, max_value=29))
@settings(max_examples=25, deadline=None)
def test_tree_cover_property(n, degree, victim):
    victim %= n
    tree = make_tree(n, degree)
    cover = tree_cover(tree, f"u{victim}")
    covered = set()
    for node in cover:
        covered.update(tree.userset(node))
    assert covered == set(tree.users()) - {f"u{victim}"}


def test_tree_cover_matches_exact_minimum_small():
    tree = make_tree(9, 3)
    group = tree.to_key_graph().secure_group()
    target = set(tree.users()) - {"u4"}
    structural = tree_cover(tree, "u4")
    exact = exact_cover(group, target)
    assert len(structural) == len(exact)


# -- the NP-hardness reduction (set cover -> key cover) -------------------------


def test_set_cover_reduction_preserves_optima():
    from repro.keygraph.covering import group_from_set_cover
    # Universe {1..6}; optimal set cover is 2 ({1,2,3} + {4,5,6}).
    group = group_from_set_cover(
        [1, 2, 3, 4, 5, 6],
        [[1, 2, 3], [4, 5, 6], [1, 4], [2, 5], [3, 6], [1]])
    target = [f"e{i}" for i in range(1, 7)]
    optimal = exact_cover(group, target)
    assert len(optimal) == 2
    assert set(optimal) == {"S0", "S1"}
    # Greedy achieves the ln(n) bound here too (it happens to be optimal).
    assert len(greedy_cover(group, target)) == 2


def test_set_cover_reduction_greedy_can_be_suboptimal():
    from repro.keygraph.covering import group_from_set_cover
    # The classic greedy trap: optimal 2 disjoint sets vs a tempting big
    # one. universe {1..6}: optimal = {1,3,5},{2,4,6}; greedy grabs
    # {1,2,3,4} first and needs 3.
    group = group_from_set_cover(
        [1, 2, 3, 4, 5, 6],
        [[1, 3, 5], [2, 4, 6], [1, 2, 3, 4], [5], [6]])
    target = [f"e{i}" for i in range(1, 7)]
    assert len(exact_cover(group, target)) == 2
    greedy = greedy_cover(group, target)
    assert is_cover(group, greedy, target)
    assert len(greedy) == 3  # the approximation gap, demonstrated


def test_set_cover_reduction_validation():
    from repro.keygraph.covering import group_from_set_cover
    with pytest.raises(CoverError):
        group_from_set_cover([], [])
    with pytest.raises(CoverError):
        group_from_set_cover([1], [[2]])

"""Periodic group-key refresh (no membership change)."""

import pytest

from repro.core.client import GroupClient
from repro.core.server import GroupKeyServer, ServerConfig, ServerError
from repro.crypto.suite import PAPER_SUITE_NO_SIG


def make_world(graph="tree", n=12):
    server = GroupKeyServer(ServerConfig(
        graph=graph, strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"refresh-tests"))
    clients = {}
    for i in range(n):
        uid = f"u{i}"
        key = server.new_individual_key()
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
        outcome = server.join(uid, key)
        client.process_control(outcome.control_messages[0].encoded)
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)
    return server, clients


@pytest.mark.parametrize("graph", ["tree", "star"])
def test_refresh_rotates_and_everyone_follows(graph):
    server, clients = make_world(graph)
    old_key = server.group_key()
    outcome = server.refresh()
    assert server.group_key() != old_key
    assert outcome.record.op == "refresh"
    assert outcome.record.encryptions == 1       # one {new}_{old}
    assert outcome.record.n_rekey_messages == 1  # one multicast
    for message in outcome.rekey_messages:
        assert set(message.receivers) == set(clients)
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    for uid, client in clients.items():
        assert client.group_key() == server.group_key(), uid


def test_refresh_empty_group_rejected():
    server = GroupKeyServer(ServerConfig(
        suite=PAPER_SUITE_NO_SIG, signing="none", seed=b"empty"))
    with pytest.raises(ServerError):
        server.refresh()


def test_refresh_does_not_change_subgroup_keys():
    server, _clients = make_world()
    subgroup_keys = {node.node_id: node.key for node in server.tree.nodes()
                     if node is not server.tree.root}
    server.refresh()
    for node in server.tree.nodes():
        if node is not server.tree.root:
            assert node.key == subgroup_keys[node.node_id]


def test_refresh_interleaves_with_membership_changes():
    server, clients = make_world()
    for round_index in range(3):
        outcome = server.refresh()
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)
        uid = f"extra{round_index}"
        key = server.new_individual_key()
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
        outcome = server.join(uid, key)
        client.process_control(outcome.control_messages[0].encoded)
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)
    for uid, client in clients.items():
        assert client.group_key() == server.group_key(), uid


def test_departed_user_cannot_follow_refresh():
    server, clients = make_world()
    departed = clients.pop("u4")
    outcome = server.leave("u4")
    for message in outcome.rekey_messages:
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    outcome = server.refresh()
    # The refresh item is encrypted under the post-leave group key,
    # which the departed user never obtained.
    for message in outcome.rekey_messages:
        assert "u4" not in message.receivers
        for item in message.message.items:
            held = departed.keys.get(item.enc_node_id)
            assert held is None or held[0] != item.enc_version

"""Merkle trees and the rekey-message signing policies (paper §4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (MSG_REKEY, SIG_MERKLE, SIG_NONE,
                                 SIG_PER_MESSAGE, EncryptedItem, Message)
from repro.core.signing import (MerkleSigner, MerkleTree, NullSigner,
                                PerMessageSigner, SigningError,
                                verify_message)
from repro.crypto.md5 import md5
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG


def digest_fn(data: bytes) -> bytes:
    return md5(data).digest()


@pytest.fixture(scope="module")
def keypair():
    return PAPER_SUITE.generate_signing_keypair(seed=b"signing-tests")


def make_messages(count):
    return [Message(msg_type=MSG_REKEY, seq=i,
                    items=[EncryptedItem(i, 0, bytes(8), bytes(16), 16)])
            for i in range(count)]


# -- Merkle tree ------------------------------------------------------------------


def test_merkle_single_leaf():
    tree = MerkleTree([b"only"], digest_fn)
    assert tree.root == b"only"
    assert tree.path(0) == []
    assert MerkleTree.verify_path(b"only", 0, [], b"only", digest_fn)


def test_merkle_paper_example_four_leaves():
    """§4's worked example: d1..d4, pairwise digests, one signature."""
    leaves = [digest_fn(f"M{i}".encode()) for i in range(1, 5)]
    tree = MerkleTree(leaves, digest_fn)
    d12 = digest_fn(leaves[0] + leaves[1])
    d34 = digest_fn(leaves[2] + leaves[3])
    assert tree.root == digest_fn(d12 + d34)
    # The certificate for M4 contains d3 and d12 (§4's D_34 and D_1-4).
    assert tree.path(3) == [leaves[2], d12]


@given(count=st.integers(min_value=1, max_value=33))
@settings(max_examples=30, deadline=None)
def test_merkle_every_path_verifies(count):
    leaves = [digest_fn(bytes([i]) * 4) for i in range(count)]
    tree = MerkleTree(leaves, digest_fn)
    for index, leaf in enumerate(leaves):
        assert MerkleTree.verify_path(leaf, index, tree.path(index),
                                      tree.root, digest_fn)


@given(count=st.integers(min_value=2, max_value=17))
@settings(max_examples=20, deadline=None)
def test_merkle_rejects_wrong_leaf(count):
    leaves = [digest_fn(bytes([i]) * 4) for i in range(count)]
    tree = MerkleTree(leaves, digest_fn)
    assert not MerkleTree.verify_path(b"\x00" * 16, 0, tree.path(0),
                                      tree.root, digest_fn)


def test_merkle_rejects_swapped_path_order():
    leaves = [digest_fn(bytes([i])) for i in range(8)]
    tree = MerkleTree(leaves, digest_fn)
    path = tree.path(2)
    tampered = [path[1], path[0], path[2]]
    assert not MerkleTree.verify_path(leaves[2], 2, tampered, tree.root,
                                      digest_fn)


def test_merkle_empty_rejected():
    with pytest.raises(ValueError):
        MerkleTree([], digest_fn)


# -- signers -----------------------------------------------------------------------


def test_null_signer_attaches_digest_only():
    signer = NullSigner(PAPER_SUITE_NO_SIG)
    messages = make_messages(3)
    signer.seal(messages)
    for message in messages:
        assert message.auth.scheme == SIG_NONE
        assert message.auth.digest == PAPER_SUITE_NO_SIG.digest(
            message.signed_region())
        verify_message(PAPER_SUITE_NO_SIG, message, None)
    assert signer.signatures_performed == 0


def test_per_message_signer(keypair):
    signer = PerMessageSigner(PAPER_SUITE, keypair)
    messages = make_messages(4)
    signer.seal(messages)
    assert signer.signatures_performed == 4
    for message in messages:
        assert message.auth.scheme == SIG_PER_MESSAGE
        verify_message(PAPER_SUITE, message, keypair.public_key)


def test_merkle_signer_one_signature(keypair):
    signer = MerkleSigner(PAPER_SUITE, keypair)
    messages = make_messages(7)
    signer.seal(messages)
    assert signer.signatures_performed == 1
    signatures = {bytes(m.auth.signature) for m in messages}
    assert len(signatures) == 1  # shared signature over the Merkle root
    for message in messages:
        assert message.auth.scheme == SIG_MERKLE
        verify_message(PAPER_SUITE, message, keypair.public_key)


def test_merkle_signer_messages_survive_wire(keypair):
    signer = MerkleSigner(PAPER_SUITE, keypair)
    messages = make_messages(5)
    signer.seal(messages)
    for message in messages:
        decoded = Message.decode(message.encode())
        verify_message(PAPER_SUITE, decoded, keypair.public_key)


def test_merkle_signer_empty_batch(keypair):
    MerkleSigner(PAPER_SUITE, keypair).seal([])  # no-op, no crash


def test_signers_require_signing_suite(keypair):
    with pytest.raises(ValueError):
        PerMessageSigner(PAPER_SUITE_NO_SIG, keypair)
    with pytest.raises(ValueError):
        MerkleSigner(PAPER_SUITE_NO_SIG, keypair)


# -- verification failures ------------------------------------------------------------


def tampered_copy(message, mutate):
    encoded = bytearray(message.encode())
    mutate(encoded)
    return Message.decode(bytes(encoded))


def test_verify_detects_payload_tamper(keypair):
    signer = MerkleSigner(PAPER_SUITE, keypair)
    messages = make_messages(3)
    signer.seal(messages)
    # Flip a byte inside the first item's ciphertext.
    bad = tampered_copy(messages[0],
                        lambda buf: buf.__setitem__(60, buf[60] ^ 1))
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, bad, keypair.public_key)


def test_verify_detects_digest_tamper(keypair):
    signer = PerMessageSigner(PAPER_SUITE, keypair)
    messages = make_messages(1)
    signer.seal(messages)
    messages[0].auth.digest = b"\x00" * 16
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, messages[0], keypair.public_key)


def test_verify_detects_merkle_path_tamper(keypair):
    signer = MerkleSigner(PAPER_SUITE, keypair)
    messages = make_messages(4)
    signer.seal(messages)
    auth = messages[1].auth
    auth.merkle_path[0] = b"\x00" * 16
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, messages[1], keypair.public_key)


def test_verify_detects_cross_message_signature_swap(keypair):
    """A signature from one request must not validate another request's
    messages (different Merkle roots)."""
    signer = MerkleSigner(PAPER_SUITE, keypair)
    batch_a = make_messages(2)
    batch_b = [Message(msg_type=MSG_REKEY, seq=99,
                       items=[EncryptedItem(9, 9, bytes(8), bytes(16), 16)])]
    signer.seal(batch_a)
    signer.seal(batch_b)
    batch_b[0].auth.signature = batch_a[0].auth.signature
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, batch_b[0], keypair.public_key)


def test_verify_requires_signature_when_expected(keypair):
    messages = make_messages(1)
    NullSigner(PAPER_SUITE).seal(messages)
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, messages[0], keypair.public_key)


def test_verify_missing_auth_block():
    message = make_messages(1)[0]
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, message, None)


def test_verify_unknown_scheme(keypair):
    messages = make_messages(1)
    NullSigner(PAPER_SUITE).seal(messages)
    messages[0].auth.scheme = 77
    with pytest.raises(SigningError):
        verify_message(PAPER_SUITE, messages[0], keypair.public_key)


def test_verify_no_digest_suite_accepts_bare_message():
    from repro.crypto.suite import PAPER_SUITE_ENC_ONLY
    message = make_messages(1)[0]
    verify_message(PAPER_SUITE_ENC_ONLY, message, None)  # nothing to check

"""GroupKeyServer behaviour: config, ACL, protocol flows, determinism."""

import pytest

from repro.core.messages import (MSG_DATA, MSG_JOIN_ACK, MSG_JOIN_DENIED,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                                 MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                                 MSG_REKEY, Message)
from repro.core.server import (AccessDenied, GroupKeyServer, ServerConfig,
                               ServerError)
from repro.crypto.suite import (PAPER_SUITE, PAPER_SUITE_ENC_ONLY,
                                PAPER_SUITE_NO_SIG)


def make_server(**overrides):
    defaults = dict(strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
                    signing="none", seed=b"server-tests")
    defaults.update(overrides)
    return GroupKeyServer(ServerConfig(**defaults))


def populated_server(n=8, **overrides):
    server = make_server(**overrides)
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    return server, dict(members)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServerError):
            ServerConfig(graph="mesh").validate()
        with pytest.raises(ServerError):
            ServerConfig(strategy="telepathy").validate()
        with pytest.raises(ServerError):
            ServerConfig(signing="wax-seal").validate()
        with pytest.raises(ServerError):
            ServerConfig(signing="merkle",
                         suite=PAPER_SUITE_ENC_ONLY).validate()

    def test_star_ignores_strategy_field(self):
        ServerConfig(graph="star", strategy="anything-goes",
                     signing="none").validate()


class TestMembership:
    def test_bootstrap(self):
        server, members = populated_server(10)
        assert server.n_users == 10
        assert sorted(server.members()) == sorted(members)
        assert server.is_member("u3")
        assert not server.is_member("stranger")

    def test_bootstrap_requires_empty_group(self):
        server, _ = populated_server(3)
        with pytest.raises(ServerError):
            server.bootstrap([("x", server.new_individual_key())])

    def test_group_key_ref_empty_group(self):
        server = make_server()
        with pytest.raises(ServerError):
            server.group_key_ref()

    def test_join_duplicate(self):
        server, _ = populated_server(3)
        with pytest.raises(ServerError):
            server.join("u0", server.new_individual_key())

    def test_leave_unknown(self):
        server, _ = populated_server(3)
        with pytest.raises(ServerError):
            server.leave("stranger")

    def test_join_without_registered_key(self):
        server, _ = populated_server(3)
        with pytest.raises(ServerError):
            server.join("newbie")

    def test_registered_key_flow(self):
        server, _ = populated_server(3)
        key = server.new_individual_key()
        server.register_individual_key("newbie", key)
        outcome = server.join("newbie")
        assert server.is_member("newbie")
        assert outcome.record.op == "join"

    def test_register_rejects_bad_length(self):
        server = make_server()
        with pytest.raises(ServerError):
            server.register_individual_key("x", b"too-short")


class TestAccessControl:
    def test_acl_denies_outsider(self):
        server = make_server(access_list={"alice", "bob"})
        with pytest.raises(AccessDenied):
            server.join("mallory", server.new_individual_key())
        server.join("alice", server.new_individual_key())
        assert server.is_member("alice")

    def test_acl_checked_at_bootstrap(self):
        server = make_server(access_list={"alice"})
        with pytest.raises(AccessDenied):
            server.bootstrap([("mallory", server.new_individual_key())])


class TestOutcomes:
    def test_join_outcome_shape(self):
        server, _ = populated_server(8)
        outcome = server.join("u8", server.new_individual_key())
        record = outcome.record
        assert record.op == "join"
        assert record.n_rekey_messages == len(outcome.rekey_messages)
        assert record.rekey_bytes == sum(m.size for m in outcome.rekey_messages)
        assert record.encryptions > 0
        assert record.seconds >= 0
        assert record.n_users_after == 9
        assert len(outcome.control_messages) == 1
        ack = outcome.control_messages[0].message
        assert ack.msg_type == MSG_JOIN_ACK
        leaf_id = int.from_bytes(ack.body[:4], "big")
        assert leaf_id == server.tree.leaf_of("u8").node_id

    def test_leave_outcome_shape(self):
        server, _ = populated_server(8)
        outcome = server.leave("u5")
        assert outcome.record.op == "leave"
        assert outcome.record.n_users_after == 7
        assert outcome.control_messages[0].message.msg_type == MSG_LEAVE_ACK
        for message in outcome.rekey_messages:
            assert "u5" not in message.receivers

    def test_history_accumulates(self):
        server, _ = populated_server(4)
        server.join("x", server.new_individual_key())
        server.leave("x")
        assert [r.op for r in server.history] == ["join", "leave"]

    def test_rekey_messages_have_resolved_receivers(self):
        server, _ = populated_server(9)
        outcome = server.leave("u4")
        all_receivers = set()
        for message in outcome.rekey_messages:
            assert message.receivers
            all_receivers.update(message.receivers)
        assert all_receivers == set(server.members())


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        def run():
            server, _ = populated_server(8, seed=b"fixed-seed")
            outcome = server.join("x", server.new_individual_key())
            return [m.encoded for m in outcome.rekey_messages]

        first, second = run(), run()
        # Timestamps differ; compare everything else via re-decode.
        assert len(first) == len(second)
        for a, b in zip(first, second):
            ma, mb = Message.decode(a), Message.decode(b)
            assert [i.ciphertext for i in ma.items] == [
                i.ciphertext for i in mb.items]

    def test_different_seed_different_keys(self):
        a = make_server(seed=b"seed-a").new_individual_key()
        b = make_server(seed=b"seed-b").new_individual_key()
        assert a != b


class TestGroupData:
    def test_seal_group_message(self):
        server, members = populated_server(5)
        outbound = server.seal_group_message(b"attack at dawn")
        assert outbound.message.msg_type == MSG_DATA
        assert set(outbound.receivers) == set(server.members())
        # Decryptable under the group key.
        from repro.core.client import GroupClient
        uid, key = next(iter(members.items()))
        client = GroupClient(uid, server.suite, verify=False)
        client.set_individual_key(key)
        ref = server.group_key_ref()
        client.keys[ref[0]] = (ref[1], server.group_key())
        client.root_ref = ref
        assert client.open_data(outbound.encoded) == b"attack at dawn"


class TestDatagramInterface:
    def test_join_and_leave_datagrams(self):
        server, _ = populated_server(4)
        key = server.new_individual_key()
        server.register_individual_key("newbie", key)
        request = Message(msg_type=MSG_JOIN_REQUEST, body=b"newbie")
        replies = server.handle_datagram(request.encode())
        types = [m.message.msg_type for m in replies]
        assert MSG_JOIN_ACK in types and MSG_REKEY in types
        assert server.is_member("newbie")

        leave = Message(msg_type=MSG_LEAVE_REQUEST, body=b"newbie")
        replies = server.handle_datagram(leave.encode())
        types = [m.message.msg_type for m in replies]
        assert MSG_LEAVE_ACK in types
        assert not server.is_member("newbie")

    def test_denied_datagrams(self):
        server, _ = populated_server(4)
        # Join without a registered key -> denied.
        request = Message(msg_type=MSG_JOIN_REQUEST, body=b"ghost")
        replies = server.handle_datagram(request.encode())
        assert replies[0].message.msg_type == MSG_JOIN_DENIED
        # Leave of a non-member -> denied.
        leave = Message(msg_type=MSG_LEAVE_REQUEST, body=b"ghost")
        replies = server.handle_datagram(leave.encode())
        assert replies[0].message.msg_type == MSG_LEAVE_DENIED

    def test_malformed_datagram(self):
        server, _ = populated_server(2)
        with pytest.raises(ServerError):
            server.handle_datagram(b"junk")
        with pytest.raises(ServerError):
            server.handle_datagram(
                Message(msg_type=MSG_DATA, body=b"u0").encode())


class TestSigningModes:
    def test_merkle_signs_once_per_request(self):
        server, _ = populated_server(8, suite=PAPER_SUITE, signing="merkle",
                                     strategy="key")
        outcome = server.leave("u3")
        assert outcome.record.signatures == 1
        assert outcome.record.n_rekey_messages > 1

    def test_per_message_signs_each(self):
        server, _ = populated_server(8, suite=PAPER_SUITE,
                                     signing="per-message", strategy="key")
        outcome = server.leave("u3")
        assert outcome.record.signatures == outcome.record.n_rekey_messages

    def test_public_key_exposure(self):
        signed, _ = populated_server(2, suite=PAPER_SUITE, signing="merkle")
        assert signed.public_key is not None
        unsigned, _ = populated_server(2)
        assert unsigned.public_key is None

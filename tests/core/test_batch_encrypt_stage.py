"""The vectorized encrypt stage must be invisible on the wire."""

import pytest

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import batchenc
from repro.crypto.suite import PAPER_SUITE


def _run_leave(monkeypatch, min_batch_jobs):
    monkeypatch.setattr(batchenc, "MIN_BATCH_JOBS", min_batch_jobs)
    monkeypatch.setattr("time.time_ns", lambda: 1_234_567_890_000_000_000)
    server = GroupKeyServer(ServerConfig(strategy="group", degree=4,
                                         suite=PAPER_SUITE, signing="merkle",
                                         seed=b"batch-stage"))
    for i in range(24):
        server.join(f"u{i}", server.new_individual_key())
    outcome = server.leave("u7")
    return [message.encoded for message in outcome.all_messages]


@pytest.mark.skipif(not batchenc.HAVE_NUMPY, reason="numpy unavailable")
def test_batched_encrypt_stage_is_wire_identical(monkeypatch):
    routed = {"jobs": 0}
    original = batchenc.cbc_encrypt_nopad_many

    def spy(jobs):
        routed["jobs"] += len(jobs)
        return original(jobs)

    monkeypatch.setattr(batchenc, "cbc_encrypt_nopad_many", spy)
    batched = _run_leave(monkeypatch, min_batch_jobs=2)
    monkeypatch.setattr(batchenc, "cbc_encrypt_nopad_many", original)
    scalar = _run_leave(monkeypatch, min_batch_jobs=10 ** 9)
    assert routed["jobs"] > 0          # the batch path actually ran
    assert batched == scalar           # ... and changed nothing on the wire

"""Ticket-based authorization (paper footnote 7)."""

import pytest

from repro.core.server import AccessDenied, GroupKeyServer, ServerConfig
from repro.core.tickets import Ticket, TicketAuthority, TicketError
from repro.crypto.suite import PAPER_SUITE_NO_SIG


@pytest.fixture(scope="module")
def authority():
    return TicketAuthority(seed=b"ticket-tests")


def ticketed_server(authority, group_id=7):
    return GroupKeyServer(ServerConfig(
        group_id=group_id, suite=PAPER_SUITE_NO_SIG, signing="none",
        seed=b"ticket-server", ticket_authority=authority.public_key))


def test_ticket_roundtrip(authority):
    ticket = authority.issue("alice", group_id=7)
    decoded = Ticket.decode(ticket.encode())
    assert decoded == ticket
    TicketAuthority.verify(authority.public_key, decoded, "alice", 7)


def test_ticket_admits_user(authority):
    server = ticketed_server(authority)
    ticket = authority.issue("alice", group_id=7)
    outcome = server.join("alice", server.new_individual_key(),
                          ticket=ticket)
    assert server.is_member("alice")
    assert outcome.record.op == "join"


def test_join_without_ticket_denied(authority):
    server = ticketed_server(authority)
    with pytest.raises(AccessDenied):
        server.join("alice", server.new_individual_key())


def test_wrong_user_or_group_denied(authority):
    server = ticketed_server(authority)
    mallory_using_alices_ticket = authority.issue("alice", group_id=7)
    with pytest.raises(AccessDenied):
        server.join("mallory", server.new_individual_key(),
                    ticket=mallory_using_alices_ticket)
    wrong_group = authority.issue("alice", group_id=99)
    with pytest.raises(AccessDenied):
        server.join("alice", server.new_individual_key(),
                    ticket=wrong_group)


def test_expired_ticket_denied(authority):
    server = ticketed_server(authority)
    stale = authority.issue("alice", group_id=7, lifetime_seconds=0.0)
    with pytest.raises(AccessDenied):
        server.join("alice", server.new_individual_key(), ticket=stale)


def test_forged_ticket_denied(authority):
    server = ticketed_server(authority)
    impostor = TicketAuthority(seed=b"impostor")
    forged = impostor.issue("alice", group_id=7)
    with pytest.raises(AccessDenied):
        server.join("alice", server.new_individual_key(), ticket=forged)


def test_tampered_ticket_rejected(authority):
    ticket = authority.issue("alice", group_id=7)
    blob = bytearray(ticket.encode())
    blob[1] ^= 0x01  # 'a' -> '`' (stays valid UTF-8, changes identity)
    tampered = Ticket.decode(bytes(blob))
    with pytest.raises(TicketError):
        TicketAuthority.verify(authority.public_key, tampered,
                               tampered.user_id, 7)


def test_ticket_decode_garbage():
    with pytest.raises(TicketError):
        Ticket.decode(b"\x05ab")
    with pytest.raises(TicketError):
        Ticket.decode(b"")


def test_issue_validation(authority):
    with pytest.raises(TicketError):
        authority.issue("", 7)
    with pytest.raises(TicketError):
        authority.issue("x" * 300, 7)


def test_bootstrap_skips_ticket_check(authority):
    server = ticketed_server(authority)
    server.bootstrap([("op-admitted", server.new_individual_key())])
    assert server.is_member("op-admitted")


def test_ticket_expiry_with_explicit_clock(authority):
    ticket = authority.issue("bob", 7, lifetime_seconds=10.0, now_us=1_000)
    TicketAuthority.verify(authority.public_key, ticket, "bob", 7,
                           now_us=5_000_000)
    with pytest.raises(TicketError):
        TicketAuthority.verify(authority.public_key, ticket, "bob", 7,
                               now_us=20_000_000)

"""Server snapshot/restore and warm-standby failover (paper §6)."""

import json

import pytest

from repro.core.client import GroupClient
from repro.core.persistence import (PersistenceError, restore,
                                    restore_encrypted, snapshot,
                                    snapshot_encrypted)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG


def populated(graph="tree", signing="none", suite=PAPER_SUITE_NO_SIG, n=20):
    server = GroupKeyServer(ServerConfig(
        graph=graph, strategy="key", degree=3, suite=suite,
        signing=signing, seed=b"persist-tests"))
    server.bootstrap([(f"u{i}", server.new_individual_key())
                      for i in range(n)])
    return server


def test_snapshot_restores_identical_state():
    primary = populated()
    primary.join("joiner", primary.new_individual_key())
    primary.register_individual_key("pending", primary.new_individual_key())
    standby = restore(snapshot(primary))
    assert standby.group_key() == primary.group_key()
    assert standby.group_key_ref() == primary.group_key_ref()
    assert sorted(standby.members()) == sorted(primary.members())
    assert standby._seq == primary._seq
    assert standby._registered_keys == primary._registered_keys
    standby.tree.validate()
    # Tree shape identity: node ids, versions, keys.
    primary_nodes = {(n.node_id, n.version, n.key, n.user_id)
                     for n in primary.tree.nodes()}
    standby_nodes = {(n.node_id, n.version, n.key, n.user_id)
                     for n in standby.tree.nodes()}
    assert primary_nodes == standby_nodes


def test_failover_is_transparent_to_clients():
    """Clients keyed by the primary keep working against the standby."""
    primary = populated()
    key = primary.new_individual_key()
    client = GroupClient("alice", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(key)
    outcome = primary.join("alice", key)
    client.process_control(outcome.control_messages[0].encoded)
    for message in outcome.rekey_messages:
        if "alice" in message.receivers:
            client.process_message(message.encoded)
    assert client.group_key() == primary.group_key()

    standby = restore(snapshot(primary))
    # The standby serves a leave; alice follows it seamlessly.
    outcome = standby.leave("u3")
    for message in outcome.rekey_messages:
        if "alice" in message.receivers:
            client.process_message(message.encoded)
    assert client.group_key() == standby.group_key()
    assert client.group_key() != primary.group_key()


def test_standby_diverges_in_future_keys():
    primary = populated()
    standby = restore(snapshot(primary))
    a = primary.join("x", primary.new_individual_key())
    b = standby.join("x", standby.new_individual_key())
    assert primary.group_key() != standby.group_key()  # reseeded DRBG


def test_signing_keypair_survives():
    primary = populated(signing="merkle", suite=PAPER_SUITE)
    standby = restore(snapshot(primary))
    assert standby.signing_keypair.n == primary.signing_keypair.n
    assert standby.signing_keypair.d == primary.signing_keypair.d
    # A client verifying against the primary's public key accepts the
    # standby's messages.
    key = standby.new_individual_key()
    client = GroupClient("bob", PAPER_SUITE, primary.public_key)
    client.set_individual_key(key)
    outcome = standby.join("bob", key)
    client.process_control(outcome.control_messages[0].encoded)
    for message in outcome.rekey_messages:
        if "bob" in message.receivers:
            client.process_message(message.encoded)  # signature verifies
    assert client.group_key() == standby.group_key()


def test_star_snapshot():
    primary = populated(graph="star")
    standby = restore(snapshot(primary))
    assert standby.star.group_key == primary.star.group_key
    assert standby.star.group_key_version == primary.star.group_key_version
    assert sorted(standby.members()) == sorted(primary.members())
    outcome = standby.leave("u0")
    assert outcome.record.encryptions == 19


def test_access_list_survives():
    server = GroupKeyServer(ServerConfig(
        suite=PAPER_SUITE_NO_SIG, signing="none", seed=b"acl",
        access_list={"vip"}))
    server.bootstrap([])
    standby = restore(snapshot(server))
    from repro.core.server import AccessDenied
    with pytest.raises(AccessDenied):
        standby.join("mallory", standby.new_individual_key())


def test_malformed_snapshots_rejected():
    with pytest.raises(PersistenceError):
        restore(b"not json at all \xff")
    with pytest.raises(PersistenceError):
        restore(json.dumps({"format": 99}).encode())


def test_encrypted_snapshot_roundtrip():
    primary = populated()
    storage_key, iv = bytes(8), bytes(8)
    blob = snapshot_encrypted(primary, storage_key, iv)
    assert b"\"tree\"" not in blob  # actually encrypted
    standby = restore_encrypted(blob, storage_key, iv, PAPER_SUITE_NO_SIG)
    assert standby.group_key() == primary.group_key()


def test_encrypted_snapshot_wrong_key():
    primary = populated()
    blob = snapshot_encrypted(primary, bytes(8), bytes(8))
    with pytest.raises(PersistenceError):
        restore_encrypted(blob, b"WRONGKEY", bytes(8), PAPER_SUITE_NO_SIG)


def test_snapshot_after_heavy_churn():
    server = populated(n=50)
    for i in range(30):
        server.join(f"j{i}", server.new_individual_key())
    for i in range(0, 40, 2):
        server.leave(f"u{i}" if server.is_member(f"u{i}") else f"j{i // 2}")
    standby = restore(snapshot(server))
    standby.tree.validate()
    assert standby.n_users == server.n_users
    assert standby.group_key() == server.group_key()

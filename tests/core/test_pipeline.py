"""Unit tests for the staged rekey pipeline and its shared helpers."""

import pytest

from repro.core.messages import (Destination, KeyRecord, MSG_REKEY,
                                 STRATEGY_NONE)
from repro.core.pipeline import (KeyMaterialSource, PipelineError,
                                 RekeyPipeline, Sequencer, STAGES,
                                 STAGE_DISPATCH, STAGE_ENCRYPT, STAGE_PLAN,
                                 STAGE_SIGN, make_signer, validate_signing)
from repro.core.signing import MerkleSigner, NullSigner, PerMessageSigner
from repro.core.strategies.base import (PendingItem, PlannedMessage,
                                        RekeyContext, resolve_item)
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG
from repro.observability import Instrumentation


def make_material(seed=b"pipeline-test"):
    return KeyMaterialSource(PAPER_SUITE, seed, b"unit")


def simple_planner(material):
    """A planner scheduling one single-record multicast encryption."""
    key = material.new_key()

    def planner(ctx):
        record = KeyRecord(7, 2, material.new_key())
        item = ctx.encrypt(key, [record], 7, 1)
        return [PlannedMessage(Destination.to_all(), [item],
                               lambda: ("u0", "u1"))]
    return planner


class TestValidateSigning:
    def test_accepts_known_modes(self):
        for mode in ("none", "per-message", "merkle"):
            validate_signing(mode, PAPER_SUITE)

    def test_rejects_unknown_mode(self):
        with pytest.raises(PipelineError):
            validate_signing("carrier-pigeon", PAPER_SUITE)

    def test_rejects_signing_without_signature_suite(self):
        with pytest.raises(PipelineError):
            validate_signing("merkle", PAPER_SUITE_NO_SIG)
        validate_signing("none", PAPER_SUITE_NO_SIG)  # fine

    def test_custom_error_type(self):
        class Boom(ValueError):
            pass
        with pytest.raises(Boom):
            validate_signing("nope", PAPER_SUITE, error=Boom)


class TestKeyMaterialSource:
    def test_seeded_streams_are_deterministic(self):
        one, two = make_material(), make_material()
        assert [one.new_key() for _ in range(4)] == \
               [two.new_key() for _ in range(4)]
        assert one.new_iv() == two.new_iv()

    def test_personalization_separates_domains(self):
        one = KeyMaterialSource(PAPER_SUITE, b"seed", b"alpha")
        two = KeyMaterialSource(PAPER_SUITE, b"seed", b"beta")
        assert one.new_key() != two.new_key()

    def test_sizes(self):
        material = make_material()
        assert len(material.new_key()) == PAPER_SUITE.key_size
        assert len(material.new_iv()) == PAPER_SUITE.block_size
        assert len(material.new_individual_key()) == PAPER_SUITE.key_size

    def test_custom_sources_bypass_drbg(self):
        keys = iter([b"k" * 8, b"l" * 8])
        material = KeyMaterialSource(PAPER_SUITE,
                                     key_source=lambda: next(keys),
                                     iv_source=lambda: b"i" * 8)
        assert material.new_key() == b"k" * 8
        assert material.new_iv() == b"i" * 8


class TestMakeSigner:
    def test_modes(self):
        signer, keypair = make_signer(PAPER_SUITE, "none", b"s")
        assert isinstance(signer, NullSigner) and keypair is None
        signer, keypair = make_signer(PAPER_SUITE, "per-message", b"s")
        assert isinstance(signer, PerMessageSigner) and keypair is not None
        signer, keypair = make_signer(PAPER_SUITE, "merkle", b"s")
        assert isinstance(signer, MerkleSigner) and keypair is not None

    def test_seeded_keypair_is_deterministic(self):
        _, one = make_signer(PAPER_SUITE, "merkle", b"seed")
        _, two = make_signer(PAPER_SUITE, "merkle", b"seed")
        assert one.public_key == two.public_key

    def test_invalid_mode_raises_given_error(self):
        with pytest.raises(PipelineError):
            make_signer(PAPER_SUITE, "smoke-signals")


class TestSequencer:
    def test_monotonic_from_start(self):
        seq = Sequencer()
        assert [seq.next() for _ in range(3)] == [1, 2, 3]
        assert seq.value == 3

    def test_restores_from_value(self):
        seq = Sequencer(start=41)
        assert seq.next() == 42


class TestPendingItem:
    def test_deferred_context_matches_immediate_bytes(self):
        material = make_material()
        key, iv = material.new_key(), material.new_iv()
        records = [KeyRecord(3, 1, material.new_key())]

        immediate = RekeyContext(PAPER_SUITE, lambda: iv)
        direct = immediate.encrypt(key, records, 3, 0)

        deferred = RekeyContext(PAPER_SUITE, lambda: iv, defer=True)
        pending = deferred.encrypt(key, records, 3, 0)
        assert isinstance(pending, PendingItem)
        assert immediate.encryptions == deferred.encryptions == 1
        deferred.materialize()
        assert resolve_item(pending).encode() == direct.encode()

    def test_resolve_requires_materialization(self):
        material = make_material()
        ctx = RekeyContext(PAPER_SUITE, material.new_iv, defer=True)
        pending = ctx.encrypt(material.new_key(),
                              [KeyRecord(1, 1, material.new_key())], 1, 0)
        with pytest.raises(ValueError):
            resolve_item(pending)


class TestRekeyPipeline:
    def test_run_produces_wire_messages(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material, group_id=9)
        run = pipeline.run("join", simple_planner(material),
                           root_ref=lambda: (5, 3), user_id="u9")
        assert run.op == "join" and run.user_id == "u9"
        assert len(run.messages) == 1
        message = run.messages[0].message
        assert message.msg_type == MSG_REKEY and message.group_id == 9
        assert message.seq == 1
        assert (message.root_node_id, message.root_version) == (5, 3)
        assert run.messages[0].receivers == ("u0", "u1")
        assert run.encryptions == 1
        assert set(run.stage_seconds) == set(STAGES)
        assert run.seconds >= sum(run.stage_seconds.values()) * 0.0  # present

    def test_empty_plan_skips_root_ref_and_seq(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material)

        def exploding_root_ref():
            raise AssertionError("root_ref must not be called")

        run = pipeline.run("leave", lambda ctx: [],
                           root_ref=exploding_root_ref)
        assert run.messages == [] and run.signatures == 0
        assert pipeline.sequencer.value == 0

    def test_hooks_fire_in_stage_order(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material)
        fired = []
        for stage in STAGES:
            pipeline.add_hook(stage, lambda run, s=stage: fired.append(s))
        pipeline.run("join", simple_planner(material),
                     root_ref=lambda: (1, 1))
        assert fired == [STAGE_PLAN, STAGE_ENCRYPT, STAGE_SIGN,
                         STAGE_DISPATCH]

    def test_hook_sees_stage_results(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material)
        seen = {}
        pipeline.add_hook(STAGE_PLAN,
                          lambda run: seen.setdefault("plans", len(run.plans)))
        pipeline.add_hook(STAGE_DISPATCH,
                          lambda run: seen.setdefault("messages",
                                                      len(run.messages)))
        pipeline.run("join", simple_planner(material),
                     root_ref=lambda: (1, 1))
        assert seen == {"plans": 1, "messages": 1}

    def test_unknown_hook_stage_rejected(self):
        pipeline = RekeyPipeline(PAPER_SUITE, make_material())
        with pytest.raises(PipelineError):
            pipeline.add_hook("teleport", lambda run: None)

    def test_shared_sequencer_spans_runs(self):
        material = make_material()
        sequencer = Sequencer()
        pipeline = RekeyPipeline(PAPER_SUITE, material, sequencer=sequencer)
        pipeline.run("join", simple_planner(material),
                     root_ref=lambda: (1, 1))
        run = pipeline.run("join", simple_planner(material),
                           root_ref=lambda: (1, 1))
        assert run.messages[0].message.seq == 2

    def test_seal_whole_batch_vs_individually(self):
        def two_plan_planner(material):
            inner = simple_planner(material)

            def planner(ctx):
                return inner(ctx) + inner(ctx)
            return planner

        runs = {}
        for individually in (False, True):
            material = make_material()
            signer, _ = make_signer(PAPER_SUITE, "merkle", b"seed")
            pipeline = RekeyPipeline(PAPER_SUITE, material, signer=signer,
                                     seal_individually=individually)
            runs[individually] = pipeline.run(
                "leave", two_plan_planner(material), root_ref=lambda: (1, 1))
        # One Merkle signature covers both messages; individual sealing
        # signs each message on its own (the batch server's behaviour).
        assert runs[False].signatures == 1
        assert runs[True].signatures == 2

    def test_no_signer_means_no_auth_blocks(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material, signer=None)
        run = pipeline.run("join", simple_planner(material),
                           root_ref=lambda: (1, 1))
        assert run.signatures == 0
        assert run.messages[0].message.auth is None

    def test_instrumentation_receives_runs(self):
        material = make_material()
        inst = Instrumentation("pipeline-test")
        pipeline = RekeyPipeline(PAPER_SUITE, material, instrumentation=inst)
        pipeline.run("join", simple_planner(material),
                     root_ref=lambda: (1, 1))
        assert inst.counters.get("join.runs") == 1
        assert inst.timers.stat("join.plan").count == 1
        assert inst.timers.stat("join.total").count == 1

    def test_strategy_code_lands_on_wire(self):
        material = make_material()
        pipeline = RekeyPipeline(PAPER_SUITE, material)
        run = pipeline.run("join", simple_planner(material),
                           strategy_code=STRATEGY_NONE,
                           root_ref=lambda: (1, 1))
        assert run.messages[0].message.strategy == STRATEGY_NONE

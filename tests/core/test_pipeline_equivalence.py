"""Equivalence goldens: the staged pipeline reproduces the legacy bytes.

The PR that introduced :mod:`repro.core.pipeline` replaced three
hand-rolled rekey paths (``GroupKeyServer``, ``BatchRekeyServer``,
``MaterializedKeyGraph``) with one staged plan -> encrypt -> sign ->
dispatch pipeline.  These tests pin the observable output of seeded
join/leave sequences — every outbound message byte, every receiver
list, every encryption/signature count — to digests captured from the
pre-refactor implementation, so any later change to the pipeline that
perturbs the wire bytes or the paper-facing counters fails loudly.

Timestamps are the only nondeterminism in the wire format; the
scenarios pin ``time.time_ns`` to a constant.
"""

import hashlib
from unittest import mock

from repro.batch.rekeying import BatchRekeyServer
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import drbg
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG
from repro.keygraph.materialized import MaterializedKeyGraph

FIXED_TIME_NS = 893_520_000_000_000_000  # 1998-04-26, fixed for all runs


def _freeze_time():
    return mock.patch("time.time_ns", return_value=FIXED_TIME_NS)


def _hash_messages(h, messages):
    for message in messages:
        h.update(message.encoded)
        h.update(repr(tuple(message.receivers)).encode())


SERVER_SCRIPT = (("join", "n0"), ("leave", "u2"), ("join", "n1"),
                 ("leave", "u5"), ("refresh", None), ("leave", "n0"),
                 ("join", "u2"))


def run_server_scenario(graph, strategy, signing, suite):
    """One seeded join/leave/refresh sequence; digest + counters."""
    config = ServerConfig(graph=graph, degree=3, strategy=strategy,
                          suite=suite, signing=signing, seed=b"equivalence")
    server = GroupKeyServer(config)
    members = [(f"u{i}", server.new_individual_key()) for i in range(8)]
    server.bootstrap(members)
    h = hashlib.sha256()
    counters = []
    with _freeze_time():
        for op, user in SERVER_SCRIPT:
            if op == "join":
                outcome = server.join(user, server.new_individual_key())
            elif op == "leave":
                outcome = server.leave(user)
            else:
                outcome = server.refresh()
            _hash_messages(h, outcome.all_messages)
            record = outcome.record
            counters.append((record.encryptions, record.signatures,
                             record.n_rekey_messages, record.rekey_bytes,
                             record.max_message_bytes,
                             record.key_changes_total,
                             record.n_users_after))
    return h.hexdigest(), counters


def run_batch_scenario(signing, suite):
    """Two seeded flushes; digest + counters."""
    server = BatchRekeyServer(degree=3, suite=suite, signing=signing,
                              seed=b"equivalence-batch")
    server.bootstrap([(f"u{i}", server.new_individual_key())
                      for i in range(9)])
    h = hashlib.sha256()
    counters = []
    with _freeze_time():
        for round_requests in (
                (("leave", "u0"), ("leave", "u1"), ("join", "n0"),
                 ("join", "n1"), ("join", "n2")),
                (("leave", "n0"), ("leave", "u4"), ("join", "n3"))):
            for op, user in round_requests:
                if op == "join":
                    server.request_join(user, server.new_individual_key())
                else:
                    server.request_leave(user)
            result = server.flush()
            if result.rekey_message is not None:
                _hash_messages(h, [result.rekey_message])
            _hash_messages(h, result.joiner_messages)
            counters.append((result.n_joins, result.n_leaves,
                             result.encryptions,
                             result.individual_cost_estimate))
    return h.hexdigest(), counters


def run_materialized_scenario():
    """Figure 1 graph: one leave, one join; digest + counters."""
    source = drbg.make_source(b"equivalence-graph", b"materialized")
    suite = PAPER_SUITE_NO_SIG
    keygen = lambda: suite.safe_key(source)
    group, _individual = MaterializedKeyGraph.figure1(suite, keygen)
    h = hashlib.sha256()
    counters = []
    with _freeze_time():
        for outcome in (group.leave("u2"),
                        group.join("u5", keygen(), ["k3", "k234"]),
                        group.leave("u4")):
            _hash_messages(h, outcome.messages)
            counters.append((outcome.op, outcome.encryptions,
                             tuple(outcome.replaced)))
    return h.hexdigest(), counters


# Captured from the pre-pipeline implementation (seed commit) with the
# scenarios above.  Do not regenerate casually: a mismatch means the
# refactor changed observable behaviour.
GOLDEN_SERVER = {
    ("tree", "group", "merkle"):
        "4678546ad007e3bba5e156000b09e3bee978b8d97739835a2f44d2da2e9c83d8",
    ("tree", "user", "none"):
        "5d14866bfe4a2985dfc15494652318e0810af2002330658131c3bf7e46c1e251",
    ("tree", "key", "per-message"):
        "bbcf07b8da8425a3c6f4a0b4f7abeab0786cb74cc066e83fcd5a4c94e1422c3e",
    ("tree", "hybrid", "none"):
        "e470b76634584fa82209b06f1f290fd91faaa5b7971481603f082afa3693faa3",
    ("star", "group", "merkle"):
        "ad9f837f17fa1c6ced5b031b5cca5407d51d1e2f7a4567c561751887b9bba068",
}
# Per-request (encryptions, signatures, n_rekey_messages, rekey_bytes,
# max_message_bytes, key_changes_total, n_users_after); spot-checked for
# the two signing extremes so counter regressions are readable.
GOLDEN_SERVER_COUNTS = {
    ("tree", "group", "merkle"): [
        (4, 1, 2, 419, 220, 10, 9), (5, 1, 1, 314, 314, 10, 8),
        (4, 1, 2, 419, 220, 10, 9), (5, 1, 1, 314, 314, 10, 8),
        (1, 1, 1, 166, 166, 8, 8), (5, 1, 1, 314, 314, 9, 7),
        (4, 1, 2, 419, 220, 9, 8)],
    ("tree", "user", "none"): [
        (5, 0, 3, 323, 113, 10, 9), (6, 0, 4, 420, 113, 10, 8),
        (5, 0, 3, 323, 113, 10, 9), (6, 0, 4, 420, 113, 10, 8),
        (1, 0, 1, 97, 97, 8, 8), (6, 0, 4, 420, 113, 9, 7),
        (5, 0, 3, 323, 113, 9, 8)],
}
GOLDEN_BATCH = {
    "merkle": "0351d53afa6d5e228f292608575836c2c3be343ffd587c8d6a68a7d2692bf5c2",
    "none": "fcea7b6f0b4ab13cecd0c00a896b7609f95386544425a6071515b6494b35c820",
}
# (n_joins, n_leaves, encryptions, individual_cost_estimate) per flush.
GOLDEN_BATCH_COUNTS = [(3, 2, 15, 24), (1, 2, 10, 24)]
GOLDEN_MATERIALIZED = (
    "e92a471b7969880947bd593253d086bec6e3730a31ec0e074899df05511bd0dd")
GOLDEN_MATERIALIZED_COUNTS = [
    ("leave", 5, ("k12", "k234", "k1234")),
    ("join", 6, ("k3", "k234", "k1234")),
    ("leave", 3, ("k234", "k1234")),
]


def _suite_for(signing):
    return PAPER_SUITE if signing != "none" else PAPER_SUITE_NO_SIG


def test_server_paths_match_seed_bytes():
    for (graph, strategy, signing), expected in GOLDEN_SERVER.items():
        digest, counters = run_server_scenario(
            graph, strategy, signing, _suite_for(signing))
        assert digest == expected, (graph, strategy, signing)
        golden_counts = GOLDEN_SERVER_COUNTS.get((graph, strategy, signing))
        if golden_counts is not None:
            assert counters == golden_counts, (graph, strategy, signing)


def test_batch_path_matches_seed_bytes():
    for signing, expected in GOLDEN_BATCH.items():
        digest, counters = run_batch_scenario(signing, _suite_for(signing))
        assert digest == expected, signing
        assert counters == GOLDEN_BATCH_COUNTS, signing


def test_materialized_path_matches_seed_bytes():
    digest, counters = run_materialized_scenario()
    assert digest == GOLDEN_MATERIALIZED
    assert counters == GOLDEN_MATERIALIZED_COUNTS


def main():
    """Print freshly computed goldens (used once, against the seed tree)."""
    for (graph, strategy, signing) in GOLDEN_SERVER:
        digest, counters = run_server_scenario(
            graph, strategy, signing, _suite_for(signing))
        print(f"SERVER {(graph, strategy, signing)!r}: {digest!r}")
        print(f"  counts: {counters!r}")
    for signing in GOLDEN_BATCH:
        digest, counters = run_batch_scenario(signing, _suite_for(signing))
        print(f"BATCH {signing!r}: {digest!r}")
        print(f"  counts: {counters!r}")
    digest, counters = run_materialized_scenario()
    print(f"MATERIALIZED: {digest!r}")
    print(f"  counts: {counters!r}")


if __name__ == "__main__":
    main()

"""Stateful model testing of the whole key-management world.

Hypothesis drives random interleavings of join, leave, refresh, data
broadcast and server failover (snapshot/restore) against a live server
and fully simulated clients, checking after every step that

* the server and every client agree on the group key;
* every client can open data sealed under the current key;
* every *departed* client cannot;
* the tree stays valid and balanced.

This is the library's deepest integration test: any ordering bug in
rekey message construction, client fixed-point decryption, snapshot
state, or the balance heuristic shows up here as a falsifying example.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.core.client import GroupClient
from repro.core.persistence import restore, snapshot
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import FAST_TEST_SUITE, PAPER_SUITE_NO_SIG


class KeyManagementMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # The Xor suite keeps each step cheap; the same machine runs a
        # smoke pass under real DES in test_real_cipher_replay below.
        self.suite = FAST_TEST_SUITE
        self.server = GroupKeyServer(ServerConfig(
            strategy="key", degree=3, suite=self.suite, signing="none",
            seed=b"stateful"))
        self.clients = {}
        self.departed = {}
        self.counter = 0

    users = Bundle("users")

    # -- operations -------------------------------------------------------

    @rule(target=users)
    def join(self):
        self.counter += 1
        user_id = f"u{self.counter}"
        key = self.server.new_individual_key()
        client = GroupClient(user_id, self.suite, verify=False)
        client.set_individual_key(key)
        self.clients[user_id] = client
        outcome = self.server.join(user_id, key)
        client.process_control(outcome.control_messages[0].encoded)
        self._deliver(outcome)
        return user_id

    @rule(user_id=users)
    def leave(self, user_id):
        if user_id not in self.clients:
            return  # already left in a previous step
        outcome = self.server.leave(user_id)
        self.departed[user_id] = self.clients.pop(user_id)
        self._deliver(outcome)

    @precondition(lambda self: self.clients)
    @rule()
    def refresh(self):
        outcome = self.server.refresh()
        self._deliver(outcome)

    @precondition(lambda self: len(self.clients) >= 1)
    @rule()
    def failover(self):
        self.server = restore(snapshot(self.server))

    def _deliver(self, outcome):
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                assert receiver in self.clients, \
                    f"message addressed to non-member {receiver}"
                self.clients[receiver].process_message(message.encoded)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def members_agree_on_group_key(self):
        if not self.clients:
            return
        group_key = self.server.group_key()
        for user_id, client in self.clients.items():
            assert client.group_key() == group_key, user_id

    @invariant()
    def data_reaches_members_only(self):
        if not self.clients:
            return
        sealed = self.server.seal_group_message(b"probe")
        for user_id, client in self.clients.items():
            assert client.open_data(sealed.encoded) == b"probe", user_id
        for user_id, client in self.departed.items():
            try:
                client.open_data(sealed.encoded)
            except Exception:
                continue
            raise AssertionError(f"departed {user_id} opened new data")

    @invariant()
    def tree_is_valid_and_balanced(self):
        if self.server.tree is not None and self.server.tree.n_users:
            self.server.tree.validate()
            from repro.keygraph.analysis import assert_balanced
            assert_balanced(self.server.tree, slack=1)


KeyManagementMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None)
TestKeyManagement = KeyManagementMachine.TestCase


def test_real_cipher_replay():
    """One scripted pass of the same operations under real DES."""
    machine = KeyManagementMachine()
    machine.suite = PAPER_SUITE_NO_SIG
    machine.server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"stateful-des"))
    users = [machine.join() for _ in range(7)]
    machine.members_agree_on_group_key()
    machine.leave(users[2])
    machine.refresh()
    machine.failover()
    machine.join()
    machine.leave(users[0])
    machine.members_agree_on_group_key()
    machine.data_reaches_members_only()
    machine.tree_is_valid_and_balanced()

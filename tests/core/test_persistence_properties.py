"""Property tests for encrypted snapshot round-trips (satellite of PR 4).

The cluster's warm-standby failover leans on three persistence
guarantees: a snapshot restores byte-identically under the right key,
a wrong key never yields a server (it raises ``PersistenceError``),
and a snapshot from a different ``FORMAT_VERSION`` is rejected rather
than misparsed.  These properties are exercised here across randomized
tree shapes, op histories, and storage keys.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import persistence
from repro.core.persistence import FORMAT_VERSION, PersistenceError
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE

KEY_SIZE = PAPER_SUITE.key_size
BLOCK_SIZE = PAPER_SUITE.block_size


def build_server(seed: bytes, degree: int, n_users: int,
                 ops: list) -> GroupKeyServer:
    server = GroupKeyServer(ServerConfig(degree=degree, seed=seed))
    server.bootstrap([(f"u{index}", server.new_individual_key())
                      for index in range(n_users)])
    joined = 0
    for op in ops:
        if op == "join":
            server.join(f"j{joined}", server.new_individual_key())
            joined += 1
        else:
            users = server.tree.users()
            if len(users) > 1:
                server.leave(sorted(users)[op])
    return server


server_strategy = st.builds(
    build_server,
    seed=st.binary(min_size=1, max_size=16),
    degree=st.integers(min_value=2, max_value=4),
    n_users=st.integers(min_value=1, max_value=20),
    ops=st.lists(st.sampled_from(["join", 0, -1]), max_size=6),
)


@settings(max_examples=25, deadline=None)
@given(server=server_strategy,
       storage_key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
       iv=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_encrypted_round_trip_is_byte_identical(server, storage_key, iv):
    blob = persistence.snapshot_encrypted(server, storage_key, iv)
    restored = persistence.restore_encrypted(blob, storage_key, iv,
                                             PAPER_SUITE)
    assert persistence.snapshot(restored) == persistence.snapshot(server)
    assert sorted(restored.tree.users()) == sorted(server.tree.users())
    assert restored.group_key() == server.group_key()


@settings(max_examples=25, deadline=None)
@given(server=server_strategy,
       storage_key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
       wrong_key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
       iv=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_wrong_key_never_yields_a_server(server, storage_key, wrong_key,
                                         iv):
    if wrong_key == storage_key:
        wrong_key = bytes(byte ^ 0xFF for byte in storage_key)
    blob = persistence.snapshot_encrypted(server, storage_key, iv)
    # Whether the failure surfaces as bad padding or as garbage JSON,
    # the caller sees exactly PersistenceError — nothing else.
    with pytest.raises(PersistenceError):
        persistence.restore_encrypted(blob, wrong_key, iv, PAPER_SUITE)


@settings(max_examples=10, deadline=None)
@given(server=server_strategy,
       bad_version=st.integers(min_value=-3, max_value=50).filter(
           lambda version: version != FORMAT_VERSION))
def test_format_version_mismatch_is_rejected(server, bad_version):
    doc = json.loads(persistence.snapshot(server).decode("utf-8"))
    doc["format"] = bad_version
    tampered = json.dumps(doc, sort_keys=True).encode("utf-8")
    with pytest.raises(PersistenceError):
        persistence.restore(tampered)


def test_truncated_ciphertext_is_rejected():
    server = build_server(b"trunc", 3, 6, [])
    storage_key = b"\x22" * KEY_SIZE
    iv = b"\x01" * BLOCK_SIZE
    blob = persistence.snapshot_encrypted(server, storage_key, iv)
    with pytest.raises(PersistenceError):
        persistence.restore_encrypted(blob[:len(blob) - 3], storage_key,
                                      iv, PAPER_SUITE)

"""Seeded signing-keypair memoization in the shared signer factory."""

from repro.core import pipeline
from repro.core.pipeline import make_signer
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE, CipherSuite


def test_same_suite_and_seed_share_the_keypair_object():
    _, first = make_signer(PAPER_SUITE, "merkle", seed=b"memo-test")
    _, second = make_signer(PAPER_SUITE, "per-message", seed=b"memo-test")
    assert first is second


def test_two_servers_with_one_seed_share_a_keypair():
    """The satellite requirement: the second server skips prime search."""
    one = GroupKeyServer(ServerConfig(suite=PAPER_SUITE, signing="merkle",
                                      seed=b"shared-seed"))
    two = GroupKeyServer(ServerConfig(suite=PAPER_SUITE, signing="merkle",
                                      seed=b"shared-seed"))
    assert one.signing_keypair is two.signing_keypair


def test_different_seeds_get_different_keypairs():
    _, first = make_signer(PAPER_SUITE, "merkle", seed=b"seed-one")
    _, second = make_signer(PAPER_SUITE, "merkle", seed=b"seed-two")
    assert first is not second
    assert first.n != second.n


def test_different_suite_parameters_are_separate_memo_entries():
    wide = CipherSuite("des", "md5", 768)
    _, first = make_signer(PAPER_SUITE, "merkle", seed=b"memo-suite")
    _, second = make_signer(wide, "merkle", seed=b"memo-suite")
    assert first is not second
    assert second.n.bit_length() == 768


def test_unseeded_keypairs_are_never_shared():
    _, first = make_signer(PAPER_SUITE, "merkle", seed=None)
    _, second = make_signer(PAPER_SUITE, "merkle", seed=None)
    assert first is not second


def test_memoized_keypair_matches_direct_derivation():
    """The memo returns exactly what the historic derivation produced."""
    pipeline._KEYPAIR_MEMO.clear()
    _, memoized = make_signer(PAPER_SUITE, "merkle", seed=b"derive-check")
    direct = PAPER_SUITE.generate_signing_keypair(seed=b"derive-check/sign")
    assert (memoized.n, memoized.e, memoized.d) == (direct.n, direct.e, direct.d)


def test_memo_is_bounded():
    pipeline._KEYPAIR_MEMO.clear()
    for i in range(pipeline._KEYPAIR_MEMO_MAX + 5):
        make_signer(CipherSuite("des", "md5", 256), "merkle",
                    seed=b"bound-%d" % i)
    assert len(pipeline._KEYPAIR_MEMO) <= pipeline._KEYPAIR_MEMO_MAX

"""Error-path coverage: ``handle_datagram`` and ``ServerConfig.validate``.

The happy paths live in ``test_server.py``; this module pins down every
rejection branch — malformed wire data, unexpected message types, access
control denials — and checks that denials leave the group state intact.
"""

import pytest

from repro.core.messages import (MSG_DATA, MSG_JOIN_ACK, MSG_JOIN_DENIED,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_DENIED,
                                 MSG_LEAVE_REQUEST, MSG_REKEY, Message)
from repro.core.server import (GroupKeyServer, ServerConfig, ServerError)
from repro.crypto.suite import (PAPER_SUITE, PAPER_SUITE_ENC_ONLY,
                                PAPER_SUITE_NO_SIG)


def make_server(**overrides):
    config = ServerConfig(**{"signing": "none", "seed": b"datagram-tests",
                             **overrides})
    return GroupKeyServer(config)


def populated(n=4, **overrides):
    server = make_server(**overrides)
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    return server


def datagram(msg_type, user_id):
    return Message(msg_type=msg_type, body=user_id.encode()).encode()


class TestMalformedDatagrams:
    def test_empty_datagram(self):
        server = populated()
        with pytest.raises(ServerError, match="malformed"):
            server.handle_datagram(b"")

    def test_garbage_datagram(self):
        server = populated()
        with pytest.raises(ServerError, match="malformed"):
            server.handle_datagram(b"\xff" * 40)

    def test_truncated_valid_prefix(self):
        server = populated()
        valid = datagram(MSG_JOIN_REQUEST, "u9")
        with pytest.raises(ServerError, match="malformed"):
            server.handle_datagram(valid[:len(valid) - 3])

    @pytest.mark.parametrize("msg_type", [MSG_DATA, MSG_REKEY, MSG_JOIN_ACK])
    def test_unexpected_message_type(self, msg_type):
        server = populated()
        with pytest.raises(ServerError, match="unexpected message type"):
            server.handle_datagram(datagram(msg_type, "u0"))

    def test_malformed_datagram_changes_nothing(self):
        server = populated()
        before = sorted(server.members())
        for bad in (b"", b"junk", datagram(MSG_DATA, "u0")):
            with pytest.raises(ServerError):
                server.handle_datagram(bad)
        assert sorted(server.members()) == before


class TestJoinDenials:
    def test_unregistered_user_denied(self):
        server = populated()
        replies = server.handle_datagram(datagram(MSG_JOIN_REQUEST, "ghost"))
        assert len(replies) == 1
        assert replies[0].message.msg_type == MSG_JOIN_DENIED
        assert not server.is_member("ghost")

    def test_acl_denied(self):
        server = make_server(access_list={"u0", "u1"})
        server.bootstrap([("u0", server.new_individual_key())])
        server.register_individual_key("intruder",
                                       server.new_individual_key())
        replies = server.handle_datagram(
            datagram(MSG_JOIN_REQUEST, "intruder"))
        assert replies[0].message.msg_type == MSG_JOIN_DENIED
        assert not server.is_member("intruder")
        # The registered key is consumed by the attempt's planner only on
        # success paths beyond the ACL; a still-listed user joins fine.
        server.register_individual_key("u1", server.new_individual_key())
        replies = server.handle_datagram(datagram(MSG_JOIN_REQUEST, "u1"))
        assert any(m.message.msg_type == MSG_JOIN_ACK for m in replies)

    def test_double_join_denied(self):
        server = populated()
        server.register_individual_key("u0", server.new_individual_key())
        replies = server.handle_datagram(datagram(MSG_JOIN_REQUEST, "u0"))
        assert replies[0].message.msg_type == MSG_JOIN_DENIED

    def test_denied_join_produces_no_rekey_traffic(self):
        server = populated()
        history_before = len(server.history)
        replies = server.handle_datagram(datagram(MSG_JOIN_REQUEST, "ghost"))
        assert all(m.message.msg_type != MSG_REKEY for m in replies)
        assert len(server.history) == history_before


class TestLeaveDenials:
    def test_nonmember_leave_denied(self):
        server = populated()
        replies = server.handle_datagram(
            datagram(MSG_LEAVE_REQUEST, "stranger"))
        assert len(replies) == 1
        assert replies[0].message.msg_type == MSG_LEAVE_DENIED
        assert server.n_users == 4

    def test_denied_leave_keeps_group_key(self):
        server = populated()
        ref_before = server.group_key_ref()
        server.handle_datagram(datagram(MSG_LEAVE_REQUEST, "stranger"))
        assert server.group_key_ref() == ref_before


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"graph": "mesh"},
        {"graph": "lattice", "strategy": "group"},
        {"strategy": "telepathy"},
        {"strategy": ""},
        {"signing": "wax-seal"},
        {"signing": "merkle", "suite": PAPER_SUITE_ENC_ONLY},
        {"signing": "merkle", "suite": PAPER_SUITE_NO_SIG},
        {"signing": "per-message", "suite": PAPER_SUITE_NO_SIG},
    ])
    def test_rejections(self, overrides):
        config = ServerConfig(**overrides)
        with pytest.raises(ServerError):
            config.validate()

    @pytest.mark.parametrize("overrides", [
        {},
        {"graph": "star"},
        {"graph": "star", "strategy": "not-a-strategy", "signing": "none"},
        {"signing": "none", "suite": PAPER_SUITE_NO_SIG},
        {"signing": "none", "suite": PAPER_SUITE_ENC_ONLY},
        {"signing": "per-message", "suite": PAPER_SUITE},
    ])
    def test_accepts(self, overrides):
        ServerConfig(**overrides).validate()

    def test_constructor_validates(self):
        with pytest.raises(ServerError):
            GroupKeyServer(ServerConfig(graph="mesh"))
        with pytest.raises(ServerError):
            GroupKeyServer(ServerConfig(signing="merkle",
                                        suite=PAPER_SUITE_NO_SIG))

"""Property: any truncation of a journal still restores a servable shard.

A crash can cut the journal anywhere — between records, mid-header,
mid-payload.  Wherever the cut lands (past the initial checkpoint),
``restore_from_journal`` must come back with a coherent prefix state,
and the supervisor's repair-then-reattach path must leave the file
appendable *and re-readable*: restart, serve a new join, restart again.

Corruption is the other damage class: a CRC-failing *complete* record
means bit rot or tampering, not a crash, and strict mode must refuse
loudly instead of silently truncating history.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import persistence
from repro.core.persistence import PersistenceError
from repro.core.server import GroupKeyServer, ServerConfig
from repro.keygraph.journal import _FRAME, MAGIC, JournalError, TreeJournal
from repro.serve.supervise import corrupt_journal_tail, tear_journal_tail


def _build_journal(tmp_path) -> str:
    """A journal with every record type: checkpoint, register, ops, seq."""
    path = str(tmp_path / "shard.journal")
    server = GroupKeyServer(ServerConfig(signing="none", seed=b"trunc",
                                         backend="flat"))
    persistence.attach_journal(server, path)
    for i in range(8):
        server.join(f"m{i}", bytes([i + 1]) * server.suite.key_size)
    server.register_individual_key("pending", b"\x99" * 8)
    for i in range(3):
        server.leave(f"m{i * 2}")
    server.refresh()
    server.resync("m1")  # a bare seq record
    server._journal.close()
    return path


def _frame_boundaries(data: bytes):
    """Byte offsets at the end of each complete record."""
    offsets = [len(MAGIC)]
    cursor = len(MAGIC)
    while cursor + _FRAME.size <= len(data):
        length, _crc = _FRAME.unpack(data[cursor:cursor + _FRAME.size])
        cursor += _FRAME.size + length
        if cursor > len(data):
            break
        offsets.append(cursor)
    return offsets


def _assert_servable(path: str) -> None:
    """The supervisor's restart recipe must work on this file.

    Restore, repair the tail, reattach, serve one more join — then a
    *second* restore must see that join (a repair that leaves the new
    appends shadowed behind a torn record would pass the first restore
    and lose data on the next crash).
    """
    server = persistence.restore_from_journal(path)
    removed = TreeJournal(path).repair()
    assert removed >= 0
    persistence.attach_journal(server, path)
    server.join("fresh-after-restart", b"\x42" * server.suite.key_size)
    server._journal.close()
    again = persistence.restore_from_journal(path)
    assert persistence.snapshot(again) == persistence.snapshot(server)
    assert again.is_member("fresh-after-restart")


def test_truncation_at_every_frame_boundary(tmp_path):
    path = _build_journal(tmp_path)
    data = open(path, "rb").read()
    boundaries = _frame_boundaries(data)
    assert len(boundaries) > 10  # the workload really is multi-record
    work = str(tmp_path / "cut.journal")
    for offset in boundaries[1:]:  # past the checkpoint record
        with open(work, "wb") as fh:
            fh.write(data[:offset])
        _assert_servable(work)


def test_truncation_before_checkpoint_refuses(tmp_path):
    path = _build_journal(tmp_path)
    data = open(path, "rb").read()
    boundaries = _frame_boundaries(data)
    work = str(tmp_path / "cut.journal")
    # Any cut inside the initial checkpoint record leaves nothing to
    # restore from — that must be a loud error, not an empty server.
    for offset in (len(MAGIC), boundaries[1] - 1):
        with open(work, "wb") as fh:
            fh.write(data[:offset])
        with pytest.raises(PersistenceError):
            persistence.restore_from_journal(work)


@settings(max_examples=60, deadline=None)
@given(cut=st.data())
def test_truncation_anywhere_restores_servable_shard(tmp_path_factory, cut):
    tmp_path = tmp_path_factory.mktemp("trunc")
    path = _build_journal(tmp_path)
    data = open(path, "rb").read()
    boundaries = _frame_boundaries(data)
    first_record_end = boundaries[1]
    offset = cut.draw(st.integers(min_value=first_record_end,
                                  max_value=len(data)))
    work = str(tmp_path / "cut.journal")
    with open(work, "wb") as fh:
        fh.write(data[:offset])
    _assert_servable(work)


def test_repair_is_exact(tmp_path):
    path = _build_journal(tmp_path)
    intact = TreeJournal(path).intact_length()
    assert intact == os.path.getsize(path)  # clean file: nothing to cut
    assert TreeJournal(path).repair() == 0
    tear_journal_tail(path, 7)
    torn_size = os.path.getsize(path)
    journal = TreeJournal(path)
    assert journal.intact_length() < torn_size
    removed = journal.repair()
    assert removed > 0
    assert os.path.getsize(path) == torn_size - removed
    # The repaired file ends exactly on a record boundary.
    assert TreeJournal(path).repair() == 0


def test_corrupt_tail_refused_in_strict_mode(tmp_path):
    path = _build_journal(tmp_path)
    reference = persistence.restore_from_journal(path, strict=True)
    corrupt_journal_tail(path)
    # Strict (the supervisor's mode): corruption is not a crash — refuse.
    with pytest.raises(JournalError):
        persistence.restore_from_journal(path, strict=True)
    with pytest.raises(JournalError):
        list(TreeJournal(path).records(strict=True))
    # Tolerant mode degrades to the intact prefix instead.
    prefix = persistence.restore_from_journal(path)
    assert prefix._seq <= reference._seq


def test_torn_tail_tolerated_in_strict_mode(tmp_path):
    path = _build_journal(tmp_path)
    tear_journal_tail(path, 3)
    # A torn tail is a crash signature, not corruption: strict replay
    # proceeds over everything before the tear.
    server = persistence.restore_from_journal(path, strict=True)
    assert server.n_users > 0

"""Analytic cost model (Tables 1-3) — internal consistency and the
paper's optimal-degree claim."""

import math
from fractions import Fraction

import pytest

from repro.core import costs


def test_tree_height():
    assert costs.tree_height(1, 4) == 2
    assert costs.tree_height(4, 4) == 2
    assert costs.tree_height(5, 4) == 3
    assert costs.tree_height(64, 4) == 4
    assert costs.tree_height(8192, 4) == 8
    assert costs.tree_height(9, 3) == 3
    with pytest.raises(ValueError):
        costs.tree_height(0, 4)
    with pytest.raises(ValueError):
        costs.tree_height(4, 1)


def test_table1_star():
    assert costs.star_total_keys(100) == 101
    assert costs.star_keys_per_user() == 2


def test_table1_tree():
    assert costs.tree_total_keys(81, 3) == Fraction(3, 2) * 81
    assert costs.tree_total_keys_exact(27, 3) == 27 + 9 + 3 + 1
    assert costs.tree_keys_per_user(81, 3) == 5


def test_table1_complete():
    assert costs.complete_total_keys(4) == 15
    assert costs.complete_keys_per_user(4) == 8


def test_table2_star():
    join = costs.star_costs("join", 50)
    assert (join.requesting_user, join.nonrequesting_user, join.server) == (
        1, 1, 2)
    leave = costs.star_costs("leave", 50)
    assert leave.server == 49
    assert leave.requesting_user == 0
    with pytest.raises(ValueError):
        costs.star_costs("merge", 50)


def test_table2_tree():
    join = costs.tree_costs("join", 4, 8)
    assert join.requesting_user == 7       # h - 1
    assert join.server == 14               # 2(h-1)
    assert join.nonrequesting_user == Fraction(4, 3)
    leave = costs.tree_costs("leave", 4, 8)
    assert leave.server == 28              # d(h-1)
    assert leave.requesting_user == 0
    with pytest.raises(ValueError):
        costs.tree_costs("merge", 4, 8)


def test_table2_complete():
    join = costs.complete_costs("join", 8)
    assert join.server == 2**9
    assert join.requesting_user == 2**8
    leave = costs.complete_costs("leave", 8)
    assert leave.server == 0
    with pytest.raises(ValueError):
        costs.complete_costs("merge", 8)


def test_strategy_costs_match_section3():
    # §3.3/§3.4 worked example: d = 3, h = 3.
    assert costs.user_oriented_join_cost(3) == 5
    assert costs.user_oriented_leave_cost(3, 3) == 6
    assert costs.key_oriented_join_cost(3) == 4
    assert costs.key_oriented_leave_cost(3, 3) == 6
    assert costs.group_oriented_join_cost(3) == 4
    assert costs.group_oriented_leave_cost(3, 3) == 6
    assert costs.rekey_messages_per_join(3) == 3
    assert costs.rekey_messages_per_leave(3, 3) == 4


def test_table3_averages():
    # (join + leave) / 2 consistency with Table 2.
    d, h = 4, 8
    join = costs.tree_costs("join", d, h).server
    leave = costs.tree_costs("leave", d, h).server
    assert costs.tree_average_server_cost(d, h) == (join + leave) / 2
    assert costs.star_average_server_cost(100) == Fraction(100, 2)
    assert costs.tree_average_user_cost(4) == Fraction(4, 3)
    assert costs.complete_average_server_cost(8) == 2**8


def test_optimal_degree_is_four():
    """§3.5: 'the optimal degree of key trees is four'."""
    for n in (256, 1024, 8192, 100_000):
        assert costs.optimal_tree_degree(n) == 4


def test_average_server_cost_u_shape():
    n = 8192
    values = {d: costs.tree_average_server_cost_for_group(d, n)
              for d in range(2, 17)}
    assert values[4] < values[2]
    assert values[4] < values[8] < values[16]


def test_user_oriented_dominates_key_oriented():
    # The paper's d(h-1) for key-oriented is an over-approximation (the
    # exact count is (d-1)(h-1) + (h-2)); at d=2 the approximations
    # cross, so the dominance claim is checked for d >= 3.
    for h in range(3, 12):
        assert costs.user_oriented_join_cost(h) >= costs.key_oriented_join_cost(h)
        for d in range(3, 17):
            assert (costs.user_oriented_leave_cost(d, h)
                    >= costs.key_oriented_leave_cost(d, h))

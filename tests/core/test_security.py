"""Security invariants of the rekeying protocols (DESIGN.md §5).

These are the properties the paper's design exists to provide:

* **Forward secrecy** — after a leave, nothing sent from then on is
  decryptable with the keys the departed user held;
* **Backward secrecy** — a joiner cannot decrypt rekey traffic captured
  before its join;
* **Completeness** — after any operation every current member can
  recover the new group key from the messages addressed to it.

All tests run with the real DES suite and real wire messages; the
hypothesis test drives random join/leave sequences through every
strategy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import GroupClient
from repro.core.messages import INDIVIDUAL_KEY, decrypt_records
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG

STRATEGIES = ("user", "key", "group", "hybrid")


class World:
    """A server plus fully-simulated honest clients and an eavesdropper
    log of every rekey message ever multicast."""

    def __init__(self, strategy, degree=3, seed=b"security"):
        self.server = GroupKeyServer(ServerConfig(
            strategy=strategy, degree=degree, suite=PAPER_SUITE_NO_SIG,
            signing="none", seed=seed))
        self.clients = {}
        self.captured = []  # every rekey message ever sent (eavesdropper)

    def join(self, user_id):
        key = self.server.new_individual_key()
        client = GroupClient(user_id, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        self.clients[user_id] = client
        outcome = self.server.join(user_id, key)
        client.process_control(outcome.control_messages[0].encoded)
        self.deliver(outcome)
        return outcome

    def leave(self, user_id):
        outcome = self.server.leave(user_id)
        departed = self.clients.pop(user_id)
        self.deliver(outcome)
        return outcome, departed

    def deliver(self, outcome):
        for message in outcome.rekey_messages:
            self.captured.append(message)
            for receiver in message.receivers:
                self.clients[receiver].process_message(message.encoded)

    def assert_synchronized(self):
        group_key = self.server.group_key()
        for user_id, client in self.clients.items():
            assert client.group_key() == group_key, user_id


def attacker_can_decrypt(suite, keyset, messages):
    """Can a holder of exactly ``keyset`` (node->(ver,key)) decrypt any
    item of ``messages``, iterating like an honest client would?"""
    keys = dict(keyset)
    progress = True
    learned = False
    while progress:
        progress = False
        for outbound in messages:
            for item in outbound.message.items:
                if item.enc_node_id == INDIVIDUAL_KEY:
                    continue  # bound to a specific unicast target
                held = keys.get(item.enc_node_id)
                if held is None or held[0] != item.enc_version:
                    continue
                for record in decrypt_records(suite, held[1], item):
                    if keys.get(record.node_id) != (record.version,
                                                    record.key):
                        keys[record.node_id] = (record.version, record.key)
                        learned = True
                        progress = True
    return learned, keys


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_forward_secrecy_single_leave(strategy):
    world = World(strategy)
    for i in range(9):
        world.join(f"u{i}")
    world.captured.clear()

    victim = world.clients["u4"]
    old_keys = dict(victim.keys)
    old_keys[world.server.tree.leaf_of("u4").node_id] = (
        0, victim.individual_key)
    world.leave("u4")

    learned, final = attacker_can_decrypt(PAPER_SUITE_NO_SIG, old_keys,
                                          world.captured)
    # The departed user must not learn ANY new key, in particular not the
    # new group key.
    assert not learned
    root_id, root_version = world.server.group_key_ref()
    assert final.get(root_id, (None, None))[0] != root_version
    world.assert_synchronized()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_forward_secrecy_persists_across_later_operations(strategy):
    world = World(strategy)
    for i in range(8):
        world.join(f"u{i}")
    _outcome, departed = world.leave("u3")
    old_keys = dict(departed.keys)
    world.captured.clear()
    # Subsequent churn must also stay opaque to the departed user.
    world.join("newcomer")
    world.leave("u5")
    world.join("another")
    learned, final = attacker_can_decrypt(PAPER_SUITE_NO_SIG, old_keys,
                                          world.captured)
    assert not learned
    world.assert_synchronized()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_backward_secrecy(strategy):
    world = World(strategy)
    for i in range(9):
        world.join(f"u{i}")
    pre_join_traffic = list(world.captured)
    old_group_ref = world.server.group_key_ref()
    old_group_key = world.server.group_key()

    world.join("latecomer")
    latecomer = world.clients["latecomer"]
    # The latecomer's keyset (including its individual key) must not
    # decrypt anything captured before it joined.
    keyset = dict(latecomer.keys)
    leaf_id = world.server.tree.leaf_of("latecomer").node_id
    keyset[leaf_id] = (0, latecomer.individual_key)
    learned, final = attacker_can_decrypt(PAPER_SUITE_NO_SIG, keyset,
                                          pre_join_traffic)
    assert not learned
    # In particular it must not hold the pre-join group key.
    assert final.get(old_group_ref[0], (None, None)) != (
        old_group_ref[1], old_group_key)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_completeness_under_scripted_churn(strategy):
    world = World(strategy)
    for i in range(12):
        world.join(f"u{i}")
        world.assert_synchronized()
    for victim in ("u0", "u5", "u11", "u7"):
        world.leave(victim)
        world.assert_synchronized()
    for i in range(12, 18):
        world.join(f"u{i}")
        world.assert_synchronized()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_leaver_keys_never_used_for_encryption(strategy):
    """Structural variant of forward secrecy: no item in post-leave
    traffic is encrypted under any (node, version) the leaver held."""
    world = World(strategy, degree=4)
    for i in range(16):
        world.join(f"u{i}")
    victim = world.clients["u9"]
    held = set()
    for node_id, (version, _key) in victim.keys.items():
        held.add((node_id, version))
    world.captured.clear()
    world.leave("u9")
    for outbound in world.captured:
        for item in outbound.message.items:
            assert (item.enc_node_id, item.enc_version) not in held


@given(st.data())
@settings(max_examples=8, deadline=None)
def test_random_churn_completeness_and_forward_secrecy(data):
    """Random strategy/degree/sequence: synchronization always holds and
    every departed user's keyset stays dead."""
    strategy = data.draw(st.sampled_from(STRATEGIES))
    degree = data.draw(st.integers(min_value=2, max_value=4))
    world = World(strategy, degree=degree, seed=b"hypothesis")
    counter = 0
    departed_keysets = []
    for _ in range(data.draw(st.integers(min_value=4, max_value=14))):
        member_ids = sorted(world.clients)
        do_join = data.draw(st.booleans()) or len(member_ids) < 2
        if do_join:
            world.join(f"m{counter}")
            counter += 1
        else:
            victim_id = data.draw(st.sampled_from(member_ids))
            world.captured.clear()
            _outcome, departed = world.leave(victim_id)
            departed_keysets.append(dict(departed.keys))
        if world.clients:
            world.assert_synchronized()
    for keyset in departed_keysets:
        learned, _ = attacker_can_decrypt(PAPER_SUITE_NO_SIG, keyset,
                                          world.captured)
        assert not learned


@pytest.mark.parametrize("graph", ["star"])
def test_star_forward_and_backward_secrecy(graph):
    server = GroupKeyServer(ServerConfig(
        graph="star", suite=PAPER_SUITE_NO_SIG, signing="none",
        seed=b"star-sec"))
    clients = {}
    captured = []

    def join(uid):
        key = server.new_individual_key()
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
        outcome = server.join(uid, key)
        client.process_control(outcome.control_messages[0].encoded)
        for message in outcome.rekey_messages:
            captured.append(message)
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)

    for i in range(6):
        join(f"u{i}")
    pre_join = list(captured)
    join("late")
    late = clients["late"]
    learned, _ = attacker_can_decrypt(
        PAPER_SUITE_NO_SIG, dict(late.keys), pre_join)
    assert not learned

    # Leave: departed member's group key is dead afterwards.
    captured.clear()
    departed = clients.pop("u2")
    outcome = server.leave("u2")
    for message in outcome.rekey_messages:
        captured.append(message)
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    learned, _ = attacker_can_decrypt(
        PAPER_SUITE_NO_SIG, dict(departed.keys), captured)
    assert not learned
    for uid, client in clients.items():
        assert client.group_key() == server.group_key(), uid

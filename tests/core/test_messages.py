"""Wire format: encode/decode round trips and malformed input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (INDIVIDUAL_KEY, MSG_DATA, MSG_JOIN_REQUEST,
                                 MSG_REKEY, SIG_MERKLE, SIG_NONE,
                                 SIG_PER_MESSAGE, AuthBlock, Destination,
                                 EncryptedItem, KeyRecord, Message, WireError,
                                 decode_key_records, decrypt_records,
                                 encrypt_records)
from repro.crypto.suite import MODERN_SUITE, PAPER_SUITE


def sample_item(enc_node=7, version=3):
    return EncryptedItem(enc_node, version, bytes(8), bytes(16), 16)


def test_message_roundtrip_full():
    message = Message(
        msg_type=MSG_REKEY, group_id=42, strategy=2, flags=1, seq=123456,
        timestamp_us=1_700_000_000_000_000, root_node_id=99, root_version=5,
        items=[sample_item(), sample_item(8, 1)],
        auth=AuthBlock(digest=bytes(16), scheme=SIG_PER_MESSAGE,
                       signature=bytes(64)))
    decoded = Message.decode(message.encode())
    assert decoded.msg_type == MSG_REKEY
    assert decoded.group_id == 42
    assert decoded.strategy == 2
    assert decoded.flags == 1
    assert decoded.seq == 123456
    assert decoded.timestamp_us == 1_700_000_000_000_000
    assert decoded.root_node_id == 99
    assert decoded.root_version == 5
    assert len(decoded.items) == 2
    assert decoded.items[0].enc_node_id == 7
    assert decoded.items[1].enc_version == 1
    assert decoded.auth.scheme == SIG_PER_MESSAGE
    assert decoded.auth.signature == bytes(64)


def test_message_roundtrip_merkle_auth():
    auth = AuthBlock(digest=b"d" * 16, scheme=SIG_MERKLE,
                     signature=b"s" * 64, merkle_index=5,
                     merkle_path=[b"p" * 16, b"", b"q" * 16])
    message = Message(msg_type=MSG_REKEY, items=[sample_item()], auth=auth)
    decoded = Message.decode(message.encode())
    assert decoded.auth.scheme == SIG_MERKLE
    assert decoded.auth.merkle_index == 5
    assert decoded.auth.merkle_path == [b"p" * 16, b"", b"q" * 16]


def test_control_message_with_body():
    message = Message(msg_type=MSG_JOIN_REQUEST, body=b"alice")
    decoded = Message.decode(message.encode())
    assert decoded.msg_type == MSG_JOIN_REQUEST
    assert decoded.body == b"alice"
    assert decoded.items == []


def test_signed_region_excludes_auth():
    message = Message(msg_type=MSG_REKEY, items=[sample_item()])
    region = message.signed_region()
    message.auth = AuthBlock(digest=b"x" * 16)
    assert message.signed_region() == region  # auth not covered
    assert message.encode() != region


def test_decode_rejects_bad_magic():
    with pytest.raises(WireError):
        Message.decode(b"\x00\x00" + bytes(40))


def test_decode_rejects_truncation():
    encoded = Message(msg_type=MSG_DATA, items=[sample_item()],
                      body=b"payload").encode()
    for cut in (1, 10, len(encoded) // 2, len(encoded) - 1):
        with pytest.raises(WireError):
            Message.decode(encoded[:cut])


def test_decode_rejects_bad_version():
    encoded = bytearray(Message(msg_type=MSG_DATA).encode())
    encoded[2] = 99  # wire version byte
    with pytest.raises(WireError):
        Message.decode(bytes(encoded))


@given(seq=st.integers(min_value=0, max_value=2**63),
       group_id=st.integers(min_value=0, max_value=2**32 - 1),
       body=st.binary(max_size=64))
@settings(max_examples=30)
def test_header_field_roundtrip(seq, group_id, body):
    message = Message(msg_type=MSG_DATA, group_id=group_id, seq=seq,
                      body=body)
    decoded = Message.decode(message.encode())
    assert decoded.seq == seq
    assert decoded.group_id == group_id
    assert decoded.body == body


# -- key records -----------------------------------------------------------------


def test_key_record_codec():
    records = [KeyRecord(1, 0, bytes(8)), KeyRecord(2**32 - 2, 7, b"A" * 8)]
    blob = b"".join(record.encode() for record in records)
    assert decode_key_records(blob, 8) == records


def test_key_record_codec_rejects_partial():
    with pytest.raises(WireError):
        decode_key_records(bytes(17), 8)


@given(keys=st.lists(st.binary(min_size=8, max_size=8), min_size=1,
                     max_size=5),
       key=st.binary(min_size=8, max_size=8))
@settings(max_examples=30)
def test_encrypt_decrypt_records_roundtrip(keys, key):
    records = [KeyRecord(i, i * 2, k) for i, k in enumerate(keys)]
    item = encrypt_records(PAPER_SUITE, key, bytes(8), records, 12, 1)
    assert item.enc_node_id == 12
    assert item.enc_version == 1
    assert decrypt_records(PAPER_SUITE, key, item) == records


def test_encrypt_records_sizes_are_paper_like():
    # One DES-encrypted key record: exactly two cipher blocks.
    item = encrypt_records(PAPER_SUITE, bytes(8), bytes(8),
                           [KeyRecord(1, 1, bytes(8))], 2, 0)
    assert len(item.ciphertext) == 16
    assert item.plaintext_len == 16


def test_encrypt_records_aes():
    record = KeyRecord(3, 1, bytes(16))
    item = encrypt_records(MODERN_SUITE, bytes(16), bytes(16), [record], 9, 2)
    assert decrypt_records(MODERN_SUITE, bytes(16), item) == [record]


def test_decrypt_records_rejects_bad_length_claim():
    item = encrypt_records(PAPER_SUITE, bytes(8), bytes(8),
                           [KeyRecord(1, 1, bytes(8))], 2, 0)
    bad = EncryptedItem(item.enc_node_id, item.enc_version, item.iv,
                        item.ciphertext, 999)
    with pytest.raises(WireError):
        decrypt_records(PAPER_SUITE, bytes(8), bad)


# -- destinations ---------------------------------------------------------------


def test_destination_constructors():
    assert Destination.to_all().kind == "all"
    assert Destination.to_subgroup(5).node_id == 5
    assert Destination.to_user("bob").user_id == "bob"
    assert Destination.to_users(["a", "b"]).user_ids == ("a", "b")


def test_individual_key_sentinel_reserved():
    assert INDIVIDUAL_KEY == 0xFFFFFFFF

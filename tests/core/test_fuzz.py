"""Fuzzing the wire format and the client's input handling.

A key server's clients parse datagrams from the network; malformed or
corrupted input must fail *cleanly* (typed errors), never crash with an
arbitrary exception or silently install wrong keys.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ClientError, GroupClient
from repro.core.messages import (MSG_REKEY, EncryptedItem, KeyRecord,
                                 Message, WireError, encrypt_records)
from repro.core.server import GroupKeyServer, ServerConfig, ServerError
from repro.core.signing import NullSigner, SigningError
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG


@given(data=st.binary(max_size=300))
@settings(max_examples=200)
def test_decode_random_bytes_raises_wire_error_only(data):
    try:
        Message.decode(data)
    except WireError:
        pass  # the only acceptable failure mode


@given(data=st.binary(max_size=200))
@settings(max_examples=50)
def test_server_datagram_handler_raises_server_error_only(data):
    server = GroupKeyServer(ServerConfig(
        suite=PAPER_SUITE_NO_SIG, signing="none", seed=b"fuzz"))
    server.bootstrap([("a", server.new_individual_key())])
    try:
        server.handle_datagram(data)
    except ServerError:
        pass


def _valid_rekey_bytes():
    item = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8),
                           [KeyRecord(3, 1, b"K" * 8)], 0xFFFFFFFF, 0)
    message = Message(msg_type=MSG_REKEY, root_node_id=3, root_version=1,
                      items=[item])
    NullSigner(PAPER_SUITE_NO_SIG).seal([message])
    return message.encode()


@given(position=st.integers(min_value=0, max_value=200),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=120)
def test_single_byte_corruption_never_crashes_client(position, flip):
    baseline = _valid_rekey_bytes()
    position %= len(baseline)
    corrupted = bytearray(baseline)
    corrupted[position] ^= flip
    client = GroupClient("victim", PAPER_SUITE_NO_SIG, verify=True)
    client.set_individual_key(bytes(8))
    try:
        client.process_message(bytes(corrupted))
    except (WireError, ClientError, SigningError):
        pass  # typed rejection — fine


@given(position=st.integers(min_value=0, max_value=200),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=120)
def test_corruption_with_digest_never_installs_keys(position, flip):
    """With the digest on, any bit flip is detected before any key is
    installed (the digest covers the whole signed region)."""
    baseline = _valid_rekey_bytes()
    position %= len(baseline)
    corrupted = bytearray(baseline)
    corrupted[position] ^= flip
    client = GroupClient("victim", PAPER_SUITE_NO_SIG, verify=True)
    client.set_individual_key(bytes(8))
    try:
        client.process_message(bytes(corrupted))
    except (WireError, ClientError, SigningError):
        assert client.keys == {}  # rejected before any install
        return
    # The flip landed in the auth trailer padding/len bytes in a way that
    # still verifies -> the payload was untouched, keys are correct.
    assert client.keys.get(3) == (1, b"K" * 8)


@given(data=st.binary(max_size=150))
@settings(max_examples=60)
def test_client_control_random_bytes(data):
    client = GroupClient("victim", PAPER_SUITE_NO_SIG, verify=True)
    client.set_individual_key(bytes(8))
    try:
        client.process_control(data)
    except (WireError, ClientError, SigningError):
        pass


@given(n_items=st.integers(min_value=0, max_value=6), data=st.data())
@settings(max_examples=40, deadline=None)
def test_arbitrary_valid_items_roundtrip(n_items, data):
    """Arbitrary well-formed messages always decode to themselves."""
    items = []
    for index in range(n_items):
        records = [KeyRecord(data.draw(st.integers(0, 2**32 - 1)),
                             data.draw(st.integers(0, 2**32 - 1)),
                             data.draw(st.binary(min_size=8, max_size=8)))]
        items.append(encrypt_records(
            PAPER_SUITE_NO_SIG,
            data.draw(st.binary(min_size=8, max_size=8)),
            data.draw(st.binary(min_size=8, max_size=8)),
            records,
            data.draw(st.integers(0, 2**32 - 1)),
            data.draw(st.integers(0, 2**32 - 1))))
    message = Message(msg_type=MSG_REKEY, items=items,
                      seq=data.draw(st.integers(0, 2**63)))
    NullSigner(PAPER_SUITE_NO_SIG).seal([message])
    decoded = Message.decode(message.encode())
    assert len(decoded.items) == n_items
    assert decoded.seq == message.seq
    for original, parsed in zip(items, decoded.items):
        assert parsed.ciphertext == original.ciphertext
        assert parsed.enc_node_id == original.enc_node_id

"""Rekeying strategies against the paper's Figure 5 worked example.

The tree: root k1-8 over subgroups k123 = {u1,u2,u3}, k456 = {u4,u5,u6},
k78 = {u7,u8}; u9 joins (joining point k78) and later leaves (leaving
point k789).  Message counts, destinations and encryption costs are
checked against the exact numbers in §3.3 and §3.4.
"""

import pytest

from repro.core.messages import DEST_ALL, DEST_SUBGROUP, DEST_USER
from repro.core.strategies import (GroupOrientedStrategy, HybridStrategy,
                                   KeyOrientedStrategy, RekeyContext,
                                   UserOrientedStrategy)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.suite import PAPER_SUITE
from repro.keygraph.tree import KeyTree


def figure5_tree(seed=b"fig5"):
    source = HmacDrbg(seed)
    keygen = lambda: source.generate(8)
    tree = KeyTree.build([(f"u{i}", keygen()) for i in range(1, 9)], 3,
                         keygen)
    return tree, keygen


def make_ctx(seed=b"fig5-ivs"):
    source = HmacDrbg(seed)
    return RekeyContext(PAPER_SUITE, lambda: source.generate(8))


def run_join(strategy):
    tree, keygen = figure5_tree()
    ctx = make_ctx()
    result = tree.join("u9", keygen())
    assert result.split_leaf is None  # k78 had room: the paper's case
    plans = strategy.rekey_join(tree, result, ctx)
    for plan in plans:
        plan = plan  # receivers resolved lazily below
    return tree, result, ctx, plans


def run_leave(strategy):
    tree, keygen = figure5_tree()
    ctx0 = make_ctx()
    join_result = tree.join("u9", keygen())
    result = tree.leave("u9")
    ctx = make_ctx(b"leave-ivs")
    plans = strategy.rekey_leave(tree, result, ctx)
    return tree, result, ctx, plans


def receivers_of(plans):
    return [tuple(sorted(plan.resolve_receivers())) for plan in plans]


ALL_USERS = tuple(f"u{i}" for i in range(1, 9))


class TestUserOrientedJoin:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_join(UserOrientedStrategy())
        # §3.3: h = 3 -> 3 rekey messages; cost h(h+1)/2 - 1 = 5.
        assert len(plans) == 3
        assert ctx.encryptions == 5
        audiences = receivers_of(plans)
        assert ("u1", "u2", "u3", "u4", "u5", "u6") in audiences
        assert ("u7", "u8") in audiences
        assert ("u9",) in audiences

    def test_each_message_is_single_bundle(self):
        _tree, _result, _ctx, plans = run_join(UserOrientedStrategy())
        for plan in plans:
            assert len(plan.items) == 1  # precisely-what-you-need bundle


class TestUserOrientedLeave:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_leave(UserOrientedStrategy())
        # §3.4: (d-1)(h-1) = 4 messages; cost (d-1)h(h-1)/2 = 6.
        assert len(plans) == 4
        assert ctx.encryptions == 6
        audiences = receivers_of(plans)
        assert ("u1", "u2", "u3") in audiences
        assert ("u4", "u5", "u6") in audiences
        assert ("u7",) in audiences
        assert ("u8",) in audiences


class TestKeyOrientedJoin:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_join(KeyOrientedStrategy())
        # Figure 6: 3 combined messages, cost 2(h-1) = 4.
        assert len(plans) == 3
        assert ctx.encryptions == 4
        by_audience = {tuple(sorted(plan.resolve_receivers())): plan
                       for plan in plans}
        # u1..u6 need one item ({k1-9}_{k1-8}); u7,u8 need two.
        assert len(by_audience[("u1", "u2", "u3", "u4", "u5", "u6")].items) == 1
        assert len(by_audience[("u7", "u8")].items) == 2
        assert len(by_audience[("u9",)].items) == 1  # one bundle

    def test_items_shared_not_reencrypted(self):
        _tree, _result, _ctx, plans = run_join(KeyOrientedStrategy())
        by_size = sorted(plans, key=lambda plan: len(plan.items))
        # The {K'_0}_{K_0} item object is literally shared between messages.
        group_item = by_size[-1].items[0]
        assert any(plan.items[0] is group_item for plan in plans
                   if plan is not by_size[-1])


class TestKeyOrientedLeave:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_leave(KeyOrientedStrategy())
        # Figure 8: 4 messages; cost ~d(h-1): here (d-1)(h-1)+(h-2) = 5.
        assert len(plans) == 4
        assert 5 <= ctx.encryptions <= 6
        audiences = receivers_of(plans)
        assert ("u1", "u2", "u3") in audiences
        assert ("u7",) in audiences and ("u8",) in audiences
        # u7's message: {k78}_{k7} then {k1-8}_{k78} — the §3.4 chain.
        for plan in plans:
            if plan.resolve_receivers() == ("u7",):
                assert len(plan.items) == 2


class TestGroupOrientedJoin:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_join(GroupOrientedStrategy())
        # Figure 7: one multicast + one unicast; cost 2(h-1) = 4.
        assert len(plans) == 2
        assert ctx.encryptions == 4
        kinds = [plan.destination.kind for plan in plans]
        assert kinds.count(DEST_ALL) == 1
        assert kinds.count(DEST_USER) == 1
        multicast = next(plan for plan in plans
                         if plan.destination.kind == DEST_ALL)
        assert tuple(sorted(multicast.resolve_receivers())) == ALL_USERS
        assert len(multicast.items) == 2  # {k1-9}_{k1-8}, {k789}_{k78}


class TestGroupOrientedLeave:
    def test_matches_paper(self):
        tree, result, ctx, plans = run_leave(GroupOrientedStrategy())
        # Figure 9: a single multicast; cost d(h-1) ~ 5 here.
        assert len(plans) == 1
        assert plans[0].destination.kind == DEST_ALL
        assert tuple(sorted(plans[0].resolve_receivers())) == ALL_USERS
        # L_0 has 3 items (k123, k456, k78 children), L_1 has 2 (k7, k8).
        assert len(plans[0].items) == 5
        assert ctx.encryptions == 5


class TestHybrid:
    def test_join_uses_subgroup_addresses(self):
        tree, result, ctx, plans = run_join(HybridStrategy())
        kinds = [plan.destination.kind for plan in plans]
        # One message per root child + unicast to joiner.
        assert kinds.count(DEST_SUBGROUP) == 3
        assert kinds.count(DEST_USER) == 1
        # Same encryption cost as key/group-oriented.
        assert ctx.encryptions == 4

    def test_leave_item_partition(self):
        tree, result, ctx, plans = run_leave(HybridStrategy())
        # Only subgroup multicasts; every user reachable exactly once.
        seen = []
        for plan in plans:
            assert plan.destination.kind == DEST_SUBGROUP
            seen.extend(plan.resolve_receivers())
        assert sorted(seen) == sorted(ALL_USERS)
        # Total items across messages equal group-oriented's single message.
        assert sum(len(plan.items) for plan in plans) == 5

    def test_hybrid_message_count_bounded_by_degree(self):
        tree, result, ctx, plans = run_leave(HybridStrategy())
        assert len(plans) <= 3  # d = 3 multicast addresses


class TestSplitJoin:
    """Joins into a full tree split a leaf — not in the paper's example,
    but required by the heuristic; all strategies must stay correct."""

    @pytest.mark.parametrize("strategy_cls", [
        UserOrientedStrategy, KeyOrientedStrategy, GroupOrientedStrategy,
        HybridStrategy])
    def test_split_join_covers_displaced_user(self, strategy_cls):
        source = HmacDrbg(b"split")
        keygen = lambda: source.generate(8)
        tree = KeyTree.build([(f"u{i}", keygen()) for i in range(9)], 3,
                             keygen)  # perfect 3-ary: full
        ctx = make_ctx(b"split-ivs")
        result = tree.join("u9", keygen())
        assert result.split_leaf is not None
        displaced = result.split_leaf.user_id
        plans = strategy_cls().rekey_join(tree, result, ctx)
        # The displaced user must be addressed by some message whose items
        # include one encrypted under its individual (leaf) key.
        covered = False
        for plan in plans:
            if displaced in plan.resolve_receivers():
                for item in plan.items:
                    if item.enc_node_id == result.split_leaf.node_id:
                        covered = True
        assert covered

"""On-disk tree journal: restart by replay is byte-identical.

The journal records every state-changing op with the key material its
tree edit actually drew, so ``restore_from_journal`` rebuilds the
server with pure tree edits — no DRBG draws, no rekey pipeline — and
the result must equal a snapshot of the live server bit for bit, even
when the original ran unseeded.
"""

import os

import pytest

from repro.core import persistence
from repro.core.server import GroupKeyServer, ServerConfig
from repro.keygraph.backend import build_tree
from repro.keygraph.journal import (JournalError, TreeJournal,
                                    replay_into_tree)


def churn(server, joins=6, leaves=3, refresh=True):
    """A mixed op history touching every journaled record type."""
    for i in range(joins):
        server.join(f"x{i}", server.new_individual_key())
    server.register_individual_key("pending-user",
                                   server.new_individual_key())
    for i in range(leaves):
        server.leave(f"x{i * 2}")
    if refresh:
        server.refresh()


@pytest.mark.parametrize("backend", ["object", "flat"])
@pytest.mark.parametrize("seed", [b"journal-seed", None])
def test_replay_round_trip(tmp_path, backend, seed):
    path = str(tmp_path / "ops.journal")
    server = GroupKeyServer(ServerConfig(degree=3, strategy="group",
                                         seed=seed, backend=backend))
    persistence.attach_journal(server, path)
    server.bootstrap([(f"m{i}", bytes([i + 1]) * 8) for i in range(9)])
    churn(server)

    replayed = persistence.restore_from_journal(path)
    assert persistence.snapshot(replayed) == persistence.snapshot(server)
    assert replayed.group_key() == server.group_key()
    assert replayed.group_key_ref() == server.group_key_ref()
    assert sorted(replayed.members()) == sorted(server.members())
    assert replayed._seq == server._seq
    assert replayed._registered_keys == server._registered_keys


def test_replayed_server_diverges_in_future_keys(tmp_path):
    """Replay restores the *current* state byte-identically but mixes a
    reseed into the standby's DRBG, so future key material diverges —
    running primary and standby in parallel must never reuse keys."""
    path = str(tmp_path / "ops.journal")
    server = GroupKeyServer(ServerConfig(degree=3, seed=b"continue",
                                         backend="flat"))
    persistence.attach_journal(server, path)
    server.bootstrap([(f"m{i}", bytes([i + 1]) * 8) for i in range(7)])
    churn(server, refresh=False)

    replayed = persistence.restore_from_journal(path)
    assert replayed.group_key() == server.group_key()
    server.refresh()
    replayed.refresh()
    assert replayed.group_key() != server.group_key()


def test_mid_journal_checkpoint_truncates_replay(tmp_path):
    """Snapshotting mid-stream writes a new checkpoint; replay resumes
    from the *last* one and only re-applies ops recorded after it."""
    path = str(tmp_path / "ops.journal")
    server = GroupKeyServer(ServerConfig(seed=b"ckpt", backend="flat"))
    journal = persistence.attach_journal(server, path)
    server.bootstrap([("a", b"\x01" * 8), ("b", b"\x02" * 8)])
    server.join("c", server.new_individual_key())
    journal.checkpoint(persistence.snapshot(server))
    server.join("d", server.new_individual_key())

    blob, ops = TreeJournal(path).load()
    assert blob is not None
    tree_ops = [record for record in ops if record["op"] != "seq"]
    assert [record["op"] for record in tree_ops] == ["join"]
    assert tree_ops[0]["user_id"] == "d"
    replayed = persistence.restore_from_journal(path)
    assert persistence.snapshot(replayed) == persistence.snapshot(server)


def test_torn_tail_is_dropped(tmp_path):
    """A crash mid-append leaves a torn record; replay keeps everything
    before it and drops only the tail."""
    path = str(tmp_path / "ops.journal")
    server = GroupKeyServer(ServerConfig(seed=b"torn", backend="flat"))
    persistence.attach_journal(server, path)
    server.bootstrap([("a", b"\x01" * 8), ("b", b"\x02" * 8)])
    server.join("c", server.new_individual_key())
    intact = len(list(TreeJournal(path).records()))

    with open(path, "ab") as fh:     # simulate a torn final append
        fh.write(b"\xff\xff\xff\x7f\x00\x00\x00\x00partial")
    assert len(list(TreeJournal(path).records())) == intact
    replayed = persistence.restore_from_journal(path)
    assert persistence.snapshot(replayed) == persistence.snapshot(server)


def test_not_a_journal_raises(tmp_path):
    path = str(tmp_path / "bogus.journal")
    with open(path, "wb") as fh:
        fh.write(b"definitely not a journal file")
    with pytest.raises(JournalError, match="not a key-graph journal"):
        list(TreeJournal(path).records())


def test_restore_without_checkpoint_raises(tmp_path):
    path = str(tmp_path / "empty.journal")
    journal = TreeJournal(path)
    journal.append("join", user_id="u", individual_key=b"\x01" * 8,
                   keys=[b"\x02" * 8], seq=0)
    journal.close()
    with pytest.raises(persistence.PersistenceError,
                       match="no checkpoint"):
        persistence.restore_from_journal(path)


def test_append_hex_encodes_bytes(tmp_path):
    path = str(tmp_path / "enc.journal")
    journal = TreeJournal(path)
    journal.append("join", user_id="u", individual_key=b"\x0a\x0b",
                   keys=[b"\x01", b"\x02"], seq=7)
    journal.close()
    [record] = list(TreeJournal(path).records())
    assert record == {"op": "join", "user_id": "u",
                      "individual_key": "0a0b", "keys": ["01", "02"],
                      "seq": 7}


@pytest.mark.parametrize("backend", ["object", "flat"])
def test_replay_into_tree_low_level(tmp_path, backend):
    """Tree-level replay applies recorded ops as pure edits."""
    recorded = []

    class Recorder:
        def __call__(self):
            key = bytes([len(recorded) + 1]) * 8
            recorded.append(key)
            return key

    members = [("a", b"\xaa" * 8), ("b", b"\xbb" * 8)]
    tree = build_tree(backend, members, 3, Recorder())
    build_draws = len(recorded)
    ops = []
    tree.join("c", b"\xcc" * 8)
    ops.append({"op": "join", "user_id": "c",
                "individual_key": (b"\xcc" * 8).hex(),
                "keys": [k.hex() for k in recorded[build_draws:]],
                "seq": 1})
    op_draws = len(recorded)
    tree.leave("a")
    ops.append({"op": "leave", "user_id": "a",
                "keys": [k.hex() for k in recorded[op_draws:]], "seq": 2})

    # Twin: rebuild with the same build-time draws, then replay the op
    # records — no keygen is consulted during replay.
    twin = build_tree(backend, members, 3,
                      _replay_list(recorded[:build_draws]))
    assert replay_into_tree(twin, ops) == 2
    assert [(n.node_id, n.version, n.user_id, n.key)
            for n in tree.nodes()] == \
           [(n.node_id, n.version, n.user_id, n.key)
            for n in twin.nodes()]


def _replay_list(keys):
    iterator = iter(list(keys))
    return lambda: next(iterator)


def test_journal_file_grows_append_only(tmp_path):
    path = str(tmp_path / "grow.journal")
    server = GroupKeyServer(ServerConfig(seed=b"grow", backend="flat"))
    persistence.attach_journal(server, path)
    server.bootstrap([("a", b"\x01" * 8)])
    sizes = [os.path.getsize(path)]
    for i in range(4):
        server.join(f"g{i}", server.new_individual_key())
        sizes.append(os.path.getsize(path))
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]

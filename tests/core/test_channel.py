"""Authenticated group data channel: crypto, replay, epochs."""

import pytest

from repro.core.channel import (ChannelError, ReplayWindow,
                                SecureGroupChannel, derive_keys)
from repro.core.client import GroupClient
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_ENC_ONLY, PAPER_SUITE_NO_SIG


def make_world(n=4, suite=PAPER_SUITE_NO_SIG):
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=suite, signing="none",
        seed=b"channel-tests"))
    clients = {}
    for i in range(n):
        uid = f"u{i}"
        key = server.new_individual_key()
        client = GroupClient(uid, suite, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
        outcome = server.join(uid, key)
        client.process_control(outcome.control_messages[0].encoded)
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)
    return server, clients


def channels_for(server, clients):
    return ({uid: SecureGroupChannel.for_client(client)
             for uid, client in clients.items()},
            SecureGroupChannel.for_server(server))


# -- key derivation ----------------------------------------------------------


def test_derived_keys_differ_from_group_key_and_each_other():
    enc, mac = derive_keys(PAPER_SUITE_NO_SIG, b"GROUPKEY")
    assert enc != b"GROUPKEY"
    assert enc != mac[:len(enc)]
    assert len(enc) == PAPER_SUITE_NO_SIG.key_size
    enc2, mac2 = derive_keys(PAPER_SUITE_NO_SIG, b"OTHERKEY")
    assert enc != enc2 and mac != mac2


def test_derivation_works_without_suite_digest():
    enc, mac = derive_keys(PAPER_SUITE_ENC_ONLY, b"GROUPKEY")
    assert len(enc) == PAPER_SUITE_ENC_ONLY.key_size
    assert mac


# -- replay window ----------------------------------------------------------------


def test_replay_window_monotone():
    window = ReplayWindow()
    for seq in (1, 2, 5, 6, 100):
        window.check_and_update(seq)
    with pytest.raises(ChannelError):
        window.check_and_update(100)   # exact replay
    with pytest.raises(ChannelError):
        window.check_and_update(5)     # too old (beyond window of 64)
    window.check_and_update(99)        # in-window, unseen: fine
    with pytest.raises(ChannelError):
        window.check_and_update(99)    # now seen


def test_replay_window_rejects_nonpositive():
    with pytest.raises(ChannelError):
        ReplayWindow().check_and_update(0)


# -- sealing/opening ------------------------------------------------------------


def test_member_to_group_roundtrip():
    server, clients = make_world()
    channels, _server_channel = channels_for(server, clients)
    frame = channels["u0"].seal(b"hello from u0")
    for uid in ("u1", "u2", "u3"):
        payload, sender, seq = channels[uid].open(frame)
        assert payload == b"hello from u0"
        assert sender == "u0"
        assert seq == 1


def test_server_to_group_and_back():
    server, clients = make_world()
    channels, server_channel = channels_for(server, clients)
    frame = server_channel.seal(b"server notice")
    payload, sender, _seq = channels["u2"].open(frame)
    assert payload == b"server notice" and sender == "@server"
    reply = channels["u2"].seal(b"ack from u2")
    payload, sender, _seq = server_channel.open(reply)
    assert payload == b"ack from u2" and sender == "u2"


def test_replay_rejected_but_order_tolerated():
    server, clients = make_world()
    channels, _ = channels_for(server, clients)
    frames = [channels["u0"].seal(f"msg {i}".encode()) for i in range(3)]
    receiver = channels["u1"]
    receiver.open(frames[2])           # arrives first
    receiver.open(frames[0])           # reordered: accepted
    receiver.open(frames[1])
    with pytest.raises(ChannelError):
        receiver.open(frames[1])       # replay


def test_tampered_frame_rejected():
    server, clients = make_world()
    channels, _ = channels_for(server, clients)
    frame = bytearray(channels["u0"].seal(b"important"))
    frame[len(frame) // 2] ^= 0x01
    with pytest.raises(ChannelError):
        channels["u1"].open(bytes(frame))


def test_forged_sender_rejected():
    """A non-member (without the group key) cannot forge frames."""
    server, clients = make_world()
    channels, _ = channels_for(server, clients)
    outsider = SecureGroupChannel(
        PAPER_SUITE_NO_SIG, "mallory",
        key_source=lambda: (server.group_key_ref()[0],
                            server.group_key_ref()[1],
                            b"WRONGKEY"))
    frame = outsider.seal(b"fake")
    with pytest.raises(ChannelError):
        channels["u0"].open(frame)


def test_epoch_binding_after_rekey():
    server, clients = make_world()
    channels, _ = channels_for(server, clients)
    stale_frame = channels["u0"].seal(b"before rekey")

    # u3 leaves; the group rekeys.
    departed = clients.pop("u3")
    channels.pop("u3")
    outcome = server.leave("u3")
    for message in outcome.rekey_messages:
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)

    # A fresh receiver channel (current epoch only) rejects the stale frame.
    fresh = SecureGroupChannel.for_client(clients["u1"])
    with pytest.raises(ChannelError):
        fresh.open(stale_frame)
    # New frames flow normally.
    frame = channels["u0"].seal(b"after rekey")
    payload, _sender, _seq = fresh.open(frame)
    assert payload == b"after rekey"


def test_grace_epoch_accepts_in_flight_frames():
    server, clients = make_world()
    sender = SecureGroupChannel.for_client(clients["u0"])
    receiver = SecureGroupChannel.for_client(clients["u1"],
                                             accept_previous_epochs=1)
    # Receiver observes the current epoch...
    receiver.open(sender.seal(b"warm up"))
    in_flight = sender.seal(b"racing the rekey")
    # ...then the group rekeys (a join).
    key = server.new_individual_key()
    newcomer = GroupClient("u9", PAPER_SUITE_NO_SIG, verify=False)
    newcomer.set_individual_key(key)
    clients["u9"] = newcomer
    outcome = server.join("u9", key)
    newcomer.process_control(outcome.control_messages[0].encoded)
    for message in outcome.rekey_messages:
        for receiver_id in message.receivers:
            clients[receiver_id].process_message(message.encoded)
    # The in-flight frame from the previous epoch is still accepted...
    payload, _sender, _seq = receiver.open(in_flight)
    assert payload == b"racing the rekey"
    # ...but a zero-grace receiver would have rejected it (prior test).


def test_departed_member_cannot_read_new_frames():
    server, clients = make_world()
    departed = clients.pop("u2")
    departed_channel = SecureGroupChannel.for_client(departed)
    outcome = server.leave("u2")
    for message in outcome.rekey_messages:
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)
    sender = SecureGroupChannel.for_client(clients["u0"])
    frame = sender.seal(b"post-departure secret")
    with pytest.raises(ChannelError):
        departed_channel.open(frame)


def test_seal_without_group_key():
    client = GroupClient("loner", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(bytes(8))
    channel = SecureGroupChannel.for_client(client)
    with pytest.raises(ChannelError):
        channel.seal(b"into the void")


def test_sender_id_validation():
    with pytest.raises(ChannelError):
        SecureGroupChannel(PAPER_SUITE_NO_SIG, "", lambda: None)
    with pytest.raises(ChannelError):
        SecureGroupChannel(PAPER_SUITE_NO_SIG, "x" * 300, lambda: None)


def test_open_garbage():
    server, clients = make_world(n=1)
    channel = SecureGroupChannel.for_client(clients["u0"])
    with pytest.raises(ChannelError):
        channel.open(b"not a frame")


# -- individual sender authenticity (optional signatures) -----------------------


def test_sender_signatures_accept_genuine_frames():
    from repro.crypto import rsa
    server, clients = make_world()
    alice_keypair = rsa.generate_keypair(512, seed=b"alice-signing")
    sender = SecureGroupChannel.for_client(clients["u0"],
                                           signing_keypair=alice_keypair)
    receiver = SecureGroupChannel.for_client(clients["u1"])
    receiver.register_peer("u0", alice_keypair.public_key)
    frame = sender.seal(b"signed hello")
    payload, who, _seq = receiver.open(frame)
    assert payload == b"signed hello" and who == "u0"


def test_sender_signatures_reject_masquerade():
    """u2 (a legitimate member with the MAC key) cannot pass as u0 once
    u0's public key is pinned."""
    from repro.crypto import rsa
    server, clients = make_world()
    alice_keypair = rsa.generate_keypair(512, seed=b"alice-signing")
    mallory_keypair = rsa.generate_keypair(512, seed=b"mallory-signing")
    receiver = SecureGroupChannel.for_client(clients["u1"])
    receiver.register_peer("u0", alice_keypair.public_key)

    # Unsigned frame claiming to be u0: rejected (key is pinned).
    unsigned_as_u0 = SecureGroupChannel(
        clients["u2"].suite, "u0",
        key_source=lambda: (clients["u2"].root_ref[0],
                            clients["u2"].root_ref[1],
                            clients["u2"].group_key()))
    with pytest.raises(ChannelError):
        receiver.open(unsigned_as_u0.seal(b"fake"))

    # Frame signed with the WRONG key claiming u0: rejected.
    wrong_key_as_u0 = SecureGroupChannel(
        clients["u2"].suite, "u0",
        key_source=lambda: (clients["u2"].root_ref[0],
                            clients["u2"].root_ref[1],
                            clients["u2"].group_key()),
        signing_keypair=mallory_keypair)
    with pytest.raises(ChannelError):
        receiver.open(wrong_key_as_u0.seal(b"fake"))


def test_require_sender_signatures_rejects_unpinned():
    server, clients = make_world()
    receiver = SecureGroupChannel.for_client(clients["u1"])
    receiver.require_sender_signatures = True
    plain_sender = SecureGroupChannel.for_client(clients["u0"])
    with pytest.raises(ChannelError):
        receiver.open(plain_sender.seal(b"anonymous"))


def test_unsigned_senders_still_work_when_not_pinned():
    from repro.crypto import rsa
    server, clients = make_world()
    alice_keypair = rsa.generate_keypair(512, seed=b"alice-signing")
    receiver = SecureGroupChannel.for_client(clients["u1"])
    receiver.register_peer("u0", alice_keypair.public_key)
    # u2 is not pinned: its group-MAC frames still pass.
    other = SecureGroupChannel.for_client(clients["u2"])
    payload, who, _seq = receiver.open(other.seal(b"plain member"))
    assert who == "u2"

"""GroupClient: key installation, ordering robustness, verification."""

import pytest

from repro.core.client import ClientError, GroupClient
from repro.core.messages import (MSG_DATA, MSG_JOIN_ACK, MSG_LEAVE_ACK,
                                 MSG_REKEY, EncryptedItem, KeyRecord,
                                 Message, encrypt_records)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.core.signing import SigningError
from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG


def wire_rekey(items, root_ref=(0, 0)):
    message = Message(msg_type=MSG_REKEY, root_node_id=root_ref[0],
                      root_version=root_ref[1], items=items)
    from repro.core.signing import NullSigner
    NullSigner(PAPER_SUITE_NO_SIG).seal([message])
    return message


def make_client(uid="alice"):
    client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=True)
    client.set_individual_key(bytes(8))
    return client


def test_individual_key_validation():
    client = GroupClient("a", PAPER_SUITE_NO_SIG)
    with pytest.raises(ClientError):
        client.set_individual_key(b"short")


def test_install_from_individual_key_sentinel():
    client = make_client()
    records = [KeyRecord(5, 0, b"A" * 8), KeyRecord(9, 2, b"B" * 8)]
    item = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8), records,
                           0xFFFFFFFF, 0)
    changed = client.process_message(wire_rekey([item], (9, 2)).encode())
    assert changed == 2
    assert client.holds(5, 0) and client.holds(9, 2)
    assert client.group_key() == b"B" * 8


def test_fixed_point_handles_any_item_order():
    """Chain items may precede the item that unlocks them."""
    client = make_client()
    # key for node 1 encrypted under node 2's key; node 2's key under
    # the individual key.  Deliver in the 'wrong' order.
    item_locked = encrypt_records(PAPER_SUITE_NO_SIG, b"K" * 8, bytes(8),
                                  [KeyRecord(1, 4, b"R" * 8)], 2, 1)
    item_unlock = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8),
                                  [KeyRecord(2, 1, b"K" * 8)], 0xFFFFFFFF, 0)
    message = wire_rekey([item_locked, item_unlock], (1, 4))
    changed = client.process_message(message.encode())
    assert changed == 2
    assert client.group_key() == b"R" * 8
    assert client.stats.decryptions == 2


def test_undecryptable_items_are_skipped():
    client = make_client()
    foreign = encrypt_records(PAPER_SUITE_NO_SIG, b"X" * 8, bytes(8),
                              [KeyRecord(3, 0, b"S" * 8)], 77, 0)
    mine = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8),
                           [KeyRecord(4, 0, b"M" * 8)], 0xFFFFFFFF, 0)
    changed = client.process_message(wire_rekey([foreign, mine], (4, 0)).encode())
    assert changed == 1
    assert client.holds(4, 0)
    assert not client.holds(3, 0)


def test_version_mismatch_is_not_decrypted():
    client = make_client()
    client.keys[10] = (3, b"V" * 8)
    stale = encrypt_records(PAPER_SUITE_NO_SIG, b"V" * 8, bytes(8),
                            [KeyRecord(11, 0, b"W" * 8)], 10, 9)  # wrong ver
    changed = client.process_message(wire_rekey([stale]).encode())
    assert changed == 0


def test_leaf_node_id_matching():
    client = make_client()
    client.set_leaf(123)
    item = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8),
                           [KeyRecord(50, 0, b"L" * 8)], 123, 0)
    changed = client.process_message(wire_rekey([item], (50, 0)).encode())
    assert changed == 1


def test_rejects_non_rekey_messages():
    client = make_client()
    data = Message(msg_type=MSG_DATA)
    from repro.core.signing import NullSigner
    NullSigner(PAPER_SUITE_NO_SIG).seal([data])
    with pytest.raises(ClientError):
        client.process_message(data.encode())


def test_digest_verification_failure():
    client = make_client()
    message = wire_rekey([])
    encoded = bytearray(message.encode())
    encoded[20] ^= 0xFF  # corrupt the header inside the digest region
    with pytest.raises(SigningError):
        client.process_message(bytes(encoded))
    assert client.stats.verify_failures == 1


def test_verify_disabled_skips_checks():
    client = GroupClient("a", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(bytes(8))
    message = wire_rekey([])
    encoded = bytearray(message.encode())
    encoded[20] ^= 0xFF
    client.process_message(bytes(encoded))  # no exception


def test_process_control_messages():
    client = make_client()
    ack = Message(msg_type=MSG_JOIN_ACK, body=(77).to_bytes(4, "big"))
    from repro.core.signing import NullSigner
    NullSigner(PAPER_SUITE_NO_SIG).seal([ack])
    client.process_control(ack.encode())
    assert client.leaf_node_id == 77

    client.keys[1] = (0, bytes(8))
    leave_ack = Message(msg_type=MSG_LEAVE_ACK)
    NullSigner(PAPER_SUITE_NO_SIG).seal([leave_ack])
    client.process_control(leave_ack.encode())
    assert client.keys == {}
    assert client.root_ref is None


def test_group_key_requires_current_version():
    client = make_client()
    client.keys[9] = (1, b"G" * 8)
    client.root_ref = (9, 2)  # newer than what we hold
    assert client.group_key() is None
    client.root_ref = (9, 1)
    assert client.group_key() == b"G" * 8


def test_key_count():
    client = make_client()
    assert client.key_count() == 1  # just the individual key
    client.keys[1] = (0, bytes(8))
    assert client.key_count() == 2


def test_stats_accumulate():
    client = make_client()
    item = encrypt_records(PAPER_SUITE_NO_SIG, bytes(8), bytes(8),
                           [KeyRecord(1, 0, b"A" * 8)], 0xFFFFFFFF, 0)
    message = wire_rekey([item], (1, 0)).encode()
    client.process_message(message)
    assert client.stats.rekey_messages == 1
    assert client.stats.rekey_bytes == len(message)
    assert client.stats.keys_changed == 1
    snapshot = client.stats.snapshot()
    assert snapshot.rekey_messages == 1


def test_open_data_end_to_end():
    config = ServerConfig(strategy="group", degree=3,
                          suite=PAPER_SUITE, signing="merkle",
                          seed=b"client-data")
    server = GroupKeyServer(config)
    key = server.new_individual_key()
    client = GroupClient("a", PAPER_SUITE, server.public_key)
    client.set_individual_key(key)
    outcome = server.join("a", key)
    client.process_control(outcome.control_messages[0].encoded)
    for message in outcome.rekey_messages:
        if "a" in message.receivers:
            client.process_message(message.encoded)
    sealed = server.seal_group_message(b"hello group")
    assert client.open_data(sealed.encoded) == b"hello group"

    # Tampered data is rejected by the digest check.
    corrupted = bytearray(sealed.encoded)
    corrupted[40] ^= 1
    with pytest.raises(SigningError):
        client.open_data(bytes(corrupted))


def test_open_data_requires_group_key():
    client = make_client()
    item = EncryptedItem(5, 0, bytes(8), bytes(16), 16)
    message = Message(msg_type=MSG_DATA, root_node_id=5, root_version=0,
                      items=[item])
    from repro.core.signing import NullSigner
    NullSigner(PAPER_SUITE_NO_SIG).seal([message])
    with pytest.raises(ClientError):
        client.open_data(message.encode())

"""RecoveryManager: heartbeats, retries, eviction, overload shedding."""

import pytest

from repro.batch.rekeying import BatchRekeyServer
from repro.core.client import GroupClient
from repro.core.messages import MSG_RESYNC_REPLY, Message
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.recovery import (BatchBackend, RecoveryManager, RecoveryPolicy,
                            ServerBackend)
from repro.recovery.manager import RecoveryError
from repro.transport.inmemory import InMemoryNetwork


def make_stack(n=8, policy=None, batch=False):
    if batch:
        server = BatchRekeyServer(degree=3, suite=PAPER_SUITE_NO_SIG,
                                  seed=b"mgr-tests")
        backend = BatchBackend(server)
    else:
        server = GroupKeyServer(ServerConfig(
            degree=3, strategy="group", suite=PAPER_SUITE_NO_SIG,
            signing="none", seed=b"mgr-tests"))
        backend = ServerBackend(server)
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    network = InMemoryNetwork(strict=False)
    inboxes = {}
    for uid, _key in members:
        inboxes[uid] = []
        network.attach(uid, inboxes[uid].append)
    manager = RecoveryManager(backend, network, policy=policy)
    for uid, _key in members:
        manager.track(uid)
    return server, manager, network, inboxes, dict(members)


def test_policy_validation():
    with pytest.raises(RecoveryError):
        RecoveryPolicy(dead_after=0).validate()
    with pytest.raises(RecoveryError):
        RecoveryPolicy(max_attempts=0).validate()
    with pytest.raises(RecoveryError):
        RecoveryPolicy(backoff_factor=0).validate()
    with pytest.raises(RecoveryError):
        RecoveryPolicy(shed_threshold=1).validate()


def test_backoff_progression_is_capped():
    policy = RecoveryPolicy(backoff_base=1, backoff_factor=2, backoff_cap=8)
    assert [policy.backoff(n) for n in range(1, 7)] == [1, 2, 4, 8, 8, 8]


def test_current_heartbeat_schedules_nothing():
    server, manager, _network, inboxes, _ = make_stack()
    manager.heartbeat("u0", server.group_key_ref())
    manager.tick()
    assert manager.pending_resyncs == 0
    assert inboxes["u0"] == []


def test_stale_heartbeat_triggers_resync_push():
    server, manager, _network, inboxes, _ = make_stack()
    manager.heartbeat("u0", (0, 0))
    manager.tick()
    assert len(inboxes["u0"]) == 1
    assert Message.decode(inboxes["u0"][0]).msg_type == MSG_RESYNC_REPLY
    # The push keeps retrying (with backoff) until a heartbeat confirms.
    for _ in range(3):
        manager.tick()
    assert len(inboxes["u0"]) >= 2
    manager.heartbeat("u0", server.group_key_ref())
    assert manager.pending_resyncs == 0


def test_resync_push_actually_repairs_a_client(monkeypatch=None):
    server, manager, _network, inboxes, members = make_stack()
    client = GroupClient("u0", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(members["u0"])
    manager.heartbeat("u0", (0, 0))
    manager.tick()
    client.process_resync(inboxes["u0"][0])
    assert client.group_key() == server.group_key()


def test_budget_exhaustion_escalates_to_eviction():
    policy = RecoveryPolicy(max_attempts=3, backoff_base=1,
                            backoff_factor=1, dead_after=100)
    server, manager, _network, inboxes, _ = make_stack(policy=policy)
    manager.heartbeat("u0", (0, 0))
    for _ in range(6):
        # Keep the member "alive" so silence detection stays out of it:
        # this eviction must come from the delivery budget alone.
        manager._last_seen["u0"] = manager.now
        manager.tick()
    assert len(inboxes["u0"]) == 3          # budget spent
    assert "u0" in manager.evicted          # then escalated
    assert not server.is_member("u0")
    # The eviction produced a leave rekey for the remaining members.
    assert any(inboxes[f"u{i}"] for i in range(1, 8))


def test_silence_evicts_dead_member():
    policy = RecoveryPolicy(dead_after=3)
    server, manager, _network, _inboxes, _ = make_stack(policy=policy)
    for _ in range(10):
        for i in range(1, 8):
            manager.heartbeat(f"u{i}", server.group_key_ref())
        manager.tick()
    assert manager.evicted == ["u0"]
    assert not server.is_member("u0")
    assert server.is_member("u1")


def test_comeback_heartbeat_cancels_queued_eviction():
    policy = RecoveryPolicy(dead_after=2)
    server, manager, _network, _inboxes, _ = make_stack(policy=policy)

    # Queue the eviction manually (detected dead) but have the member
    # heartbeat before the drain would fire.
    manager._evict_queue.append("u0")
    manager.heartbeat("u0", server.group_key_ref())
    manager.tick()
    assert manager.evicted == []
    assert server.is_member("u0")


def test_deep_queue_sheds_to_one_batch_flush():
    policy = RecoveryPolicy(dead_after=2, shed_threshold=3)
    server, manager, _network, inboxes, _ = make_stack(policy=policy,
                                                       batch=True)
    flushes_before = len(server.flushes)
    for _ in range(10):
        for i in range(4, 8):
            manager.heartbeat(f"u{i}", server.group_key_ref())
        manager.tick()
    assert sorted(manager.evicted) == ["u0", "u1", "u2", "u3"]
    assert manager.sheds == 1
    assert len(server.flushes) == flushes_before + 1  # one flush, not 4
    for i in range(4):
        assert not server.is_member(f"u{i}")


def test_not_member_reply_is_not_retried():
    server, manager, _network, inboxes, _ = make_stack()
    network = InMemoryNetwork(strict=False)
    ghost_inbox = []
    manager.transport.attach("ghost", ghost_inbox.append)
    manager.heartbeat("ghost", (0, 0))
    for _ in range(5):
        manager.tick()
    assert len(ghost_inbox) == 1  # one NOT_MEMBER push, no retries
    assert manager.pending_resyncs == 0


def test_backend_failure_keeps_retrying():
    server, manager, _network, inboxes, _ = make_stack()
    calls = {"n": 0}
    real_resync = manager.backend.resync

    def flaky(user_id):
        calls["n"] += 1
        if calls["n"] < 3:
            raise RuntimeError("shard down")
        return real_resync(user_id)

    manager.backend.resync = flaky
    manager.heartbeat("u0", (0, 0))
    for _ in range(8):
        manager.tick()
    assert calls["n"] >= 3
    assert len(inboxes["u0"]) >= 1  # eventually served


def test_receive_dispatches_wire_datagrams():
    server, manager, _network, _inboxes, _ = make_stack()
    from repro.core.messages import MSG_HEARTBEAT, MSG_RESYNC_REQUEST
    beat = Message(msg_type=MSG_HEARTBEAT, root_node_id=0, root_version=0,
                   body=b"u0").encode()
    assert manager.receive(beat) == []
    assert manager.pending_resyncs == 1  # stale view scheduled a push
    ask = Message(msg_type=MSG_RESYNC_REQUEST, body=b"u1").encode()
    replies = manager.receive(ask)
    assert len(replies) == 1
    assert replies[0].message.msg_type == MSG_RESYNC_REPLY
    with pytest.raises(RecoveryError):
        manager.receive(Message(msg_type=6, body=b"u0").encode())
    with pytest.raises(RecoveryError):
        manager.receive(b"junk")


def test_untrack_clears_all_state():
    server, manager, _network, _inboxes, _ = make_stack()
    manager.heartbeat("u0", (0, 0))
    manager._evict_queue.append("u0")
    manager.untrack("u0")
    assert manager.pending_resyncs == 0
    assert manager.pending_evictions == 0
    manager.tick()
    assert server.is_member("u0")

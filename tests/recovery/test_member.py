"""ResilientMember: dispatch, heartbeats, self-initiated repair."""

from repro.core.messages import (MSG_HEARTBEAT, MSG_RESYNC_REQUEST, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.recovery import ResilientMember


def make_pair(n=9):
    server = GroupKeyServer(ServerConfig(
        degree=3, strategy="group", suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"member-tests"))
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    sent = []
    member = ResilientMember("u0", PAPER_SUITE_NO_SIG, verify=False,
                             uplink=sent.append)
    member.client.set_individual_key(dict(members)["u0"])
    return server, member, sent


def test_handle_dispatches_all_types():
    server, member, _sent = make_pair()
    member.handle(server.resync("u0").encoded)
    assert member.group_key() == server.group_key()
    outcome = server.leave("u5")
    for outbound in outcome.rekey_messages:
        if "u0" in outbound.receivers:
            member.handle(outbound.encoded)
    assert member.group_key() == server.group_key()
    member.handle(server.seal_group_message(b"hello").encoded)
    assert member.received == [b"hello"]


def test_data_under_unheld_key_flags_desync_not_crash():
    server, member, _sent = make_pair()
    member.handle(server.resync("u0").encoded)
    server.leave("u3")  # member misses this rekey entirely
    member.handle(server.seal_group_message(b"secret").encoded)
    assert member.data_failures == 1
    assert member.desynced
    assert member.received == []


def test_heartbeat_carries_key_view():
    server, member, sent = make_pair()
    beat = Message.decode(member.beat())
    assert beat.msg_type == MSG_HEARTBEAT
    assert (beat.root_node_id, beat.root_version) == (0, 0)  # cold
    assert beat.body == b"u0"
    assert len(sent) == 1
    member.handle(server.resync("u0").encoded)
    beat = Message.decode(member.beat())
    assert (beat.root_node_id, beat.root_version) == server.group_key_ref()


def test_maintain_requests_resync_only_when_desynced():
    server, member, sent = make_pair()
    member.handle(server.resync("u0").encoded)
    assert member.maintain() == []  # healthy: quiet
    server.leave("u3")
    member.handle(server.seal_group_message(b"x").encoded)  # trips detection
    datagrams = member.maintain()
    assert len(datagrams) == 1
    assert Message.decode(datagrams[0]).msg_type == MSG_RESYNC_REQUEST
    assert member.resync_requests == 1
    # The request round-trips into a repair.
    member.handle(server.resync("u0").encoded)
    assert not member.desynced
    assert member.maintain() == []


def test_maintain_stays_quiet_after_eviction():
    server, member, _sent = make_pair()
    member.handle(server.resync("u0").encoded)
    server.leave("u0")
    member.handle(server.resync("u0").encoded)  # NOT_MEMBER
    assert member.evicted
    assert member.maintain() == []

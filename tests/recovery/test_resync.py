"""Resync protocol: server replies, client repair, eviction semantics."""

import pytest

from repro.batch.rekeying import BatchRekeyServer
from repro.cluster.coordinator import (ClusterConfig, ClusterCoordinator,
                                       ClusterError)
from repro.core.client import ClientError, GroupClient
from repro.core.messages import MSG_RESYNC_REPLY, Message
from repro.core.resync import (RESYNC_NOT_MEMBER, RESYNC_OK,
                               encode_resync_body, parse_resync_body)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.core.messages import WireError


def make_server(n=9, graph="tree"):
    server = GroupKeyServer(ServerConfig(
        degree=3, graph=graph, strategy="group", suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"resync-tests"))
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    return server, dict(members)


def make_client(uid, key):
    client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(key)
    return client


def test_resync_body_roundtrip():
    body = encode_resync_body(RESYNC_OK, 42)
    assert parse_resync_body(body) == (RESYNC_OK, 42)
    with pytest.raises(WireError):
        parse_resync_body(b"\x00")


def test_tree_resync_reply_repairs_cold_client():
    server, members = make_server()
    client = make_client("u4", members["u4"])
    assert client.group_key() is None
    reply = server.resync("u4")
    status = client.process_resync(reply.encoded)
    assert status == RESYNC_OK
    assert client.group_key() == server.group_key()
    assert client.leaf_node_id == server.tree.leaf_of("u4").node_id
    # The full path came across: every ancestor key matches the tree.
    for node in server.tree.user_key_path("u4")[1:]:
        assert client.keys[node.node_id] == (node.version, node.key)


def test_star_resync_reply():
    server, members = make_server(graph="star")
    client = make_client("u2", members["u2"])
    client.process_resync(server.resync("u2").encoded)
    assert client.group_key() == server.group_key()


def test_batch_resync_reply():
    server = BatchRekeyServer(degree=3, suite=PAPER_SUITE_NO_SIG,
                              seed=b"resync-batch")
    members = [(f"u{i}", server.new_individual_key()) for i in range(9)]
    server.bootstrap(members)
    client = make_client("u3", dict(members)["u3"])
    client.process_resync(server.resync("u3").encoded)
    assert client.group_key() == server.group_key()


def test_not_member_reply_marks_client_evicted():
    server, members = make_server()
    client = make_client("u0", members["u0"])
    client.process_resync(server.resync("u0").encoded)
    server.leave("u0")
    status = client.process_resync(server.resync("u0").encoded)
    assert status == RESYNC_NOT_MEMBER
    assert client.evicted
    assert client.group_key() is None  # state dropped, must rejoin


def test_resync_reply_never_downgrades_a_newer_key():
    server, members = make_server()
    client = make_client("u4", members["u4"])
    stale_reply = server.resync("u4").encoded
    # The group moves on after the reply was built...
    server.leave("u8")
    fresh_reply = server.resync("u4").encoded
    client.process_resync(fresh_reply)
    current = client.group_key()
    # ...so the stale reply's older versions must not clobber anything.
    client.process_resync(stale_reply)
    assert client.group_key() == current == server.group_key()


def test_resync_serving_does_not_perturb_rekey_stream():
    """Two servers, one serving resyncs: identical subsequent rekeys."""
    a, _ = make_server()
    b, _ = make_server()
    for _ in range(5):
        b.resync("u1")  # draws IVs from the dedicated resync source
    a_out = a.leave("u7")
    b_out = b.leave("u7")
    assert a.group_key() == b.group_key()
    a_items = [i for m in a_out.rekey_messages for i in m.message.items]
    b_items = [i for m in b_out.rekey_messages for i in m.message.items]
    assert [(i.enc_node_id, i.iv, i.ciphertext) for i in a_items] \
        == [(i.enc_node_id, i.iv, i.ciphertext) for i in b_items]


def test_process_resync_rejects_other_types():
    server, members = make_server()
    client = make_client("u1", members["u1"])
    with pytest.raises(ClientError):
        client.process_resync(Message(msg_type=6).encode())


def make_cluster(n=12, n_shards=3):
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=n_shards, strategy="group", suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"resync-cluster"))
    members = [(f"u{i}", coordinator.new_individual_key())
               for i in range(n)]
    coordinator.bootstrap(members)
    return coordinator, dict(members)


def test_cluster_resync_spans_both_layers():
    coordinator, members = make_cluster()
    client = make_client("u5", members["u5"])
    reply = coordinator.resync("u5")
    assert reply.message.msg_type == MSG_RESYNC_REPLY
    client.process_resync(reply.encoded)
    # The cold client ends holding the full composed path: shard keys
    # plus the root layer, up to the cluster group key.
    assert client.group_key() == coordinator.group_key()
    shard = coordinator.shard_of("u5")
    for node in shard.server.tree.user_key_path("u5")[1:]:
        assert client.keys[node.node_id] == (node.version, node.key)


def test_cluster_resync_unavailable_while_shard_failed():
    coordinator, members = make_cluster()
    coordinator.enable_standbys()
    shard = coordinator.shard_of("u5")
    coordinator.fail_shard(shard.shard_id)
    with pytest.raises(ClusterError):
        coordinator.resync("u5")
    # Members of other shards are still served while one shard is down.
    other = next(uid for uid in members
                 if coordinator.shard_of(uid).shard_id != shard.shard_id)
    client = make_client(other, members[other])
    client.process_resync(coordinator.resync(other).encoded)
    assert client.group_key() == coordinator.group_key()
    # After promotion the failed shard's members are served again, with
    # key state byte-identical to the pre-crash primary.
    coordinator.promote_standby(shard.shard_id)
    victim = make_client("u5", members["u5"])
    victim.process_resync(coordinator.resync("u5").encoded)
    assert victim.group_key() == coordinator.group_key()


def test_cluster_non_member_gets_not_member():
    coordinator, _ = make_cluster()
    reply = coordinator.resync("stranger")
    status, _leaf = parse_resync_body(reply.message.body)
    assert status == RESYNC_NOT_MEMBER

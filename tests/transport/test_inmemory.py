"""In-memory bus: delivery, accounting, loss injection."""

import pytest

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.transport.inmemory import InMemoryNetwork, UnknownReceiverError


def outbound(receivers, payload=b"x" * 40, kind="subgroup"):
    message = Message(msg_type=MSG_REKEY)
    if kind == "user":
        destination = Destination.to_user(receivers[0])
    else:
        destination = Destination.to_subgroup(1)
    return OutboundMessage(destination, message, tuple(receivers), payload)


def test_delivery_and_stats():
    network = InMemoryNetwork()
    inboxes = {u: [] for u in "abc"}
    for user in inboxes:
        network.attach(user, inboxes[user].append)
    network.send(outbound(("a", "b", "c")))
    assert all(len(box) == 1 for box in inboxes.values())
    assert network.stats.multicast_sends == 1
    assert network.stats.bytes_sent == 40        # one multicast, one count
    assert network.stats.deliveries == 3
    assert network.stats.bytes_delivered == 120  # fan-out counted per copy


def test_unicast_counted_separately():
    network = InMemoryNetwork()
    network.attach("a", lambda _data: None)
    network.send(outbound(("a",), kind="user"))
    assert network.stats.unicast_sends == 1
    assert network.stats.multicast_sends == 0


def test_detach_and_strictness():
    network = InMemoryNetwork()
    network.attach("a", lambda _data: None)
    network.detach("a")
    with pytest.raises(UnknownReceiverError):
        network.send(outbound(("a",), kind="user"))


def test_strict_multicast_survives_detached_receiver():
    # A multicast racing a just-detached member must not abort the
    # fan-out: the dead copy counts as undeliverable, the rest deliver.
    network = InMemoryNetwork()
    inboxes = {u: [] for u in "abc"}
    for user in inboxes:
        network.attach(user, inboxes[user].append)
    network.detach("b")  # leaves between receiver resolution and send
    network.send(outbound(("a", "b", "c")))
    assert len(inboxes["a"]) == 1
    assert len(inboxes["c"]) == 1
    assert network.undeliverable == 1
    assert network.stats.deliveries == 2
    # Direct unicast to the departed member still fails loud.
    with pytest.raises(UnknownReceiverError):
        network.deliver_to("b", b"late")


def test_non_strict_counts_undeliverable():
    network = InMemoryNetwork(strict=False)
    network.send(outbound(("ghost",)))
    assert network.undeliverable == 1
    assert network.stats.deliveries == 0


def test_loss_injection_is_deterministic_and_partial():
    def run():
        network = InMemoryNetwork(drop_rate=0.5, seed=b"loss")
        delivered = []
        network.attach("a", delivered.append)
        for _ in range(200):
            network.send(outbound(("a",)))
        return len(delivered), network.stats.drops

    first, second = run(), run()
    assert first == second               # seeded determinism
    delivered, drops = first
    assert delivered + drops == 200
    assert 40 <= delivered <= 160        # roughly half, not all-or-nothing


def test_drop_rate_validation():
    with pytest.raises(ValueError):
        InMemoryNetwork(drop_rate=1.0)
    with pytest.raises(ValueError):
        InMemoryNetwork(drop_rate=-0.1)


def test_send_all():
    network = InMemoryNetwork()
    got = []
    network.attach("a", got.append)
    network.send_all([outbound(("a",)), outbound(("a",))])
    assert len(got) == 2


def test_encodes_message_when_no_cached_bytes():
    network = InMemoryNetwork()
    got = []
    network.attach("a", got.append)
    message = Message(msg_type=MSG_REKEY, seq=7)
    network.send(OutboundMessage(Destination.to_user("a"), message,
                                 ("a",), b""))
    assert Message.decode(got[0]).seq == 7

"""Transport registry series: delta collectors over TransportStats."""

from repro.core.messages import Destination, Message, OutboundMessage
from repro.observability.metrics import MetricRegistry
from repro.transport.fecmulticast import FecMulticast
from repro.transport.inmemory import InMemoryNetwork
from repro.transport.reliable import ReliableDelivery


def _outbound(receivers, to_all=True):
    message = Message(msg_type=6, body=b"x" * 32)
    destination = (Destination.to_all() if to_all
                   else Destination.to_user(receivers[0]))
    return OutboundMessage(destination, message, tuple(receivers),
                           message.encode())


def _counter_value(snapshot, name, **labels):
    for series in snapshot["counters"][name]["series"]:
        if all(series["labels"].get(k) == v for k, v in labels.items()):
            return series["value"]
    return 0.0


def test_inmemory_series_track_stats():
    registry = MetricRegistry("net")
    net = InMemoryNetwork(registry=registry)
    received = []
    net.attach("u1", received.append)
    net.attach("u2", received.append)
    net.send(_outbound(["u1", "u2"]))
    net.send(_outbound(["u1"], to_all=False))
    snapshot = registry.snapshot()
    assert _counter_value(snapshot, "transport_sends_total",
                          transport="InMemoryNetwork", mode="multicast") == 1
    assert _counter_value(snapshot, "transport_sends_total",
                          transport="InMemoryNetwork", mode="unicast") == 1
    assert _counter_value(snapshot, "transport_deliveries_total",
                          transport="InMemoryNetwork") == 3
    sent = _counter_value(snapshot, "transport_bytes_total",
                          transport="InMemoryNetwork", direction="sent")
    assert sent == net.stats.bytes_sent > 0


def test_collector_publishes_deltas_once():
    registry = MetricRegistry("net")
    net = InMemoryNetwork(registry=registry)
    net.attach("u1", lambda payload: None)
    net.send(_outbound(["u1"]))
    first = registry.snapshot()
    second = registry.snapshot()
    for snapshot in (first, second):
        assert _counter_value(snapshot, "transport_deliveries_total",
                              transport="InMemoryNetwork") == 1


def test_reliable_over_lossy_publishes_retransmissions():
    registry = MetricRegistry("net")
    net = InMemoryNetwork(drop_rate=0.4, seed=b"lossy", registry=registry)
    reliable = ReliableDelivery(net, registry=registry)
    received = []
    reliable.attach("u1", received.append)
    for _ in range(20):
        reliable.send(_outbound(["u1"]))
    assert len(received) == 20
    snapshot = registry.snapshot()
    assert _counter_value(snapshot, "transport_retransmissions_total",
                          transport="ReliableDelivery") \
        == reliable.stats.retransmissions > 0
    assert _counter_value(snapshot, "transport_drops_total",
                          transport="InMemoryNetwork") \
        == net.stats.drops > 0


def test_fec_publishes_recovery_counters():
    registry = MetricRegistry("net")
    net = InMemoryNetwork(drop_rate=0.2, seed=b"fec", registry=registry)
    fec = FecMulticast(net, k=4, r=3, registry=registry)
    received = []
    fec.attach("u1", received.append)
    for _ in range(30):
        fec.send(_outbound(["u1"]))
    snapshot = registry.snapshot()
    recovered = snapshot["counters"]["fec_recovered_total"]["series"]
    assert recovered[0]["value"] == fec.recovered_with_parity
    assert fec.recovered_with_parity > 0


def test_transport_without_registry_stays_silent():
    net = InMemoryNetwork()
    net.attach("u1", lambda payload: None)
    net.send(_outbound(["u1"]))
    assert net.registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
    assert net.stats.deliveries == 1

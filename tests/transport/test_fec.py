"""Reed-Solomon erasure coding and FEC multicast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.transport.fec import (FecError, ReedSolomonCode, decode_packets,
                                 encode_packets, gf_inv, gf_mul)
from repro.transport.fecmulticast import FecMulticast
from repro.transport.inmemory import InMemoryNetwork


# -- GF(256) --------------------------------------------------------------------


def test_gf_field_axioms_spotcheck():
    for a in (1, 2, 7, 19, 255):
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0
    # Commutativity and associativity samples.
    assert gf_mul(7, 19) == gf_mul(19, 7)
    assert gf_mul(gf_mul(3, 5), 9) == gf_mul(3, gf_mul(5, 9))


def test_gf_inverse_of_zero():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@given(a=st.integers(min_value=1, max_value=255))
def test_gf_inverse_property(a):
    assert gf_mul(a, gf_inv(a)) == 1


def test_gf_distributivity():
    for a, b, c in ((3, 100, 200), (255, 1, 17), (9, 9, 9)):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


# -- Reed-Solomon -----------------------------------------------------------------


def test_code_parameter_validation():
    with pytest.raises(FecError):
        ReedSolomonCode(0, 1)
    with pytest.raises(FecError):
        ReedSolomonCode(200, 100)  # k + r > 255
    with pytest.raises(FecError):
        ReedSolomonCode(2, -1)


def test_no_loss_decode_is_identity():
    code = ReedSolomonCode(3, 2)
    data = [b"AAAA", b"BBBB", b"CCCC"]
    parity = code.encode(data)
    received = {i: block for i, block in enumerate(data + parity)}
    assert code.decode(received) == data


def test_decode_from_parity_only():
    code = ReedSolomonCode(2, 2)
    data = [b"hello...", b"world..."]
    parity = code.encode(data)
    received = {2: parity[0], 3: parity[1]}
    assert code.decode(received) == data


def test_decode_insufficient_blocks():
    code = ReedSolomonCode(3, 2)
    data = [b"AAAA", b"BBBB", b"CCCC"]
    parity = code.encode(data)
    with pytest.raises(FecError):
        code.decode({0: data[0], 3: parity[0]})


def test_encode_validation():
    code = ReedSolomonCode(2, 1)
    with pytest.raises(FecError):
        code.encode([b"one"])
    with pytest.raises(FecError):
        code.encode([b"one", b"longer"])


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_any_k_of_n_reconstructs(data):
    """THE erasure-code property: any k received indices suffice."""
    k = data.draw(st.integers(min_value=1, max_value=6))
    r = data.draw(st.integers(min_value=0, max_value=5))
    block_size = data.draw(st.integers(min_value=1, max_value=24))
    blocks = [data.draw(st.binary(min_size=block_size, max_size=block_size))
              for _ in range(k)]
    code = ReedSolomonCode(k, r)
    all_blocks = blocks + code.encode(blocks)
    survivors = data.draw(st.permutations(range(k + r)))[:k]
    received = {index: all_blocks[index] for index in survivors}
    assert code.decode(received) == blocks


# -- packetization ----------------------------------------------------------------


@given(payload=st.binary(min_size=1, max_size=400),
       k=st.integers(min_value=1, max_value=8),
       r=st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_packet_roundtrip(payload, k, r):
    packets = encode_packets(payload, k, r)
    assert len(packets) == k + r
    assert decode_packets(packets, k) == payload


def test_packet_roundtrip_with_losses():
    payload = bytes(range(256)) * 3
    packets = encode_packets(payload, 5, 3)
    survivors = [packets[0], packets[2], packets[5], packets[6], packets[7]]
    assert decode_packets(survivors, 5) == payload


def test_packet_header_validation():
    with pytest.raises(FecError):
        decode_packets([b"tiny"], 2)
    with pytest.raises(FecError):
        decode_packets([], 2)
    packets = encode_packets(b"payload", 2, 1)
    other = encode_packets(b"different!", 2, 1)
    with pytest.raises(FecError):
        decode_packets([packets[0], other[1]], 2)


# -- FEC multicast transport ----------------------------------------------------------


def rekey_outbound(receivers, payload=b"R" * 300):
    return OutboundMessage(Destination.to_all(),
                           Message(msg_type=MSG_REKEY), tuple(receivers),
                           payload)


def test_fec_multicast_lossless():
    network = InMemoryNetwork()
    fec = FecMulticast(network, k=4, r=2)
    inbox = []
    fec.attach("a", inbox.append)
    fec.send(rekey_outbound(("a",)))
    assert inbox == [b"R" * 300]
    assert fec.recovered_with_parity == 0


def test_fec_multicast_survives_loss_without_retransmission():
    network = InMemoryNetwork(drop_rate=0.25, seed=b"fec-loss")
    fec = FecMulticast(network, k=4, r=4)
    inboxes = {user: [] for user in ("a", "b", "c")}
    for user, inbox in inboxes.items():
        fec.attach(user, inbox.append)
    n_messages = 40
    for i in range(n_messages):
        fec.send(rekey_outbound(tuple(inboxes), payload=bytes([i]) * 120))
    recovered = sum(len(inbox) for inbox in inboxes.values())
    # 25% loss with r=k parity: virtually everything reconstructs, and
    # nothing was ever retransmitted.
    assert recovered + fec.unrecoverable == n_messages * 3
    assert recovered >= n_messages * 3 * 0.9
    assert fec.recovered_with_parity > 0
    assert network.stats.retransmissions == 0
    # Delivered copies arrive intact and in order.
    for inbox in inboxes.values():
        assert inbox == sorted(inbox)


def test_fec_overhead_accounting():
    fec = FecMulticast(InMemoryNetwork(), k=4, r=2)
    assert fec.overhead == pytest.approx(0.5)
    with pytest.raises(ValueError):
        FecMulticast(InMemoryNetwork(), k=0)


def test_fec_no_duplicate_delivery():
    network = InMemoryNetwork()
    fec = FecMulticast(network, k=2, r=3)  # r > k: extra packets arrive late
    inbox = []
    fec.attach("a", inbox.append)
    fec.send(rekey_outbound(("a",), payload=b"once"))
    assert inbox == [b"once"]


def test_fec_carries_real_rekey_messages():
    """End to end: server rekey -> FEC over 20% loss -> client keys."""
    from repro.core.client import GroupClient
    from repro.core.server import GroupKeyServer, ServerConfig
    from repro.crypto.suite import PAPER_SUITE_NO_SIG

    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"fec-e2e"))
    network = InMemoryNetwork(drop_rate=0.2, seed=b"fec-e2e-loss")
    fec = FecMulticast(network, k=3, r=5)
    clients = {}
    for i in range(9):
        uid = f"u{i}"
        key = server.new_individual_key()
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
        fec.attach(uid, client.process_message)
        outcome = server.join(uid, key)
        client.process_control(outcome.control_messages[0].encoded)
        fec.send_all(outcome.rekey_messages)
    synchronized = sum(1 for client in clients.values()
                      if client.group_key() == server.group_key())
    # With r=5 parity over 20% loss essentially everyone keeps up.
    assert synchronized >= 8

"""Reliable delivery over a lossy bus."""

import pytest

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.transport.inmemory import InMemoryNetwork
from repro.transport.reliable import DeliveryFailure, ReliableDelivery


def outbound(receivers, payload=b"payload-bytes"):
    return OutboundMessage(Destination.to_subgroup(1),
                           Message(msg_type=MSG_REKEY), tuple(receivers),
                           payload)


def test_lossless_passthrough():
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network)
    got = []
    reliable.attach("a", got.append)
    reliable.send(outbound(("a",)))
    assert got == [b"payload-bytes"]
    assert reliable.stats.retransmissions == 0


def test_delivers_despite_heavy_loss():
    network = InMemoryNetwork(drop_rate=0.6, seed=b"retry")
    reliable = ReliableDelivery(network, max_attempts=64)
    inboxes = {u: [] for u in ("a", "b", "c")}
    for user, box in inboxes.items():
        reliable.attach(user, box.append)
    for i in range(30):
        reliable.send(outbound(("a", "b", "c"), payload=bytes([i]) * 10))
    # Every copy eventually arrived, exactly once, in order.
    for box in inboxes.values():
        assert len(box) == 30
        assert box == sorted(box)
    assert reliable.stats.retransmissions > 0


def test_gives_up_after_max_attempts():
    network = InMemoryNetwork(drop_rate=0.97, seed=b"hopeless")
    reliable = ReliableDelivery(network, max_attempts=2)
    reliable.attach("a", lambda _data: None)
    with pytest.raises(DeliveryFailure):
        for _ in range(50):
            reliable.send(outbound(("a",)))


def test_duplicate_suppression():
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network)
    got = []
    reliable.attach("a", got.append)
    reliable.send(outbound(("a",)))
    # Replay the same enveloped bytes directly (simulating a duplicate
    # datagram): the dedup layer must swallow it.
    import struct
    envelope = struct.pack(">QI", 1, 0) + b"payload-bytes"
    network.deliver_to("a", envelope)
    assert len(got) == 1


def test_detach():
    network = InMemoryNetwork(strict=False)
    reliable = ReliableDelivery(network)
    reliable.attach("a", lambda _data: None)
    reliable.detach("a")
    # Now undeliverable (non-strict network counts it).
    with pytest.raises(DeliveryFailure):
        reliable.send(outbound(("a",)))


def test_max_attempts_validation():
    with pytest.raises(ValueError):
        ReliableDelivery(InMemoryNetwork(), max_attempts=0)


def test_dedup_state_stays_bounded_over_long_workload():
    # Regression: the per-receiver dedup set used to grow forever (one
    # entry per message, per receiver).  It is now a sliding window.
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network, dedup_window=64)
    got = []
    reliable.attach("a", got.append)
    for i in range(10_000):
        reliable.send(outbound(("a",), payload=b"m%d" % i))
    assert len(got) == 10_000
    # Bounded: at most 2x the window survives the amortized prune.
    assert len(reliable._seen["a"]) <= 128


def test_dedup_window_still_suppresses_recent_and_ancient_duplicates():
    import struct
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network, dedup_window=16)
    got = []
    reliable.attach("a", got.append)
    for i in range(100):
        reliable.send(outbound(("a",), payload=b"m%d" % i))
    assert len(got) == 100
    # A recent duplicate (within the window) is swallowed by the set...
    network.deliver_to("a", struct.pack(">QI", 100, 0) + b"m99")
    # ...and an ancient one (past the horizon) by the window bound.
    network.deliver_to("a", struct.pack(">QI", 3, 0) + b"m2")
    assert len(got) == 100


def test_dedup_window_validation():
    from repro.transport.reliable import _DedupWindow
    with pytest.raises(ValueError):
        _DedupWindow(0)

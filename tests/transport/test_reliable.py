"""Reliable delivery over a lossy bus."""

import pytest

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.transport.inmemory import InMemoryNetwork
from repro.transport.reliable import DeliveryFailure, ReliableDelivery


def outbound(receivers, payload=b"payload-bytes"):
    return OutboundMessage(Destination.to_subgroup(1),
                           Message(msg_type=MSG_REKEY), tuple(receivers),
                           payload)


def test_lossless_passthrough():
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network)
    got = []
    reliable.attach("a", got.append)
    reliable.send(outbound(("a",)))
    assert got == [b"payload-bytes"]
    assert reliable.stats.retransmissions == 0


def test_delivers_despite_heavy_loss():
    network = InMemoryNetwork(drop_rate=0.6, seed=b"retry")
    reliable = ReliableDelivery(network, max_attempts=64)
    inboxes = {u: [] for u in ("a", "b", "c")}
    for user, box in inboxes.items():
        reliable.attach(user, box.append)
    for i in range(30):
        reliable.send(outbound(("a", "b", "c"), payload=bytes([i]) * 10))
    # Every copy eventually arrived, exactly once, in order.
    for box in inboxes.values():
        assert len(box) == 30
        assert box == sorted(box)
    assert reliable.stats.retransmissions > 0


def test_gives_up_after_max_attempts():
    network = InMemoryNetwork(drop_rate=0.97, seed=b"hopeless")
    reliable = ReliableDelivery(network, max_attempts=2)
    reliable.attach("a", lambda _data: None)
    with pytest.raises(DeliveryFailure):
        for _ in range(50):
            reliable.send(outbound(("a",)))


def test_duplicate_suppression():
    network = InMemoryNetwork()
    reliable = ReliableDelivery(network)
    got = []
    reliable.attach("a", got.append)
    reliable.send(outbound(("a",)))
    # Replay the same enveloped bytes directly (simulating a duplicate
    # datagram): the dedup layer must swallow it.
    import struct
    envelope = struct.pack(">QI", 1, 0) + b"payload-bytes"
    network.deliver_to("a", envelope)
    assert len(got) == 1


def test_detach():
    network = InMemoryNetwork(strict=False)
    reliable = ReliableDelivery(network)
    reliable.attach("a", lambda _data: None)
    reliable.detach("a")
    # Now undeliverable (non-strict network counts it).
    with pytest.raises(DeliveryFailure):
        reliable.send(outbound(("a",)))


def test_max_attempts_validation():
    with pytest.raises(ValueError):
        ReliableDelivery(InMemoryNetwork(), max_attempts=0)

"""Loopback UDP transport: real sockets end to end."""

import pytest

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.transport.udp import (UdpGroupMember, UdpKeyServer,
                                 UdpTransportError)


@pytest.fixture()
def udp_server():
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"udp-tests"))
    with UdpKeyServer(server) as endpoint:
        yield endpoint


def test_join_leave_over_udp(udp_server):
    members = []
    try:
        for i in range(5):
            key = udp_server.server.new_individual_key()
            udp_server.server.register_individual_key(f"c{i}", key)
            member = UdpGroupMember(f"c{i}", PAPER_SUITE_NO_SIG,
                                    udp_server.address, timeout=10.0)
            member.join(key)
            members.append(member)
        # Let earlier members drain the rekey messages later joins caused.
        for member in members:
            member.pump()
        group_key = udp_server.server.group_key()
        for member in members:
            assert member.client.group_key() == group_key, member.user_id

        # One member leaves; the rest converge on the new key.
        members[2].leave()
        for index, member in enumerate(members):
            if index != 2:
                member.pump()
        new_key = udp_server.server.group_key()
        assert new_key != group_key
        for index, member in enumerate(members):
            if index != 2:
                assert member.client.group_key() == new_key
        assert not udp_server.server.is_member("c2")
    finally:
        for member in members:
            member.close()


def test_join_denied_over_udp(udp_server):
    # No registered individual key -> the server denies the join.
    member = UdpGroupMember("outsider", PAPER_SUITE_NO_SIG,
                            udp_server.address, timeout=10.0)
    try:
        with pytest.raises(UdpTransportError):
            member.join(bytes(8))
    finally:
        member.close()


def test_malformed_datagram_does_not_kill_server(udp_server):
    import socket
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.sendto(b"garbage", udp_server.address)
        # Server still serves a real client afterwards.
        key = udp_server.server.new_individual_key()
        udp_server.server.register_individual_key("after", key)
        member = UdpGroupMember("after", PAPER_SUITE_NO_SIG,
                                udp_server.address, timeout=10.0)
        try:
            member.join(key)
            assert udp_server.server.is_member("after")
        finally:
            member.close()
    finally:
        probe.close()

"""Scrape timeout + bounded retry against a lossy stats endpoint."""

import json
import socket
import threading

import pytest

from repro.core.messages import (MSG_STATS_REQUEST, MSG_STATS_RESPONSE,
                                 Message)
from repro.observability.export import build_snapshot
from repro.observability.metrics import MetricRegistry
from repro.transport.udp import UdpTransportError, scrape_stats


class _FlakyStatsServer:
    """Answers stats requests only after ignoring the first ``drops``."""

    def __init__(self, drops):
        self.drops = drops
        self.requests_seen = 0
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.settimeout(0.2)
        self.address = self.sock.getsockname()
        self._stop = threading.Event()
        registry = MetricRegistry()
        registry.counter("demo_total", "A demo counter.").inc()
        body = json.dumps(build_snapshot(registry, label="flaky"))
        self._response = Message(
            msg_type=MSG_STATS_RESPONSE,
            body=body.encode("utf-8")).encode()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                data, source = self.sock.recvfrom(65535)
            except socket.timeout:
                continue
            except OSError:
                return
            if Message.decode(data).msg_type != MSG_STATS_REQUEST:
                continue
            self.requests_seen += 1
            if self.requests_seen <= self.drops:
                continue  # swallow: the scraper must retry
            self.sock.sendto(self._response, source)

    def close(self):
        self._stop.set()
        self.thread.join(timeout=2.0)
        self.sock.close()


def test_scrape_retries_through_a_dropped_request():
    server = _FlakyStatsServer(drops=1)
    try:
        document = scrape_stats(server.address, timeout=0.5, retries=2)
        assert document["label"] == "flaky"
        assert server.requests_seen == 2
    finally:
        server.close()


def test_scrape_exhausts_retries_and_raises():
    server = _FlakyStatsServer(drops=100)
    try:
        with pytest.raises(UdpTransportError, match="after 3 attempts"):
            scrape_stats(server.address, timeout=0.2, retries=2)
        assert server.requests_seen == 3
    finally:
        server.close()


def test_scrape_times_out_against_a_dead_port():
    # A bound-then-closed socket: nothing will ever answer.
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    with pytest.raises(UdpTransportError, match="after 1 attempts"):
        scrape_stats(address, timeout=0.2, retries=0)


def test_scrape_rejects_negative_retries():
    with pytest.raises(ValueError):
        scrape_stats(("127.0.0.1", 1), timeout=0.1, retries=-1)

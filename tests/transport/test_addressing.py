"""Bounded multicast address pool (paper §7)."""

import pytest

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.transport.addressing import (AddressedTransport,
                                        MulticastAddressPool)
from repro.transport.inmemory import InMemoryNetwork


def outbound(destination, receivers):
    return OutboundMessage(destination, Message(msg_type=MSG_REKEY),
                           tuple(receivers), b"payload")


def test_pool_assignment_and_exhaustion():
    pool = MulticastAddressPool(2)
    assert pool.address_for(10) is not None
    assert pool.address_for(10) == pool.address_for(10)  # stable
    assert pool.address_for(20) is not None
    assert pool.address_for(30) is None                  # exhausted
    assert pool.requested == 3
    assert pool.assigned == 2
    pool.release(10)
    assert pool.address_for(30) is not None              # recycled


def test_pool_validation():
    with pytest.raises(ValueError):
        MulticastAddressPool(-1)


def test_group_address_is_free():
    network = InMemoryNetwork(strict=False)
    transport = AddressedTransport(network, MulticastAddressPool(0))
    transport.send(outbound(Destination.to_all(), ["a", "b", "c"]))
    assert transport.addressing.multicast_sends == 1
    assert transport.addressing.copies_sent == 1
    assert transport.addressing.unicast_fallbacks == 0


def test_subgroup_fallback_to_unicast():
    network = InMemoryNetwork(strict=False)
    transport = AddressedTransport(network, MulticastAddressPool(1))
    transport.send(outbound(Destination.to_subgroup(1), ["a", "b"]))
    transport.send(outbound(Destination.to_subgroup(2), ["c", "d", "e"]))
    stats = transport.addressing
    assert stats.multicast_sends == 1      # subgroup 1 got the address
    assert stats.unicast_fallbacks == 1    # subgroup 2 degraded
    assert stats.copies_sent == 1 + 3


def test_unicast_counts_per_copy():
    network = InMemoryNetwork(strict=False)
    transport = AddressedTransport(network, MulticastAddressPool(4))
    transport.send(outbound(Destination.to_user("a"), ["a"]))
    assert transport.addressing.copies_sent == 1


def test_delivery_still_happens():
    network = InMemoryNetwork()
    inbox = []
    transport = AddressedTransport(network, MulticastAddressPool(0))
    transport.attach("a", inbox.append)
    transport.send(outbound(Destination.to_subgroup(9), ["a"]))
    assert inbox == [b"payload"]
    transport.detach("a")

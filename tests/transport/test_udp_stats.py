"""UDP telemetry: live stats endpoint and cross-process trace trailers."""

import pytest

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG
from repro.observability import Instrumentation, Tracer
from repro.observability.export import to_prometheus, validate_snapshot
from repro.transport.udp import UdpGroupMember, UdpKeyServer, scrape_stats


def _traced_server():
    instrumentation = Instrumentation("udp-stats", tracer=Tracer())
    return GroupKeyServer(
        ServerConfig(strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
                     signing="none", seed=b"udp-stats-tests"),
        instrumentation=instrumentation)


@pytest.fixture()
def traced_endpoint():
    with UdpKeyServer(_traced_server()) as endpoint:
        yield endpoint


def _join(endpoint, user_id, timeout=10.0):
    key = endpoint.server.new_individual_key()
    endpoint.server.register_individual_key(user_id, key)
    member = UdpGroupMember(user_id, PAPER_SUITE_NO_SIG, endpoint.address,
                            timeout=timeout)
    member.join(key)
    return member


def test_scrape_returns_live_snapshot(traced_endpoint):
    members = [_join(traced_endpoint, f"c{i}") for i in range(3)]
    try:
        document = scrape_stats(traced_endpoint.address)
        validate_snapshot(document)
        counters = document["metrics"]["counters"]
        series = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in counters["server_requests_total"]["series"]}
        assert series[(("op", "join"), ("status", "ok"))] == 3
        gauges = document["metrics"]["gauges"]
        assert gauges["group_size"]["series"][0]["value"] == 3
        # The same document feeds the Prometheus exposition directly.
        assert "server_requests_total" in to_prometheus(document)
    finally:
        for member in members:
            member.close()


def test_scrape_includes_spans_when_traced(traced_endpoint):
    member = _join(traced_endpoint, "c0")
    try:
        document = scrape_stats(traced_endpoint.address)
        spans = document["spans"]
        names = {span["name"] for span in spans}
        assert "udp.request" in names
        assert "rekey.join" in names
        # The pipeline spans parent under the UDP request span: one
        # trace covers socket receipt through dispatch.
        roots = [s for s in spans if s["parent_id"] == 0]
        assert {s["name"] for s in roots} == {"udp.request"}
        rekey = next(s for s in spans if s["name"] == "rekey.join")
        root = next(s for s in roots)
        assert rekey["trace_id"] == root["trace_id"]
        assert rekey["parent_id"] == root["span_id"]
    finally:
        member.close()


def test_trailer_propagates_trace_to_member(traced_endpoint):
    member = _join(traced_endpoint, "c0")
    try:
        assert member.last_trace is not None
        server_traces = {span["trace_id"]
                         for span in scrape_stats(traced_endpoint.address)
                         ["spans"]}
        assert member.last_trace.trace_id in server_traces
    finally:
        member.close()


def test_untraced_server_sends_no_trailer():
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"udp-untraced"))
    with UdpKeyServer(server) as endpoint:
        member = _join(endpoint, "c0")
        try:
            assert member.last_trace is None
            # Stats still answer with a (registry-backed) snapshot.
            document = scrape_stats(endpoint.address)
            validate_snapshot(document)
            assert "spans" not in document
        finally:
            member.close()


def test_stats_request_does_not_disturb_protocol(traced_endpoint):
    first = _join(traced_endpoint, "c0")
    try:
        scrape_stats(traced_endpoint.address)
        second = _join(traced_endpoint, "c1")
        try:
            first.pump()
            second.pump()
            assert (first.client.group_key()
                    == traced_endpoint.server.group_key())
            assert (second.client.group_key()
                    == traced_endpoint.server.group_key())
        finally:
            second.close()
    finally:
        first.close()

"""Server specification files (paper §5 initialization)."""

import pytest

from repro.core.server import GroupKeyServer
from repro.specfile import (SpecError, config_from_spec, load_spec,
                            parse_spec)

PAPER_SPEC = """
# the paper's experimental configuration
group-id     = 1
graph        = tree
initial-size = 8192
degree       = 4
strategy     = group
cipher       = des
digest       = md5
signature    = rsa-512
signing      = merkle
seed         = sigcomm98
"""


def test_paper_spec_parses():
    config, initial_size = config_from_spec(PAPER_SPEC)
    assert initial_size == 8192
    assert config.degree == 4
    assert config.strategy == "group"
    assert config.suite.cipher_name == "des"
    assert config.suite.digest_name == "md5"
    assert config.suite.signature_bits == 512
    assert config.signing == "merkle"
    assert config.seed == b"sigcomm98"
    assert config.access_list is None


def test_defaults_fill_in():
    config, initial_size = config_from_spec("")
    assert initial_size == 0
    assert config.degree == 4
    assert config.strategy == "group"
    assert config.seed is None


def test_server_builds_from_spec():
    config, initial_size = config_from_spec(
        "initial-size = 16\nsigning = none\nsignature = none\n"
        "digest = none\nseed = t")
    server = GroupKeyServer(config)
    server.bootstrap([(f"m{i}", server.new_individual_key())
                      for i in range(initial_size)])
    assert server.n_users == 16


def test_comments_and_whitespace():
    values = parse_spec("  degree = 8   # big fanout\n\n# only a comment\n")
    assert values == {"degree": "8"}


def test_access_list():
    config, _ = config_from_spec("access-list = alice , bob,carol\n"
                                 "signing = none\nsignature = none")
    assert config.access_list == {"alice", "bob", "carol"}


@pytest.mark.parametrize("bad,fragment", [
    ("nonsense line", "expected"),
    ("unknown-key = 1", "unknown key"),
    ("degree = one", "integer"),
    ("degree = 1", ">= 2"),
    ("degree = 4\ndegree = 8", "duplicate"),
    ("cipher =", "empty value"),
    ("cipher = rot13", "cipher"),
    ("signature = dsa-1024", "signature"),
    ("strategy = psychic", "strategy"),
    ("signing = merkle\ndigest = none\nsignature = none", "signing"),
    ("access-list = ,", "empty"),
    ("initial-size = -4", ">= 0"),
    ("backend = columnar", "backend"),
])
def test_rejections(bad, fragment):
    with pytest.raises(SpecError) as excinfo:
        config_from_spec(bad)
    assert fragment.lower() in str(excinfo.value).lower()


def test_backend_selection():
    config, _ = config_from_spec(PAPER_SPEC)
    assert config.backend == "object"          # the default engine
    config, _ = config_from_spec(PAPER_SPEC + "backend = flat\n")
    assert config.backend == "flat"
    server = GroupKeyServer(config)
    server.bootstrap([("alice", b"\x01" * 8), ("bob", b"\x02" * 8)])
    assert server.tree.backend_name == "flat"
    assert sorted(server.members()) == ["alice", "bob"]


def test_load_spec_from_disk(tmp_path):
    path = tmp_path / "keyserver.spec"
    path.write_text(PAPER_SPEC)
    config, initial_size = load_spec(str(path))
    assert initial_size == 8192
    assert config.suite.signature_bits == 512

"""Coalescing mode: concurrent joins/leaves fold into one batch flush."""

import asyncio

from repro.batch.rekeying import BatchRekeyServer
from repro.core.messages import (MSG_JOIN_ACK, MSG_JOIN_REQUEST,
                                 MSG_LEAVE_ACK, MSG_LEAVE_REQUEST,
                                 MSG_REKEY, Message)
from repro.serve import CoalescingServingCore, ServeConfig
from repro.serve.wire import split_corr_trailer


def _request(msg_type, user):
    return Message(msg_type=msg_type, body=user.encode("utf-8")).encode()


def _run(coro):
    return asyncio.run(coro)


def test_concurrent_joins_fold_into_one_flush():
    async def scenario():
        server = BatchRekeyServer(seed=b"coalesce-test", signing="none")
        config = ServeConfig(coalesce=True, coalesce_interval=0.05,
                             coalesce_max=64, max_inflight=128,
                             tick_interval=0)
        core = CoalescingServingCore(server, config)
        await core.start()
        replies = {}
        group_traffic = []
        try:
            users = [f"u{i}" for i in range(12)]
            for user in users:
                core.fanout.attach(
                    user,
                    lambda payload, user=user:
                        group_traffic.append((user, payload)),
                    path_id=f"path-{user}")

            async def one_join(user):
                await core.submit(
                    _request(MSG_JOIN_REQUEST, user),
                    lambda payload, user=user:
                        replies.setdefault(user, payload),
                    path_id=None)
            await asyncio.gather(*(one_join(user) for user in users))
            assert core._m_flushes.value == 1, \
                "a concurrent burst must rekey exactly once"
            assert server.tree.n_users == 12
            # Every joiner got a direct reply: its path-keys unicast.
            assert set(replies) == set(users)
            for user, payload in replies.items():
                message = Message.decode(split_corr_trailer(payload)[0])
                assert message.msg_type in (MSG_REKEY, MSG_JOIN_ACK)
        finally:
            await core.aclose()
    _run(scenario())


def test_leavers_get_synthesized_acks():
    async def scenario():
        server = BatchRekeyServer(seed=b"coalesce-leave", signing="none")
        config = ServeConfig(coalesce=True, coalesce_interval=0.05,
                             max_inflight=128, tick_interval=0)
        core = CoalescingServingCore(server, config)
        await core.start()
        try:
            joins = {}
            await asyncio.gather(*(
                core.submit(_request(MSG_JOIN_REQUEST, f"u{i}"),
                            lambda p, i=i: joins.setdefault(i, p),
                            path_id=None)
                for i in range(6)))
            leave_replies = []
            await core.submit(_request(MSG_LEAVE_REQUEST, "u3"),
                              leave_replies.append, path_id=None)
            assert leave_replies, "leave must be acked at the flush"
            message = Message.decode(
                split_corr_trailer(leave_replies[0])[0])
            assert message.msg_type == MSG_LEAVE_ACK
            assert not server.is_member("u3")
        finally:
            await core.aclose()
    _run(scenario())


def test_join_then_leave_same_interval_cancels():
    async def scenario():
        server = BatchRekeyServer(seed=b"coalesce-cancel", signing="none")
        config = ServeConfig(coalesce=True, coalesce_interval=0.2,
                             max_inflight=128, tick_interval=0)
        core = CoalescingServingCore(server, config)
        await core.start()
        try:
            replies = []
            await asyncio.gather(
                core.submit(_request(MSG_JOIN_REQUEST, "ghost"),
                            replies.append, path_id=None),
                core.submit(_request(MSG_LEAVE_REQUEST, "ghost"),
                            replies.append, path_id=None))
            # Both requests answered, no membership change.
            assert len(replies) == 2
            assert not server.is_member("ghost")
        finally:
            await core.aclose()
    _run(scenario())


def test_coalesce_max_triggers_early_flush():
    async def scenario():
        server = BatchRekeyServer(seed=b"coalesce-early", signing="none")
        # A long interval that the test never waits out: the early
        # flush must come from the pending-count trigger.
        config = ServeConfig(coalesce=True, coalesce_interval=30.0,
                             coalesce_max=4, max_inflight=128,
                             tick_interval=0)
        core = CoalescingServingCore(server, config)
        await core.start()
        try:
            await asyncio.wait_for(
                asyncio.gather(*(
                    core.submit(_request(MSG_JOIN_REQUEST, f"u{i}"),
                                lambda _p: None, path_id=None)
                    for i in range(4))),
                timeout=5.0)
            assert server.tree.n_users == 4
        finally:
            await core.aclose()
    _run(scenario())

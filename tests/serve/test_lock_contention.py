"""Op-lock contention regressions for the async serving core.

The SealTurnstile's no-deadlock argument needs seal tickets drawn in
executor-submission order, so rekey planning must never migrate off
the event loop — even when the op lock is held by executor-side work
(a tick, a flush).  These tests pin the contended paths: single-worker
progress under a busy lock, the coalescing enqueue/waiter atomicity,
the tick's quiesce gate, opportunistic rate-bucket pruning, and the
busy reply for admitted ops that die server-side.
"""

import asyncio
import time

from repro.batch.rekeying import BatchRekeyServer
from repro.core.messages import (MSG_BUSY, MSG_JOIN_REQUEST, MSG_REKEY,
                                 Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.serve import (CoalescingServingCore, ImmediateServingCore,
                         ServeConfig)
from repro.serve.wire import split_corr_trailer


def _request(msg_type, user):
    return Message(msg_type=msg_type, body=user.encode("utf-8")).encode()


def _server(seed):
    return GroupKeyServer(
        ServerConfig(signing="none", seed=seed, backend="flat"))


def test_immediate_progress_under_contended_lock_single_worker():
    """Joins complete with one worker and a repeatedly-busy op lock.

    The old fallback ran the whole op on the executor, drawing its
    seal ticket after submission; with the pool exhausted by tasks
    blocked on the op lock, an earlier-ticket staged task could starve
    and wedge the server.  Now planning always happens on the loop, so
    this scenario must always make progress.
    """
    async def scenario():
        core = ImmediateServingCore(
            _server(b"contend-immediate"),
            ServeConfig(tick_interval=0, max_inflight=256), workers=1)
        replies = []

        def hold():
            # A tick/flush stand-in: occupies the only worker while
            # holding the op lock.
            with core._op_lock:
                time.sleep(0.002)
        try:
            for round_ in range(8):
                core.executor.submit(hold)
                await asyncio.gather(*(
                    core.submit(
                        _request(MSG_JOIN_REQUEST, f"u{round_}-{i}"),
                        replies.append, path_id=None)
                    for i in range(4)))
        finally:
            await core.aclose()
        return replies, core.server.tree.n_users

    replies, members = asyncio.run(
        asyncio.wait_for(scenario(), timeout=60))
    assert members == 32
    assert len(replies) >= 32


def test_coalesce_contended_joiners_still_get_path_keys():
    """Every joiner's reply is its path-keys unicast, never a bare ack.

    Enqueue used to fall back to the executor under a busy op lock,
    with the waiter appended only after the await resumed — a flush in
    that window consumed the pending join without a waiter and its
    path-key unicast was silently dropped.  Enqueue + registration are
    now one atomic step under the op lock, flush-snapshot included.
    """
    users = [f"u{i}" for i in range(24)]

    async def scenario():
        server = BatchRekeyServer(seed=b"contend-batch", signing="none")
        core = CoalescingServingCore(server, ServeConfig(
            coalesce=True, coalesce_interval=0.01, coalesce_max=4,
            max_inflight=256, tick_interval=0))
        await core.start()
        replies = {}
        try:
            # Seed the group so a fresh joiner's flush reply must be a
            # path-keys unicast (MSG_REKEY) rather than a first-member
            # degenerate case.
            await asyncio.gather(*(core.submit(
                _request(MSG_JOIN_REQUEST, f"seed{i}"),
                lambda _p: None, path_id=None) for i in range(4)))

            def hold():
                with core._op_lock:
                    time.sleep(0.002)

            async def join(user):
                await core.submit(
                    _request(MSG_JOIN_REQUEST, user),
                    lambda p, u=user: replies.setdefault(u, p),
                    path_id=None)
            tasks = []
            for index, user in enumerate(users):
                if index % 3 == 0:
                    core.executor.submit(hold)
                tasks.append(asyncio.ensure_future(join(user)))
                # Yield so submits interleave with flush wakeups.
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
        finally:
            await core.aclose()
        return replies

    replies = asyncio.run(asyncio.wait_for(scenario(), timeout=60))
    assert set(replies) == set(users)
    for user, payload in replies.items():
        message = Message.decode(split_corr_trailer(payload)[0])
        assert message.msg_type == MSG_REKEY, \
            f"{user}: join reply lost its path keys ({message.msg_type})"


def test_tick_waits_for_turnstile_quiesce():
    """The tick defers while a staged op holds an unretired ticket.

    Tick evictions run synchronous leaves that would otherwise wait on
    the turnstile under the op lock — the same starvation shape as the
    old executor fallback.
    """
    async def scenario():
        core = ImmediateServingCore(
            _server(b"tick-quiesce"), ServeConfig(tick_interval=0),
            workers=1)
        server = core.server
        server.register_individual_key("a", server.new_individual_key())
        staged = server.begin_join("a")
        tick = asyncio.ensure_future(core._tick_once())
        await asyncio.sleep(0.05)
        try:
            assert not tick.done(), \
                "tick must not run with a seal ticket outstanding"
        except BaseException:
            staged.abort()
            tick.cancel()
            raise
        # Retire the ticket off-loop (not on the core's worker, which
        # must stay available to the core itself).
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: staged.encrypt().seal().finish())
        await asyncio.wait_for(tick, timeout=10)
        await core.aclose()

    asyncio.run(asyncio.wait_for(scenario(), timeout=60))


def test_rate_buckets_pruned_without_ticker():
    """client_rate>0 with tick_interval=0 must not grow buckets forever."""
    core = ImmediateServingCore(
        _server(b"bucket-prune"),
        ServeConfig(tick_interval=0, client_rate=1e9, client_burst=1))
    try:
        for i in range(5000):
            core._admit_rate(f"user-{i}")
        # Refill at this rate is instant, so each opportunistic prune
        # clears the table; growth stays bounded by the prune period.
        assert len(core._buckets) < 2048
    finally:
        core.executor.shutdown(wait=True)


def test_unexpected_rekey_failure_replies_busy():
    """An admitted op that dies server-side still answers the client."""
    async def scenario():
        core = ImmediateServingCore(
            _server(b"rekey-error"), ServeConfig(tick_interval=0))

        async def boom(op, user_id, payload, reply, token):
            raise RuntimeError("injected")
        core._rekey = boom
        replies = []
        try:
            await core.submit(_request(MSG_JOIN_REQUEST, "victim"),
                              replies.append, path_id=None)
        finally:
            await core.aclose()
        assert len(replies) == 1
        message = Message.decode(split_corr_trailer(replies[0])[0])
        assert message.msg_type == MSG_BUSY
        assert core._m_errors.labels(op="join").value == 1
        assert core._m_shed.labels(reason="error").value == 1

    asyncio.run(asyncio.wait_for(scenario(), timeout=60))

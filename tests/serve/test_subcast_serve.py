"""The subcast request path through the async serving cores."""

import asyncio
import socket

from repro.core.messages import (MSG_BUSY, MSG_JOIN_REQUEST, MSG_SUBCAST,
                                 MSG_SUBCAST_REQUEST, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability.instrumentation import Instrumentation
from repro.observability.spans import Tracer
from repro.serve import (AsyncKeyService, ImmediateServingCore,
                         ServeConfig)
from repro.serve.wire import attach_corr_trailer, split_corr_trailer
from repro.subcast import encode_subcast_request

_BUFFER = 65535


def _server(tracing=False):
    instrumentation = None
    if tracing:
        instrumentation = Instrumentation("serve-subcast",
                                          tracer=Tracer(capacity=4096))
    server = GroupKeyServer(
        ServerConfig(degree=4, strategy="group", signing="none",
                     seed=b"serve-subcast", backend="flat"),
        instrumentation=instrumentation)
    return server


class _Probe:
    """Raw-body UDP probe (subcast request bodies are not user ids)."""

    def __init__(self, address):
        self.address = address
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.setblocking(False)
        self._token = 1

    def close(self):
        self.sock.close()

    async def rpc_body(self, msg_type, body, timeout=5.0):
        loop = asyncio.get_running_loop()
        token = self._token
        self._token += 1
        request = attach_corr_trailer(
            Message(msg_type=msg_type, body=body).encode(), token)
        self.sock.sendto(request, self.address)
        deadline = loop.time() + timeout
        while True:
            data = await asyncio.wait_for(
                loop.sock_recv(self.sock, _BUFFER),
                deadline - loop.time())
            payload, got = split_corr_trailer(data)
            if got == token:
                return Message.decode(payload)

    async def rpc(self, msg_type, user_id, timeout=5.0):
        return await self.rpc_body(msg_type, user_id.encode("utf-8"),
                                   timeout)

    async def drain(self, window=0.3):
        loop = asyncio.get_running_loop()
        messages = []
        try:
            while True:
                data = await asyncio.wait_for(
                    loop.sock_recv(self.sock, _BUFFER), window)
                payload, _token = split_corr_trailer(data)
                messages.append(Message.decode(payload))
        except asyncio.TimeoutError:
            return messages


def test_subcast_request_round_trip_with_fanout():
    async def run():
        server = _server()
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True))
        async with AsyncKeyService(core) as service:
            sender = _Probe(service.udp_address)
            target = _Probe(service.udp_address)
            try:
                await sender.rpc(MSG_JOIN_REQUEST, "alice")
                await target.rpc(MSG_JOIN_REQUEST, "bob")
                body = encode_subcast_request("alice", ["alice", "bob"],
                                              b"hi both")
                reply = await sender.rpc_body(MSG_SUBCAST_REQUEST, body)
                # The corr-tagged sealed message is the requester's ack.
                assert reply.msg_type == MSG_SUBCAST
                assert len(reply.items) >= 2
                # The fan-out delivers a copy to each target's path.
                fanned = await target.drain()
                assert any(m.msg_type == MSG_SUBCAST for m in fanned)
            finally:
                sender.close()
                target.close()
            return core
    core = asyncio.run(run())
    metrics = core.instrumentation.registry.snapshot()
    requests = metrics["counters"]["serve_requests_total"]["series"]
    assert any(series["labels"].get("type") == "subcast"
               and series["value"] >= 1 for series in requests)
    sealed = metrics["counters"]["subcast_messages_total"]["series"]
    assert sum(series["value"] for series in sealed) >= 1
    latency = metrics["histograms"]["serve_subcast_seconds"]["series"]
    assert sum(sum(series["counts"]) for series in latency) >= 1


def test_subcast_from_non_member_is_shed():
    async def run():
        server = _server()
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True))
        async with AsyncKeyService(core) as service:
            probe = _Probe(service.udp_address)
            try:
                await probe.rpc(MSG_JOIN_REQUEST, "alice")
                body = encode_subcast_request("ghost", ["alice"], b"x")
                reply = await probe.rpc_body(MSG_SUBCAST_REQUEST, body)
                assert reply.msg_type == MSG_BUSY
            finally:
                probe.close()
    asyncio.run(run())


def test_subcast_spans_connect_to_the_request():
    async def run():
        server = _server(tracing=True)
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True))
        async with AsyncKeyService(core) as service:
            probe = _Probe(service.udp_address)
            try:
                await probe.rpc(MSG_JOIN_REQUEST, "alice")
                await probe.rpc(MSG_JOIN_REQUEST, "bob")
                body = encode_subcast_request("alice", ["bob"], b"traced")
                reply = await probe.rpc_body(MSG_SUBCAST_REQUEST, body)
                assert reply.msg_type == MSG_SUBCAST
            finally:
                probe.close()
        spans = core.instrumentation.tracer.export()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        request = [span for span in by_name.get("serve.request", [])
                   if span["attributes"].get("op") == "subcast"]
        assert request, sorted(by_name)
        trace_id = request[0]["trace_id"]
        for child in ("serve.exec", "subcast.cover", "subcast.seal"):
            assert any(span["trace_id"] == trace_id
                       for span in by_name.get(child, [])), child
    asyncio.run(run())

"""ResilientRpc: the retry state machine, driven deterministically.

Every test injects ``rng``/``sleep``/``clock`` so the machine's
decisions — attempt counts, backoff lengths, deadline cuts — are exact
assertions, not wall-clock races.
"""

import asyncio

import pytest

from repro.serve.rpc import (IdempotencyCache, PENDING, ResilientRpc,
                             RetryPolicy, RpcError, RpcOutcome)


class FakeTime:
    """A manual clock whose sleep() advances it (and records calls)."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    async def sleep(self, delay):
        self.sleeps.append(delay)
        self.now += delay


def _run(coro):
    return asyncio.run(coro)


def _rpc(policy, fake, rng=lambda: 0.5):
    # rng=0.5 makes the jitter factor exactly 1.0: deterministic backoff.
    return ResilientRpc(policy, rng=rng, sleep=fake.sleep, clock=fake.clock)


def test_policy_validation():
    for bad in (dict(timeout=0), dict(deadline=-1), dict(budget=-1),
                dict(backoff_base=-0.1), dict(multiplier=0.5),
                dict(jitter=1.5),
                dict(backoff_base=2.0, backoff_cap=1.0)):
        with pytest.raises(RpcError):
            RetryPolicy(**bad).validate()


def test_backoff_is_capped_exponential():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5,
                         multiplier=2.0, jitter=0.0)
    assert [policy.backoff(n, lambda: 0.0) for n in range(5)] \
        == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_spreads_the_backoff():
    policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
    assert policy.backoff(0, lambda: 0.0) == pytest.approx(0.05)
    assert policy.backoff(0, lambda: 1.0) == pytest.approx(0.15)


def test_first_attempt_success_no_sleep():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(), fake)

    async def attempt(timeout):
        fake.now += 0.01
        return b"reply"

    outcome = _run(rpc.call(attempt))
    assert outcome.ok and outcome.reply == b"reply"
    assert outcome.attempts == 1
    assert outcome.timeouts == 0
    assert fake.sleeps == []
    assert outcome.elapsed == pytest.approx(0.01)


def test_timeouts_retry_with_growing_backoff():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=1.0, deadline=100.0, budget=5,
                           backoff_base=0.1, backoff_cap=10.0,
                           multiplier=2.0, jitter=0.0), fake)
    calls = []

    async def attempt(timeout):
        calls.append(timeout)
        fake.now += timeout
        if len(calls) < 3:
            return None  # timeout
        return b"late"

    outcome = _run(rpc.call(attempt))
    assert outcome.ok and outcome.reply == b"late"
    assert outcome.attempts == 3
    assert outcome.timeouts == 2
    assert fake.sleeps == [0.1, 0.2]


def test_budget_exhaustion():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=1.0, deadline=100.0, budget=2,
                           jitter=0.0), fake)

    async def attempt(timeout):
        fake.now += timeout
        return None

    outcome = _run(rpc.call(attempt))
    assert not outcome.ok
    assert outcome.status == "budget"
    assert outcome.reply is None
    assert outcome.attempts == 3  # 1 initial + 2 retries
    assert outcome.timeouts == 3


def test_deadline_cuts_before_budget():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=1.0, deadline=2.5, budget=100,
                           backoff_base=0.0, jitter=0.0), fake)

    async def attempt(timeout):
        fake.now += timeout
        return None

    outcome = _run(rpc.call(attempt))
    assert outcome.status == "deadline"
    assert outcome.reply is None
    # 1.0 + 1.0 + 0.5 (the final attempt is clipped to the remaining
    # deadline), then the loop finds no time left.
    assert outcome.attempts == 3


def test_attempt_timeout_clipped_to_remaining_deadline():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=5.0, deadline=2.0, budget=0), fake)
    seen = []

    async def attempt(timeout):
        seen.append(timeout)
        return b"ok"

    _run(rpc.call(attempt))
    assert seen == [2.0]


def test_retryable_reply_reenters_backoff():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=1.0, deadline=100.0, budget=5,
                           backoff_base=0.1, jitter=0.0), fake)
    replies = [b"BUSY", b"BUSY", b"real"]

    async def attempt(timeout):
        return replies.pop(0)

    outcome = _run(rpc.call(attempt, retryable=lambda r: r == b"BUSY"))
    assert outcome.ok and outcome.reply == b"real"
    assert outcome.retried_replies == 2
    assert outcome.timeouts == 0
    assert len(fake.sleeps) == 2


def test_retryable_reply_never_escapes_on_budget():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(timeout=1.0, deadline=100.0, budget=1,
                           backoff_base=0.0, jitter=0.0), fake)

    async def attempt(timeout):
        return b"BUSY"

    outcome = _run(rpc.call(attempt, retryable=lambda r: r == b"BUSY"))
    assert outcome.status == "budget"
    assert outcome.reply is None  # busy is not a result
    assert outcome.retried_replies == 2


def test_budget_zero_means_one_attempt():
    fake = FakeTime()
    rpc = _rpc(RetryPolicy(budget=0), fake)
    calls = []

    async def attempt(timeout):
        calls.append(timeout)
        fake.now += timeout
        return None

    outcome = _run(rpc.call(attempt))
    assert outcome.status == "budget"
    assert len(calls) == 1


# -- the server half: IdempotencyCache ----------------------------------------


def test_cache_lifecycle():
    cache = IdempotencyCache()
    assert cache.get("u", 7) is None
    cache.begin("u", 7)
    assert cache.get("u", 7) is PENDING
    cache.commit("u", 7, b"reply")
    assert cache.get("u", 7) == b"reply"
    # Later commits are no-ops: the first reply is the reply.
    cache.commit("u", 7, b"other")
    assert cache.get("u", 7) == b"reply"


def test_cache_abort_forgets_pending_only():
    cache = IdempotencyCache()
    cache.begin("u", 1)
    cache.abort("u", 1)
    assert cache.get("u", 1) is None
    cache.begin("u", 2)
    cache.commit("u", 2, b"r")
    cache.abort("u", 2)  # completed entries survive aborts
    assert cache.get("u", 2) == b"r"


def test_commit_without_begin_is_not_cached():
    cache = IdempotencyCache()
    cache.commit("u", 9, b"reply")
    assert cache.get("u", 9) is None


def test_per_client_bound_prefers_completed_victims():
    cache = IdempotencyCache(per_client=2)
    cache.begin("u", 1)          # stays pending
    cache.begin("u", 2)
    cache.commit("u", 2, b"b")
    cache.begin("u", 3)          # evicts 2 (completed), not 1 (pending)
    assert cache.get("u", 1) is PENDING
    assert cache.get("u", 2) is None
    assert cache.get("u", 3) is PENDING


def test_per_client_bound_drops_pending_as_last_resort():
    cache = IdempotencyCache(per_client=2)
    cache.begin("u", 1)
    cache.begin("u", 2)
    cache.begin("u", 3)
    assert cache.get("u", 1) is None
    assert len(cache) == 2


def test_global_bound_evicts_oldest():
    cache = IdempotencyCache(max_entries=3, per_client=8)
    for index in range(3):
        cache.begin(f"u{index}", 0)
        cache.commit(f"u{index}", 0, b"r")
    cache.begin("u3", 0)
    assert cache.get("u0", 0) is None
    assert len(cache) == 3


def test_cache_validation():
    with pytest.raises(RpcError):
        IdempotencyCache(max_entries=0)
    with pytest.raises(RpcError):
        IdempotencyCache(per_client=0)


# -- the loadgen's use of the policy ------------------------------------------


def test_load_profile_maps_to_retry_policy():
    from repro.serve.loadgen import LoadProfile
    profile = LoadProfile(request_timeout=0.5, request_deadline=6.0,
                          retry_budget=8, backoff_base=0.02,
                          backoff_cap=0.3)
    policy = profile.retry_policy()
    assert policy.timeout == 0.5
    assert policy.deadline == 6.0
    assert policy.budget == 8
    assert policy.backoff_base == 0.02
    assert policy.backoff_cap == 0.3
    # A deadline shorter than one attempt makes no sense; it is lifted.
    clipped = LoadProfile(request_timeout=10.0, request_deadline=1.0)
    assert clipped.retry_policy().deadline == 10.0


def test_load_stats_report_retry_accounting():
    from repro.serve.loadgen import LoadStats
    stats = LoadStats()
    stats.retries = 4
    stats.budget_exhausted = 2
    document = stats.as_dict()
    assert document["retries"] == 4
    assert document["budget_exhausted"] == 2

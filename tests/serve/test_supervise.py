"""Supervisor: probe, kill, restart, promote, refuse, budget.

A restarted shard must be byte-identical to one that never crashed —
``verify_shard`` replays the journal and compares full snapshots — and
failure handling must be loud where it matters: a CRC-corrupt journal
marks the shard ``failed`` instead of serving unvouched keys.
"""

import asyncio

import pytest

from repro.core import persistence
from repro.core.messages import MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST, Message
from repro.core.server import ServerConfig
from repro.serve import ServeConfig
from repro.serve.supervise import (SupervisePolicy, Supervisor,
                                   SupervisorError, corrupt_journal_tail,
                                   tear_journal_tail)
from repro.serve.wire import attach_corr_trailer

KEY = b"\x07" * 8


def _run(coro):
    return asyncio.run(coro)


def _supervisor(tmp_path, n_shards=1, **policy_overrides):
    policy = dict(probe_interval=0, mode="journal")
    policy.update(policy_overrides)
    return Supervisor(
        n_shards,
        server_config=ServerConfig(signing="none", seed=b"sup-test",
                                   backend="flat"),
        serve_config=ServeConfig(tick_interval=0, open_enroll=False,
                                 tcp_port=None),
        journal_dir=(str(tmp_path)
                     if policy["mode"] == "journal" else None),
        policy=SupervisePolicy(**policy))


async def _join(shard, user, token):
    shard.server.register_individual_key(user, KEY)
    request = attach_corr_trailer(
        Message(msg_type=MSG_JOIN_REQUEST, body=user.encode()).encode(),
        token)
    box = []
    await shard.core.submit(request, box.append, path_id=None)
    return box


def test_policy_validation():
    for bad in (dict(probe_interval=-1), dict(probe_deadline=0),
                dict(probe_misses=0), dict(max_restarts=-1),
                dict(restart_backoff=-0.1), dict(mode="prayer")):
        with pytest.raises(SupervisorError):
            SupervisePolicy(**bad).validate()
    with pytest.raises(SupervisorError):
        Supervisor(0, journal_dir="/tmp")
    with pytest.raises(SupervisorError):
        Supervisor(1, policy=SupervisePolicy(mode="journal"),
                   journal_dir=None)


def test_kill_restart_byte_identical(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path).start()
        shard = supervisor.shard(0)
        try:
            for index in range(5):
                await _join(shard, f"u{index}", index)
            before = persistence.snapshot(shard.server)
            address = shard.address

            await supervisor.kill(0)
            assert shard.state == "down"
            assert not await supervisor.probe(0)

            await supervisor.restart(0)
            assert shard.state == "up"
            assert shard.generation == 1
            assert shard.restarts == 1
            assert await supervisor.probe(0)
            # Same address (port pinned), same bytes, and the journal
            # still replays to the live state.
            assert shard.address == address
            assert persistence.snapshot(shard.server) == before
            assert supervisor.verify_shard(0)
            restarts = supervisor._m_restarts.labels(shard="shard-0",
                                                    mode="journal")
            assert restarts.value == 1
            # And the revived shard actually serves.
            await _join(shard, "after-restart", 99)
            assert shard.server.is_member("after-restart")
            assert supervisor.verify_shard(0)
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_torn_tail_restart_then_retry(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path).start()
        shard = supervisor.shard(0)
        try:
            for index in range(4):
                await _join(shard, f"u{index}", index)
            # Crash losing the last append: u3's join record.
            await supervisor.kill(0, tear_tail=5)
            await supervisor.restart(0)
            assert shard.state == "up"
            assert not shard.server.is_member("u3")  # the op was torn away
            # The client's retry re-executes it; the repaired journal
            # accepts the append and replays to the live state.
            await _join(shard, "u3", 3)
            assert shard.server.is_member("u3")
            assert supervisor.verify_shard(0)
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_corrupt_journal_refused_loudly(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path).start()
        shard = supervisor.shard(0)
        try:
            for index in range(3):
                await _join(shard, f"u{index}", index)
            await supervisor.kill(0, corrupt_tail=True)
            with pytest.raises(Exception):
                await supervisor.restart(0)
            # Corruption is not a crash: no retry can help, the shard
            # is out of the rotation until an operator intervenes.
            assert shard.state == "failed"
            assert shard.last_error is not None
            with pytest.raises(SupervisorError):
                await supervisor.restart(0)
            assert supervisor.describe()[0]["state"] == "failed"
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_restart_budget_exhaustion(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path, max_restarts=1).start()
        shard = supervisor.shard(0)
        try:
            await _join(shard, "u0", 0)
            await supervisor.kill(0)
            await supervisor.restart(0)
            await supervisor.kill(0)
            with pytest.raises(SupervisorError):
                await supervisor.restart(0)
            assert shard.state == "failed"
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_standby_promotion_restart(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path, mode="standby").start()
        shard = supervisor.shard(0)
        try:
            assert shard.standby is not None
            assert shard.core.serialize_ops  # single recording sink
            for index in range(5):
                await _join(shard, f"u{index}", index)
            before = persistence.snapshot(shard.server)
            await supervisor.kill(0)
            await supervisor.restart(0)
            assert shard.state == "up"
            assert persistence.snapshot(shard.server) == before
            promotions = supervisor._m_promotions.labels(shard="shard-0")
            assert promotions.value == 1
            # The promoted server was re-armed: survive a second cycle.
            await _join(shard, "u5", 5)
            await supervisor.kill(0)
            await supervisor.restart(0)
            assert shard.server.is_member("u5")
            assert promotions.value == 2
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_watchdog_restarts_silent_death(tmp_path):
    async def scenario():
        supervisor = await _supervisor(
            tmp_path, probe_interval=0.05, probe_deadline=0.5,
            probe_misses=1).start()
        shard = supervisor.shard(0)
        try:
            await _join(shard, "u0", 0)
            # Silent death: the worker pool vanishes but nobody tells
            # the supervisor.  The probe must notice and revive.
            shard.core.executor.shutdown(wait=False, cancel_futures=True)
            for _ in range(100):
                if shard.generation >= 1 and shard.state == "up":
                    break
                await asyncio.sleep(0.05)
            assert shard.generation >= 1
            assert shard.state == "up"
            assert shard.server.is_member("u0")
            probe_failures = supervisor._m_probe_failures.labels(
                shard="shard-0")
            assert probe_failures.value >= 1
            await _join(shard, "u1", 1)
            assert supervisor.verify_shard(0)
        finally:
            await supervisor.aclose()
    _run(scenario())


def test_multi_shard_isolation(tmp_path):
    async def scenario():
        supervisor = await _supervisor(tmp_path, n_shards=3).start()
        try:
            for shard_id in range(3):
                await _join(supervisor.shard(shard_id),
                            f"s{shard_id}-u0", shard_id)
            await supervisor.kill(1)
            # Shards 0 and 2 keep serving while 1 is down.
            assert await supervisor.probe(0)
            assert not await supervisor.probe(1)
            assert await supervisor.probe(2)
            await _join(supervisor.shard(0), "s0-u1", 10)
            await supervisor.restart(1)
            states = [doc["state"] for doc in supervisor.describe()]
            assert states == ["up", "up", "up"]
            # Per-shard seeds: the shards are distinct groups.
            assert supervisor.shard(0).server.config.seed \
                != supervisor.shard(1).server.config.seed
        finally:
            await supervisor.aclose()
    _run(scenario())

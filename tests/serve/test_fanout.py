"""SocketFanout: dedup, drop filter, transport interface."""

from repro.core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
from repro.observability.metrics import MetricRegistry
from repro.serve.fanout import SocketFanout


def _outbound(receivers, body=b"k"):
    message = Message(msg_type=MSG_REKEY, body=body)
    return OutboundMessage(Destination.to_users(receivers), message,
                           tuple(receivers), message.encode())


def test_one_copy_per_distinct_path():
    fanout = SocketFanout()
    sent = []
    shared = sent.append
    # Three users share one path; one has its own.
    for user in ("a", "b", "c"):
        fanout.attach(user, shared, path_id="sock-1")
    own = []
    fanout.attach("d", own.append, path_id="sock-2")
    fanout.send(_outbound(["a", "b", "c", "d"]))
    assert len(sent) == 1
    assert len(own) == 1
    assert fanout.stats.multicast_sends == 1


def test_unknown_receivers_skipped():
    fanout = SocketFanout()
    got = []
    fanout.attach("a", got.append)
    fanout.send(_outbound(["a", "ghost"]))
    assert len(got) == 1


def test_detach_stops_delivery():
    fanout = SocketFanout()
    got = []
    fanout.attach("a", got.append)
    assert fanout.known("a")
    fanout.detach("a")
    assert not fanout.known("a")
    fanout.send(_outbound(["a"]))
    assert got == []
    assert len(fanout) == 0


def test_drop_filter_loses_whole_path():
    """A dropped multicast copy is lost for every member on that path."""
    fanout = SocketFanout(MetricRegistry())
    delivered = []
    for user in ("a", "b"):
        fanout.attach(user, delivered.append, path_id="shared")
    fanout.drop_filter = lambda user_id, payload: user_id == "a"
    fanout.send(_outbound(["a", "b"]))
    # "a" was first, its copy dropped, and "b" rides the same path.
    assert delivered == []
    assert fanout.stats.drops == 1


def test_drop_filter_spares_other_paths():
    fanout = SocketFanout()
    got_a, got_b = [], []
    fanout.attach("a", got_a.append, path_id="pa")
    fanout.attach("b", got_b.append, path_id="pb")
    fanout.drop_filter = lambda user_id, payload: user_id == "a"
    fanout.send(_outbound(["a", "b"]))
    assert got_a == []
    assert len(got_b) == 1


def test_payload_override_carries_trailer():
    fanout = SocketFanout()
    got = []
    fanout.attach("a", got.append)
    out = _outbound(["a"])
    fanout.send(out, payload=out.encoded + b"TRAILER")
    assert got[0].endswith(b"TRAILER")
    assert Message.decode(got[0]).body == b"k"


def test_oserror_counts_as_drop():
    fanout = SocketFanout()

    def broken(_payload):
        raise OSError("gone")
    got = []
    fanout.attach("a", broken, path_id="pa")
    fanout.attach("b", got.append, path_id="pb")
    fanout.send(_outbound(["a", "b"]))
    assert fanout.stats.drops == 1
    assert len(got) == 1


def test_reattach_updates_path():
    """A reconnecting member's new reply path replaces the old one."""
    fanout = SocketFanout()
    old, new = [], []
    fanout.attach("a", old.append, path_id="old")
    fanout.attach("a", new.append, path_id="new")
    fanout.send(_outbound(["a"]))
    assert old == [] and len(new) == 1

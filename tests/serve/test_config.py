"""ServeConfig validation and spec-file wiring."""

import pytest

from repro.core.server import ServerConfig
from repro.serve.config import (DEFAULT_WORKERS, ServeConfig, ServeError,
                                default_server_config, from_spec_file,
                                worker_count)


def test_defaults_validate():
    ServeConfig().validate()


@pytest.mark.parametrize("kwargs", [
    {"max_inflight": 0},
    {"client_rate": -1.0},
    {"client_burst": 0},
    {"coalesce_interval": 0.0},
    {"coalesce_max": 0},
    {"tick_interval": -1.0},
])
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ServeError):
        ServeConfig(**kwargs).validate()


def test_serving_defaults_to_flat_backend():
    assert default_server_config(ServerConfig()).backend == "flat"
    # An explicit non-default choice is preserved.
    explicit = ServerConfig(backend="object")
    assert default_server_config(explicit).backend in ("object", "flat")
    flat = ServerConfig(backend="flat")
    assert default_server_config(flat).backend == "flat"


def test_worker_count_auto_and_explicit():
    assert worker_count(ServerConfig(workers=0)) == DEFAULT_WORKERS
    assert worker_count(ServerConfig(workers=7)) == 7


def test_workers_key_parses_from_spec(tmp_path):
    spec = tmp_path / "group.spec"
    spec.write_text("group-id = 1\ninitial-size = 4\nworkers = 3\n")
    config, initial_size = from_spec_file(str(spec))
    assert config.workers == 3
    assert initial_size == 4
    # No backend named: the serving layer defaults to flat.
    assert config.backend == "flat"


def test_spec_backend_choice_wins(tmp_path):
    spec = tmp_path / "group.spec"
    spec.write_text("group-id = 1\nbackend = object\n")
    config, _initial = from_spec_file(str(spec))
    assert config.backend == "object"


def test_server_config_rejects_negative_workers():
    from repro.core.server import ServerError
    with pytest.raises(ServerError):
        ServerConfig(workers=-1).validate()

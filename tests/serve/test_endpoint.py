"""Live socket round-trips through the async front end."""

import asyncio
import json
import socket

from repro.core.messages import (MSG_BUSY, MSG_HEARTBEAT, MSG_JOIN_ACK,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                                 MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                                 MSG_RESYNC_REPLY, MSG_RESYNC_REQUEST,
                                 MSG_STATS_REQUEST, MSG_STATS_RESPONSE,
                                 Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability.export import validate_snapshot
from repro.serve import (AsyncKeyService, ImmediateServingCore, ServeConfig,
                         attach_corr_trailer, frame, read_frame,
                         split_corr_trailer)

_BUFFER = 65535


def _server(seed=b"endpoint-test", **overrides):
    config = ServerConfig(signing="none", seed=seed, backend="flat",
                          **overrides)
    return GroupKeyServer(config)


class _UdpProbe:
    """One test-side UDP socket with correlated request/reply."""

    def __init__(self, address):
        self.address = address
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.setblocking(False)
        self._token = 1

    def close(self):
        self.sock.close()

    async def rpc(self, msg_type, user_id="", timeout=5.0):
        loop = asyncio.get_running_loop()
        token = self._token
        self._token += 1
        request = attach_corr_trailer(
            Message(msg_type=msg_type,
                    body=user_id.encode("utf-8")).encode(), token)
        self.sock.sendto(request, self.address)
        deadline = loop.time() + timeout
        while True:
            data = await asyncio.wait_for(
                loop.sock_recv(self.sock, _BUFFER),
                deadline - loop.time())
            payload, got = split_corr_trailer(data)
            if got == token:
                return Message.decode(payload)

    def send_raw(self, payload):
        self.sock.sendto(payload, self.address)

    async def drain(self, window=0.3):
        loop = asyncio.get_running_loop()
        messages = []
        try:
            while True:
                data = await asyncio.wait_for(
                    loop.sock_recv(self.sock, _BUFFER), window)
                payload, _token = split_corr_trailer(data)
                messages.append(Message.decode(payload))
        except asyncio.TimeoutError:
            return messages


def test_udp_join_leave_round_trip():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                acks = [await probe.rpc(MSG_JOIN_REQUEST, f"u{i}")
                        for i in range(4)]
                assert all(a.msg_type == MSG_JOIN_ACK for a in acks)
                # Root version advances once per join.
                versions = [a.root_version for a in acks]
                assert versions == sorted(versions)
                assert core.server.n_users == 4
                ack = await probe.rpc(MSG_LEAVE_REQUEST, "u2")
                assert ack.msg_type == MSG_LEAVE_ACK
                assert core.server.n_users == 3
            finally:
                probe.close()
    asyncio.run(run())


def test_udp_denial_echoes_correlation():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                reply = await probe.rpc(MSG_LEAVE_REQUEST, "nobody")
                assert reply.msg_type == MSG_LEAVE_DENIED
            finally:
                probe.close()
    asyncio.run(run())


def test_udp_resync_and_heartbeat_flow():
    async def run():
        core = ImmediateServingCore(
            _server(), ServeConfig(tick_interval=0.1))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                await probe.rpc(MSG_JOIN_REQUEST, "alice")
                await probe.rpc(MSG_JOIN_REQUEST, "bob")
                reply = await probe.rpc(MSG_RESYNC_REQUEST, "alice")
                assert reply.msg_type == MSG_RESYNC_REPLY
                # A stale heartbeat provokes a resync push at a tick.
                stale = Message(msg_type=MSG_HEARTBEAT, root_node_id=1,
                                root_version=0, body=b"alice")
                probe.send_raw(stale.encode())
                await asyncio.sleep(0.4)
                pushed = await probe.drain()
                assert any(m.msg_type == MSG_RESYNC_REPLY for m in pushed)
            finally:
                probe.close()
    asyncio.run(run())


def test_udp_stats_scrape_validates():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                await probe.rpc(MSG_JOIN_REQUEST, "alice")
                reply = await probe.rpc(MSG_STATS_REQUEST)
                assert reply.msg_type == MSG_STATS_RESPONSE
                document = json.loads(reply.body.decode("utf-8"))
                validate_snapshot(document)
                counters = document["metrics"]["counters"]
                assert any(name.startswith("serve_requests_total")
                           for name in counters)
            finally:
                probe.close()
    asyncio.run(run())


def test_udp_malformed_datagram_ignored():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                probe.send_raw(b"\x00garbage")
                ack = await probe.rpc(MSG_JOIN_REQUEST, "alice")
                assert ack.msg_type == MSG_JOIN_ACK
            finally:
                probe.close()
    asyncio.run(run())


def test_tcp_framed_round_trip():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            reader, writer = await asyncio.open_connection(
                *service.tcp_address)
            try:
                request = attach_corr_trailer(
                    Message(msg_type=MSG_JOIN_REQUEST,
                            body=b"tcp-user").encode(), 77)
                writer.write(frame(request))
                await writer.drain()
                while True:
                    data = await asyncio.wait_for(read_frame(reader), 5.0)
                    assert data is not None
                    payload, token = split_corr_trailer(data)
                    if token == 77:
                        assert Message.decode(payload).msg_type \
                            == MSG_JOIN_ACK
                        break
            finally:
                writer.close()
                await writer.wait_closed()
    asyncio.run(run())


def test_rekey_multicast_reaches_other_members():
    async def run():
        core = ImmediateServingCore(_server(),
                                    ServeConfig(tick_interval=0))
        async with AsyncKeyService(core) as service:
            alice = _UdpProbe(service.udp_address)
            bob = _UdpProbe(service.udp_address)
            try:
                await alice.rpc(MSG_JOIN_REQUEST, "alice")
                await bob.rpc(MSG_JOIN_REQUEST, "bob")
                # Bob's join rekeys the group: alice hears it on her
                # own socket (her join registered the reply path).
                heard = await alice.drain()
                assert heard, "no rekey multicast reached alice"
            finally:
                alice.close()
                bob.close()
    asyncio.run(run())


def test_busy_shed_when_saturated():
    async def run():
        # max_inflight=1 plus a join that holds the only slot: the
        # second concurrent request must shed with MSG_BUSY.
        core = ImmediateServingCore(
            _server(), ServeConfig(max_inflight=1, tick_interval=0))
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                burst = 24
                for index in range(burst):
                    request = attach_corr_trailer(
                        Message(msg_type=MSG_JOIN_REQUEST,
                                body=f"burst-{index}".encode()).encode(),
                        1000 + index)
                    probe.send_raw(request)
                await asyncio.sleep(1.0)
                replies = await probe.drain()
                kinds = {m.msg_type for m in replies}
                assert MSG_BUSY in kinds, kinds
                assert MSG_JOIN_ACK in kinds, kinds
                shed = core._m_shed.labels(reason="saturated").value
                assert shed > 0
            finally:
                probe.close()
    asyncio.run(run())


def test_rate_cap_sheds_per_client():
    async def run():
        config = ServeConfig(client_rate=0.001, client_burst=1,
                             tick_interval=0)
        core = ImmediateServingCore(_server(), config)
        async with AsyncKeyService(core) as service:
            probe = _UdpProbe(service.udp_address)
            try:
                first = await probe.rpc(MSG_JOIN_REQUEST, "greedy")
                assert first.msg_type == MSG_JOIN_ACK
                second = await probe.rpc(MSG_RESYNC_REQUEST, "greedy")
                assert second.msg_type == MSG_BUSY
                # Heartbeats are never rate-capped: a heartbeat still
                # lands (observable via the request counter).
                before = core._m_requests.labels(type="heartbeat").value
                probe.send_raw(Message(
                    msg_type=MSG_HEARTBEAT, body=b"greedy").encode())
                await asyncio.sleep(0.2)
                after = core._m_requests.labels(type="heartbeat").value
                assert after == before + 1
                # Another client is not punished.
                other = await probe.rpc(MSG_JOIN_REQUEST, "calm")
                assert other.msg_type == MSG_JOIN_ACK
                shed = core._m_shed.labels(reason="rate-cap").value
                assert shed >= 1
            finally:
                probe.close()
    asyncio.run(run())

"""Drop10 through the async front end: byte-identical convergence.

The PR5 fault profiles apply to the live serving layer via the fanout
drop filter.  The acceptance claim has two halves:

* the live server, despite shedding-free but lossy delivery, ends with
  a group key **byte-identical** to an in-memory control server driven
  through the same ops with no serving layer at all (the async split
  must not perturb the DRBG draw order);
* every surviving member recovers through resync requests submitted
  back through the front end, and then decrypts a group data probe.
"""

import asyncio

from repro.chaos.faults import PROFILES
from repro.chaos.scenarios import ScenarioConfig, run_scenario
from repro.chaos.serve_scenario import (_control_run, _individual_keys,
                                        serve_workload)
from repro.core.messages import (MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST,
                                 Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability.flight import validate_flight
from repro.serve import ImmediateServingCore, ServeConfig


def _config(**overrides):
    defaults = dict(name="drop10-serve", stack="serve",
                    profile="drop10", n_initial=12, rounds=12)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_drop10_serve_scenario_passes():
    report = run_scenario(_config())
    assert report.passed, report.summary()
    assert report.stack == "serve"
    assert report.injected["drop"] > 0, \
        "drop10 must actually lose copies for the test to mean anything"
    assert report.survivors > 0
    # Lost copies force desyncs; recovery repairs them via resync.
    assert report.resyncs >= report.desyncs > 0


def test_serve_scenario_seeded_reruns_are_identical():
    first = run_scenario(_config())
    second = run_scenario(_config())
    assert first.injected == second.injected
    assert first.resyncs == second.resyncs
    assert first.desyncs == second.desyncs
    assert first.recovery_rounds == second.recovery_rounds


def test_live_server_key_matches_control_despite_drops():
    """The byte-identity half, asserted directly on key material."""
    config = _config()
    ops = serve_workload(config)
    server = GroupKeyServer(ServerConfig(
        signing="none", seed=config.seed, backend="flat"))
    keys = _individual_keys(ops, server.config.suite)
    control = _control_run(config, ops, keys)

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=False))
        drops = {"n": 0}

        def drop_everything(_user, _payload):
            drops["n"] += 1
            return True

        # Worst case: *every* multicast copy is lost.  The server's
        # draws must still match the control run exactly.
        core.fanout.drop_filter = drop_everything
        sink = []
        try:
            for op, user in ops:
                if op == "join":
                    server.register_individual_key(user, keys[user])
                    core.fanout.attach(user, sink.append,
                                       path_id=f"p-{user}")
                    msg_type = MSG_JOIN_REQUEST
                else:
                    msg_type = MSG_LEAVE_REQUEST
                request = Message(msg_type=msg_type,
                                  body=user.encode()).encode()
                await core.submit(request, sink.append, path_id=None)
        finally:
            await core.aclose()
        return drops["n"]

    dropped = asyncio.run(drive())
    assert dropped > 0
    assert server.group_key() == control.group_key()
    assert server.group_key_ref() == control.group_key_ref()
    assert server.n_users == control.n_users


def test_clean_profile_needs_no_resyncs():
    report = run_scenario(_config(name="clean-serve", profile="clean"))
    assert report.passed
    assert report.injected["drop"] == 0
    assert report.resyncs == 0
    assert report.recovery_rounds == 0


def test_drop10_profile_is_registered():
    profile = PROFILES["drop10"]
    assert profile.drop_rate == 0.10
    assert profile.seed == b"chaos/drop10"


def test_flight_dump_ties_drops_to_rekey_traces():
    """The dumped flight record explains the incident causally.

    Every injected drop must appear as a ``fault.drop`` event carrying
    the trace id of the rekey whose multicast copy was lost, and the
    resync repairs those drops forced must show up later in the same
    ring — drop first, resync after.
    """
    report = run_scenario(_config())
    assert report.resyncs > 0
    document = validate_flight(report.flight_dump)
    assert document["reason"] == "chaos"
    events = document["events"]
    assert events, "chaos run must leave a flight record"

    drops = [e for e in events if e["kind"] == "fault.drop"]
    assert len(drops) == report.injected["drop"]
    # Each drop is tied to a *real* rekey trace: its trace id is one a
    # join/leave request event also recorded.
    rekey_traces = {e["trace_id"] for e in events
                    if e["kind"] == "req"
                    and e["fields"].get("op") in ("join", "leave")}
    for drop in drops:
        assert drop["trace_id"] > 0, "drop not tied to any trace"
        assert drop["trace_id"] in rekey_traces
    # The repair requests the drops caused follow them in the ring.
    resync_seqs = [e["seq"] for e in events
                   if e["kind"] == "req"
                   and e["fields"].get("op") == "resync"]
    assert len(resync_seqs) >= report.resyncs
    assert min(resync_seqs) > max(d["seq"] for d in drops)

"""Correlation trailers and stream framing."""

import asyncio

import pytest

from repro.core.messages import MSG_JOIN_ACK, Message
from repro.observability.spans import (SpanContext, attach_trace_trailer,
                                       split_trace_trailer)
from repro.serve.wire import (FramingError, MAX_FRAME, attach_corr_trailer,
                              frame, read_frame, split_corr_trailer)


def test_corr_trailer_round_trip():
    payload = Message(msg_type=MSG_JOIN_ACK, body=b"alice").encode()
    tagged = attach_corr_trailer(payload, 0xDEADBEEF)
    stripped, token = split_corr_trailer(tagged)
    assert stripped == payload
    assert token == 0xDEADBEEF
    # The message proper decodes identically with the trailer attached.
    assert Message.decode(tagged).body == b"alice"


def test_corr_trailer_absent():
    payload = Message(msg_type=MSG_JOIN_ACK, body=b"x").encode()
    stripped, token = split_corr_trailer(payload)
    assert stripped == payload
    assert token is None


def test_corr_token_wraps_to_64_bits():
    tagged = attach_corr_trailer(b"p", (1 << 70) + 42)
    _payload, token = split_corr_trailer(tagged)
    assert token == 42


def test_trailers_stack_corr_last():
    payload = Message(msg_type=MSG_JOIN_ACK, body=b"y").encode()
    trace = SpanContext(trace_id=7, span_id=9)
    tagged = attach_corr_trailer(
        attach_trace_trailer(payload, trace), 5)
    inner, token = split_corr_trailer(tagged)
    assert token == 5
    stripped, got_trace = split_trace_trailer(inner)
    assert stripped == payload
    assert (got_trace.trace_id, got_trace.span_id) == (7, 9)


def test_frame_round_trip():
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(frame(b"one") + frame(b"two"))
        reader.feed_eof()
        assert await read_frame(reader) == b"one"
        assert await read_frame(reader) == b"two"
        assert await read_frame(reader) is None
    asyncio.run(run())


def test_frame_rejects_oversize():
    with pytest.raises(FramingError):
        frame(b"x" * (MAX_FRAME + 1))

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data((MAX_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(FramingError):
            await read_frame(reader)
    asyncio.run(run())


def test_truncated_frame_is_eof():
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(frame(b"abcdef")[:-2])
        reader.feed_eof()
        assert await read_frame(reader) is None
    asyncio.run(run())

"""Property: pipelined concurrent joins/leaves always converge.

Any interleaving of concurrent join/leave submissions through the
async core leaves every surviving member able to reach the server's
current group key from the traffic it received — with at most one
resync.  The seal lock serializes message emission, so each member's
stream is some valid serialization; the client state machine plus one
recovery round must absorb whatever order the scheduler produced.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import GroupClient
from repro.core.messages import (MSG_JOIN_ACK, MSG_JOIN_DENIED,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                                 MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                                 MSG_REKEY, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.serve import ImmediateServingCore, ServeConfig

_USERS = [f"u{i}" for i in range(6)]
_SUITE_KEY_SIZE = 8  # DES, the paper's suite

_ops = st.lists(
    st.tuples(st.sampled_from(["join", "leave"]),
              st.sampled_from(_USERS)),
    min_size=1, max_size=20)


def _individual_key(user):
    index = _USERS.index(user) + 1
    return bytes([index]) * _SUITE_KEY_SIZE


async def _drive(ops):
    server = GroupKeyServer(ServerConfig(
        signing="none", seed=b"pipelined-convergence", backend="flat"))
    core = ImmediateServingCore(
        server, ServeConfig(tick_interval=0, max_inflight=64,
                            open_enroll=False))
    streams = {user: [] for user in _USERS}
    for user in _USERS:
        core.fanout.attach(
            user, streams[user].append, path_id=f"path-{user}")
    try:
        async def one(op, user):
            if op == "join":
                # Constant per-user key: re-registration is idempotent
                # however the concurrent ops interleave.
                server.register_individual_key(user,
                                               _individual_key(user))
                msg_type = MSG_JOIN_REQUEST
            else:
                msg_type = MSG_LEAVE_REQUEST
            payload = Message(msg_type=msg_type,
                              body=user.encode()).encode()
            await core.submit(payload, streams[user].append,
                              path_id=None)
        await asyncio.gather(*(one(op, user) for op, user in ops))
    finally:
        await core.aclose()
    return server, streams


@settings(max_examples=20, deadline=None)
@given(ops=_ops)
def test_any_interleaving_converges_with_at_most_one_resync(ops):
    server, streams = asyncio.run(_drive(ops))
    expected_key = server.group_key() if server.n_users else None
    for user in _USERS:
        if not server.is_member(user):
            continue
        client = GroupClient(user, server.config.suite)
        client.set_individual_key(_individual_key(user))
        for payload in streams[user]:
            message = Message.decode(payload)
            if message.msg_type == MSG_REKEY:
                try:
                    client.process_message(payload)
                except Exception:
                    client.desynced = True
            elif message.msg_type in (MSG_JOIN_ACK, MSG_LEAVE_ACK,
                                      MSG_JOIN_DENIED,
                                      MSG_LEAVE_DENIED):
                client.process_control(message)
        resyncs = 0
        if client.desynced or client.group_key() != expected_key:
            reply = server.resync(user)
            client.process_resync(reply.encoded or
                                  reply.message.encode())
            resyncs = 1
        assert resyncs <= 1
        assert client.group_key() == expected_key, \
            f"{user} failed to converge after {resyncs} resync(s)"
        assert not client.desynced

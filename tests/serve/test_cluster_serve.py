"""A live 3-shard cluster behind per-shard async endpoints."""

import asyncio
import json

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.core.messages import (MSG_HEARTBEAT, MSG_JOIN_REQUEST,
                                 MSG_LEAVE_REQUEST, MSG_RESYNC_REPLY,
                                 MSG_RESYNC_REQUEST, MSG_STATS_REQUEST,
                                 MSG_STATS_RESPONSE, MSG_JOIN_ACK,
                                 MSG_LEAVE_ACK, Message)
from repro.observability.export import validate_snapshot
from repro.serve import (AsyncClusterService, ClusterServingCore,
                         ServeConfig)
from tests.serve.test_endpoint import _UdpProbe


def _cluster(seed=b"cluster-serve"):
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=3, signing="none", seed=seed, backend="flat"))
    coordinator.bootstrap([])
    return coordinator


def test_cluster_endpoints_serve_any_user():
    async def run():
        coordinator = _cluster()
        core = ClusterServingCore(coordinator,
                                  ServeConfig(tick_interval=0))
        async with AsyncClusterService(core) as service:
            assert len(service.udp_addresses) == 3
            probes = [_UdpProbe(address)
                      for address in service.udp_addresses]
            try:
                # Each join lands on a different endpoint; the
                # coordinator routes to the owning shard regardless.
                for index in range(9):
                    ack = await probes[index % 3].rpc(
                        MSG_JOIN_REQUEST, f"member-{index}")
                    assert ack.msg_type == MSG_JOIN_ACK
                assert coordinator.n_users == 9
                ack = await probes[2].rpc(MSG_LEAVE_REQUEST, "member-0")
                assert ack.msg_type == MSG_LEAVE_ACK
                assert coordinator.n_users == 8
                reply = await probes[0].rpc(MSG_RESYNC_REQUEST,
                                            "member-4")
                assert reply.msg_type == MSG_RESYNC_REPLY
            finally:
                for probe in probes:
                    probe.close()
    asyncio.run(run())


def test_cluster_scrape_merges_shards_and_serve_series():
    async def run():
        coordinator = _cluster(b"cluster-scrape")
        core = ClusterServingCore(coordinator,
                                  ServeConfig(tick_interval=0))
        async with AsyncClusterService(core) as service:
            probe = _UdpProbe(service.udp_addresses[1])
            try:
                for index in range(6):
                    await probe.rpc(MSG_JOIN_REQUEST, f"m{index}")
                reply = await probe.rpc(MSG_STATS_REQUEST)
                assert reply.msg_type == MSG_STATS_RESPONSE
                document = json.loads(reply.body.decode("utf-8"))
                validate_snapshot(document)
                counters = document["metrics"]["counters"]
                names = set(counters)
                assert any(n.startswith("cluster_requests_total")
                           for n in names), names
                assert any(n.startswith("serve_requests_total")
                           for n in names), names
            finally:
                probe.close()
    asyncio.run(run())


def test_cluster_stale_heartbeat_triggers_push():
    async def run():
        coordinator = _cluster(b"cluster-push")
        core = ClusterServingCore(coordinator,
                                  ServeConfig(tick_interval=0.1))
        async with AsyncClusterService(core) as service:
            probe = _UdpProbe(service.udp_addresses[0])
            try:
                await probe.rpc(MSG_JOIN_REQUEST, "alice")
                await probe.rpc(MSG_JOIN_REQUEST, "bob")
                stale = Message(msg_type=MSG_HEARTBEAT, root_node_id=1,
                                root_version=0, body=b"alice")
                probe.send_raw(stale.encode())
                await asyncio.sleep(0.5)
                pushed = await probe.drain()
                assert any(m.msg_type == MSG_RESYNC_REPLY
                           for m in pushed)
            finally:
                probe.close()
    asyncio.run(run())

"""Graceful shutdown: drain admitted ops, shed stragglers, exact journal.

``aclose()`` must leave no op half-done: everything admitted before the
close either completes (and is journaled) or is shed with ``MSG_BUSY``
— and the journal's final sequence record must equal the server's
applied sequence counter, so a restart resumes exactly where the
shutdown left off.
"""

import asyncio
import os
import tempfile
import time

from repro.core import persistence
from repro.core.messages import (MSG_BUSY, MSG_JOIN_REQUEST,
                                 MSG_LEAVE_REQUEST, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.keygraph.journal import TreeJournal
from repro.serve import ImmediateServingCore, ServeConfig
from repro.serve.wire import attach_corr_trailer, split_corr_trailer


def _run(coro):
    return asyncio.run(coro)


def _core(**overrides):
    server = GroupKeyServer(ServerConfig(signing="none", seed=b"shutdown",
                                         backend="flat"))
    base = dict(tick_interval=0, open_enroll=False)
    base.update(overrides)
    return server, ImmediateServingCore(server, ServeConfig(**base))


def _request(msg_type, user, token):
    return attach_corr_trailer(
        Message(msg_type=msg_type, body=user.encode()).encode(), token)


def _register(server, user):
    server.register_individual_key(user, bytes([1]) * server.suite.key_size)


def test_aclose_drains_admitted_ops():
    async def scenario():
        server, core = _core()
        replies = {}

        async def one_join(index):
            user = f"u{index}"
            _register(server, user)
            box = []
            await core.submit(_request(MSG_JOIN_REQUEST, user, index),
                              box.append, path_id=None)
            replies[user] = box

        tasks = [asyncio.ensure_future(one_join(i)) for i in range(8)]
        await asyncio.sleep(0)  # let the burst be admitted
        await core.aclose()
        await asyncio.gather(*tasks)
        # Every submission got exactly one direct reply: a completed
        # op's ack/rekey, or MSG_BUSY for one shed by the close — no
        # op may vanish without an answer.
        shed = 0
        for user, box in replies.items():
            assert box, f"{user} got no reply at all"
            body, _ = split_corr_trailer(box[0])
            if Message.decode(body).msg_type == MSG_BUSY:
                shed += 1
                assert not server.is_member(user)
            else:
                assert server.is_member(user)
        assert server.n_users + shed == 8
    _run(scenario())


def test_submissions_during_close_shed_busy():
    async def scenario():
        server, core = _core()
        _register(server, "early")
        await core.submit(_request(MSG_JOIN_REQUEST, "early", 1),
                          [].append, path_id=None)
        closer = asyncio.ensure_future(core.aclose())
        await asyncio.sleep(0)
        _register(server, "late")
        box = []
        await core.submit(_request(MSG_JOIN_REQUEST, "late", 2),
                          box.append, path_id=None)
        await closer
        body, _ = split_corr_trailer(box[0])
        assert Message.decode(body).msg_type == MSG_BUSY
        assert not server.is_member("late")
    _run(scenario())


def test_journal_seq_equals_applied_seq_after_close():
    async def scenario(path):
        server, core = _core()
        persistence.attach_journal(server, path)
        try:
            for index in range(6):
                user = f"u{index}"
                _register(server, user)
                await core.submit(_request(MSG_JOIN_REQUEST, user, index),
                                  [].append, path_id=None)
            await core.submit(_request(MSG_LEAVE_REQUEST, "u0", 100),
                              [].append, path_id=None)
        finally:
            await core.aclose()
            server._journal.close()
        return server

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "shard.journal")
        server = _run(scenario(path))
        # The journal's final sequence record equals the applied seq.
        journal_seq = -1
        for record in TreeJournal(path).records(strict=True):
            if "seq" in record:
                journal_seq = record["seq"]
        assert journal_seq == server._seq
        # And a restart lands on the identical server, byte for byte.
        restored = persistence.restore_from_journal(path, strict=True)
        assert persistence.snapshot(restored) == persistence.snapshot(server)


def test_drain_deadline_bounds_close():
    async def scenario():
        server, core = _core(drain_deadline=0.2)
        # A straggler that never finishes: the drain must give up at
        # the deadline instead of hanging the shutdown.
        core._inflight += 1
        started = time.monotonic()
        await core.aclose()
        elapsed = time.monotonic() - started
        assert 0.15 <= elapsed < 2.0
    _run(scenario())

"""End-to-end distributed tracing through the async serving stack.

The tentpole claim: one client request produces one causally-connected
trace spanning datagram receive, admission, op-lock wait, plan on the
loop, executor encrypt/sign, fan-out dispatch — and for the cluster,
the shard hop and the root-layer rekey — stitched across the wire by
the out-of-band trace trailer on both UDP datagrams and framed TCP.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (MSG_JOIN_ACK, MSG_JOIN_REQUEST,
                                 MSG_LEAVE_REQUEST, Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability.instrumentation import Instrumentation
from repro.observability.spans import Tracer, attach_trace_trailer
from repro.observability.timeline import render_timeline
from repro.serve import (AsyncClusterService, AsyncKeyService,
                         ImmediateServingCore, ServeConfig, frame,
                         read_frame, split_trailers)
from repro.serve.wire import attach_trailers

_KEY_SIZE = 8  # DES, the paper's suite


def _traced_server(seed=b"tracing", capacity=4096):
    tracer = Tracer(capacity=capacity)
    server = GroupKeyServer(
        ServerConfig(signing="none", seed=seed, backend="flat"),
        instrumentation=Instrumentation("serve", tracer=tracer))
    return server, tracer


def _join_request(user):
    return Message(msg_type=MSG_JOIN_REQUEST, body=user.encode()).encode()


def _assert_connected(spans, trace_id):
    """Every span of the trace hangs off exactly one root."""
    selected = [s for s in spans if s["trace_id"] == trace_id]
    assert selected, f"trace {trace_id} recorded no spans"
    ids = {s["span_id"] for s in selected}
    roots = [s for s in selected if not s["parent_id"]]
    assert len(roots) == 1, \
        f"trace {trace_id}: {len(roots)} roots ({[s['name'] for s in roots]})"
    for span in selected:
        if span["parent_id"]:
            assert span["parent_id"] in ids, \
                f"{span['name']} parents to a span outside its trace"
    return selected


# -- wire trailer regressions ------------------------------------------------


def test_udp_reply_echoes_trace_trailer():
    """A traced datagram's direct reply carries the request's trace."""
    server, tracer = _traced_server()
    client_span = tracer.span("client.request", user="u1")

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True))
        async with AsyncKeyService(core) as service:
            loop = asyncio.get_running_loop()
            got = loop.create_future()

            class _Client(asyncio.DatagramProtocol):
                def connection_made(self, transport):
                    self.transport = transport

                def datagram_received(self, data, addr):
                    payload, ctx, _token = split_trailers(data)
                    message = Message.decode(payload)
                    if (message.msg_type == MSG_JOIN_ACK
                            and not got.done()):
                        got.set_result(ctx)

            transport, _ = await loop.create_datagram_endpoint(
                _Client, remote_addr=service.udp_address)
            try:
                transport.sendto(attach_trace_trailer(
                    _join_request("u1"), client_span.context))
                return await asyncio.wait_for(got, timeout=10)
            finally:
                transport.close()

    ctx = asyncio.run(drive())
    client_span.finish()
    assert ctx is not None, "join ack lost its trace trailer"
    assert ctx.trace_id == client_span.trace_id
    # And the server's request root parented itself to the client span.
    spans = tracer.export()
    roots = [s for s in spans if s["name"] == "serve.request"]
    assert roots and roots[0]["trace_id"] == client_span.trace_id
    assert roots[0]["parent_id"] == client_span.context.span_id


def test_framed_tcp_reply_echoes_trace_trailer():
    """Regression: framed-TCP replies attach trace trailers too.

    The TCP path shares ``attach_trailers`` with UDP, so a traced
    framed request must come back with the same trace id — it used to
    lose the trailer because replies only echoed the corr token.
    """
    server, tracer = _traced_server(seed=b"tracing-tcp")
    client_span = tracer.span("client.request", user="t1")

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True,
                                tcp_port=0))
        async with AsyncKeyService(core) as service:
            reader, writer = await asyncio.open_connection(
                *service.tcp_address)
            try:
                writer.write(frame(attach_trace_trailer(
                    _join_request("t1"), client_span.context)))
                await writer.drain()
                while True:
                    data = await asyncio.wait_for(read_frame(reader),
                                                  timeout=10)
                    assert data is not None, "connection closed early"
                    payload, ctx, _token = split_trailers(data)
                    if Message.decode(payload).msg_type == MSG_JOIN_ACK:
                        return ctx
            finally:
                writer.close()

    ctx = asyncio.run(drive())
    client_span.finish()
    assert ctx is not None, "framed TCP ack lost its trace trailer"
    assert ctx.trace_id == client_span.trace_id


def test_trailer_stacking_roundtrip():
    """Trace + corr trailers stack and split in either presence."""
    from repro.observability.spans import SpanContext
    payload = b"\x01payload-bytes"
    ctx = SpanContext(77, 12)
    both = attach_trailers(payload, ctx, 9)
    back, got_ctx, got_token = split_trailers(both)
    assert (back, got_ctx, got_token) == (payload, ctx, 9)
    only_trace = attach_trailers(payload, ctx, None)
    assert split_trailers(only_trace) == (payload, ctx, None)
    only_corr = attach_trailers(payload, None, 3)
    assert split_trailers(only_corr) == (payload, None, 3)
    assert split_trailers(payload) == (payload, None, None)


# -- executor-hop parenting --------------------------------------------------


def test_staged_rekey_spans_form_one_connected_trace():
    """Plan on the loop + encrypt/sign on a worker stay one trace."""
    server, tracer = _traced_server(seed=b"tracing-staged")

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=True))
        sink = []
        try:
            await core.submit(_join_request("w1"), sink.append)
        finally:
            await core.aclose()

    asyncio.run(drive())
    spans = tracer.export()
    roots = [s for s in spans if s["name"] == "serve.request"]
    assert len(roots) == 1
    selected = _assert_connected(spans, roots[0]["trace_id"])
    names = {s["name"] for s in selected}
    # The loop-side plan and the worker-side stages are all present.
    assert "serve.plan" in names
    assert "rekey.join" in names
    # The pipeline spans crossed the run_in_executor hop without
    # orphaning: rekey.join's ancestry reaches serve.request.
    by_id = {s["span_id"]: s for s in selected}
    node = next(s for s in selected if s["name"] == "rekey.join")
    seen = set()
    while node["parent_id"]:
        assert node["span_id"] not in seen  # no cycles
        seen.add(node["span_id"])
        node = by_id[node["parent_id"]]
    assert node["name"] == "serve.request"


_USERS = [f"u{i}" for i in range(5)]

_ops = st.lists(
    st.tuples(st.sampled_from(["join", "leave"]),
              st.sampled_from(_USERS)),
    min_size=1, max_size=12)


def _individual_key(user):
    return bytes([_USERS.index(user) + 1]) * _KEY_SIZE


@settings(max_examples=15, deadline=None)
@given(ops=_ops)
def test_any_interleaving_yields_connected_traces(ops):
    """Property: however concurrent ops interleave on the loop and the
    worker pool, every request's spans form one connected trace and no
    span leaks into another request's trace."""
    server, tracer = _traced_server(seed=b"tracing-prop", capacity=8192)

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, max_inflight=64,
                                open_enroll=False))
        try:
            async def one(op, user):
                if op == "join":
                    server.register_individual_key(
                        user, _individual_key(user))
                    msg_type = MSG_JOIN_REQUEST
                else:
                    msg_type = MSG_LEAVE_REQUEST
                payload = Message(msg_type=msg_type,
                                  body=user.encode()).encode()
                sink = []
                await core.submit(payload, sink.append, path_id=None)
            await asyncio.gather(*(one(op, user) for op, user in ops))
        finally:
            await core.aclose()

    asyncio.run(drive())
    spans = tracer.export()
    roots = [s for s in spans if s["name"] == "serve.request"]
    # One root per submitted request, each a distinct trace.
    assert len(roots) == len(ops)
    assert len({s["trace_id"] for s in roots}) == len(roots)
    for root in roots:
        _assert_connected(spans, root["trace_id"])


# -- the acceptance test: one trace across a live 3-shard cluster ------------


def test_single_join_traces_across_live_three_shard_cluster():
    """ISSUE 8 acceptance: a single join against a live 3-shard async
    cluster yields ONE connected trace covering the event loop, the
    executor hop, the owning shard, and the root-layer rekey — plus the
    client's install span stitched on from the reply trailer — and the
    trace renders as a waterfall."""
    from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
    from repro.serve.core import ClusterServingCore

    # ONE tracer shared by client and cluster: separate tracers would
    # collide on their deterministic integer trace ids.
    tracer = Tracer(capacity=4096)
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=3, signing="none", seed=b"tracing-cluster",
                      backend="flat"),
        instrumentation=Instrumentation("cluster", tracer=tracer))
    coordinator.bootstrap([])

    async def drive():
        core = ClusterServingCore(
            coordinator, ServeConfig(tick_interval=0, open_enroll=True))
        async with AsyncClusterService(core) as service:
            loop = asyncio.get_running_loop()
            got = loop.create_future()

            class _Client(asyncio.DatagramProtocol):
                def connection_made(self, transport):
                    self.transport = transport

                def datagram_received(self, data, addr):
                    payload, ctx, _token = split_trailers(data)
                    if (Message.decode(payload).msg_type == MSG_JOIN_ACK
                            and not got.done()):
                        got.set_result(ctx)

            transport, _ = await loop.create_datagram_endpoint(
                _Client, remote_addr=service.udp_addresses[0])
            try:
                transport.sendto(_join_request("member-1"))
                return await asyncio.wait_for(got, timeout=15)
            finally:
                transport.close()

    ctx = asyncio.run(drive())
    assert ctx is not None, "cluster join ack carried no trace trailer"
    # The client installs its keys under the trace the reply carried.
    install = tracer.span("client.install", parent=ctx, user="member-1")
    install.finish()

    spans = tracer.export()
    selected = _assert_connected(spans, ctx.trace_id)
    names = {s["name"] for s in selected}
    for needed in ("serve.request",      # admission on the event loop
                   "serve.exec",         # the run_in_executor hop
                   "cluster.join",       # the coordinator
                   "shard.join",         # the owning shard's rekey
                   "rekey.root-rekey",   # the cluster root layer
                   "client.install"):    # stitched on from the trailer
        assert needed in names, f"trace missing {needed}: {sorted(names)}"

    waterfall = render_timeline(spans, trace_id=ctx.trace_id)
    for needed in ("serve.request", "serve.exec", "cluster.join",
                   "shard.join", "rekey.root-rekey", "client.install"):
        assert needed in waterfall

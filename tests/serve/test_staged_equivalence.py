"""The staged (pipelined) rekey path is byte-identical to the sync path.

The async front end splits ``join``/``leave`` into plan (event loop)
and encrypt/seal/dispatch (worker pool).  All DRBG draws happen during
planning and the seal stage is serialized, so two servers with the
same seed driven through the two paths must emit identical wire bytes
— including when staged stages of consecutive ops overlap.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor
from unittest import mock

from repro.core.server import GroupKeyServer, ServerConfig

FIXED_TIME_NS = 896_745_600_000_000_000  # the paper's year, frozen


def _freeze_time():
    return mock.patch("time.time_ns", return_value=FIXED_TIME_NS)

_OPS = [("join", f"u{i}") for i in range(8)] + [
    ("leave", "u2"), ("join", "v0"), ("leave", "u5"), ("leave", "u0"),
    ("join", "v1"), ("leave", "v0"),
]


def _config(signing, seed=b"staged-eq"):
    return ServerConfig(signing=signing, seed=seed, backend="flat")


def _wire_bytes(outcome):
    return [out.encoded or out.message.encode()
            for out in outcome.all_messages]


def _run_sync(signing):
    server = GroupKeyServer(_config(signing))
    emitted = []
    for op, user in _OPS:
        if op == "join":
            server.register_individual_key(user,
                                           server.new_individual_key())
            outcome = server.join(user)
        else:
            outcome = server.leave(user)
        emitted.extend(_wire_bytes(outcome))
    return emitted, server.group_key(), server.group_key_ref()


def test_staged_matches_sync_byte_for_byte():
    for signing in ("none", "merkle"):
        with _freeze_time():
            sync_bytes, sync_key, sync_ref = _run_sync(signing)
        server = GroupKeyServer(_config(signing))
        emitted = []
        with _freeze_time():
            for op, user in _OPS:
                if op == "join":
                    server.register_individual_key(
                        user, server.new_individual_key())
                    staged = server.begin_join(user)
                else:
                    staged = server.begin_leave(user)
                outcome = staged.encrypt().seal().finish()
                emitted.extend(_wire_bytes(outcome))
        assert emitted == sync_bytes, f"signing={signing}"
        assert server.group_key() == sync_key
        assert server.group_key_ref() == sync_ref


def test_overlapped_stages_match_sync():
    """Plan N+1 while N encrypts: bytes still identical to sync."""
    with _freeze_time():
        sync_bytes, sync_key, _ = _run_sync("merkle")
    server = GroupKeyServer(_config("merkle"))
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        slots = [None] * len(_OPS)

        def heavy(index, staged):
            slots[index] = staged.encrypt().seal().finish()
        futures = []
        freezer = _freeze_time()
        freezer.start()
        for index, (op, user) in enumerate(_OPS):
            # Plans run strictly in op order on this thread; the heavy
            # stages overlap on the pool (the pipeline's seal turnstile
            # admits the seals in plan order).
            if op == "join":
                server.register_individual_key(
                    user, server.new_individual_key())
                staged = server.begin_join(user)
            else:
                staged = server.begin_leave(user)
            futures.append(pool.submit(heavy, index, staged))
        for future in futures:
            future.result()
    finally:
        freezer.stop()
        pool.shutdown()
    emitted = []
    for outcome in slots:
        emitted.extend(_wire_bytes(outcome))
    assert emitted == sync_bytes
    assert server.group_key() == sync_key


def test_async_serving_matches_sync():
    """The full async core (loop + executor) emits the sync bytes."""
    with _freeze_time():
        sync_bytes, sync_key, _ = _run_sync("none")

    async def run():
        from repro.serve import ImmediateServingCore, ServeConfig
        server = GroupKeyServer(_config("none"))
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=False))
        emitted = []

        def collect(payload):
            emitted.append(payload)
        # Every member shares one observed path: each rekey message is
        # delivered exactly once, in routing order, and acks arrive via
        # the same callable — so `emitted` is the full wire sequence.
        for _op, user in _OPS:
            core.fanout.attach(user, collect, path_id="sink")
        from repro.core.messages import (MSG_JOIN_REQUEST,
                                         MSG_LEAVE_REQUEST, Message)
        try:
            for op, user in _OPS:
                if op == "join":
                    server.register_individual_key(
                        user, server.new_individual_key())
                    msg_type = MSG_JOIN_REQUEST
                else:
                    msg_type = MSG_LEAVE_REQUEST
                payload = Message(msg_type=msg_type,
                                  body=user.encode()).encode()
                await core.submit(payload, collect, path_id=None)
        finally:
            await core.aclose()
        return emitted, server.group_key()

    with _freeze_time():
        emitted, group_key = asyncio.run(run())
    assert group_key == sync_key
    # Same multiset is not enough — the serialized submits must yield
    # the exact sync sequence.  The fanout dedups per path, so the
    # sink sees each rekey once; acks arrive via the reply callable.
    assert emitted == sync_bytes

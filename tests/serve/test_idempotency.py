"""Server-side idempotent replay: retries must not double-execute.

The regression this guards: before the idempotency cache, a retried
join whose original attempt had already executed hit the membership
check and earned ``MSG_JOIN_DENIED`` — a denial for an op that had in
fact succeeded, which the retrying client then surfaced as a failure.
A duplicate must replay the original reply byte for byte instead.
"""

import asyncio

from repro.core.messages import (MSG_BUSY, MSG_JOIN_DENIED,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST,
                                 Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.serve import ImmediateServingCore, ServeConfig
from repro.serve.wire import attach_corr_trailer, split_corr_trailer


def _run(coro):
    return asyncio.run(coro)


def _core(**overrides):
    server = GroupKeyServer(ServerConfig(signing="none", seed=b"idem-test",
                                         backend="flat"))
    base = dict(tick_interval=0, open_enroll=False)
    base.update(overrides)
    return server, ImmediateServingCore(server, ServeConfig(**base))


def _request(msg_type, user, token):
    return attach_corr_trailer(
        Message(msg_type=msg_type, body=user.encode()).encode(), token)


def _join(server, user):
    key = bytes([1]) * server.suite.key_size
    server.register_individual_key(user, key)


def test_duplicate_join_replays_instead_of_denial():
    async def scenario():
        server, core = _core()
        try:
            _join(server, "alice")
            first, second = [], []
            request = _request(MSG_JOIN_REQUEST, "alice", 42)
            await core.submit(request, first.append, path_id=None)
            assert server.is_member("alice")
            seq_before = server._seq

            # The retry: same datagram, same correlation token.
            await core.submit(request, second.append, path_id=None)
            assert server.is_member("alice")
            assert server._seq == seq_before, "duplicate must not rekey"
            assert first and second
            # Byte-for-byte replay of the original reply — in
            # particular NOT a JOIN_DENIED.
            assert second[0] == first[0]
            body, token = split_corr_trailer(second[0])
            assert token == 42
            assert Message.decode(body).msg_type != MSG_JOIN_DENIED
            replays = core._m_idempotent.labels(result="replay")
            assert replays.value == 1
        finally:
            await core.aclose()
    _run(scenario())


def test_duplicate_leave_replays():
    async def scenario():
        server, core = _core()
        try:
            for user in ("a", "b", "c"):
                _join(server, user)
                await core.submit(_request(MSG_JOIN_REQUEST, user, hash(user)
                                           & 0xFFFF), [].append, path_id=None)
            first, second = [], []
            request = _request(MSG_LEAVE_REQUEST, "b", 77)
            await core.submit(request, first.append, path_id=None)
            assert not server.is_member("b")
            seq_before = server._seq
            await core.submit(request, second.append, path_id=None)
            assert server._seq == seq_before
            assert second and second[0] == first[0]
        finally:
            await core.aclose()
    _run(scenario())


def test_concurrent_duplicate_is_absorbed_silently():
    async def scenario():
        server, core = _core()
        try:
            _join(server, "alice")
            first, second = [], []
            request = _request(MSG_JOIN_REQUEST, "alice", 9)
            await asyncio.gather(
                core.submit(request, first.append, path_id=None),
                core.submit(request, second.append, path_id=None))
            # Exactly one execution; the duplicate that raced it was
            # dropped without a reply (same token: the original's
            # reply resolves the retrier's future on a real wire).
            assert server.is_member("alice")
            assert len(first) + len(second) >= 1
            inflight = core._m_idempotent.labels(result="inflight")
            replays = core._m_idempotent.labels(result="replay")
            assert inflight.value + replays.value == 1
        finally:
            await core.aclose()
    _run(scenario())


def test_busy_reply_is_not_cached():
    async def scenario():
        server, core = _core()
        try:
            _join(server, "alice")
            request = _request(MSG_JOIN_REQUEST, "alice", 5)
            # Force a shed: a closing core answers MSG_BUSY.
            core._closing = True
            box = []
            await core.submit(request, box.append, path_id=None)
            body, _ = split_corr_trailer(box[0])
            assert Message.decode(body).msg_type == MSG_BUSY
            # Busy describes the moment, not the op: the retry (same
            # token) must be allowed to actually execute.
            core._closing = False
            box2 = []
            await core.submit(request, box2.append, path_id=None)
            assert server.is_member("alice")
            body2, _ = split_corr_trailer(box2[0])
            assert Message.decode(body2).msg_type != MSG_BUSY
        finally:
            await core.aclose()
    _run(scenario())


def test_untokened_requests_bypass_the_cache():
    async def scenario():
        server, core = _core()
        try:
            _join(server, "alice")
            request = Message(msg_type=MSG_JOIN_REQUEST,
                              body=b"alice").encode()
            first, second = [], []
            await core.submit(request, first.append, path_id=None)
            await core.submit(request, second.append, path_id=None)
            # No token, no replay: the duplicate executes and is denied
            # (the legacy behavior, still correct for bare clients).
            assert Message.decode(second[0]).msg_type == MSG_JOIN_DENIED
        finally:
            await core.aclose()
    _run(scenario())


def test_cache_disabled_by_config():
    async def scenario():
        server, core = _core(idempotency_entries=0)
        try:
            assert core._idem is None
            _join(server, "alice")
            request = _request(MSG_JOIN_REQUEST, "alice", 3)
            first, second = [], []
            await core.submit(request, first.append, path_id=None)
            await core.submit(request, second.append, path_id=None)
            body, _ = split_corr_trailer(second[0])
            assert Message.decode(body).msg_type == MSG_JOIN_DENIED
        finally:
            await core.aclose()
    _run(scenario())

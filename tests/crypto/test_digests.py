"""MD5 and SHA-1: RFC/FIPS vectors and equivalence with hashlib."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.md5 import MD5, md5
from repro.crypto.sha1 import SHA1, sha1

# RFC 1321 appendix A.5 test suite.
MD5_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
    (b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"),
    (b"1234567890" * 8, "57edf4a22be3c955ac49da2e2107b67a"),
]

SHA1_VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"a" * 1000, "291e9a6c66994949b57ba5e650361e98fc36b1ba"),
]


@pytest.mark.parametrize("message,expected", MD5_VECTORS)
def test_md5_rfc1321(message, expected):
    assert md5(message).hexdigest() == expected


@pytest.mark.parametrize("message,expected", SHA1_VECTORS)
def test_sha1_vectors(message, expected):
    assert sha1(message).hexdigest() == expected


@given(data=st.binary(max_size=512))
def test_md5_matches_hashlib(data):
    assert md5(data).digest() == hashlib.md5(data).digest()


@given(data=st.binary(max_size=512))
def test_sha1_matches_hashlib(data):
    assert sha1(data).digest() == hashlib.sha1(data).digest()


@given(chunks=st.lists(st.binary(max_size=100), max_size=8))
def test_md5_incremental_equals_oneshot(chunks):
    incremental = MD5()
    for chunk in chunks:
        incremental.update(chunk)
    assert incremental.digest() == md5(b"".join(chunks)).digest()


@given(chunks=st.lists(st.binary(max_size=100), max_size=8))
def test_sha1_incremental_equals_oneshot(chunks):
    incremental = SHA1()
    for chunk in chunks:
        incremental.update(chunk)
    assert incremental.digest() == sha1(b"".join(chunks)).digest()


@pytest.mark.parametrize("factory,reference",
                         [(md5, hashlib.md5), (sha1, hashlib.sha1)])
def test_boundary_lengths(factory, reference):
    # Exercise the padding logic around the 55/56/63/64-byte boundaries.
    for length in (54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129):
        data = bytes(range(256))[:length] * 1
        assert factory(data).digest() == reference(data).digest()


def test_digest_does_not_consume_state():
    h = MD5(b"hello")
    first = h.digest()
    assert h.digest() == first        # repeatable
    h.update(b" world")
    assert h.digest() == md5(b"hello world").digest()

    s = SHA1(b"hello")
    first = s.digest()
    assert s.digest() == first
    s.update(b" world")
    assert s.digest() == sha1(b"hello world").digest()


def test_copy_is_independent():
    h = MD5(b"prefix")
    clone = h.copy()
    clone.update(b"-clone")
    h.update(b"-original")
    assert h.digest() == md5(b"prefix-original").digest()
    assert clone.digest() == md5(b"prefix-clone").digest()

    s = SHA1(b"prefix")
    clone = s.copy()
    clone.update(b"-clone")
    assert s.digest() == sha1(b"prefix").digest()
    assert clone.digest() == sha1(b"prefix-clone").digest()


def test_interface_metadata():
    assert md5().digest_size == 16 and md5().block_size == 64
    assert sha1().digest_size == 20 and sha1().block_size == 64
    assert md5().name == "md5" and sha1().name == "sha1"

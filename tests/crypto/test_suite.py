"""CipherSuite configuration and behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modes import PaddingError
from repro.crypto.suite import (FAST_TEST_SUITE, MODERN_SUITE, PAPER_SUITE,
                                PAPER_SUITE_ENC_ONLY, PAPER_SUITE_NO_SIG,
                                CipherSuite, XorCipher, suite_from_spec)


def test_paper_suite_shape():
    assert PAPER_SUITE.cipher_name == "des"
    assert PAPER_SUITE.digest_name == "md5"
    assert PAPER_SUITE.signature_bits == 512
    assert PAPER_SUITE.key_size == 8
    assert PAPER_SUITE.block_size == 8
    assert PAPER_SUITE.digest_size == 16
    assert PAPER_SUITE.signature_size == 64
    assert PAPER_SUITE.signs


def test_enc_only_suite():
    assert PAPER_SUITE_ENC_ONLY.digest_size == 0
    assert PAPER_SUITE_ENC_ONLY.digest(b"data") == b""
    assert PAPER_SUITE_ENC_ONLY.digest_factory is None
    assert not PAPER_SUITE_ENC_ONLY.signs
    assert PAPER_SUITE_ENC_ONLY.signature_size == 0


def test_modern_suite():
    assert MODERN_SUITE.key_size == 16
    assert MODERN_SUITE.block_size == 16
    assert MODERN_SUITE.digest_size == 32


def test_invalid_configurations():
    with pytest.raises(ValueError):
        CipherSuite("rot13")
    with pytest.raises(ValueError):
        CipherSuite("des", "crc32")
    with pytest.raises(ValueError):
        CipherSuite("des", None, 512)  # signature without digest
    with pytest.raises(ValueError):
        CipherSuite("des", "md5", 64)  # absurd modulus


@given(key=st.binary(min_size=8, max_size=8), data=st.binary(max_size=64),
       iv=st.binary(min_size=8, max_size=8))
def test_suite_encrypt_decrypt(key, data, iv):
    assert PAPER_SUITE.decrypt(key, PAPER_SUITE.encrypt(key, data, iv),
                               iv) == data


def test_suite_key_length_enforced():
    with pytest.raises(ValueError):
        PAPER_SUITE.new_cipher(bytes(16))
    with pytest.raises(ValueError):
        MODERN_SUITE.new_cipher(bytes(8))


def test_suite_sign_verify():
    keypair = PAPER_SUITE.generate_signing_keypair(seed=b"suite-test")
    signature = PAPER_SUITE.sign(keypair, b"rekey message bytes")
    PAPER_SUITE.verify(keypair.public_key, b"rekey message bytes", signature)
    from repro.crypto.rsa import SignatureError
    with pytest.raises(SignatureError):
        PAPER_SUITE.verify(keypair.public_key, b"tampered", signature)


def test_signature_free_suite_refuses_signing():
    with pytest.raises(ValueError):
        PAPER_SUITE_NO_SIG.generate_signing_keypair()
    with pytest.raises(ValueError):
        PAPER_SUITE_NO_SIG.sign(None, b"data")
    with pytest.raises(ValueError):
        PAPER_SUITE_NO_SIG.verify(None, b"data", b"sig")


def test_xor_cipher_is_self_inverse():
    cipher = XorCipher(bytes(range(8)))
    block = b"ABCDEFGH"
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
    assert cipher.encrypt_block(cipher.encrypt_block(block)) == block
    with pytest.raises(ValueError):
        XorCipher(b"bad")


def test_fast_test_suite():
    iv = bytes(8)
    ct = FAST_TEST_SUITE.encrypt(bytes(8), b"quick", iv)
    assert FAST_TEST_SUITE.decrypt(bytes(8), ct, iv) == b"quick"


def test_suite_from_spec():
    suite = suite_from_spec("des", "md5", "rsa-512")
    assert suite == PAPER_SUITE
    assert suite_from_spec("des", "none", "none") == PAPER_SUITE_ENC_ONLY
    assert suite_from_spec("des", None, None) == PAPER_SUITE_ENC_ONLY
    assert suite_from_spec("aes128", "sha256", "rsa-1024") == MODERN_SUITE
    with pytest.raises(ValueError):
        suite_from_spec("des", "md5", "dsa-1024")


def test_digest_implementations_agree():
    scratch = CipherSuite("des", "md5")
    hashlib_backed = CipherSuite("des", "md5-hashlib")
    data = b"the same input bytes"
    assert scratch.digest(data) == hashlib_backed.digest(data)
    scratch_sha = CipherSuite("des", "sha1")
    hashlib_sha = CipherSuite("des", "sha1-hashlib")
    assert scratch_sha.digest(data) == hashlib_sha.digest(data)

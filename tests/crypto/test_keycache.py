"""Key-schedule cache: hit/miss/eviction semantics and suite integration."""

import pytest

from repro.crypto import des
from repro.crypto.des import DES
from repro.crypto.keycache import SHARED_CACHE, KeyScheduleCache
from repro.crypto.suite import CipherSuite, FAST_TEST_SUITE


def _key(i: int) -> bytes:
    return i.to_bytes(8, "big")


class TestKeyScheduleCache:
    def test_miss_constructs_then_hit_reuses(self):
        cache = KeyScheduleCache(capacity=4)
        first = cache.get("des", _key(1), DES)
        assert cache.misses == 1 and cache.hits == 0
        second = cache.get("des", _key(1), DES)
        assert second is first
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_key_bytes_get_distinct_ciphers(self):
        """A cached cipher must never be served for different key bytes."""
        cache = KeyScheduleCache(capacity=8)
        a = cache.get("des", _key(1), DES)
        b = cache.get("des", _key(2), DES)
        assert a is not b
        # ... and the cached objects really do hold different schedules.
        block = b"\x00" * 8
        assert a.encrypt_block(block) != b.encrypt_block(block)

    def test_cipher_name_is_part_of_the_key(self):
        """Same key bytes under different cipher names are separate entries."""
        cache = KeyScheduleCache(capacity=8)
        a = cache.get("one", _key(1), DES)
        b = cache.get("two", _key(1), DES)
        assert a is not b

    def test_lru_eviction_order_and_counter(self):
        cache = KeyScheduleCache(capacity=2)
        a = cache.get("des", _key(1), DES)
        cache.get("des", _key(2), DES)
        cache.get("des", _key(1), DES)      # refresh key 1: key 2 is now LRU
        cache.get("des", _key(3), DES)      # evicts key 2
        assert cache.evictions == 1
        assert cache.get("des", _key(1), DES) is a      # still cached
        misses_before = cache.misses
        cache.get("des", _key(2), DES)                   # key 2 was evicted
        assert cache.misses == misses_before + 1

    def test_capacity_bound_holds(self):
        cache = KeyScheduleCache(capacity=3)
        for i in range(10):
            cache.get("des", _key(i), DES)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = KeyScheduleCache(capacity=4)
        first = cache.get("des", _key(1), DES)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("des", _key(1), DES) is not first
        assert cache.misses == 2

    def test_factory_error_inserts_nothing(self):
        cache = KeyScheduleCache(capacity=4)
        with pytest.raises(ValueError):
            cache.get("des", b"short", DES)
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KeyScheduleCache(capacity=0)

    def test_stats_snapshot(self):
        cache = KeyScheduleCache(capacity=2)
        cache.get("des", _key(1), DES)
        cache.get("des", _key(1), DES)
        assert cache.stats() == {"size": 1, "capacity": 2, "hits": 1,
                                 "misses": 1, "evictions": 0}


class TestSuiteIntegration:
    def test_new_cipher_hits_shared_cache(self):
        suite = CipherSuite("des")
        key = b"suitekey"
        assert suite.new_cipher(key) is suite.new_cipher(key)

    def test_new_cipher_distinct_keys_distinct_ciphers(self):
        suite = CipherSuite("des")
        assert suite.new_cipher(b"suitekeA") is not suite.new_cipher(b"suitekeB")

    def test_cache_is_shared_across_equal_suites(self):
        """Two suite objects with the same cipher share schedules."""
        key = b"\x42" * 16
        one = CipherSuite("aes128", "sha256", None)
        two = CipherSuite("aes128")
        assert one.new_cipher(key) is two.new_cipher(key)

    def test_xor_cipher_bypasses_cache(self):
        key = b"xorkey00"
        assert (FAST_TEST_SUITE.new_cipher(key)
                is not FAST_TEST_SUITE.new_cipher(key))

    def test_new_cipher_still_validates_length(self):
        with pytest.raises(ValueError):
            CipherSuite("des").new_cipher(b"too-short")
        assert ("des", b"too-short") not in SHARED_CACHE._entries

    def test_cached_cipher_output_matches_fresh_construction(self):
        suite = CipherSuite("des3")
        key = bytes(range(24))
        block = b"abcdefgh"
        cached = suite.new_cipher(key)
        from repro.crypto.des3 import TripleDES
        assert cached.encrypt_block(block) == TripleDES(key).encrypt_block(block)


class TestWeakKeyScreeningCache:
    def test_verdicts_are_cached(self):
        des._SCREEN_CACHE.clear()
        key = b"\x3a" * 8
        assert not des.is_weak_key(key)
        assert key in des._SCREEN_CACHE
        # Second screening answers from the memo (same verdict object).
        assert des._SCREEN_CACHE[key] == (False, False)
        assert not des.is_semi_weak_key(key)

    def test_cached_verdicts_stay_correct(self):
        des._SCREEN_CACHE.clear()
        for weak in des.WEAK_KEYS:
            assert des.is_weak_key(weak)
            assert des.is_weak_key(weak)        # cached path
        for semi in des.SEMI_WEAK_KEYS:
            assert des.is_semi_weak_key(semi)
            assert des.is_semi_weak_key(semi)   # cached path

    def test_parity_flip_still_detected_via_cache(self):
        flipped = bytes(b ^ 1 for b in des.WEAK_KEYS[0])
        assert des.is_weak_key(flipped)

    def test_screening_cache_is_bounded(self):
        des._SCREEN_CACHE.clear()
        for i in range(des._SCREEN_CACHE_MAX + 10):
            des.is_weak_key(i.to_bytes(8, "big"))
        assert len(des._SCREEN_CACHE) <= des._SCREEN_CACHE_MAX

    def test_wrong_length_still_raises(self):
        with pytest.raises(ValueError):
            des.is_weak_key(b"short")
        with pytest.raises(ValueError):
            des.is_semi_weak_key(b"way too long for DES")


class TestRegistryIntegration:
    """Counters live on the registry; the attribute API is the hot path."""

    def test_attribute_api_unchanged(self):
        cache = KeyScheduleCache(capacity=2)
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
        cache.get("des", _key(1), DES)
        cache.get("des", _key(1), DES)
        assert cache.stats() == {"size": 1, "capacity": 2, "hits": 1,
                                 "misses": 1, "evictions": 0}

    def test_snapshot_reflects_lookup_counters(self):
        cache = KeyScheduleCache(capacity=2)
        cache.get("des", _key(1), DES)
        cache.get("des", _key(1), DES)
        cache.get("des", _key(2), DES)
        cache.get("des", _key(3), DES)   # evicts key 1
        snapshot = cache.registry.snapshot()
        lookups = {s["labels"]["result"]: s["value"]
                   for s in snapshot["counters"]["keycache_lookups_total"]
                   ["series"]}
        assert lookups == {"hit": 1, "miss": 3}
        evictions = snapshot["counters"]["keycache_evictions_total"]
        assert evictions["series"][0]["value"] == 1
        gauges = snapshot["gauges"]
        assert gauges["keycache_entries"]["series"][0]["value"] == 2
        assert gauges["keycache_capacity"]["series"][0]["value"] == 2

    def test_collector_is_incremental_across_snapshots(self):
        cache = KeyScheduleCache(capacity=4)
        cache.get("des", _key(1), DES)
        first = cache.registry.snapshot()
        cache.get("des", _key(1), DES)
        second = cache.registry.snapshot()

        def misses(snap):
            return [s["value"] for s in
                    snap["counters"]["keycache_lookups_total"]["series"]
                    if s["labels"]["result"] == "miss"][0]

        assert misses(first) == 1
        assert misses(second) == 1   # no double counting
        hits = [s["value"] for s in
                second["counters"]["keycache_lookups_total"]["series"]
                if s["labels"]["result"] == "hit"]
        assert hits == [1.0]

    def test_shared_cache_has_registry(self):
        assert SHARED_CACHE.registry is not None
        assert "keycache_lookups_total" in SHARED_CACHE.registry

    def test_external_registry_can_be_supplied(self):
        from repro.observability.metrics import MetricRegistry
        registry = MetricRegistry("mine")
        cache = KeyScheduleCache(capacity=2, registry=registry)
        cache.get("des", _key(1), DES)
        snapshot = registry.snapshot()
        assert "keycache_lookups_total" in snapshot["counters"]

"""Triple DES and CTR mode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import modes
from repro.crypto.des import DES
from repro.crypto.des3 import TripleDES
from repro.crypto.suite import CipherSuite


def test_3des_known_answer():
    # NIST example: "The qufc" under the 24-byte sample key.
    cipher = TripleDES(bytes.fromhex(
        "0123456789abcdef23456789abcdef01456789abcdef0123"))
    ct = cipher.encrypt_block(bytes.fromhex("5468652071756663"))
    assert ct.hex() == "a826fd8ce53b855f"
    assert cipher.decrypt_block(ct).hex() == "5468652071756663"


def test_3des_degenerates_to_des_with_equal_keys():
    key = bytes.fromhex("133457799BBCDFF1")
    triple = TripleDES(key * 3)
    single = DES(key)
    block = b"ABCDEFGH"
    assert triple.encrypt_block(block) == single.encrypt_block(block)
    # Two-key EDE with K1 == K2 also degenerates.
    two_key = TripleDES(key * 2)
    assert two_key.encrypt_block(block) == single.encrypt_block(block)


@given(key=st.binary(min_size=24, max_size=24),
       block=st.binary(min_size=8, max_size=8))
def test_3des_roundtrip(key, block):
    cipher = TripleDES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=8, max_size=8))
def test_3des_two_key_roundtrip(key, block):
    cipher = TripleDES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_3des_key_validation():
    with pytest.raises(ValueError):
        TripleDES(bytes(8))
    with pytest.raises(ValueError):
        TripleDES(bytes(23))
    cipher = TripleDES(bytes(24))
    with pytest.raises(ValueError):
        cipher.encrypt_block(bytes(7))
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(9))


def test_3des_suite_integration():
    suite = CipherSuite("des3", "md5")
    assert suite.key_size == 24
    iv = bytes(8)
    ct = suite.encrypt(bytes(24), b"group key material", iv)
    assert suite.decrypt(bytes(24), ct, iv) == b"group key material"
    two_key = CipherSuite("des3-2key", "md5")
    assert two_key.key_size == 16


def test_3des_suite_runs_the_protocol():
    from repro.core.server import GroupKeyServer, ServerConfig
    from repro.core.client import GroupClient
    suite = CipherSuite("des3", "md5")
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=suite, signing="none",
        seed=b"des3"))
    key = server.new_individual_key()
    client = GroupClient("a", suite, verify=False)
    client.set_individual_key(key)
    outcome = server.join("a", key)
    client.process_control(outcome.control_messages[0].encoded)
    for message in outcome.rekey_messages:
        if "a" in message.receivers:
            client.process_message(message.encoded)
    assert client.group_key() == server.group_key()


# -- CTR mode -------------------------------------------------------------------


@given(key=st.binary(min_size=8, max_size=8), data=st.binary(max_size=120),
       nonce=st.binary(min_size=4, max_size=4))
def test_ctr_self_inverse(key, data, nonce):
    cipher = DES(key)
    transformed = modes.ctr_transform(cipher, data, nonce)
    assert len(transformed) == len(data)
    assert modes.ctr_transform(cipher, transformed, nonce) == data


def test_ctr_nonce_matters():
    cipher = DES(bytes(8))
    data = b"stream data " * 4
    a = modes.ctr_transform(cipher, data, b"aaaa")
    b = modes.ctr_transform(cipher, data, b"bbbb")
    assert a != b


def test_ctr_empty_input():
    cipher = DES(bytes(8))
    assert modes.ctr_transform(cipher, b"", b"nonc") == b""


def test_ctr_nonce_validation():
    cipher = DES(bytes(8))
    with pytest.raises(ValueError):
        modes.ctr_transform(cipher, b"data", b"too-long-nonce")


def test_ctr_with_aes():
    from repro.crypto.aes import AES
    cipher = AES(bytes(16))
    data = b"A" * 50
    nonce = bytes(12)
    assert modes.ctr_transform(
        cipher, modes.ctr_transform(cipher, data, nonce), nonce) == data


def test_3des_three_key_composes_single_des_kats():
    """EDE3 equals E_K3(D_K2(E_K1(.))) built from the KAT-validated DES."""
    k1 = bytes.fromhex("0123456789abcdef")
    k2 = bytes.fromhex("23456789abcdef01")
    k3 = bytes.fromhex("456789abcdef0123")
    block = bytes.fromhex("5468652071756663")
    expected = DES(k3).encrypt_block(
        DES(k2).decrypt_block(DES(k1).encrypt_block(block)))
    triple = TripleDES(k1 + k2 + k3)
    assert triple.encrypt_block(block) == expected
    assert triple.decrypt_block(expected) == block


def test_3des_two_key_composes_single_des():
    """EDE2 is EDE3 with K3 = K1 (FIPS 46-3 keying option 2)."""
    k1 = bytes.fromhex("133457799bbcdff1")
    k2 = bytes.fromhex("0123456789abcdef")
    block = b"KeyGraph"
    expected = DES(k1).encrypt_block(
        DES(k2).decrypt_block(DES(k1).encrypt_block(block)))
    two_key = TripleDES(k1 + k2)
    assert two_key.encrypt_block(block) == expected
    assert two_key.encrypt_block(block) == TripleDES(
        k1 + k2 + k1).encrypt_block(block)
    assert two_key.decrypt_block(expected) == block


def test_3des_int_api_matches_byte_api():
    cipher = TripleDES(bytes(range(24)))
    value = 0x0011223344556677
    assert (cipher.encrypt_block_int(value).to_bytes(8, "big")
            == cipher.encrypt_block(value.to_bytes(8, "big")))
    assert (cipher.decrypt_block_int(value).to_bytes(8, "big")
            == cipher.decrypt_block(value.to_bytes(8, "big")))

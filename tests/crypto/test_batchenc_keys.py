"""Vectorized AES key expansion and the raw-key-bytes batch CBC path."""

import random

import pytest

from repro.crypto import batchenc, modes
from repro.crypto.aes import AES
from repro.crypto.suite import CipherSuite

numpy = pytest.importorskip("numpy")
pytestmark = pytest.mark.skipif(not batchenc.HAVE_NUMPY,
                                reason="batch path needs numpy")


def random_keys(n, length, seed):
    rng = random.Random(seed)
    return [rng.randbytes(length) for _ in range(n)]


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_batch_schedules_match_reference_expansion(key_len):
    """Every row of the batched schedule equals AES._expand_key."""
    keys = random_keys(9, key_len, seed=key_len)
    schedules = batchenc._aes_schedules_batch(keys)
    for row, key in enumerate(keys):
        reference = AES(key)._rk
        assert schedules.shape[1] == len(reference)
        assert [int(word) for word in schedules[row]] == list(reference)


def suite_for(cipher):
    return CipherSuite(cipher, "sha1", 512)


def jobs_for(suite, n, n_blocks=2, seed=0):
    rng = random.Random(n * 1009 + n_blocks * 31 + seed)
    lengths = {"aes128": 16, "aes256": 32, "des": 8, "des3": 24}
    key_len = lengths[suite.cipher_name]
    block = 16 if suite.cipher_name.startswith("aes") else 8
    return [(rng.randbytes(key_len), rng.randbytes(block * n_blocks),
             rng.randbytes(block)) for _ in range(n)]


@pytest.mark.parametrize("cipher", ["aes128", "aes256", "des", "des3"])
@pytest.mark.parametrize("n", [1, 3, 8, 40])
def test_keys_many_matches_scalar_path(cipher, n):
    """cbc_encrypt_keys_many == per-job scalar CBC for every suite and
    batch size, above and below the vectorization threshold."""
    suite = suite_for(cipher)
    jobs = jobs_for(suite, n, n_blocks=3, seed=n)
    got = batchenc.cbc_encrypt_keys_many(suite, jobs)
    expected = [modes.cbc_encrypt_nopad(suite.new_cipher(key), padded, iv)
                for key, padded, iv in jobs]
    assert got == expected


def test_keys_many_mixed_shapes_group_correctly():
    """Jobs with different plaintext lengths vectorize per group and
    come back in input order."""
    suite = suite_for("aes128")
    rng = random.Random(77)
    jobs = []
    for index in range(30):
        n_blocks = 1 + index % 3
        jobs.append((rng.randbytes(16), rng.randbytes(16 * n_blocks),
                     rng.randbytes(16)))
    got = batchenc.cbc_encrypt_keys_many(suite, jobs)
    expected = [modes.cbc_encrypt_nopad(suite.new_cipher(key), padded, iv)
                for key, padded, iv in jobs]
    assert got == expected


def test_keys_many_rejects_partial_blocks():
    suite = suite_for("aes128")
    jobs = [(bytes(16), bytes(17), bytes(16))] * batchenc._MIN_GROUP
    with pytest.raises(ValueError, match="block multiple"):
        batchenc.cbc_encrypt_keys_many(suite, jobs)


def test_keys_many_empty_plaintext_falls_back():
    suite = suite_for("aes128")
    jobs = [(bytes([i]) * 16, b"", bytes(16))
            for i in range(batchenc._MIN_GROUP)]
    assert batchenc.cbc_encrypt_keys_many(suite, jobs) == \
        [b""] * batchenc._MIN_GROUP


def test_keys_many_odd_key_length_falls_back():
    """Keys outside the AES schedule table go through scalar ciphers
    (and raise exactly like the scalar path would)."""
    suite = suite_for("aes128")
    jobs = [(bytes([i]) * 20, bytes(16), bytes(16))
            for i in range(batchenc._MIN_GROUP)]
    with pytest.raises(ValueError):
        batchenc.cbc_encrypt_keys_many(suite, jobs)

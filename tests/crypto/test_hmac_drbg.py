"""HMAC (RFC 2202 vectors, stdlib equivalence) and HMAC-DRBG behaviour."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.crypto.hmac as our_hmac
from repro.crypto.drbg import HmacDrbg, SystemRandomSource, make_source
from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1

# RFC 2202 HMAC-MD5 test cases (subset).
RFC2202_MD5 = [
    (b"\x0b" * 16, b"Hi There", "9294727a3638bb1c13f48ef8158bfc9d"),
    (b"Jefe", b"what do ya want for nothing?",
     "750c783e6ab0b503eaa86e310a5db738"),
    (b"\xaa" * 16, b"\xdd" * 50, "56be34521d144c88dbb8c733f0e8b3f6"),
]

RFC2202_SHA1 = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
]


@pytest.mark.parametrize("key,msg,expected", RFC2202_MD5)
def test_hmac_md5_rfc2202(key, msg, expected):
    assert our_hmac.new(key, msg, md5).hexdigest() == expected


@pytest.mark.parametrize("key,msg,expected", RFC2202_SHA1)
def test_hmac_sha1_rfc2202(key, msg, expected):
    assert our_hmac.new(key, msg, sha1).hexdigest() == expected


@given(key=st.binary(min_size=1, max_size=100), msg=st.binary(max_size=200))
def test_hmac_matches_stdlib(key, msg):
    ours = our_hmac.new(key, msg, md5).digest()
    theirs = stdlib_hmac.new(key, msg, hashlib.md5).digest()
    assert ours == theirs


def test_hmac_long_key_is_hashed():
    key = b"k" * 200  # longer than the 64-byte block
    ours = our_hmac.new(key, b"payload", sha1).digest()
    theirs = stdlib_hmac.new(key, b"payload", hashlib.sha1).digest()
    assert ours == theirs


def test_hmac_incremental_and_copy():
    h = our_hmac.new(b"key", b"part1", md5)
    clone = h.copy()
    h.update(b"part2")
    assert h.digest() == our_hmac.new(b"key", b"part1part2", md5).digest()
    assert clone.digest() == our_hmac.new(b"key", b"part1", md5).digest()


def test_hmac_requires_digestmod():
    with pytest.raises(TypeError):
        our_hmac.new(b"key", b"msg")


def test_compare_digest():
    assert our_hmac.compare_digest(b"same", b"same")
    assert not our_hmac.compare_digest(b"same", b"diff")
    assert not our_hmac.compare_digest(b"same", b"longer-length")


# -- DRBG ---------------------------------------------------------------------


def test_drbg_deterministic():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.generate(64) == b.generate(64)
    assert a.generate(5) == b.generate(5)


def test_drbg_seed_sensitivity():
    assert HmacDrbg(b"seed1").generate(32) != HmacDrbg(b"seed2").generate(32)


def test_drbg_personalization_sensitivity():
    a = HmacDrbg(b"seed", b"role-a")
    b = HmacDrbg(b"seed", b"role-b")
    assert a.generate(32) != b.generate(32)


def test_drbg_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    a.generate(16)
    b.generate(16)
    a.reseed(b"fresh entropy")
    assert a.generate(16) != b.generate(16)


def test_drbg_rejects_empty_seed():
    with pytest.raises(ValueError):
        HmacDrbg(b"")


def test_drbg_generate_validation():
    drbg = HmacDrbg(b"seed")
    with pytest.raises(ValueError):
        drbg.generate(-1)
    assert drbg.generate(0) == b""


@given(bound=st.integers(min_value=1, max_value=10_000))
def test_randint_below_in_range(bound):
    drbg = HmacDrbg(b"bound-test")
    for _ in range(5):
        assert 0 <= drbg.randint_below(bound) < bound


def test_randint_below_rejects_nonpositive():
    drbg = HmacDrbg(b"seed")
    with pytest.raises(ValueError):
        drbg.randint_below(0)
    with pytest.raises(ValueError):
        SystemRandomSource().randint_below(-3)


def test_randint_below_covers_range():
    drbg = HmacDrbg(b"coverage")
    seen = {drbg.randint_below(4) for _ in range(200)}
    assert seen == {0, 1, 2, 3}


def test_scratch_hash_backend_is_deterministic_too():
    a = HmacDrbg(b"seed", scratch_hash=True)
    b = HmacDrbg(b"seed", scratch_hash=True)
    assert a.generate(40) == b.generate(40)
    # Different backend, different stream — both valid DRBGs.
    assert a.generate(16) != HmacDrbg(b"seed").generate(16)


def test_make_source():
    assert isinstance(make_source(None), SystemRandomSource)
    assert isinstance(make_source(b"seed"), HmacDrbg)
    sys_source = SystemRandomSource()
    assert len(sys_source.generate(12)) == 12
    assert 0 <= sys_source.randint_below(7) < 7

"""AES: FIPS-197 appendix vectors, NIST ECB vectors, properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_197 = [
    (16, "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (24, "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (32, "8ea2b7ca516745bfeafc49904b496089"),
]

# NIST SP 800-38A ECB-AES128 vectors (key 2b7e...).
NIST_ECB_128_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_ECB_128 = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


@pytest.mark.parametrize("key_len,expected", FIPS_197)
def test_fips197_vectors(key_len, expected):
    cipher = AES(bytes(range(key_len)))
    assert cipher.encrypt_block(PLAINTEXT).hex() == expected
    assert cipher.decrypt_block(bytes.fromhex(expected)) == PLAINTEXT


@pytest.mark.parametrize("pt,ct", NIST_ECB_128)
def test_nist_ecb_vectors(pt, ct):
    cipher = AES(NIST_ECB_128_KEY)
    assert cipher.encrypt_block(bytes.fromhex(pt)).hex() == ct
    assert cipher.decrypt_block(bytes.fromhex(ct)).hex() == pt


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_128(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=32, max_size=32),
       block=st.binary(min_size=16, max_size=16))
def test_roundtrip_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_avalanche():
    cipher = AES(bytes(range(16)))
    base = cipher.encrypt_block(bytes(16))
    flipped = cipher.encrypt_block(bytes([1] + [0] * 15))
    differing = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
    assert differing >= 32


def test_key_size_validation():
    with pytest.raises(ValueError):
        AES(bytes(15))
    with pytest.raises(ValueError):
        AES(bytes(33))


def test_block_size_validation():
    cipher = AES(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(bytes(8))
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(17))


def test_round_counts():
    assert AES(bytes(16))._rounds == 10
    assert AES(bytes(24))._rounds == 12
    assert AES(bytes(32))._rounds == 14


# NIST SP 800-38A, F.1.3 / F.1.5: ECB-AES192 and ECB-AES256 example
# vectors (the 128-bit variant is covered above).  Exercises the 12- and
# 14-round T-table paths block by block.
_SP800_38A_PLAINTEXT = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
]


def test_sp800_38a_ecb_aes192():
    cipher = AES(bytes.fromhex(
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"))
    expected = [
        "bd334f1d6e45f25ff712a214571fa5cc",
        "974104846d0ad3ad7734ecb3ecee4eef",
        "ef7afd2270e2e60adce0ba2face6444e",
        "9a4b41ba738d6c72fb16691603c18e0e",
    ]
    for plain_hex, cipher_hex in zip(_SP800_38A_PLAINTEXT, expected):
        block = bytes.fromhex(plain_hex)
        assert cipher.encrypt_block(block).hex() == cipher_hex
        assert cipher.decrypt_block(bytes.fromhex(cipher_hex)) == block


def test_sp800_38a_ecb_aes256():
    cipher = AES(bytes.fromhex("603deb1015ca71be2b73aef0857d7781"
                               "1f352c073b6108d72d9810a30914dff4"))
    expected = [
        "f3eed1bdb5d2a03c064b5a7e3db181f8",
        "591ccb10d410ed26dc5ba74a31362870",
        "b6ed21b99ca6f4f9f153e7b1beafed1d",
        "23304b7a39f9f3ff067d8d8f9e24ecc7",
    ]
    for plain_hex, cipher_hex in zip(_SP800_38A_PLAINTEXT, expected):
        block = bytes.fromhex(plain_hex)
        assert cipher.encrypt_block(block).hex() == cipher_hex
        assert cipher.decrypt_block(bytes.fromhex(cipher_hex)) == block

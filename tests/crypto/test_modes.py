"""Padding and chaining modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import modes
from repro.crypto.aes import AES
from repro.crypto.des import DES


@given(data=st.binary(max_size=200),
       block_size=st.integers(min_value=1, max_value=32))
def test_pad_unpad_roundtrip(data, block_size):
    padded = modes.pad(data, block_size)
    assert len(padded) % block_size == 0
    assert len(padded) > len(data)  # PKCS#7 always adds at least one byte
    assert modes.unpad(padded, block_size) == data


def test_pad_block_size_validation():
    with pytest.raises(ValueError):
        modes.pad(b"x", 0)
    with pytest.raises(ValueError):
        modes.pad(b"x", 256)


@pytest.mark.parametrize("bad", [
    b"",                        # empty
    b"\x00" * 8,                # zero pad byte
    b"\x09" * 8,                # pad length > block
    b"1234567\x03",             # inconsistent padding bytes
    b"123456789",               # not a block multiple
])
def test_unpad_rejects_garbage(bad):
    with pytest.raises(modes.PaddingError):
        modes.unpad(bad, 8)


@given(key=st.binary(min_size=8, max_size=8), data=st.binary(max_size=100),
       iv=st.binary(min_size=8, max_size=8))
def test_cbc_roundtrip_des(key, data, iv):
    cipher = DES(key)
    ciphertext = modes.cbc_encrypt(cipher, data, iv)
    assert modes.cbc_decrypt(cipher, ciphertext, iv) == data


@given(key=st.binary(min_size=16, max_size=16), data=st.binary(max_size=64),
       iv=st.binary(min_size=16, max_size=16))
def test_cbc_roundtrip_aes(key, data, iv):
    cipher = AES(key)
    ciphertext = modes.cbc_encrypt(cipher, data, iv)
    assert modes.cbc_decrypt(cipher, ciphertext, iv) == data


def test_cbc_iv_matters():
    cipher = DES(bytes(8))
    a = modes.cbc_encrypt(cipher, b"hello world", bytes(8))
    b = modes.cbc_encrypt(cipher, b"hello world", b"\x01" * 8)
    assert a != b


def test_cbc_identical_blocks_differ():
    # The whole point of CBC vs ECB.
    cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    ciphertext = modes.cbc_encrypt(cipher, b"A" * 16, bytes(8))
    assert ciphertext[:8] != ciphertext[8:16]
    ecb = modes.ecb_encrypt(cipher, b"A" * 16)
    assert ecb[:8] == ecb[8:16]


def test_cbc_validation():
    cipher = DES(bytes(8))
    with pytest.raises(ValueError):
        modes.cbc_encrypt(cipher, b"data", b"shortiv")
    with pytest.raises(ValueError):
        modes.cbc_decrypt(cipher, b"123456789", bytes(8))  # not aligned


@given(key=st.binary(min_size=8, max_size=8), data=st.binary(max_size=120))
def test_ecb_roundtrip(key, data):
    cipher = DES(key)
    assert modes.ecb_decrypt(cipher, modes.ecb_encrypt(cipher, data)) == data


@given(key=st.binary(min_size=8, max_size=8),
       n_blocks=st.integers(min_value=0, max_value=6),
       iv=st.binary(min_size=8, max_size=8))
def test_cbc_nopad_roundtrip(key, n_blocks, iv):
    data = bytes(range(8)) * n_blocks
    cipher = DES(key)
    ciphertext = modes.cbc_encrypt_nopad(cipher, data, iv)
    assert len(ciphertext) == len(data)
    assert modes.cbc_decrypt_nopad(cipher, ciphertext, iv) == data


def test_cbc_nopad_requires_alignment():
    cipher = DES(bytes(8))
    with pytest.raises(ValueError):
        modes.cbc_encrypt_nopad(cipher, b"not aligned", bytes(8))
    with pytest.raises(ValueError):
        modes.cbc_decrypt_nopad(cipher, b"not aligned", bytes(8))
    with pytest.raises(ValueError):
        modes.cbc_encrypt_nopad(cipher, bytes(8), b"badiv")


def test_wrong_key_garbles_cbc():
    right = DES(bytes.fromhex("133457799BBCDFF1"))
    wrong = DES(bytes.fromhex("FEDCBA9876543210"))
    ciphertext = modes.cbc_encrypt(right, b"secret key material", bytes(8))
    try:
        recovered = modes.cbc_decrypt(wrong, ciphertext, bytes(8))
    except modes.PaddingError:
        return  # padding check caught it — fine
    assert recovered != b"secret key material"


def test_cbc_is_malleable_without_integrity():
    """CBC alone is malleable: flipping ciphertext block i garbles block
    i's plaintext but applies a controlled XOR to block i+1.  This is
    exactly why rekey messages carry digests/signatures (paper §4) and
    data frames carry HMACs — documented here as an executable fact."""
    cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    plaintext = b"AAAAAAAA" + b"BBBBBBBB"
    iv = bytes(8)
    ciphertext = bytearray(modes.cbc_encrypt_nopad(cipher, plaintext, iv))
    flip = 0x01
    ciphertext[0] ^= flip  # first byte of block 0
    tampered = modes.cbc_decrypt_nopad(cipher, bytes(ciphertext), iv)
    # Block 1's first byte XORs predictably; block 0 is garbage.
    assert tampered[8] == plaintext[8] ^ flip
    assert tampered[:8] != plaintext[:8]

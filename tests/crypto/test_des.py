"""DES block cipher: known-answer vectors, properties, error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES

# (key, plaintext, ciphertext) known-answer vectors.
KAT = [
    # The classic FIPS walk-through vector.
    ("133457799BBCDFF1", "0123456789ABCDEF", "85E813540F0AB405"),
    # Ronald Rivest's DES self-test chain endpoints and other published
    # single-block vectors.
    ("0E329232EA6D0D73", "8787878787878787", "0000000000000000"),
    ("0000000000000000", "0000000000000000", "8CA64DE9C1B123A7"),
    ("FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "7359B2163E4EDC58"),
    ("3000000000000000", "1000000000000001", "958E6E627A05557B"),
    ("1111111111111111", "1111111111111111", "F40379AB9E0EC533"),
    ("0123456789ABCDEF", "1111111111111111", "17668DFC7292532D"),
    ("1111111111111111", "0123456789ABCDEF", "8A5AE1F81AB8F2DD"),
    ("FEDCBA9876543210", "0123456789ABCDEF", "ED39D950FA74BCC4"),
]


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", KAT)
def test_known_answer_encrypt(key_hex, pt_hex, ct_hex):
    cipher = DES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex().upper() == ct_hex


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", KAT)
def test_known_answer_decrypt(key_hex, pt_hex, ct_hex):
    cipher = DES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)).hex().upper() == pt_hex


@given(key=st.binary(min_size=8, max_size=8),
       block=st.binary(min_size=8, max_size=8))
def test_roundtrip(key, block):
    cipher = DES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=8, max_size=8),
       block=st.binary(min_size=8, max_size=8))
@settings(max_examples=25)
def test_encryption_is_permutation_not_identity_prone(key, block):
    # A fixed key's encryption should essentially never fix a random
    # block (probability 2^-64 per trial); catching accidental identity
    # wiring (e.g. missing final swap).
    cipher = DES(key)
    encrypted = cipher.encrypt_block(block)
    assert encrypted != block or cipher.decrypt_block(block) == encrypted


def test_key_complementation_property():
    # DES complementation: E_{~k}(~p) == ~E_k(p).
    key = bytes.fromhex("0123456789ABCDEF")
    plaintext = bytes.fromhex("1122334455667788")
    normal = DES(key).encrypt_block(plaintext)
    complemented = DES(bytes(b ^ 0xFF for b in key)).encrypt_block(
        bytes(b ^ 0xFF for b in plaintext))
    assert complemented == bytes(b ^ 0xFF for b in normal)


def test_avalanche():
    # Flipping one plaintext bit should flip many ciphertext bits.
    key = bytes.fromhex("133457799BBCDFF1")
    cipher = DES(key)
    base = cipher.encrypt_block(bytes(8))
    flipped = cipher.encrypt_block(bytes([0x80] + [0] * 7))
    differing = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
    assert differing >= 16


def test_wrong_key_size_rejected():
    with pytest.raises(ValueError):
        DES(b"short")
    with pytest.raises(ValueError):
        DES(b"ninebytes")


def test_wrong_block_size_rejected():
    cipher = DES(bytes(8))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"tiny")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"way too long for DES")


def test_distinct_keys_distinct_ciphertexts():
    block = bytes.fromhex("0123456789ABCDEF")
    a = DES(bytes.fromhex("133457799BBCDFF1")).encrypt_block(block)
    b = DES(bytes.fromhex("233457799BBCDFF1")).encrypt_block(block)
    assert a != b


# -- weak keys --------------------------------------------------------------


def test_weak_keys_are_self_inverse():
    """The defining property: E_k(E_k(x)) == x for weak keys."""
    from repro.crypto.des import WEAK_KEYS, is_weak_key
    block = bytes.fromhex("0123456789ABCDEF")
    for key in WEAK_KEYS:
        assert is_weak_key(key)
        cipher = DES(key)
        assert cipher.encrypt_block(cipher.encrypt_block(block)) == block


def test_semi_weak_keys_pair_up():
    """E_{k1} inverts E_{k2} for each semi-weak pair."""
    from repro.crypto.des import SEMI_WEAK_KEYS, is_semi_weak_key
    block = b"pairwise"
    for first, second in zip(SEMI_WEAK_KEYS[::2], SEMI_WEAK_KEYS[1::2]):
        assert is_semi_weak_key(first) and is_semi_weak_key(second)
        assert DES(second).decrypt_block(
            DES(first).decrypt_block(
                DES(second).encrypt_block(
                    DES(first).encrypt_block(block)))) == block


def test_normal_keys_not_flagged():
    from repro.crypto.des import is_semi_weak_key, is_weak_key
    for key_hex in ("133457799BBCDFF1", "0123456789ABCDEF"):
        key = bytes.fromhex(key_hex)
        assert not is_weak_key(key)
        assert not is_semi_weak_key(key)
    import pytest as _pytest
    with _pytest.raises(ValueError):
        is_weak_key(b"short")


def test_parity_bits_ignored_in_weakness_check():
    from repro.crypto.des import is_weak_key
    # 0000...00 differs from 0101...01 only in parity bits.
    assert is_weak_key(bytes(8))


def test_suite_safe_key_rejects_weak_material():
    from repro.crypto.suite import PAPER_SUITE
    from repro.crypto.des import WEAK_KEYS

    class RiggedSource:
        def __init__(self):
            self.draws = [WEAK_KEYS[0], bytes.fromhex("133457799BBCDFF1")]
        def generate(self, n):
            return self.draws.pop(0)

    key = PAPER_SUITE.safe_key(RiggedSource())
    assert key == bytes.fromhex("133457799BBCDFF1")

"""RSA key generation and PKCS#1 v1.5 signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import rsa
from repro.crypto.drbg import HmacDrbg


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(512, seed=b"test-keypair")


def test_keypair_structure(keypair):
    assert keypair.n == keypair.p * keypair.q
    assert keypair.p != keypair.q
    phi = (keypair.p - 1) * (keypair.q - 1)
    assert (keypair.e * keypair.d) % phi == 1
    assert keypair.n.bit_length() == 512
    assert keypair.byte_size == 64
    assert keypair.public_key.n == keypair.n


def test_keygen_deterministic_with_seed():
    a = rsa.generate_keypair(512, seed=b"fixed")
    b = rsa.generate_keypair(512, seed=b"fixed")
    assert (a.n, a.d) == (b.n, b.d)
    c = rsa.generate_keypair(512, seed=b"other")
    assert c.n != a.n


def test_keygen_size_guard():
    with pytest.raises(ValueError):
        rsa.generate_keypair(128)


def test_crt_matches_plain_exponentiation(keypair):
    message = 0x1234567890ABCDEF
    assert keypair.raw_sign(message) == pow(message, keypair.d, keypair.n)


def test_sign_verify_roundtrip(keypair):
    digest = bytes(range(16))
    for algorithm in ("md5", "sha1", "sha256"):
        d = digest if algorithm == "md5" else bytes(
            {"sha1": 20, "sha256": 32}[algorithm])
        signature = rsa.sign_digest(keypair, d, algorithm)
        assert len(signature) == keypair.byte_size
        rsa.verify_digest(keypair.public_key, d, signature, algorithm)


def test_verify_rejects_tampered_digest(keypair):
    signature = rsa.sign_digest(keypair, bytes(16), "md5")
    with pytest.raises(rsa.SignatureError):
        rsa.verify_digest(keypair.public_key, b"\x01" + bytes(15),
                          signature, "md5")


def test_verify_rejects_tampered_signature(keypair):
    signature = bytearray(rsa.sign_digest(keypair, bytes(16), "md5"))
    signature[10] ^= 0x40
    with pytest.raises(rsa.SignatureError):
        rsa.verify_digest(keypair.public_key, bytes(16), bytes(signature),
                          "md5")


def test_verify_rejects_wrong_key(keypair):
    other = rsa.generate_keypair(512, seed=b"other-key")
    signature = rsa.sign_digest(keypair, bytes(16), "md5")
    with pytest.raises(rsa.SignatureError):
        rsa.verify_digest(other.public_key, bytes(16), signature, "md5")


def test_verify_rejects_wrong_length(keypair):
    signature = rsa.sign_digest(keypair, bytes(16), "md5")
    with pytest.raises(rsa.SignatureError):
        rsa.verify_digest(keypair.public_key, bytes(16), signature[:-1],
                          "md5")


def test_wrong_algorithm_mismatch(keypair):
    signature = rsa.sign_digest(keypair, bytes(20), "sha1")
    with pytest.raises(rsa.SignatureError):
        rsa.verify_digest(keypair.public_key, bytes(20), signature, "md5")


def test_unknown_algorithm(keypair):
    with pytest.raises(ValueError):
        rsa.sign_digest(keypair, bytes(16), "sha3")


def test_modulus_too_small_for_digestinfo():
    small = rsa.generate_keypair(256, seed=b"small")
    with pytest.raises(ValueError):
        rsa.sign_digest(small, bytes(32), "sha256")  # 256-bit n too short


@given(digest=st.binary(min_size=16, max_size=16))
@settings(max_examples=10, deadline=None)
def test_signature_binds_digest(keypair, digest):
    signature = rsa.sign_digest(keypair, digest, "md5")
    rsa.verify_digest(keypair.public_key, digest, signature, "md5")


def test_miller_rabin_classifies_known_numbers():
    source = HmacDrbg(b"mr")
    primes = [3, 5, 7, 97, 65537, 2**61 - 1]
    composites = [1, 4, 9, 91, 561, 41041, 2**61 + 1]
    for p in primes:
        assert rsa._is_probable_prime(p, source), p
    for c in composites:
        assert not rsa._is_probable_prime(c, source), c


def test_generated_prime_has_exact_bit_length():
    source = HmacDrbg(b"prime")
    for bits in (32, 64, 128):
        prime = rsa._generate_prime(bits, source)
        assert prime.bit_length() == bits
        assert rsa._is_probable_prime(prime, source)


def test_digest_info_prefixes_are_wellformed():
    # Each prefix is DER: SEQUENCE { SEQUENCE { OID, NULL }, OCTET STRING }
    for name, prefix in rsa.DIGEST_INFO_PREFIX.items():
        assert prefix[0] == 0x30  # SEQUENCE
        assert prefix[-2] == 0x04  # OCTET STRING tag
        expected_len = {"md5": 16, "sha1": 20, "sha256": 32}[name]
        assert prefix[-1] == expected_len

"""Fast path vs frozen reference: the optimized round functions, chaining
modes, batch engine and CRT signing must be bit-identical to the
pre-optimization formulations preserved in :mod:`repro.crypto.reference`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import batchenc, modes, reference, rsa
from repro.crypto.aes import AES
from repro.crypto.des import DES
from repro.crypto.des3 import TripleDES
from repro.crypto.reference import ReferenceAES, ReferenceDES

BLOCK8 = st.binary(min_size=8, max_size=8)
BLOCK16 = st.binary(min_size=16, max_size=16)


class NoIntPath:
    """Wrapper hiding the int-block API, forcing the generic mode paths."""

    def __init__(self, cipher):
        self._cipher = cipher
        self.block_size = cipher.block_size

    def encrypt_block(self, block):
        return self._cipher.encrypt_block(block)

    def decrypt_block(self, block):
        return self._cipher.decrypt_block(block)


# -- block fast paths vs reference rounds -----------------------------------


@settings(max_examples=40)
@given(key=BLOCK16 | st.binary(min_size=24, max_size=24)
       | st.binary(min_size=32, max_size=32), block=BLOCK16)
def test_aes_rounds_match_reference(key, block):
    fast, ref = AES(key), ReferenceAES(key)
    encrypted = fast.encrypt_block(block)
    assert encrypted == ref.encrypt_block(block)
    assert fast.decrypt_block(encrypted) == ref.decrypt_block(encrypted)
    assert fast.decrypt_block(encrypted) == block


@settings(max_examples=40)
@given(key=BLOCK8, block=BLOCK8)
def test_des_rounds_match_reference(key, block):
    fast, ref = DES(key), ReferenceDES(key)
    encrypted = fast.encrypt_block(block)
    assert encrypted == ref.encrypt_block(block)
    assert fast.decrypt_block(encrypted) == ref.decrypt_block(encrypted)
    assert fast.decrypt_block(encrypted) == block


@settings(max_examples=25)
@given(key=st.binary(min_size=24, max_size=24), block=BLOCK8)
def test_3des_matches_reference_composition(key, block):
    """EDE over the fast DES equals EDE composed from reference DES."""
    k1, k2, k3 = key[:8], key[8:16], key[16:24]
    expected = ReferenceDES(k3).encrypt_block(
        ReferenceDES(k2).decrypt_block(ReferenceDES(k1).encrypt_block(block)))
    assert TripleDES(key).encrypt_block(block) == expected


@settings(max_examples=25)
@given(key=BLOCK16, value=st.integers(min_value=0, max_value=2 ** 128 - 1))
def test_aes_int_api_matches_byte_api(key, value):
    cipher = AES(key)
    block = value.to_bytes(16, "big")
    assert (cipher.encrypt_block_int(value).to_bytes(16, "big")
            == cipher.encrypt_block(block))
    assert (cipher.decrypt_block_int(value).to_bytes(16, "big")
            == cipher.decrypt_block(block))


@settings(max_examples=25)
@given(key=BLOCK8, value=st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_des_int_api_matches_byte_api(key, value):
    cipher = DES(key)
    block = value.to_bytes(8, "big")
    assert (cipher.encrypt_block_int(value).to_bytes(8, "big")
            == cipher.encrypt_block(block))
    assert (cipher.decrypt_block_int(value).to_bytes(8, "big")
            == cipher.decrypt_block(block))


# -- chaining-mode fast paths vs byte-wise chaining -------------------------


@settings(max_examples=25)
@given(key=BLOCK8, plaintext=st.binary(max_size=64), iv=BLOCK8)
def test_cbc_int_path_matches_reference_chaining(key, plaintext, iv):
    cipher = DES(key)
    ciphertext = modes.cbc_encrypt(cipher, plaintext, iv)
    assert ciphertext == reference.reference_cbc_encrypt(
        ReferenceDES(key), plaintext, iv)
    assert modes.cbc_decrypt(cipher, ciphertext, iv) == plaintext
    assert reference.reference_cbc_decrypt(
        ReferenceDES(key), ciphertext, iv) == plaintext


@settings(max_examples=25)
@given(key=BLOCK16, plaintext=st.binary(max_size=64), iv=BLOCK16)
def test_cbc_int_path_matches_generic_path(key, plaintext, iv):
    """The int chaining loop and the byte-wise generic loop agree."""
    fast = AES(key)
    generic = NoIntPath(fast)
    assert (modes.cbc_encrypt(fast, plaintext, iv)
            == modes.cbc_encrypt(generic, plaintext, iv))
    ciphertext = modes.cbc_encrypt(fast, plaintext, iv)
    assert (modes.cbc_decrypt(fast, ciphertext, iv)
            == modes.cbc_decrypt(generic, ciphertext, iv))


@settings(max_examples=25)
@given(key=BLOCK8, data=st.binary(max_size=64),
       nonce=st.binary(min_size=4, max_size=4))
def test_ctr_int_path_matches_generic_path(key, data, nonce):
    fast = DES(key)
    generic = NoIntPath(fast)
    assert (modes.ctr_transform(fast, data, nonce)
            == modes.ctr_transform(generic, data, nonce))


# -- batch engine vs scalar CBC ---------------------------------------------


@pytest.mark.skipif(not batchenc.HAVE_NUMPY, reason="numpy unavailable")
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 32))
def test_batch_engine_matches_scalar_cbc(seed):
    import random
    rng = random.Random(seed)

    def rb(n):
        return bytes(rng.randrange(256) for _ in range(n))

    jobs = []
    for _ in range(12):
        jobs.append((AES(rb(16)), rb(32), rb(16)))
        jobs.append((AES(rb(32)), rb(32), rb(16)))
        jobs.append((DES(rb(8)), rb(16), rb(8)))
        jobs.append((TripleDES(rb(24)), rb(16), rb(8)))
        jobs.append((TripleDES(rb(16)), rb(24), rb(8)))
    rng.shuffle(jobs)
    expected = [modes.cbc_encrypt_nopad(cipher, padded, iv)
                for cipher, padded, iv in jobs]
    assert batchenc.cbc_encrypt_nopad_many(jobs) == expected


@pytest.mark.skipif(not batchenc.HAVE_NUMPY, reason="numpy unavailable")
def test_batch_engine_small_groups_and_empty_jobs():
    """Below-threshold groups and zero-block jobs take the scalar path."""
    jobs = [(DES(b"k" * 8), b"p" * 16, b"i" * 8),
            (AES(b"k" * 16), b"", b"i" * 16)]
    expected = [modes.cbc_encrypt_nopad(cipher, padded, iv)
                for cipher, padded, iv in jobs]
    assert batchenc.cbc_encrypt_nopad_many(jobs) == expected
    assert batchenc.cbc_encrypt_nopad_many([]) == []


def test_batch_engine_rejects_misaligned_plaintext():
    with pytest.raises(ValueError):
        batchenc.cbc_encrypt_nopad_many([(DES(b"k" * 8), b"odd", b"i" * 8)])


# -- RSA: cached CRT vs full exponentiation ---------------------------------


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(512, seed=b"fastpath-rsa")


@settings(max_examples=20, deadline=None)
@given(digest=st.binary(min_size=16, max_size=16))
def test_crt_signature_matches_reference(digest):
    key = rsa.generate_keypair(512, seed=b"fastpath-rsa")
    fast = rsa.sign_digest(key, digest, "md5")
    assert fast == reference.reference_sign_digest(key, digest, "md5")
    rsa.verify_digest(key.public_key, digest, fast, "md5")


def test_crt_components_are_cached(keypair):
    first = keypair._crt
    assert keypair._crt is first            # cached_property: derived once
    dp, dq, q_inv = first
    assert dp == keypair.d % (keypair.p - 1)
    assert dq == keypair.d % (keypair.q - 1)
    assert (q_inv * keypair.q) % keypair.p == 1


def test_raw_sign_round_trips_through_raw_verify(keypair):
    value = 0x1234567890ABCDEF
    assert keypair.public_key.raw_verify(keypair.raw_sign(value)) == value
    assert keypair.raw_sign(value) == reference.reference_raw_sign(
        keypair, value)

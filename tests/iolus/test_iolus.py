"""Iolus baseline (paper §6): structure, local rekeying, data relay."""

import pytest

from repro.iolus.system import IolusError, IolusSystem


def populated(fanout=3, levels=2, clients=12, seed=b"iolus-tests"):
    system = IolusSystem(agent_fanout=fanout, agent_levels=levels, seed=seed)
    for i in range(clients):
        system.join(f"c{i}")
    return system


def test_hierarchy_shape():
    system = IolusSystem(agent_fanout=3, agent_levels=3, seed=b"shape")
    # 1 GSC + 3 + 9 agents.
    assert system.trusted_entities() == 13
    assert len(system.leaf_agents) == 9
    system2 = IolusSystem(agent_fanout=4, agent_levels=1, seed=b"flat")
    assert system2.trusted_entities() == 1
    assert system2.leaf_agents == [system2.gsc]


def test_parameter_validation():
    with pytest.raises(IolusError):
        IolusSystem(agent_fanout=0)
    with pytest.raises(IolusError):
        IolusSystem(agent_levels=0)


def test_join_is_local_and_cheap():
    system = populated()
    keys_before = {agent.agent_id: agent.subgroup_key
                   for agent in system.agents()}
    record = system.join("newcomer")
    assert record.encryptions <= 2  # the Iolus advantage
    changed = [agent_id for agent_id, key in keys_before.items()
               if system_agent(system, agent_id).subgroup_key != key]
    assert len(changed) == 1  # only the home subgroup rekeyed


def system_agent(system, agent_id):
    return next(agent for agent in system.agents()
                if agent.agent_id == agent_id)


def test_leave_cost_is_subgroup_size():
    system = populated(clients=12)
    home = system._client_home["c0"]
    expected = home.subgroup_size() - 1
    record = system.leave("c0")
    assert record.encryptions == expected


def test_join_balances_leaf_agents():
    system = populated(fanout=3, levels=2, clients=12)
    loads = [len(agent.clients) for agent in system.leaf_agents]
    assert max(loads) - min(loads) <= 1


def test_duplicate_and_unknown_clients():
    system = populated()
    with pytest.raises(IolusError):
        system.join("c0")
    with pytest.raises(IolusError):
        system.leave("ghost")
    with pytest.raises(IolusError):
        system.multicast("ghost", b"data")


def test_data_relay_reaches_everyone_correctly():
    system = populated(fanout=3, levels=3, clients=30)
    record, received = system.multicast("c7", b"the secret announcement")
    assert set(received) == {f"c{i}" for i in range(30)}
    assert all(v == b"the secret announcement" for v in received.values())
    # Every agent decrypts exactly once.
    assert record.decryptions == system.trusted_entities()


def test_data_relay_cost_scales_with_agents_not_clients():
    few_agents = populated(fanout=2, levels=2, clients=24,
                           seed=b"few")
    many_agents = populated(fanout=4, levels=3, clients=24,
                            seed=b"many")
    few_record, _ = few_agents.multicast("c0", b"x")
    many_record, _ = many_agents.multicast("c0", b"x")
    assert many_record.crypto_ops > few_record.crypto_ops
    # LKH equivalent: one encryption, always.
    assert few_record.encryptions > 1


def test_data_relay_after_rekey():
    system = populated(clients=9)
    system.leave("c4")
    system.join("c99")
    record, received = system.multicast("c1", b"post-churn")
    expected = {f"c{i}" for i in range(9) if i != 4} | {"c99"}
    assert set(received) == expected
    assert all(v == b"post-churn" for v in received.values())


def test_departed_client_excluded_from_delivery():
    system = populated(clients=9)
    system.leave("c2")
    _record, received = system.multicast("c0", b"secret")
    assert "c2" not in received


def test_history_accumulates():
    system = populated(clients=4)
    system.history.clear()
    system.leave("c0")
    system.multicast("c1", b"d")
    assert [r.op for r in system.history] == ["leave", "data"]

"""Trace export."""

import csv
import io
import json

from repro.simulation.runner import ExperimentConfig, run_experiment
from repro.simulation.trace import (RECORD_FIELDS, records_to_csv,
                                    result_to_json_lines, sweep_to_csv,
                                    write_trace)
from repro.crypto.suite import PAPER_SUITE_NO_SIG


def small_result(**overrides):
    defaults = dict(initial_size=16, n_requests=10, degree=3,
                    strategy="group", suite=PAPER_SUITE_NO_SIG,
                    signing="none", seed=b"trace", client_mode="accounting")
    defaults.update(overrides)
    return run_experiment(ExperimentConfig(**defaults))


def test_records_csv_shape():
    result = small_result()
    text = records_to_csv(result.records)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == list(RECORD_FIELDS)
    assert len(rows) == 1 + len(result.records)
    for row in rows[1:]:
        assert row[0] in ("join", "leave")
        assert float(row[2]) >= 0          # ms
        assert int(row[6]) >= 0            # encryptions


def test_json_lines_roundtrip():
    result = small_result()
    lines = result_to_json_lines(result).strip().splitlines()
    objects = [json.loads(line) for line in lines]
    requests = [o for o in objects if o["type"] == "request"]
    summaries = [o for o in objects if o["type"] == "summary"]
    assert len(requests) == len(result.records)
    assert len(summaries) == 1
    summary = summaries[0]
    assert summary["strategy"] == "group"
    assert summary["final_size"] == result.final_size
    assert summary["mean_ms"] > 0


def test_sweep_csv():
    results = [small_result(degree=d) for d in (2, 3, 4)]
    rows = list(csv.reader(io.StringIO(sweep_to_csv(results))))
    assert len(rows) == 4
    assert [row[1] for row in rows[1:]] == ["2", "3", "4"]


def test_write_trace(tmp_path):
    path = tmp_path / "trace.csv"
    write_trace(str(path), "a,b\n1,2\n")
    assert path.read_text() == "a,b\n1,2\n"

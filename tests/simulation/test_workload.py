"""Workload generation (paper §5 experimental setup)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.workload import (JOIN, LEAVE, Request,
                                       generate_workload, initial_members,
                                       paper_sequences)


def test_initial_members_format():
    members = initial_members(3)
    assert members == ["m0000", "m0001", "m0002"]
    assert len(initial_members(20000)) == 20000
    assert initial_members(0) == []


def test_workload_is_deterministic():
    initial = initial_members(16)
    a = generate_workload(initial, 100, seed=b"w")
    b = generate_workload(initial, 100, seed=b"w")
    assert a == b
    c = generate_workload(initial, 100, seed=b"different")
    assert a != c


def test_workload_validity():
    """Leaves always name current members; joins always fresh users."""
    initial = initial_members(10)
    requests = generate_workload(initial, 300, seed=b"validity")
    members = set(initial)
    for request in requests:
        if request.op == JOIN:
            assert request.user_id not in members
            members.add(request.user_id)
        else:
            assert request.user_id in members
            members.discard(request.user_id)


def test_ratio_roughly_respected():
    requests = generate_workload(initial_members(50), 1000,
                                 join_fraction=0.5, seed=b"ratio")
    joins = sum(1 for r in requests if r.op == JOIN)
    assert 400 <= joins <= 600


def test_extreme_ratios():
    all_joins = generate_workload(initial_members(5), 50,
                                  join_fraction=1.0, seed=b"j")
    assert all(r.op == JOIN for r in all_joins)
    all_leaves = generate_workload(initial_members(100), 50,
                                   join_fraction=0.0, seed=b"l")
    assert all(r.op == LEAVE for r in all_leaves)


def test_leave_from_empty_group_becomes_join():
    requests = generate_workload([], 10, join_fraction=0.0, seed=b"empty")
    assert requests[0].op == JOIN  # nothing to leave


def test_ratio_validation():
    with pytest.raises(ValueError):
        generate_workload([], 10, join_fraction=1.5)


def test_paper_sequences_are_three_distinct_but_reproducible():
    initial = initial_members(32)
    first = paper_sequences(initial, n_requests=50)
    second = paper_sequences(initial, n_requests=50)
    assert len(first) == 3
    assert first == second
    assert first[0] != first[1] != first[2]


@given(n_initial=st.integers(min_value=0, max_value=50),
       n_requests=st.integers(min_value=0, max_value=120),
       fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=25, deadline=None)
def test_workload_property(n_initial, n_requests, fraction):
    initial = initial_members(n_initial)
    requests = generate_workload(initial, n_requests, fraction, seed=b"p")
    assert len(requests) == n_requests
    members = set(initial)
    for request in requests:
        if request.op == JOIN:
            assert request.user_id not in members
            members.add(request.user_id)
        else:
            members.remove(request.user_id)  # KeyError would fail the test

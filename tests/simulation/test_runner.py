"""Experiment runner: full vs accounting fidelity, determinism."""

import pytest

from repro.crypto.suite import PAPER_SUITE, PAPER_SUITE_NO_SIG
from repro.simulation.clients import ClientSimulator, SimulatorError
from repro.simulation.runner import (ExperimentConfig, ExperimentResult,
                                     merged_records, run_experiment,
                                     run_sequences)
from repro.simulation.workload import Request


def config(**overrides):
    defaults = dict(initial_size=32, n_requests=30, degree=3,
                    strategy="group", suite=PAPER_SUITE_NO_SIG,
                    signing="none", seed=b"runner-tests",
                    client_mode="accounting")
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_basic_run_shape():
    result = run_experiment(config())
    assert len(result.records) == 30
    assert result.final_size == result.records[-1].n_users_after
    assert result.mean_processing_ms > 0
    assert result.server_metrics.join.processing_ms.count + \
        result.server_metrics.leave.processing_ms.count == 30


def test_invalid_client_mode():
    with pytest.raises(ValueError):
        run_experiment(config(client_mode="psychic"))


@pytest.mark.parametrize("strategy", ["user", "key", "group", "hybrid"])
def test_full_mode_stays_synchronized(strategy):
    result = run_experiment(config(strategy=strategy, client_mode="full",
                                   n_requests=40))
    assert result.final_size > 0  # assert_synchronized ran without raising


def test_full_and_accounting_agree_on_server_metrics():
    """Client simulation must not change what the server does."""
    full = run_experiment(config(client_mode="full"))
    acct = run_experiment(config(client_mode="accounting"))
    for a, b in zip(full.records, acct.records):
        assert a.op == b.op and a.user_id == b.user_id
        assert a.encryptions == b.encryptions
        assert a.n_rekey_messages == b.n_rekey_messages
        assert a.rekey_bytes == b.rekey_bytes
        assert a.key_changes_total == b.key_changes_total


def test_accounting_key_changes_match_real_decryptions():
    """The aggregate key-change accounting (used at scale) must equal
    what fully simulated clients actually experience."""
    result = run_experiment(config(client_mode="full", n_requests=40,
                                   strategy="key"))
    # Sum of per-request key_changes_total == total keys changed by
    # non-requesting clients.  Joiner bundles install their whole path,
    # so subtract those from the client-side total.
    total_accounted = sum(r.key_changes_total for r in result.records)
    joiner_keys = sum(r.encryptions for r in result.records) * 0  # explicit
    # Recompute via the client metrics channel instead:
    measured = result.client_metrics.key_changes_per_client()
    analytic = 3 / (3 - 1)
    assert measured == pytest.approx(analytic, rel=0.45)
    assert total_accounted > 0


def test_deterministic_for_fixed_seed():
    a = run_experiment(config())
    b = run_experiment(config())
    assert [(r.op, r.user_id, r.encryptions, r.rekey_bytes)
            for r in a.records] == \
           [(r.op, r.user_id, r.encryptions, r.rekey_bytes)
            for r in b.records]


def test_explicit_request_sequence():
    requests = [Request("join", "x"), Request("leave", "x"),
                Request("join", "y")]
    result = run_experiment(config(n_requests=999), requests=requests)
    assert [r.op for r in result.records] == ["join", "leave", "join"]
    assert result.final_size == 33


def test_run_sequences():
    results = run_sequences(config(n_requests=10), n_sequences=3)
    assert len(results) == 3
    assert len(merged_records(results)) == 30
    # Different sequences differ (seeds differ).
    ops = [tuple(r.op for r in result.records) for result in results]
    assert len(set(ops)) > 1


def test_star_graph_runs():
    result = run_experiment(config(graph="star", client_mode="full",
                                   initial_size=16, n_requests=20))
    assert result.final_height == 2


def test_signed_full_mode_verifies():
    result = run_experiment(config(
        suite=PAPER_SUITE, signing="merkle", client_mode="full",
        n_requests=12, initial_size=16))
    assert len(result.records) == 12


# -- simulator internals -------------------------------------------------------


def test_simulator_rejects_duplicates_and_unknowns():
    sim = ClientSimulator(PAPER_SUITE_NO_SIG)
    sim.add_member("a", bytes(8))
    with pytest.raises(SimulatorError):
        sim.add_member("a", bytes(8))
    with pytest.raises(SimulatorError):
        sim.remove_member("ghost")


def test_simulator_total_stats_include_departed():
    from repro.core.server import GroupKeyServer, ServerConfig
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"sim-stats"))
    sim = ClientSimulator(PAPER_SUITE_NO_SIG, verify=False)
    key = server.new_individual_key()
    sim.add_member("a", key)
    outcome = server.join("a", key)
    sim.deliver_all(outcome.rekey_messages)
    before = sim.total_stats().rekey_messages
    sim.remove_member("a")
    assert sim.total_stats().rekey_messages == before

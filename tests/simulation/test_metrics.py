"""Metrics aggregation."""

import pytest

from repro.core.server import RequestRecord
from repro.simulation.metrics import (ClientMetrics, OpMetrics,
                                      ServerMetrics, Summary)


def record(op="join", seconds=0.001, msgs=2, total_bytes=400, enc=6,
           sigs=1, key_changes=10, n_after=9):
    return RequestRecord(op=op, user_id="u", seconds=seconds,
                         n_rekey_messages=msgs, rekey_bytes=total_bytes,
                         max_message_bytes=total_bytes // max(msgs, 1),
                         encryptions=enc, signatures=sigs,
                         key_changes_total=key_changes,
                         n_users_after=n_after)


def test_summary_of():
    s = Summary.of([1.0, 2.0, 3.0])
    assert (s.count, s.mean, s.minimum, s.maximum) == (3, 2.0, 1.0, 3.0)
    empty = Summary.of([])
    assert empty.count == 0 and empty.mean == 0.0


def test_op_metrics_per_message_sizes_are_message_weighted():
    records = [record(msgs=1, total_bytes=100),
               record(msgs=3, total_bytes=600)]
    metrics = OpMetrics.from_records(records)
    # 4 messages total: one of 100, three of 200 -> mean 175.
    assert metrics.message_bytes.count == 4
    assert metrics.message_bytes.mean == pytest.approx(175.0)
    assert metrics.total_bytes.mean == pytest.approx(350.0)


def test_op_metrics_skips_messageless_requests():
    metrics = OpMetrics.from_records([record(msgs=0, total_bytes=0)])
    assert metrics.message_bytes.count == 0


def test_server_metrics_split_by_op():
    records = [record("join", seconds=0.002), record("leave", seconds=0.004)]
    metrics = ServerMetrics.from_records(records)
    assert metrics.join.processing_ms.mean == pytest.approx(2.0)
    assert metrics.leave.processing_ms.mean == pytest.approx(4.0)
    assert metrics.overall_processing_ms == pytest.approx(3.0)


def test_client_metrics_received_size_is_receiver_weighted():
    metrics = ClientMetrics()
    metrics.record_message("join", size=100, n_receivers=9)
    metrics.record_message("join", size=1000, n_receivers=1)
    s = metrics.received_size("join")
    # 10 copies: 9 x 100 + 1 x 1000 -> mean 190 (clients mostly saw 100).
    assert s.mean == pytest.approx(190.0)
    assert s.minimum == 100 and s.maximum == 1000
    assert metrics.received_size("leave").count == 0


def test_client_metrics_key_changes_per_client():
    metrics = ClientMetrics()
    metrics.record_request(record("join", key_changes=12, n_after=10))
    # join: population excludes the joiner -> 9 non-requesting users.
    metrics.record_request(record("leave", key_changes=8, n_after=8))
    assert metrics.key_changes_per_client() == pytest.approx(
        ((12 / 9) + (8 / 8)) / 2)


def test_client_metrics_messages_per_client_per_request():
    metrics = ClientMetrics()
    metrics.record_message("join", size=100, n_receivers=10)
    metrics.record_request(record("join", n_after=11))
    per_request = metrics.messages_per_client_per_request(1)
    assert per_request == pytest.approx(1.0)


def test_empty_client_metrics():
    metrics = ClientMetrics()
    assert metrics.key_changes_per_client() == 0.0
    assert metrics.messages_per_client_per_request(10) == 0.0
    assert metrics.received_size().count == 0

"""Feature-flag ablation and the million-scale harness plumbing."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, ablations, million_scale
from repro.experiments.common import Scale

TINY = Scale(name="tiny", initial_size=64, n_requests=30,
             group_sizes=(16, 64), degrees=(2, 4), n_sequences=1)


class TestFeatureFlagsAblation:
    def test_registered(self):
        names = [name for name, _ in ALL_EXPERIMENTS]
        assert "Ablation: feature flags" in names

    def test_flags_cover_backend_and_journal(self):
        assert set(ablations.FEATURE_FLAGS) >= {"flat-backend",
                                                "tree-journal"}
        flat = ablations.FEATURE_FLAGS["flat-backend"]
        assert flat["server_config"] == {"backend": "flat"}
        assert ablations.FEATURE_FLAGS["tree-journal"]["journal"] is True

    def test_every_flag_state_identical(self):
        table = ablations.feature_flags(TINY)
        assert {row[0] for row in table.rows} == set(
            ablations.FEATURE_FLAGS)
        for row in table.rows:
            flag, n_requests, identical, replay = row[:4]
            assert identical is True, flag
            assert n_requests > 0
            if flag == "tree-journal":
                assert replay is True


class TestMillionScaleHarness:
    def test_slots_note_measures_both_shapes(self):
        note = million_scale.slots_note()
        # __slots__ must actually shrink the node: no instance __dict__.
        assert note["slots_bytes"] < note["dict_bytes"]

    def test_sweep_size_smoke(self):
        row = million_scale.sweep_size(400, churn_ops=50)
        assert row["n"] == 400
        assert row["build_members_per_s"] > 0
        assert row["rekeys_per_s"] > 0
        assert 0 < row["storage_bytes_per_member"] < 500

    def test_journal_restart_identical(self):
        result = million_scale.journal_restart(48, ops=20)
        assert result["identical"] is True
        assert result["replay_ms"] > 0 and result["rebuild_ms"] > 0

    def make_report(self, rekeys, rss, identical, quick=True):
        top = "flat_rekeys_n100k" if quick else "flat_rekeys_n1m"
        return {"metrics": {
            top: {"unit": "rekeys/s", "value": rekeys},
            "peak_rss": {"unit": "MB", "value": rss},
            "journal_replay_identical": {"unit": "bool",
                                         "value": identical},
        }}

    def test_check_passes_good_report(self):
        report = self.make_report(rekeys=30_000.0, rss=200.0, identical=1.0)
        assert million_scale.check(report, quick=True) == []

    def test_check_flags_every_violation(self):
        report = self.make_report(rekeys=10.0, rss=1e6, identical=0.0)
        failures = million_scale.check(report, quick=True)
        assert len(failures) == 3
        joined = " ".join(failures)
        assert "RSS" in joined and "rekeys/s" in joined \
            and "byte-identical" in joined

    def test_main_quick_check_writes_report(self, tmp_path, monkeypatch):
        # Shrink the sweep so --quick --check runs in test time; the
        # gate logic still reads the n100k metric name.
        monkeypatch.setattr(million_scale, "QUICK_SIZES", (300,))
        out = tmp_path / "bench.json"

        def tiny_run(quick):
            report = {"schema": "repro-bench/1", "label": "PR6",
                      "python": "x", "platform": "y", "quick": quick,
                      "metrics": {}}
            row = million_scale.sweep_size(300, churn_ops=30)
            report["metrics"]["flat_rekeys_n100k"] = {
                "unit": "rekeys/s", "value": row["rekeys_per_s"]}
            report["metrics"]["peak_rss"] = {
                "unit": "MB", "value": million_scale._peak_rss_mb()}
            report["metrics"]["journal_replay_identical"] = {
                "unit": "bool", "value": 1.0}
            return report

        monkeypatch.setattr(million_scale, "run", tiny_run)
        # RSS cap: the test process has the whole suite resident; gate
        # logic is covered above, here we only exercise the CLI path.
        monkeypatch.setitem(million_scale.CHECK_MAX_RSS_MB, True, 1e9)
        exit_code = million_scale.main(
            ["--quick", "--check", "--out", str(out)])
        assert exit_code == 0
        assert out.exists()

"""Every table/figure regenerates, and the paper's *shapes* hold.

Absolute times cannot match 1998 hardware; these tests pin down the
qualitative claims instead: orderings, optima, growth laws, ratios.
A smaller-than-QUICK scale keeps the suite fast.
"""

import math

import pytest

from repro.experiments import (ablations, fig10, fig11, fig12, table1,
                               table2, table3, table4, table5, table6)
from repro.experiments.common import Scale

TINY = Scale(name="tiny", initial_size=128, n_requests=40,
             group_sizes=(32, 256, 1024), degrees=(2, 4, 16),
             n_sequences=1)


@pytest.fixture(scope="module")
def t4():
    return table4.run(TINY)


@pytest.fixture(scope="module")
def t5():
    return table5.run(TINY)


@pytest.fixture(scope="module")
def t6():
    return table6.run(TINY)


@pytest.fixture(scope="module")
def f10():
    return fig10.run(TINY)


@pytest.fixture(scope="module")
def f11():
    return fig11.run(TINY)


class TestTable1:
    def test_counts_match_analytics(self):
        table = table1.run(TINY)
        star, tree, complete = table.rows
        assert star[2] == 82
        assert tree[2] == 121            # 81 + 27 + 9 + 3 + 1
        assert tree[4] == 5              # h keys per user
        assert complete[2] == 255
        assert complete[4] == 128
        assert table.format()             # renders without error


class TestTable2:
    def test_measured_near_analytic(self):
        table = table2.run(TINY)
        rows = {row[0]: row for row in table.rows}
        # Star leave: measured ~ n - 1.
        analytic = float(rows["server leave"][1].split("= ")[1])
        assert rows["server leave"][2] == pytest.approx(analytic, rel=0.15)
        # Tree join: 2(h-1) within the heuristic tree's wobble.
        tree_join_analytic = float(rows["server join"][3].split("= ")[1])
        assert rows["server join"][4] == pytest.approx(tree_join_analytic,
                                                       rel=0.35)
        # Non-requesting user cost ~ d/(d-1) for the tree, ~1 for star.
        assert rows["non-req. user (avg)"][2] == pytest.approx(1.0, rel=0.1)
        assert rows["non-req. user (avg)"][4] == pytest.approx(4 / 3,
                                                               rel=0.35)


class TestTable3:
    def test_tree_beats_star_and_degree4_optimal(self):
        table = table3.run(TINY)
        server_row = table.rows[0]
        star_measured, tree_measured = server_row[2], server_row[4]
        assert tree_measured < star_measured / 3
        assert "d = 4" in table.notes


class TestTable4:
    def test_merkle_speedup_paper_config(self, t4):
        """RSA-512 (the paper's config): direction holds, though pure
        Python compresses the ratio (DES is slow here relative to RSA-512,
        the opposite of 1998 C — see table4.run's docstring)."""
        ratios = table4.speedup(t4)
        assert ratios["user"] > 1.4
        assert ratios["key"] > 1.4
        # Group-oriented: one message either way -> no real change.
        assert 0.5 < ratios["group"] < 2.0

    def test_merkle_speedup_paper_cost_ratio(self):
        """With the paper's signature/encryption cost *ratio* restored
        (RSA-2048 here is ~100x a rekey-item encryption, like RSA-512 vs
        C DES in 1998), the ~10x speedup reappears."""
        tiny = Scale(name="t4", initial_size=128, n_requests=16,
                     group_sizes=(), degrees=(), n_sequences=1)
        table = table4.run(tiny, signature_bits=2048)
        ratios = table4.speedup(table)
        assert ratios["user"] > 4.0
        assert ratios["key"] > 4.0
        assert 0.5 < ratios["group"] < 2.0

    def test_merkle_adds_modest_size(self, t4):
        for row in t4.rows:
            strategy = row[0]
            per_message_join, merkle_join = row[1], row[6]
            per_message_leave, merkle_leave = row[2], row[7]
            if strategy == "group":
                # Leave: a single rekey message -> Merkle adds ~6 bytes of
                # framing only.  (Join has two messages — multicast plus
                # the joiner unicast — so one 16-byte sibling digest
                # appears.)
                assert merkle_leave == pytest.approx(per_message_leave,
                                                     abs=10)
                assert merkle_join < per_message_join + 40
            else:
                assert merkle_join > per_message_join          # certificate
                assert merkle_join < per_message_join + 150    # but small


class TestTable5:
    def test_message_counts(self, t5):
        for row in t5.rows:
            degree, strategy = row[0], row[1]
            join_msgs_ave, leave_msgs_ave = row[8], row[11]
            if strategy == "group":
                assert join_msgs_ave == pytest.approx(2.0, abs=0.1)
                assert leave_msgs_ave == pytest.approx(1.0, abs=0.01)
            else:
                # h messages per join, ~(d-1)(h-1) per leave.
                assert join_msgs_ave > 2
                assert leave_msgs_ave > join_msgs_ave

    def test_group_leave_size_grows_with_degree(self, t5):
        leave_sizes = {row[0]: row[5] for row in t5.rows
                       if row[1] == "group"}
        degrees = sorted(leave_sizes)
        assert leave_sizes[degrees[-1]] > leave_sizes[degrees[0]]

    def test_group_total_bytes_least(self, t5):
        # The paper: "the total number of bytes per join/leave transmitted
        # by the server is much higher in key- and user-oriented".
        by_strategy = {}
        for row in t5.rows:
            degree, strategy = row[0], row[1]
            leave_total = row[5] * row[11]  # size ave x msgs ave
            by_strategy.setdefault(strategy, []).append(leave_total)
        for i in range(len(by_strategy["group"])):
            assert by_strategy["group"][i] < by_strategy["key"][i]
            assert by_strategy["group"][i] < by_strategy["user"][i]


class TestTable6:
    def test_one_message_per_client_per_request(self, t6):
        for row in t6.rows:
            assert row[4] == pytest.approx(1.0, abs=0.15)

    def test_client_side_ordering_reverses_server_side(self, t6):
        """user < key < group received sizes (paper's Table 6)."""
        for degree in {row[0] for row in t6.rows}:
            sizes = {row[1]: (row[2], row[3]) for row in t6.rows
                     if row[0] == degree}
            assert sizes["user"][0] < sizes["key"][0] < sizes["group"][0]
            assert sizes["user"][1] < sizes["key"][1] < sizes["group"][1]

    def test_group_leave_size_grows_with_degree(self, t6):
        group_rows = {row[0]: row[3] for row in t6.rows
                      if row[1] == "group"}
        degrees = sorted(group_rows)
        assert group_rows[degrees[-1]] > group_rows[degrees[0]] * 1.5


class TestFigure10:
    def test_sublinear_growth(self, f10):
        """Processing time grows like log(n), nowhere near linearly."""
        for (protection, strategy), points in fig10.series(f10).items():
            points = sorted(points)
            (n0, t0), (n1, t1) = points[0], points[-1]
            size_ratio = n1 / n0        # 32x
            time_ratio = t1 / t0
            # Log growth: time ratio ~ log(n1)/log(n0) ~ 2; certainly
            # far below the size ratio.
            assert time_ratio < size_ratio / 4, (protection, strategy)

    def test_signing_costs_more(self, f10):
        series = fig10.series(f10)
        for strategy in ("user", "key", "group"):
            enc_only = dict(series[("encryption-only", strategy)])
            signed = dict(series[("encryption+digest+signature", strategy)])
            for size, enc_ms in enc_only.items():
                assert signed[size] > enc_ms

    def test_group_oriented_fastest_at_scale(self, f10):
        series = fig10.series(f10)
        largest = max(TINY.group_sizes)
        for protection in ("encryption-only", "encryption+digest+signature"):
            by_strategy = {s: dict(series[(protection, s)])[largest]
                           for s in ("user", "key", "group")}
            assert by_strategy["group"] <= by_strategy["user"]


class TestFigure11:
    def test_degree4_minimizes_encryptions(self, f11):
        for strategy, points in fig11.encryption_series(f11).items():
            by_degree = dict(points)
            assert by_degree[4] < by_degree[2]
            assert by_degree[4] < by_degree[16]

    def test_server_side_strategy_ranking(self, f11):
        """group <= key <= user on mean encryption work per request."""
        rows = [row for row in f11.rows if row[0] == "encryption-only"]
        for degree in {row[2] for row in rows}:
            cost = {row[1]: (row[4] + row[5]) for row in rows
                    if row[2] == degree}
            assert cost["group"] <= cost["key"] <= cost["user"]


class TestFigure12:
    def test_near_analytic_bound(self):
        table = fig12.run(TINY)
        for degree, measured, bound in fig12.degree_series(table):
            assert measured == pytest.approx(bound, rel=0.4), degree
        sizes = fig12.size_series(table)
        values = [measured for _size, measured, _bound in sizes]
        # Flat in group size: spread stays tight.
        assert max(values) - min(values) < 0.6
        # And nowhere near log(n) growth.
        assert max(values) < 2.5


class TestAblations:
    def test_star_vs_tree(self):
        table = ablations.star_vs_tree(TINY)
        ratios = [row[3] for row in table.rows]
        assert ratios == sorted(ratios)          # grows with n
        assert ratios[-1] > ratios[0] * 3

    def test_iolus(self):
        table = ablations.iolus_comparison(TINY)
        for row in table.rows:
            (_, _, iolus_trusted, iolus_membership, iolus_data, _,
             lkh_trusted, lkh_membership, lkh_data, _) = row
            assert iolus_membership < lkh_membership   # Iolus join/leave win
            assert lkh_data < iolus_data               # LKH data win
            assert lkh_trusted == 1 and iolus_trusted > 1

    def test_hybrid(self):
        table = ablations.hybrid_tradeoff(TINY)
        rows = {row[0]: row for row in table.rows}
        # Server messages: group (1) < hybrid (<= d) < key.
        assert rows["group"][1] <= rows["hybrid"][1] <= rows["key"][1]
        assert rows["hybrid"][1] <= 4
        # Client bytes: hybrid below group-oriented.
        assert rows["hybrid"][2] < rows["group"][2]

    def test_batch(self):
        table = ablations.batch_saving(TINY, batch_sizes=(1, 8, 32))
        savings = [row[3] for row in table.rows]
        assert savings[-1] > savings[0]
        assert savings[-1] > 0.5


class TestNewAblations:
    def test_client_side_work(self):
        table = ablations.client_side_work(TINY)
        rows = {row[0]: row for row in table.rows}
        # Received bytes and client processing rank user < key <= group.
        assert rows["user"][1] < rows["key"][1] < rows["group"][1]
        assert rows["user"][2] <= rows["group"][2]
        for row in table.rows:
            assert row[4] == pytest.approx(4 / 3, rel=0.35)

    def test_fec_vs_retransmission(self):
        table = ablations.fec_vs_retransmission(TINY)
        retransmissions = [row[2] for row in table.rows]
        assert retransmissions == sorted(retransmissions)
        assert retransmissions[-1] > 0
        fec_bytes = {row[0]: row[7] for row in table.rows}
        # FEC's offered load is loss-independent (fixed parity overhead).
        values = list(fec_bytes.values())
        assert max(values) == min(values)
        # Both deliver nearly everything at these loss rates.
        for row in table.rows:
            assert row[1] >= 0.95 * table.rows[0][1]
            assert row[4] >= 0.85 * table.rows[0][4]

    def test_tree_drift(self):
        table = ablations.tree_drift(TINY, n_operations=300, checkpoints=3)
        for row in table.rows:
            assert row[4] <= 1        # height slack
            assert row[5] > 0.5       # interior fill

    def test_multicast_addresses(self):
        table = ablations.multicast_addresses(TINY, pool_limit=4)
        rows = {row[0]: row for row in table.rows}
        assert rows["group"][2] == 0           # no subgroup addresses
        assert rows["hybrid"][2] <= 4          # fits the pool
        assert rows["hybrid"][3] == 0          # no fallbacks
        assert rows["user"][2] > 4             # wants far more
        assert rows["user"][3] > 0             # so it degrades
        # Network copies: group < hybrid << user/key under scarcity.
        assert rows["group"][4] < rows["hybrid"][4] < rows["user"][4]

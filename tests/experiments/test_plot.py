"""ASCII chart rendering."""

import pytest

from repro.experiments.plot import render_chart


def test_basic_chart_contains_series_and_labels():
    chart = render_chart({"alpha": [(1, 1.0), (2, 4.0), (4, 2.0)]},
                         title="Test chart", x_label="xs", y_label="ys")
    assert "Test chart" in chart
    assert "o = alpha" in chart
    assert "xs" in chart and "ys" in chart
    assert "o" in chart


def test_multiple_series_distinct_glyphs():
    chart = render_chart({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]})
    assert "o = a" in chart
    assert "x = b" in chart


def test_log_x_axis():
    chart = render_chart({"s": [(32, 1), (1024, 2), (8192, 3)]},
                         x_label="n", log_x=True)
    assert "(log scale)" in chart
    # With log x, 32->1024 and 1024->8192 are comparable spans; the
    # middle marker must not hug the left edge.
    lines = [line for line in chart.splitlines()
             if "|" in line and "o" in line]
    positions = sorted(line.index("o") for line in lines)
    assert len(positions) == 3
    assert positions[1] - positions[0] > 5
    assert positions[2] - positions[1] > 5


def test_extremes_rejected():
    with pytest.raises(ValueError):
        render_chart({})
    with pytest.raises(ValueError):
        render_chart({"a": []})
    with pytest.raises(ValueError):
        render_chart({"a": [(1, 1)]}, width=4)


def test_figure_charts_render():
    from repro.experiments import fig10, fig11, fig12
    from repro.experiments.common import Scale
    from repro.experiments.plot import (fig10_chart, fig11_chart,
                                        fig12_chart)
    tiny = Scale(name="plot-test", initial_size=32, n_requests=8,
                 group_sizes=(32, 64), degrees=(2, 4), n_sequences=1)
    assert "Figure 10" in fig10_chart(fig10.run(tiny))
    assert "Figure 11" in fig11_chart(fig11.run(tiny))
    assert "Figure 12" in fig12_chart(fig12.run(tiny))


def test_cli_with_plot_flag(capsys):
    from repro.experiments.__main__ import main
    import repro.experiments.__main__ as main_module
    import repro.experiments as experiments
    # Patch the scale so the CLI test stays fast.
    from repro.experiments.common import Scale
    tiny = Scale(name="cli-test", initial_size=32, n_requests=8,
                 group_sizes=(32, 64), degrees=(2, 4), n_sequences=1)
    original = main_module.QUICK
    main_module.QUICK = tiny
    try:
        assert main(["--plot", "figure12"]) == 0
    finally:
        main_module.QUICK = original
    out = capsys.readouterr().out
    assert "Figure 12" in out
    assert "key tree degree" in out  # the chart rendered

"""The paper's conclusions are cipher-independent.

EXPERIMENTS.md claims the shape results repeat under the modern suite
(AES-128 + SHA-256 + RSA-1024); this test backs that claim for the three
load-bearing shapes: log-n scaling, strategy ranking, and the d/(d-1)
client cost.
"""

import pytest

from repro.crypto.suite import MODERN_SUITE, CipherSuite
from repro.simulation.runner import ExperimentConfig, run_experiment

AES_ENC_ONLY = CipherSuite("aes128", None, None)


def run(strategy, n, degree=4, suite=AES_ENC_ONLY, signing="none",
        client_mode="accounting", n_requests=30):
    return run_experiment(ExperimentConfig(
        initial_size=n, n_requests=n_requests, degree=degree,
        strategy=strategy, suite=suite, signing=signing,
        client_mode=client_mode, seed=b"modern"))


def test_log_n_scaling_under_aes():
    small = run("group", 32).mean_processing_ms
    large = run("group", 2048).mean_processing_ms
    assert large / small < 64 / 4  # 64x users, far less than 16x time


def test_strategy_ranking_under_aes():
    costs = {}
    for strategy in ("user", "key", "group"):
        result = run(strategy, 256)
        costs[strategy] = sum(r.encryptions for r in result.records)
    assert costs["group"] <= costs["key"] <= costs["user"]


def test_client_cost_bound_under_aes():
    result = run("group", 256, client_mode="full", n_requests=40)
    assert result.client_metrics.key_changes_per_client() == pytest.approx(
        4 / 3, rel=0.25)


def test_full_protocol_under_modern_suite():
    """End-to-end with AES + SHA-256 + RSA-1024 signatures verified."""
    result = run_experiment(ExperimentConfig(
        initial_size=32, n_requests=16, degree=4, strategy="key",
        suite=MODERN_SUITE, signing="merkle", client_mode="full",
        seed=b"modern-full"))
    assert len(result.records) == 16  # synchronization asserted inside


def test_optimal_degree_holds_under_aes():
    by_degree = {}
    for degree in (2, 4, 16):
        result = run("group", 256, degree=degree)
        by_degree[degree] = sum(r.encryptions for r in result.records)
    assert by_degree[4] < by_degree[2]
    assert by_degree[4] < by_degree[16]

"""Cluster telemetry: per-shard labels, merged scrape, Prometheus text."""

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.observability import Instrumentation, Tracer, merge_snapshots
from repro.observability.export import (build_snapshot, to_prometheus,
                                        validate_snapshot)

from .conftest import cluster_join, cluster_leave, prime_clients


def build_cluster(trace=False):
    instrumentation = (Instrumentation("cluster", tracer=Tracer())
                       if trace else None)
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, degree=3, seed=b"metrics"),
        instrumentation=instrumentation)
    members = [(f"user-{index:02d}", coordinator.new_individual_key())
               for index in range(32)]
    coordinator.bootstrap(members)
    clients = prime_clients(coordinator, members)
    for index in range(8):
        cluster_join(coordinator, clients, f"joiner-{index}")
    for index in range(4):
        cluster_leave(coordinator, clients, f"user-{index:02d}")
    return coordinator, clients


def test_snapshot_is_valid_and_merged():
    coordinator, _clients = build_cluster()
    document = coordinator.stats_document()
    validate_snapshot(document)
    counters = document["metrics"]["counters"]
    # Coordinator-level families...
    assert "cluster_requests_total" in counters
    assert "cluster_encryptions_total" in counters
    # ...merged with the per-shard GroupKeyServer families.
    assert "server_requests_total" in counters
    assert "encryptions_total" in counters
    total_requests = sum(series["value"] for series
                         in counters["cluster_requests_total"]["series"]
                         if series["labels"]["status"] == "ok")
    assert total_requests == 12  # 8 joins + 4 leaves


def test_per_shard_series_are_attributable():
    coordinator, _clients = build_cluster()
    document = coordinator.stats_document()
    requests = document["metrics"]["counters"]["cluster_requests_total"]
    shards_seen = {series["labels"]["shard"]
                   for series in requests["series"]}
    assert shards_seen <= {"0", "1", "2", "3"}
    assert len(shards_seen) > 1  # the workload spread over shards
    members = document["metrics"]["gauges"]["cluster_shard_members"]
    by_shard = {series["labels"]["shard"]: series["value"]
                for series in members["series"]}
    assert sum(by_shard.values()) == coordinator.n_users
    for shard in coordinator.shards:
        assert by_shard[str(shard.shard_id)] == shard.server.n_users


def test_encryptions_split_by_layer():
    coordinator, _clients = build_cluster()
    document = coordinator.stats_document()
    encryptions = document["metrics"]["counters"][
        "cluster_encryptions_total"]
    by_layer = {}
    for series in encryptions["series"]:
        layer = series["labels"]["layer"]
        by_layer[layer] = by_layer.get(layer, 0) + series["value"]
    assert set(by_layer) == {"shard", "root"}
    assert by_layer["shard"] > 0 and by_layer["root"] > 0
    expected = sum(record.encryptions for record in coordinator.history)
    assert by_layer["shard"] + by_layer["root"] == expected


def test_prometheus_exposition_distinguishes_shards():
    coordinator, _clients = build_cluster()
    text = to_prometheus(coordinator.stats_document())
    assert 'cluster_shard_members{shard="0"}' in text
    assert 'cluster_shard_members{shard="1"}' in text
    assert 'layer="root"' in text and 'layer="shard"' in text
    assert "cluster_request_seconds_bucket" in text


def test_spans_ride_along_when_tracing():
    coordinator, _clients = build_cluster(trace=True)
    document = coordinator.stats_document()
    validate_snapshot(document)
    names = {span["name"] for span in document["spans"]}
    assert "cluster.join" in names
    assert "cluster.leave" in names


def test_snapshot_merges_with_other_sources():
    # A fleet scraper can merge the cluster document with any other
    # repro-metrics snapshot (merge_snapshots is associative).
    coordinator, _clients = build_cluster()
    other = Instrumentation("elsewhere")
    other.registry.counter("elsewhere_total", "x").labels().inc()
    merged = merge_snapshots(coordinator.stats_document()["metrics"],
                             other.registry.snapshot())
    document = build_snapshot(coordinator.instrumentation.registry)
    document["metrics"] = merged
    validate_snapshot(document)
    assert "elsewhere_total" in merged["counters"]
    assert "cluster_requests_total" in merged["counters"]

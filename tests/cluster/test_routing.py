"""Cluster front-end: shard-ward routing, delivery, stats scrape."""

import pytest

from repro.cluster import (ClusterConfig, ClusterCoordinator, ClusterFrontEnd,
                           ClusterMember, RoutingError)
from repro.core.messages import (MSG_DATA, MSG_JOIN_ACK, MSG_STATS_REQUEST,
                                 MSG_STATS_RESPONSE, Message)
from repro.crypto.suite import PAPER_SUITE
from repro.observability.export import validate_snapshot


@pytest.fixture()
def front_end():
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, signing="merkle", seed=b"routing"))
    coordinator.bootstrap([])
    return ClusterFrontEnd(coordinator)


def join_member(front_end, user_id) -> ClusterMember:
    coordinator = front_end.coordinator
    member = ClusterMember(user_id, PAPER_SUITE,
                           server_public_key=coordinator.public_key)
    individual_key = coordinator.new_individual_key()
    coordinator.register_individual_key(user_id, individual_key)
    member.client.set_individual_key(individual_key)
    front_end.attach_member(member)
    front_end.submit(member.join_request())
    return member


def test_members_join_and_leave_through_one_endpoint(front_end):
    coordinator = front_end.coordinator
    members = {user_id: join_member(front_end, user_id)
               for user_id in (f"m{index}" for index in range(24))}
    group_key = coordinator.group_key()
    assert all(member.group_key == group_key
               for member in members.values())
    assert all(MSG_JOIN_ACK in member.acks for member in members.values())
    # Users landed on the shards the ring owns them on.
    for user_id in members:
        assert coordinator.shard_of(user_id).server.is_member(user_id)

    front_end.submit(members["m7"].leave_request())
    departed = members.pop("m7")
    front_end.detach_member("m7")
    group_key = coordinator.group_key()
    assert all(member.group_key == group_key
               for member in members.values())
    assert departed.group_key != group_key


def test_signed_messages_verify_against_the_cluster_key(front_end):
    # verify=True members check each shard's signature against the one
    # cluster-wide public key — proving the shared signing identity.
    member = join_member(front_end, "verified-user")
    assert member.client.stats.verify_failures == 0
    assert member.client.stats.rekey_messages > 0


def test_denials_are_routed_back(front_end):
    member = join_member(front_end, "dup")
    front_end.submit(member.join_request())  # second join -> denied
    assert member.denials == 1
    ghost = ClusterMember("ghost", PAPER_SUITE)
    front_end.attach_member(ghost)
    front_end.submit(ghost.leave_request())  # not a member -> denied
    assert ghost.denials == 1


def test_stats_request_returns_merged_snapshot(front_end):
    join_member(front_end, "scraped")
    outputs = front_end.submit(
        Message(msg_type=MSG_STATS_REQUEST).encode())
    assert len(outputs) == 1
    assert outputs[0].message.msg_type == MSG_STATS_RESPONSE
    document = front_end.scrape()
    validate_snapshot(document)
    counters = document["metrics"]["counters"]
    assert "cluster_routed_datagrams_total" in counters
    # The shard registries are merged in: per-shard families appear.
    assert "server_requests_total" in counters


def test_routed_counter_labels_by_shard(front_end):
    members = [join_member(front_end, f"r{index}") for index in range(12)]
    document = front_end.scrape()
    routed = document["metrics"]["counters"][
        "cluster_routed_datagrams_total"]
    by_shard = {series["labels"]["shard"]: series["value"]
                for series in routed["series"]}
    assert sum(by_shard.values()) == len(members)
    assert set(by_shard) <= {"0", "1", "2", "3"}


def test_unroutable_datagrams_raise(front_end):
    with pytest.raises(RoutingError):
        front_end.submit(b"\x00garbage")
    with pytest.raises(RoutingError):
        front_end.submit(Message(msg_type=MSG_DATA, body=b"m0").encode())

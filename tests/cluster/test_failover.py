"""Warm-standby failover: byte-identical promotion, no member recovery."""

import json

import pytest

from repro.cluster import (ClusterConfig, ClusterCoordinator, ClusterError,
                           FailoverError, WarmStandby)
from repro.cluster.failover import _ReplaySource
from repro.core import persistence
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability import Instrumentation, Tracer

from .conftest import (assert_consistent, cluster_join, cluster_leave,
                       prime_clients)


def make_server(seed=b"standby-tests", signing="none") -> GroupKeyServer:
    server = GroupKeyServer(ServerConfig(degree=3, signing=signing,
                                         seed=seed))
    server.bootstrap([(f"u{index}", server.new_individual_key())
                      for index in range(9)])
    return server


# -- the standby unit ----------------------------------------------------------


def test_promote_without_journal_equals_checkpoint():
    server = make_server()
    standby = WarmStandby(server)
    promoted = standby.promote()
    assert persistence.snapshot(promoted) == persistence.snapshot(server)


def test_journaled_replay_is_byte_identical():
    server = make_server()
    standby = WarmStandby(server)
    key = server.new_individual_key()
    with standby.recording("join", "new-user", key):
        server.join("new-user", key)
    with standby.recording("leave", "u3"):
        server.leave("u3")
    assert standby.journal_size == 2
    promoted = standby.promote()
    # Byte-for-byte: same node ids, versions AND key material, so
    # members' held keys keep decrypting — no out-of-band recovery.
    assert persistence.snapshot(promoted) == persistence.snapshot(server)
    assert promoted._seq == server._seq


def test_future_draws_diverge_after_promotion():
    server = make_server()
    standby = WarmStandby(server)
    promoted = standby.promote()
    # The successor's DRBG is reseeded: the next keys they would issue
    # differ (running two live servers off one stream is a key-reuse
    # hazard), while all *current* state matched above.
    assert promoted.new_individual_key() != server.new_individual_key()


def test_failed_operation_is_not_journaled():
    server = make_server()
    standby = WarmStandby(server)
    with pytest.raises(Exception):
        with standby.recording("leave", "ghost"):
            server.leave("ghost")  # unknown user -> raises
    assert standby.journal_size == 0
    promoted = standby.promote()
    assert persistence.snapshot(promoted) == persistence.snapshot(server)


def test_checkpoint_interval_truncates_journal():
    server = make_server()
    standby = WarmStandby(server, checkpoint_interval=3)
    for index in range(7):
        key = server.new_individual_key()
        with standby.recording("join", f"extra-{index}", key):
            server.join(f"extra-{index}", key)
    # 7 ops with interval 3: checkpoints after ops 3 and 6, one left.
    assert standby.journal_size == 1
    assert standby.checkpoints_taken == 3
    promoted = standby.promote()
    assert persistence.snapshot(promoted) == persistence.snapshot(server)


def test_encrypted_checkpoints_round_trip():
    server = make_server()
    storage_key = b"\x11" * server.suite.key_size
    standby = WarmStandby(server, storage_key=storage_key)
    key = server.new_individual_key()
    with standby.recording("join", "enc-user", key):
        server.join("enc-user", key)
    promoted = standby.promote()
    assert persistence.snapshot(promoted) == persistence.snapshot(server)


def test_standby_construction_errors():
    server = make_server()
    WarmStandby(server)
    with pytest.raises(FailoverError):
        WarmStandby(server)  # double recorder
    other = make_server(seed=b"other")
    with pytest.raises(FailoverError):
        WarmStandby(other, checkpoint_interval=0)
    with pytest.raises(FailoverError):
        WarmStandby(other, storage_key=b"short")


def test_recording_guards():
    server = make_server()
    standby = WarmStandby(server)
    with pytest.raises(FailoverError):
        standby.recording("refresh", "u1")
    with pytest.raises(FailoverError):
        standby.recording("join", "u1")  # join needs the individual key
    with standby.recording("leave", "u1"):
        with pytest.raises(FailoverError):
            standby.recording("leave", "u2").__enter__()
        server.leave("u1")


def test_replay_divergence_fails_loud():
    source = _ReplaySource(None, [("key", b"\x00" * 8)])
    with pytest.raises(FailoverError):
        source.new_iv()  # kind mismatch
    assert source.new_key() == b"\x00" * 8
    with pytest.raises(FailoverError):
        source.new_key()  # exhausted


def test_journal_blob_round_trip_and_format_check():
    server = make_server()
    standby = WarmStandby(server)
    key = server.new_individual_key()
    with standby.recording("join", "wired", key):
        server.join("wired", key)
    entries = WarmStandby.parse_journal(standby.journal_blob())
    assert len(entries) == 1
    assert entries[0].op == "join"
    assert entries[0].individual_key == key
    assert entries[0].draws  # the recorded key/IV material
    bad = json.dumps({"format": 99, "entries": []}).encode()
    with pytest.raises(FailoverError):
        WarmStandby.parse_journal(bad)
    with pytest.raises(FailoverError):
        WarmStandby.parse_journal(b"\xff not json")


# -- the cluster acceptance test -----------------------------------------------


def structural_keyset(client):
    """The (node id, version) pairs a member holds — the member-visible
    key *structure*, identical across runs even where key bytes diverge
    (the promoted server's post-failover DRBG is reseeded)."""
    return {(node_id, version)
            for node_id, (version, _key) in client.keys.items()}


def run_cluster(fail_mid_workload: bool):
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, degree=3, signing="none",
                      seed=b"failover-acceptance"),
        instrumentation=Instrumentation("cluster", tracer=Tracer()))
    members = [(f"member-{index:03d}", coordinator.new_individual_key())
               for index in range(32)]
    coordinator.bootstrap(members)
    clients = prime_clients(coordinator, members)
    coordinator.enable_standbys(checkpoint_interval=8)

    # Phase 1: identical workload in both runs.
    for index in range(6):
        cluster_join(coordinator, clients, f"phase1-{index}")
    for index in range(3):
        cluster_leave(coordinator, clients, f"member-{index:03d}")

    victim_shard = coordinator.shard_of("member-010").shard_id
    if fail_mid_workload:
        dead = coordinator.fail_shard(victim_shard)
        # Requests for the dead shard's users are refused, not lost.
        with pytest.raises(ClusterError):
            coordinator.leave("member-010")
        promoted = coordinator.promote_standby(victim_shard)
        # The promoted shard is byte-identical to the primary at death.
        assert persistence.snapshot(promoted) == persistence.snapshot(dead)

    # Phase 2: the workload continues — through the promoted shard too.
    for index in range(6, 12):
        cluster_join(coordinator, clients, f"phase2-{index}")
    cluster_leave(coordinator, clients, "member-010")
    cluster_leave(coordinator, clients, "member-011")
    return coordinator, clients


def test_failover_mid_workload_members_never_recover_out_of_band():
    control_coord, control_clients = run_cluster(fail_mid_workload=False)
    failed_coord, failed_clients = run_cluster(fail_mid_workload=True)

    # Every member followed every rekey across the failover using only
    # the keys it already held (a member needing out-of-band recovery
    # would be missing the current group key).
    assert_consistent(failed_coord, failed_clients)

    # And the member-visible keyset matches the never-failed control
    # run, user by user.
    assert sorted(failed_clients) == sorted(control_clients)
    for user_id, control_client in control_clients.items():
        assert (structural_keyset(failed_clients[user_id])
                == structural_keyset(control_client)), user_id
    assert failed_coord.n_users == control_coord.n_users

    # The failover is observable: one cluster.failover span plus the
    # per-shard promotion counter.
    spans = [span["name"] for span in
             failed_coord.instrumentation.tracer.export()]
    assert "cluster.failover" in spans
    document = failed_coord.stats_document()
    failovers = document["metrics"]["counters"]["cluster_failovers_total"]
    assert sum(series["value"] for series in failovers["series"]) == 1


def test_promote_requires_standby_and_known_shard(cluster):
    coordinator, _clients = cluster
    with pytest.raises(ClusterError):
        coordinator.promote_standby(0)  # no standby armed
    with pytest.raises(ClusterError):
        coordinator.fail_shard(99)
    coordinator.enable_standbys()
    coordinator.fail_shard(0)
    with pytest.raises(ClusterError):
        coordinator.fail_shard(0)  # already failed
    promoted = coordinator.promote_standby(0)
    assert coordinator.shards[0].server is promoted
    assert not coordinator.shards[0].failed
    # The standby is re-armed: a second failure can also be survived.
    coordinator.fail_shard(0)
    coordinator.promote_standby(0)

"""Consistent-hash ring properties: determinism, balance, minimal movement."""

import pytest

from repro.cluster.partition import (DEFAULT_VNODES, HashRing, PartitionError,
                                     ring_point)

USERS = [f"user-{index}" for index in range(2000)]


def test_ring_point_is_stable():
    # MD5-based, so independent of PYTHONHASHSEED and process lifetime.
    assert ring_point("user-0") == ring_point("user-0")
    assert ring_point("user-0") != ring_point("user-1")
    assert 0 <= ring_point("anything") < (1 << 64)


def test_lookup_deterministic_across_instances():
    a = HashRing(range(8))
    b = HashRing(range(8))
    for user in USERS[:200]:
        assert a.shard_for(user) == b.shard_for(user)


def test_partition_covers_every_user_exactly_once():
    ring = HashRing(range(5))
    assignment = ring.partition(USERS)
    assert sorted(assignment) == list(range(5))
    flattened = [user for users in assignment.values() for user in users]
    assert sorted(flattened) == sorted(USERS)


def test_balance_with_virtual_nodes():
    ring = HashRing(range(4), vnodes=DEFAULT_VNODES)
    spread = ring.spread(USERS)
    expected = len(USERS) / 4
    for shard, count in spread.items():
        # Within 2x of fair share is the vnode guarantee we rely on.
        assert expected / 2 < count < expected * 2, (shard, count)


def test_more_vnodes_do_not_change_singleton_ring():
    # With one shard every vnode count maps everything to it.
    for vnodes in (1, 16, 128):
        ring = HashRing(["only"], vnodes=vnodes)
        assert ring.spread(USERS) == {"only": len(USERS)}


def test_add_shard_moves_a_minority():
    before = HashRing(range(4))
    after = HashRing(range(4))
    after.add_shard(4)
    moved = after.moved_keys(before, USERS)
    # ~1/5 of users move to the new shard; nothing shuffles between
    # pre-existing shards.
    assert 0 < len(moved) < len(USERS) / 2
    for user in moved:
        assert after.shard_for(user) == 4


def test_remove_shard_reassigns_only_its_users():
    before = HashRing(range(4))
    after = HashRing(range(4))
    after.remove_shard(2)
    for user in USERS[:500]:
        owner = before.shard_for(user)
        if owner != 2:
            assert after.shard_for(user) == owner
        else:
            assert after.shard_for(user) != 2


def test_configuration_errors():
    with pytest.raises(PartitionError):
        HashRing([])
    with pytest.raises(PartitionError):
        HashRing([1, 1])
    with pytest.raises(PartitionError):
        HashRing([1], vnodes=0)
    ring = HashRing([1, 2])
    with pytest.raises(PartitionError):
        ring.add_shard(1)
    with pytest.raises(PartitionError):
        ring.remove_shard(9)
    ring.remove_shard(2)
    with pytest.raises(PartitionError):
        ring.remove_shard(1)


def test_shards_property_is_a_copy():
    ring = HashRing([1, 2])
    shards = ring.shards
    shards.append(99)
    assert ring.shards == [1, 2]

"""Cluster coordinator: root-layer composition, security, cost bounds."""

import math

import pytest

from repro.cluster import (ROOT_LAYER_BASE, SHARD_ID_SPACE, ClusterConfig,
                           ClusterCoordinator, ClusterError, RootKeyLayer,
                           namespace_tree, shard_id_base)
from repro.keygraph.tree import KeyTree

from .conftest import (assert_consistent, cluster_join, cluster_leave,
                       deliver, prime_clients)


def test_bootstrap_all_shards_hold_members(cluster):
    coordinator, clients = cluster
    assert coordinator.n_users == 48
    assert sorted(coordinator.members()) == sorted(clients)
    for shard in coordinator.shards:
        assert shard.server.n_users > 0  # 48 users spread over 4 shards
    assert_consistent(coordinator, clients)


def test_node_id_windows_never_collide(cluster):
    coordinator, _clients = cluster
    seen = {}
    for shard in coordinator.shards:
        base = shard_id_base(shard.shard_id)
        for node in shard.server.tree.nodes():
            assert base <= node.node_id < base + SHARD_ID_SPACE
            assert node.node_id not in seen
            seen[node.node_id] = shard.shard_id
    for node in coordinator.root_layer.tree.nodes():
        assert node.node_id >= ROOT_LAYER_BASE
        assert node.node_id not in seen


def test_namespace_tree_rejects_double_application():
    tree = KeyTree.build([("u", b"\x00" * 8)], 2, lambda: b"\x01" * 8)
    namespace_tree(tree, 1 << 24)
    with pytest.raises(ClusterError):
        namespace_tree(tree, 1 << 24)


def test_join_admits_only_through_owning_shard(cluster):
    coordinator, clients = cluster
    cluster_join(coordinator, clients, "newcomer")
    owner = coordinator.shard_of("newcomer")
    assert owner.server.is_member("newcomer")
    for shard in coordinator.shards:
        if shard is not owner:
            assert not shard.server.is_member("newcomer")
    assert_consistent(coordinator, clients)


def test_leave_excludes_the_leaver(cluster):
    coordinator, clients = cluster
    departed = cluster_leave(coordinator, clients, "user-007")
    assert_consistent(coordinator, clients)
    assert departed.group_key() != coordinator.group_key()
    assert not coordinator.is_member("user-007")


def test_forward_secrecy_of_join(cluster):
    # A joiner must not learn any pre-join key: every key it decrypted
    # is a fresh version, so the old group key is not derivable.
    coordinator, clients = cluster
    old_group_key = coordinator.group_key()
    cluster_join(coordinator, clients, "late-joiner")
    joiner = clients["late-joiner"]
    held = {key for _version, key in joiner.keys.values()}
    assert old_group_key not in held
    assert joiner.group_key() == coordinator.group_key()


def test_churn_stays_consistent(cluster):
    coordinator, clients = cluster
    for index in range(12):
        cluster_join(coordinator, clients, f"extra-{index}")
        if index % 2:
            cluster_leave(coordinator, clients, f"user-{index:03d}")
    assert_consistent(coordinator, clients)
    for shard in coordinator.shards:
        shard.server.tree.validate()
    coordinator.root_layer.tree.validate()


def test_shard_local_rekeys_stay_shard_local(cluster):
    coordinator, clients = cluster
    outcome = coordinator.leave("user-010")
    clients.pop("user-010")
    shard = coordinator.shards[outcome.shard_id]
    shard_members = set(shard.server.members())
    # Shard-layer messages go only to the owning shard's members...
    for outbound in outcome.shard_outcome.rekey_messages:
        assert set(outbound.receivers) <= shard_members | {"user-010"}
    # ...while exactly one root-layer multicast goes cluster-wide.
    assert len(outcome.root_messages) == 1
    assert set(outcome.root_messages[0].receivers) == set(
        coordinator.members())
    deliver(outcome, clients)
    assert_consistent(coordinator, clients)


def test_per_op_cost_bounded_by_shard_not_group(cluster):
    coordinator, _clients = cluster
    outcome = coordinator.leave("user-020")
    shard = coordinator.shards[outcome.shard_id]
    degree = coordinator.config.degree
    shard_size = shard.server.n_users + 1
    # Group-oriented LKH: d keys per changed node, path length
    # ~ceil(log_d shard_size) in the shard + the root layer's path over
    # n_shards leaves — nowhere near the 48-user group-wide bound.
    shard_bound = degree * (math.ceil(math.log(shard_size, degree)) + 2)
    root_bound = coordinator.config.root_degree * (
        math.ceil(math.log(coordinator.config.n_shards,
                           coordinator.config.root_degree)) + 2)
    assert outcome.record.shard_encryptions <= shard_bound
    assert outcome.record.root_encryptions <= root_bound
    assert outcome.record.encryptions == (outcome.record.shard_encryptions
                                          + outcome.record.root_encryptions)


def test_refresh_rotates_only_the_cluster_key(cluster):
    coordinator, clients = cluster
    before_ref = coordinator.group_key_ref()
    run = coordinator.refresh()
    after_ref = coordinator.group_key_ref()
    assert after_ref[0] == before_ref[0]
    assert after_ref[1] == before_ref[1] + 1
    for outbound in run.messages:
        for user_id in outbound.receivers:
            clients[user_id].process_message(outbound.message)
    assert_consistent(coordinator, clients)


def test_registered_keys_feed_joins(cluster):
    coordinator, clients = cluster
    key = coordinator.new_individual_key()
    coordinator.register_individual_key("reg-user", key)
    outcome = coordinator.join("reg-user")
    from repro.core.client import GroupClient
    client = GroupClient("reg-user", coordinator.suite, verify=False)
    client.set_individual_key(key)
    clients["reg-user"] = client
    deliver(outcome, clients)
    assert_consistent(coordinator, clients)
    with pytest.raises(ClusterError):
        coordinator.join("unregistered-user")


def test_lifecycle_errors():
    coordinator = ClusterCoordinator(ClusterConfig(n_shards=2, seed=b"x"))
    with pytest.raises(ClusterError):
        coordinator.join("early", b"\x00" * 8)
    coordinator.bootstrap([])
    with pytest.raises(ClusterError):
        coordinator.bootstrap([])
    with pytest.raises(ClusterError):
        coordinator.register_individual_key("u", b"short")


def test_config_validation():
    with pytest.raises(ClusterError):
        ClusterConfig(n_shards=0).validate()
    with pytest.raises(ClusterError):
        ClusterConfig(vnodes=0).validate()
    with pytest.raises(ClusterError):
        ClusterConfig(root_degree=1).validate()


def test_root_layer_standalone_requires_bootstrap():
    from repro.crypto.suite import PAPER_SUITE
    layer = RootKeyLayer(PAPER_SUITE, ["a", "b"], seed=b"rl")
    with pytest.raises(ClusterError):
        layer.group_key()
    with pytest.raises(ClusterError):
        RootKeyLayer(PAPER_SUITE, [], seed=b"rl")
    with pytest.raises(ClusterError):
        RootKeyLayer(PAPER_SUITE, ["a", "a"], seed=b"rl")


def test_empty_shard_placeholder_then_first_member():
    # A cluster bootstrapped empty must still admit users into every
    # shard (the empty shards' root-layer leaves are placeholders).
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, seed=b"empty"))
    coordinator.bootstrap([])
    clients = prime_clients(coordinator, [])
    for index in range(16):
        cluster_join(coordinator, clients, f"walk-in-{index}")
    assert_consistent(coordinator, clients)
    assert all(shard.server.n_users >= 0 for shard in coordinator.shards)


def test_shared_signing_identity():
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=3, signing="merkle", seed=b"sig"))
    assert coordinator.public_key is not None
    keypair = coordinator.root_layer.signing_keypair
    for shard in coordinator.shards:
        assert shard.server.signing_keypair is keypair

"""Batch rekeying across a shard boundary (satellite of the cluster PR).

Two :class:`BatchRekeyServer` shards flush independently, then one
root-layer rekey folds both new shard roots in.  The member-visible
outcome — who can read group traffic afterwards — must be exactly what
sequential single-server processing of the same requests produces.
"""

from typing import Dict

from repro.batch.rekeying import BatchRekeyServer
from repro.cluster import RootKeyLayer, namespace_tree, shard_id_base
from repro.core.client import GroupClient
from repro.crypto.suite import PAPER_SUITE

SHARD_USERS = {
    "batch-a": [f"a{index}" for index in range(8)],
    "batch-b": [f"b{index}" for index in range(8)],
}
JOINS = {"batch-a": ["a-new0", "a-new1"], "batch-b": ["b-new0"]}
LEAVES = {"batch-a": ["a2"], "batch-b": ["b5", "b6"]}


def build_sharded():
    shards: Dict[str, BatchRekeyServer] = {}
    keys: Dict[str, bytes] = {}
    for index, (name, users) in enumerate(sorted(SHARD_USERS.items())):
        server = BatchRekeyServer(degree=3, suite=PAPER_SUITE,
                                  seed=b"batch-shard-" + name.encode())
        members = []
        for user in users:
            key = server.new_individual_key()
            keys[user] = key
            members.append((user, key))
        server.bootstrap(members)
        namespace_tree(server.tree, shard_id_base(index))
        shards[name] = server
    layer = RootKeyLayer(PAPER_SUITE, sorted(shards), degree=2,
                         seed=b"batch-root")
    layer.bootstrap({
        name: ((server.tree.root.node_id, server.tree.root.version),
               server.tree.root.key)
        for name, server in shards.items()})
    return shards, layer, keys


def prime_batch_clients(shards, layer, keys):
    clients: Dict[str, GroupClient] = {}
    for name, server in shards.items():
        for user in server.tree.users():
            client = GroupClient(user, PAPER_SUITE, verify=False)
            client.set_individual_key(keys[user])
            path = server.tree.user_key_path(user)
            client.set_leaf(path[0].node_id)
            for node in path[1:]:
                client.keys[node.node_id] = (node.version, node.key)
            for record in layer.path_records(name):
                client.keys[record.node_id] = (record.version, record.key)
            client.root_ref = layer.group_key_ref()
            clients[user] = client
    return clients


def deliver_flush(result, clients):
    if result.rekey_message is not None:
        for user in result.rekey_message.receivers:
            if user in clients:
                clients[user].process_message(result.rekey_message.message)
    for outbound in result.joiner_messages:
        for user in outbound.receivers:
            clients[user].process_message(outbound.message)


def test_cross_shard_flush_matches_sequential_single_server():
    # -- sharded deployment: one flush per shard + one root-layer rekey.
    shards, layer, keys = build_sharded()
    clients = prime_batch_clients(shards, layer, keys)
    group_key_before = layer.group_key()

    departed = {}
    for name, server in sorted(shards.items()):
        for user in JOINS[name]:
            key = server.new_individual_key()
            keys[user] = key
            client = GroupClient(user, PAPER_SUITE, verify=False)
            client.set_individual_key(key)
            clients[user] = client
            server.request_join(user, key)
        for user in LEAVES[name]:
            departed[user] = clients.pop(user)
            server.request_leave(user)

    shard_results = {name: server.flush()
                     for name, server in sorted(shards.items())}
    for result in shard_results.values():
        deliver_flush(result, clients)

    # The joiners' unicasts carry only their shard path: the root-layer
    # multicast below must hand them (and everyone else) the layer keys.
    all_members = tuple(user for server in shards.values()
                        for user in server.tree.users())
    run = layer.rekey(
        [(name, (server.tree.root.node_id, server.tree.root.version),
          server.tree.root.key)
         for name, server in sorted(shards.items())],
        receivers=lambda: all_members)
    assert len(run.messages) == 1  # one cluster-wide multicast
    for user in run.messages[0].receivers:
        clients[user].process_message(run.messages[0].message)

    # -- sequential control: one server, same requests, one flush.
    control = BatchRekeyServer(degree=3, suite=PAPER_SUITE,
                               seed=b"batch-control")
    control_keys = {}
    control_members = []
    for name in sorted(SHARD_USERS):
        for user in SHARD_USERS[name]:
            key = control.new_individual_key()
            control_keys[user] = key
            control_members.append((user, key))
    control.bootstrap(control_members)
    control_clients = {}
    for user, key in control_members:
        client = GroupClient(user, PAPER_SUITE, verify=False)
        client.set_individual_key(key)
        path = control.tree.user_key_path(user)
        client.set_leaf(path[0].node_id)
        for node in path[1:]:
            client.keys[node.node_id] = (node.version, node.key)
        client.root_ref = (control.tree.root.node_id,
                           control.tree.root.version)
        control_clients[user] = client
    control_departed = {}
    for name in sorted(SHARD_USERS):
        for user in JOINS[name]:
            key = control.new_individual_key()
            client = GroupClient(user, PAPER_SUITE, verify=False)
            client.set_individual_key(key)
            control_clients[user] = client
            control.request_join(user, key)
        for user in LEAVES[name]:
            control_departed[user] = control_clients.pop(user)
            control.request_leave(user)
    control_result = control.flush()
    deliver_flush(control_result, control_clients)

    # -- member-visible equivalence.
    assert sorted(clients) == sorted(control_clients)
    cluster_key = layer.group_key()
    control_key = (control_clients[next(iter(control_clients))]
                   .group_key())
    assert cluster_key != group_key_before
    for user in clients:
        # Same members hold the (respective) current group key...
        assert clients[user].group_key() == cluster_key, user
        assert control_clients[user].group_key() == control_key, user
    for user in departed:
        # ...and the same departed users hold neither.
        assert departed[user].group_key() != cluster_key
        assert control_departed[user].group_key() != control_key

    # Per-shard flush cost is bounded by shard membership, not by the
    # whole logical group: each shard's multicast reached only its own
    # members.
    for name, result in shard_results.items():
        shard_members = set(shards[name].tree.users())
        assert set(result.rekey_message.receivers) <= shard_members
        assert len(shard_members) < len(clients)


def test_root_layer_refresh_between_flushes():
    # With no shard changes the layer still rotates the cluster key.
    shards, layer, keys = build_sharded()
    clients = prime_batch_clients(shards, layer, keys)
    before = layer.group_key()
    all_members = tuple(clients)
    run = layer.rekey([], receivers=lambda: all_members)
    for user in run.messages[0].receivers:
        clients[user].process_message(run.messages[0].message)
    assert layer.group_key() != before
    for user in clients:
        assert clients[user].group_key() == layer.group_key()

"""Shared fixtures for the sharded-cluster tests."""

from typing import Dict, Tuple

import pytest

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.client import GroupClient
from repro.crypto.suite import PAPER_SUITE


def prime_clients(coordinator, members) -> Dict[str, GroupClient]:
    """Simulated clients for a bootstrapped roster, keys pre-installed."""
    clients = {}
    for user_id, individual_key in members:
        client = GroupClient(user_id, coordinator.suite, verify=False)
        client.set_individual_key(individual_key)
        leaf_id, records, root_ref = coordinator.member_records(user_id)
        client.set_leaf(leaf_id)
        for record in records:
            client.keys[record.node_id] = (record.version, record.key)
        client.root_ref = root_ref
        clients[user_id] = client
    return clients


def deliver(outcome, clients) -> None:
    """Feed an outcome's messages to every addressed simulated client."""
    for outbound in outcome.control_messages:
        for user_id in outbound.receivers:
            if user_id in clients:
                clients[user_id].process_control(outbound.message)
    for outbound in outcome.rekey_messages:
        for user_id in outbound.receivers:
            if user_id in clients:
                clients[user_id].process_message(outbound.message)


def cluster_join(coordinator, clients, user_id) -> None:
    """Join a fresh user and wire up its simulated client."""
    individual_key = coordinator.new_individual_key()
    client = GroupClient(user_id, coordinator.suite, verify=False)
    client.set_individual_key(individual_key)
    clients[user_id] = client
    deliver(coordinator.join(user_id, individual_key), clients)


def cluster_leave(coordinator, clients, user_id) -> GroupClient:
    """Leave a user; returns its (now stale) simulated client."""
    departed = clients.pop(user_id)
    deliver(coordinator.leave(user_id), clients)
    return departed


def assert_consistent(coordinator, clients) -> None:
    """Every simulated client holds the current cluster group key."""
    group_key = coordinator.group_key()
    stale = [user_id for user_id, client in clients.items()
             if client.group_key() != group_key]
    assert not stale, f"clients without the group key: {stale}"


@pytest.fixture()
def cluster() -> Tuple[ClusterCoordinator, Dict[str, GroupClient]]:
    """A seeded 4-shard cluster of 48 users with primed clients."""
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, degree=3, signing="none",
                      seed=b"cluster-tests"))
    members = [(f"user-{index:03d}", coordinator.new_individual_key())
               for index in range(48)]
    coordinator.bootstrap(members)
    return coordinator, prime_clients(coordinator, members)

"""Multiple secure groups over one user population (paper §7)."""

import pytest

from repro.multigroup.service import MultiGroupError, MultiGroupService


@pytest.fixture()
def service():
    svc = MultiGroupService(seed=b"mg-tests")
    for user in ("alice", "bob", "carol", "dave"):
        svc.register_user(user)
    svc.create_group("video", degree=3)
    svc.create_group("chat", degree=3)
    return svc


def test_registration(service):
    assert sorted(service.users()) == ["alice", "bob", "carol", "dave"]
    key = service.individual_key("alice")
    assert len(key) == 8
    with pytest.raises(MultiGroupError):
        service.register_user("alice")
    with pytest.raises(MultiGroupError):
        service.individual_key("ghost")


def test_group_management(service):
    assert sorted(service.group_names()) == ["chat", "video"]
    with pytest.raises(MultiGroupError):
        service.create_group("video")
    with pytest.raises(MultiGroupError):
        service.group("ghost")


def test_one_individual_key_across_groups(service):
    service.join("video", "bob")
    service.join("chat", "bob")
    video_leaf = service.group("video").tree.leaf_of("bob")
    chat_leaf = service.group("chat").tree.leaf_of("bob")
    assert video_leaf.key == chat_leaf.key == service.individual_key("bob")


def test_membership_tracking(service):
    service.join("video", "alice")
    service.join("chat", "alice")
    assert service.groups_of("alice") == {"video", "chat"}
    service.leave("video", "alice")
    assert service.groups_of("alice") == {"chat"}
    with pytest.raises(MultiGroupError):
        service.groups_of("ghost")


def test_groups_rekey_independently(service):
    service.join("video", "alice")
    service.join("video", "bob")
    service.join("chat", "carol")
    video_key = service.group("video").group_key()
    chat_key = service.group("chat").group_key()
    assert video_key != chat_key
    service.join("chat", "dave")  # chat rekeys...
    assert service.group("video").group_key() == video_key  # ...video doesn't
    assert service.group("chat").group_key() != chat_key


def test_merged_key_graph_semantics(service):
    for user in ("alice", "bob", "carol"):
        service.join("video", user)
    for user in ("bob", "carol", "dave"):
        service.join("chat", user)
    graph = service.merged_key_graph()
    graph.validate()
    group = graph.secure_group()
    # bob reaches keys in both trees; alice only video's.
    bob_keys = group.keyset("bob")
    assert any(key.startswith("video:") for key in bob_keys)
    assert any(key.startswith("chat:") for key in bob_keys)
    alice_keys = group.keyset("alice")
    assert all(key.startswith("video:") for key in alice_keys)
    # The video group key's userset is the video membership.
    video_root = service.group("video").tree.root
    assert group.userset(f"video:{video_root.node_id}") == {
        "alice", "bob", "carol"}


def test_keyset_across_groups(service):
    assert service.keyset_across_groups("alice") == frozenset()
    service.join("video", "alice")
    keys = service.keyset_across_groups("alice")
    assert len(keys) >= 2  # individual-key leaf + group key
    assert all(key.startswith("video:") for key in keys)


def test_rekey_outcomes_are_real(service):
    service.join("video", "alice")
    outcome = service.join("video", "bob")
    assert outcome.record.op == "join"
    assert outcome.rekey_messages
    outcome = service.leave("video", "alice")
    assert outcome.record.op == "leave"


def test_remove_user_leaves_every_group(service):
    for user in ("alice", "bob"):
        service.join("video", user)
        service.join("chat", user)
    service.join("video", "carol")
    outcomes = service.remove_user("alice")
    # One real leave per group alice was in, in group-creation order.
    assert [name for name, _outcome in outcomes] == ["video", "chat"]
    for _name, outcome in outcomes:
        assert outcome.record.op == "leave"
        assert outcome.rekey_messages
    assert not service.group("video").is_member("alice")
    assert not service.group("chat").is_member("alice")
    # The user is deregistered service-wide, key and all.
    assert "alice" not in service.users()
    with pytest.raises(MultiGroupError):
        service.individual_key("alice")
    with pytest.raises(MultiGroupError):
        service.groups_of("alice")
    # Everyone else is untouched.
    assert service.groups_of("bob") == {"video", "chat"}
    assert service.groups_of("carol") == {"video"}


def test_remove_user_with_no_memberships(service):
    outcomes = service.remove_user("dave")
    assert outcomes == []
    assert "dave" not in service.users()


def test_remove_user_unknown_raises(service):
    with pytest.raises(MultiGroupError):
        service.remove_user("ghost")


def test_remove_user_allows_fresh_registration(service):
    service.join("chat", "bob")
    old_key = service.individual_key("bob")
    service.remove_user("bob")
    service.register_user("bob")
    assert service.individual_key("bob") != old_key
    assert service.groups_of("bob") == set()
    service.join("chat", "bob")
    assert service.group("chat").is_member("bob")

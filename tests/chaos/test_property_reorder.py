"""Property: rekey delivery order cannot corrupt a member's keyset.

A member that processes a rekey stream shuffled, duplicated and
interleaved ends in one of exactly two states: the same keyset as the
in-order member, or flagged ``desynced`` — in which case a single
resync reply lands it on that same keyset.  Version-gated installs
make the state machine order-insensitive; gap detection plus resync
make it loss-proof.  No ordering may ever install a stale key over a
newer one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import GroupClient
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto.suite import PAPER_SUITE_NO_SIG


def _build_stream():
    """A fixed workload; returns (messages for 'w', w's key, server)."""
    server = GroupKeyServer(ServerConfig(
        degree=3, strategy="group", suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"property-reorder"))
    members = [(f"u{i}", server.new_individual_key()) for i in range(8)]
    w_key = server.new_individual_key()
    server.bootstrap(members + [("w", w_key)])
    stream = []
    for op in ["leave:u0", "join:n0", "leave:u3", "join:n1", "leave:u5",
               "leave:n0"]:
        verb, uid = op.split(":")
        outcome = (server.leave(uid) if verb == "leave"
                   else server.join(uid, server.new_individual_key()))
        for outbound in outcome.rekey_messages:
            if "w" in outbound.receivers:
                stream.append(outbound.encoded)
    return stream, w_key, server


_STREAM, _W_KEY, _SERVER = _build_stream()


def _fresh_client():
    client = GroupClient("w", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(_W_KEY)
    client.set_leaf(_SERVER.tree.leaf_of("w").node_id)
    client.process_resync(_SERVER.resync("w").encoded)
    return client


def _reference_keyset():
    """The in-order member's final state (the ground truth)."""
    client = GroupClient("w", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(_W_KEY)
    # Prime from before the workload: replay is impossible now, so use
    # a resync (which by the acceptance tests equals the primed path),
    # then the group key must match the server either way.
    client.process_resync(_SERVER.resync("w").encoded)
    return client.group_key(), dict(client.keys)


_REF_GROUP_KEY, _REF_KEYS = _reference_keyset()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_any_delivery_order_converges_after_at_most_one_resync(data):
    order = data.draw(st.permutations(range(len(_STREAM))))
    # Duplicate an arbitrary subset, interleaved at arbitrary points.
    dup_positions = data.draw(st.lists(
        st.integers(0, len(_STREAM) - 1), max_size=4))
    schedule = list(order)
    for pos in dup_positions:
        insert_at = data.draw(st.integers(0, len(schedule)))
        schedule.insert(insert_at, pos)

    client = GroupClient("w", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(_W_KEY)
    client.set_leaf(_SERVER.tree.leaf_of("w").node_id)
    for index in schedule:
        client.process_message(_STREAM[index])

    if client.desynced or client.group_key() != _REF_GROUP_KEY:
        # Out-of-order delivery may strand the client (items under keys
        # it never saw); one resync must fully repair it.
        client.process_resync(_SERVER.resync("w").encoded)

    assert client.group_key() == _REF_GROUP_KEY
    assert not client.desynced
    # Every key the reference holds on the current path is held
    # identically — no ordering ever downgraded an installed version.
    for node in _SERVER.tree.user_key_path("w")[1:]:
        assert client.keys[node.node_id] == (node.version, node.key)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_in_order_prefix_then_duplicates_changes_nothing(data):
    """Late duplicates of already-processed rekeys are pure no-ops."""
    client = _fresh_client()
    before_keys = dict(client.keys)
    replays = data.draw(st.lists(
        st.integers(0, len(_STREAM) - 1), min_size=1, max_size=6))
    for index in replays:
        client.process_message(_STREAM[index])
    assert client.keys == before_keys
    assert client.group_key() == _REF_GROUP_KEY

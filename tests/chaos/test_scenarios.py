"""Scenario runner: every matrix entry must self-heal."""

import pytest

from repro.chaos import ScenarioConfig, full_matrix, quick_matrix, run_scenario
from repro.chaos.faults import ChaosError
from repro.recovery import RecoveryPolicy


def test_config_validation():
    with pytest.raises(ChaosError):
        ScenarioConfig(name="x", stack="mainframe").validate()
    with pytest.raises(ChaosError):
        ScenarioConfig(name="x", profile="nope").validate()
    with pytest.raises(ChaosError):
        ScenarioConfig(name="x", n_initial=1).validate()


@pytest.mark.parametrize("config", quick_matrix(), ids=lambda c: c.name)
def test_quick_matrix_recovers(config):
    report = run_scenario(config)
    assert report.converged, report.summary()
    assert report.data_ok, report.summary()
    # Chaos actually happened; this was not a clean run in disguise.
    assert sum(report.injected.values()) > 0
    assert report.resyncs > 0


def test_runs_are_deterministic():
    config = quick_matrix()[0]
    a, b = run_scenario(config), run_scenario(config)
    assert a == b


def test_crash_restart_recovers_without_eviction():
    config = next(c for c in full_matrix() if c.name == "crash-restart")
    report = run_scenario(config)
    assert report.passed, report.summary()
    # The crash window stayed inside the dead_after budget: the victim
    # was repaired by resync, never evicted.
    assert report.evicted == []
    assert report.injected["crash_drop"] > 0


def test_mass_death_sheds_to_one_flush():
    config = next(c for c in full_matrix() if c.name == "mass-evict-shed")
    report = run_scenario(config)
    assert report.passed, report.summary()
    assert sorted(report.evicted) == ["u0", "u1", "u2", "u3"]
    assert report.shed_flushes == 1  # one batch flush, not four rekeys


def test_heavy_loss_still_converges():
    config = next(c for c in full_matrix() if c.name == "heavy-server")
    report = run_scenario(config)
    assert report.passed, report.summary()
    assert report.injected["drop"] > 20

"""Crash-injection acceptance: restarted shards are byte-identical.

The ``serve-crash`` stack kills a supervised shard mid-workload
(SIGKILL-equivalent: no drain, no flush, optionally a torn journal
tail), restarts it from its recovery substrate, and requires the full
server snapshot — tree, key material, sequence counter — to match a
fault-free control run byte for byte.  Both substrates are covered:
strict journal replay and warm-standby promotion.
"""

import dataclasses

import pytest

from repro.chaos import ScenarioConfig, run_scenario
from repro.chaos.faults import ChaosError


def _config(**overrides):
    base = dict(name="crash", stack="serve-crash", profile="drop10",
                n_initial=10, rounds=12, crash_plan={14: "kill-torn"},
                seed=b"chaos-crash")
    base.update(overrides)
    return ScenarioConfig(**base)


def test_crash_plan_validation():
    with pytest.raises(ChaosError):
        _config(crash_plan={3: "explode"}).validate()
    # A torn journal tail needs a journal: standby mode has none.
    with pytest.raises(ChaosError):
        _config(serve_recovery="standby").validate()
    with pytest.raises(ChaosError):
        _config(serve_recovery="carrier-pigeon").validate()


def test_journal_restart_byte_identical():
    """Torn-tail crash + journal replay converges to the control."""
    report = run_scenario(_config())
    # ``converged`` requires snapshot(live) == snapshot(control):
    # byte-for-byte, including the sequence counter.
    assert report.converged, report.summary()
    assert report.data_ok, report.summary()
    assert report.injected["kill"] == 1
    assert report.injected["torn"] == 1
    assert report.injected["restarts"] == 1
    # The retried op was re-sent twice with one correlation token; the
    # idempotency cache replayed the ack instead of double-applying.
    assert report.injected["dup_absorbed"] == 1
    # The partitioned members recovered by resync, not magic.
    assert report.injected["partition_drop"] > 0
    assert report.resyncs > 0


def test_standby_promotion_byte_identical():
    """Clean kill + warm-standby promotion converges to the control."""
    report = run_scenario(_config(name="crash-standby",
                                  serve_recovery="standby",
                                  crash_plan={14: "kill"}))
    assert report.converged, report.summary()
    assert report.data_ok, report.summary()
    assert report.injected["kill"] == 1
    assert report.injected["torn"] == 0
    assert report.injected["restarts"] == 1


def test_crash_runs_are_deterministic():
    a, b = run_scenario(_config()), run_scenario(_config())
    # The flight dump carries wall-clock timestamps; everything else —
    # convergence, fault counts, resyncs — must replay exactly, and the
    # recorded fault *sequence* must match event for event.
    assert dataclasses.replace(a, flight_dump=None) \
        == dataclasses.replace(b, flight_dump=None)
    def trace(report):
        # Restart events carry a measured duration; drop it.
        return [(e["kind"], {k: v for k, v in e["fields"].items()
                             if k != "seconds"})
                for e in report.flight_dump["events"]]

    assert trace(a) == trace(b)

"""ChaosTransport: seeded fault injection at the transport boundary."""

import pytest

from repro.chaos import PROFILES, ChaosError, ChaosTransport, FaultProfile
from repro.core.messages import Destination, Message, OutboundMessage
from repro.transport.inmemory import InMemoryNetwork


def outbound(receivers, payload=b"x", kind="subgroup"):
    message = Message(msg_type=6, body=payload)
    destination = (Destination.to_user(receivers[0]) if kind == "user"
                   else Destination.to_subgroup(1))
    return OutboundMessage(destination, message, tuple(receivers),
                           message.encode())


def make_chaos(profile=None, users=("a", "b", "c")):
    network = InMemoryNetwork(strict=False)
    chaos = ChaosTransport(network, profile)
    inboxes = {}
    for uid in users:
        inboxes[uid] = []
        chaos.attach(uid, inboxes[uid].append)
    return chaos, inboxes


def test_profile_validation():
    with pytest.raises(ChaosError):
        FaultProfile(drop_rate=1.5).validate()
    with pytest.raises(ChaosError):
        FaultProfile(max_delay=-1).validate()
    with pytest.raises(ChaosError):
        FaultProfile(delay_rate=0.2).validate()  # delay needs max_delay
    for profile in PROFILES.values():
        profile.validate()


def test_clean_profile_is_transparent():
    chaos, inboxes = make_chaos()
    for _ in range(50):
        chaos.send(outbound(("a", "b", "c")))
    assert all(len(inbox) == 50 for inbox in inboxes.values())
    assert sum(chaos.injected.values()) == 0
    assert chaos.in_flight == 0


def test_same_seed_same_faults():
    profile = PROFILES["lossy-reorder"]
    counts = []
    for _ in range(2):
        chaos, inboxes = make_chaos(profile)
        for i in range(200):
            chaos.send(outbound(("a", "b", "c"), payload=bytes([i % 251])))
        chaos.quiesce()
        counts.append((dict(chaos.injected),
                       [len(inbox) for inbox in inboxes.values()]))
    assert counts[0] == counts[1]
    assert counts[0][0]["drop"] > 0
    assert counts[0][0]["duplicate"] > 0
    assert counts[0][0]["delay"] > 0


def test_delay_reorders_copies():
    profile = FaultProfile(name="delay-only", seed=b"t/delay",
                           delay_rate=0.5, max_delay=4)
    chaos, inboxes = make_chaos(profile, users=("a",))
    for i in range(60):
        chaos.send(outbound(("a",), payload=bytes([i]), kind="user"))
    chaos.quiesce()
    got = [Message.decode(m).body[0] for m in inboxes["a"]]
    assert len(got) == 60
    assert sorted(got) == list(range(60))
    assert got != list(range(60))  # at least one overtake happened


def test_crash_restart_cycle():
    chaos, inboxes = make_chaos()
    chaos.crash("b")
    chaos.send(outbound(("a", "b", "c")))
    assert len(inboxes["a"]) == 1 and len(inboxes["b"]) == 0
    assert chaos.injected["crash_drop"] == 1
    with pytest.raises(ChaosError):
        chaos.crash("b")  # already down
    chaos.restart("b")
    chaos.send(outbound(("a", "b", "c")))
    assert len(inboxes["b"]) == 1  # handler survived the crash
    with pytest.raises(ChaosError):
        chaos.restart("b")  # not crashed
    with pytest.raises(ChaosError):
        chaos.crash("zz")  # never attached


def test_partition_and_heal():
    chaos, inboxes = make_chaos()
    chaos.partition(["b", "c"])
    chaos.send(outbound(("a", "b", "c")))
    assert len(inboxes["a"]) == 1
    assert len(inboxes["b"]) == 0 and len(inboxes["c"]) == 0
    assert chaos.injected["partition_drop"] == 2
    chaos.heal(["b"])
    chaos.send(outbound(("a", "b", "c")))
    assert len(inboxes["b"]) == 1 and len(inboxes["c"]) == 0
    chaos.heal()
    chaos.send(outbound(("a", "b", "c")))
    assert len(inboxes["c"]) == 1


def test_crash_drops_parked_copies_at_release_time():
    profile = FaultProfile(name="delay-only", seed=b"t/park",
                           delay_rate=0.99, max_delay=3)
    chaos, inboxes = make_chaos(profile, users=("a",))
    chaos.send(outbound(("a",), kind="user"))
    assert chaos.in_flight == 1
    chaos.crash("a")
    chaos.quiesce()
    assert inboxes["a"] == []  # parked copy died with the member
    assert chaos.injected["crash_drop"] == 1


def test_quiesce_limit():
    chaos, _ = make_chaos()
    with pytest.raises(ChaosError):
        # Nothing in flight drains instantly; force the error path by
        # parking a copy far out and capping the limit below it.
        chaos._delayed.append((10_000, 0, "a", b"x"))
        chaos.quiesce(limit=2)

"""The PR's acceptance bar.

One seeded chaos run — 10% drop, duplication, reordering, one member
crash/restart, one shard failover — against a fault-free control run
performing the identical workload and failover.  Every surviving
member's current-path keyset must match the control run byte for byte,
every member must decrypt a post-recovery data message, and nothing may
require manual intervention.  Plus the negative test: an evicted dead
member's keys must be forward-secure (useless against post-eviction
traffic).
"""

import pytest

from repro.chaos import ScenarioConfig
from repro.chaos.faults import FaultProfile
from repro.chaos.scenarios import _execute
from repro.core.client import StaleKeyError
from repro.recovery import RecoveryPolicy

#: The mandated fault mix: seeded 10% drop + duplication + reordering.
ACCEPTANCE_PROFILE = FaultProfile(
    name="acceptance", seed=b"chaos/acceptance",
    drop_rate=0.10, duplicate_rate=0.10, delay_rate=0.25, max_delay=3)


def _config(chaos: bool) -> ScenarioConfig:
    """The acceptance workload; ``chaos=False`` is the control run.

    Both runs perform the same shard failover — a standby promotion
    reseeds that shard's DRBG draws, so a control run without it would
    legitimately diverge.  Only the fault injection (and the member
    crash it must repair) differs.
    """
    return ScenarioConfig(
        name="acceptance" if chaos else "acceptance-control",
        stack="cluster",
        profile=ACCEPTANCE_PROFILE if chaos else "clean",
        n_initial=18, rounds=12, n_shards=3,
        crash_at={3: ["u1"]} if chaos else {},
        restart_at={7: ["u1"]} if chaos else {},
        fail_shard_at={4: 1}, promote_at={8: 1},
        policy=RecoveryPolicy(dead_after=8, max_attempts=8),
        seed=b"acceptance")


def test_acceptance_chaos_run_matches_fault_free_control():
    chaos_run, chaos_report = _execute(_config(chaos=True))
    control_run, control_report = _execute(_config(chaos=False))

    # Both runs healed on their own.
    assert chaos_report.passed, chaos_report.summary()
    assert control_report.passed, control_report.summary()
    # The chaos run actually took damage, including the member crash.
    assert chaos_report.injected["drop"] > 0
    assert chaos_report.injected["duplicate"] > 0
    assert chaos_report.injected["delay"] > 0
    assert chaos_report.injected["crash_drop"] > 0
    assert chaos_report.resyncs > 0
    # Nobody was evicted: the crash window stayed inside dead_after and
    # the resync protocol repaired the victim.
    assert chaos_report.evicted == []

    # Server-side key state is byte-identical: resync replies draw from
    # a dedicated DRBG stream, so serving recovery never perturbed the
    # rekey key schedule.
    assert chaos_run.group_key() == control_run.group_key()
    assert chaos_run.coordinator.group_key_ref() \
        == control_run.coordinator.group_key_ref()

    # Same membership in both runs...
    assert sorted(chaos_run.members) == sorted(control_run.members)
    survivors = chaos_run._live()
    assert sorted(survivors) == sorted(control_run._live())
    assert "u1" in survivors  # the crashed-and-restarted member healed

    # ...and every survivor's current-path keyset matches the control
    # run byte for byte: leaf id, every path (version, key) pair, and
    # the root reference.
    for uid in survivors:
        leaf_id, records, root_ref = control_run.coordinator.member_records(
            uid)
        chaos_client = chaos_run._client(uid)
        control_client = control_run._client(uid)
        assert chaos_client.leaf_node_id == leaf_id
        assert chaos_client.root_ref == control_client.root_ref == root_ref
        for record in records:
            expected = (record.version, record.key)
            assert chaos_client.keys[record.node_id] == expected, uid
            assert control_client.keys[record.node_id] == expected, uid

    # Post-recovery data flows to everyone (checked inside _execute via
    # data_ok above; assert the probe really reached all survivors).
    for uid in survivors:
        assert chaos_run.members[uid].received[-1] == b"probe"


def test_evicted_dead_member_is_forward_secure():
    config = ScenarioConfig(
        name="evict-fs", stack="server", profile="drop10",
        n_initial=12, rounds=10, crash_at={2: ["u2"]},
        policy=RecoveryPolicy(dead_after=3), seed=b"acceptance-fs")
    harness, report = _execute(config)
    assert report.passed, report.summary()
    assert "u2" in report.evicted
    assert not harness.server.is_member("u2")

    dead = harness.members["u2"].client
    old_keys = {key for _version, key in dead.keys.values()}
    assert old_keys  # it really held group state before dying

    # Every key on the dead member's former path was replaced: nothing
    # it holds appears anywhere in the server's current tree.
    live_keys = {node.key for node in harness.server.tree.nodes()}
    assert not old_keys & live_keys

    # And it cannot open post-eviction traffic.
    sealed = harness.server.seal_group_message(b"after eviction")
    assert "u2" not in sealed.receivers
    with pytest.raises(StaleKeyError):
        dead.open_data(sealed.encoded)

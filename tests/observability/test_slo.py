"""SLO parsing, evaluation, burn rates, and the spec-file pipeline."""

import pytest

from repro.observability.metrics import LATENCY_BUCKETS_S, MetricRegistry
from repro.observability.slo import (SLO, SLOError, burn_rate, evaluate,
                                     evaluate_one, parse_slo,
                                     render_slo_report, slos_from_spec_text)


def _registry_with_rekeys(fast=0, slow=0, threshold_s=0.001):
    registry = MetricRegistry("test")
    hist = registry.histogram("rekey_seconds", "rekeys",
                              labels=("op",))
    for _ in range(fast):
        hist.observe(threshold_s / 10, op="join")
    for _ in range(slow):
        hist.observe(threshold_s * 100, op="join")
    return registry


# -- parsing ----------------------------------------------------------------


def test_parse_latency_slo():
    slo = parse_slo("join-p99",
                    "latency rekey_seconds op=join threshold=50ms target=99%")
    assert slo.kind == "latency"
    assert slo.metric == "rekey_seconds"
    assert slo.labels == (("op", "join"),)
    assert slo.threshold_s == pytest.approx(0.050)
    assert slo.target == pytest.approx(0.99)
    assert "join-p99" in slo.describe()


def test_parse_availability_slo():
    slo = parse_slo("avail", "availability target=99.5%")
    assert slo.kind == "availability"
    assert slo.target == pytest.approx(0.995)


def test_parse_target_as_fraction_and_duration_units():
    assert parse_slo("a", "availability target=0.999").target == \
        pytest.approx(0.999)
    slo = parse_slo("l", "latency m threshold=150us target=90%")
    assert slo.threshold_s == pytest.approx(150e-6)
    slo = parse_slo("l", "latency m threshold=2s target=90%")
    assert slo.threshold_s == pytest.approx(2.0)


@pytest.mark.parametrize("declaration", [
    "",                                       # empty
    "percentile m target=99%",                # unknown kind
    "latency m threshold=50ms",               # no target
    "latency threshold=50ms target=99%",      # no metric
    "latency m target=99%",                   # no threshold
    "availability m target=99%",              # availability takes no metric
    "availability target=99% op=join",        # ... and no labels
    "latency m n threshold=1ms target=9%",    # two metric names
    "latency m threshold=0ms target=99%",     # nonpositive duration
    "latency m threshold=5ms target=100%",    # target out of range
])
def test_parse_rejects_malformed(declaration):
    with pytest.raises(SLOError):
        parse_slo("bad", declaration)


def test_slos_from_spec_text():
    slos = slos_from_spec_text(
        "group-id = 1\n"
        "slo-join = latency rekey_seconds op=join threshold=50ms "
        "target=99%\n"
        "slo-avail = availability target=99.5%\n")
    assert [slo.name for slo in slos] == ["avail", "join"]


def test_spec_parser_rejects_unknown_nonslo_keys():
    from repro.specfile import SpecError, parse_spec
    with pytest.raises(SpecError):
        parse_spec("slotless-typo = 1\n")


# -- evaluation -------------------------------------------------------------


def test_latency_compliance_counts_buckets_within_threshold():
    threshold = LATENCY_BUCKETS_S[10]
    registry = _registry_with_rekeys(fast=98, slow=2,
                                     threshold_s=threshold)
    slo = SLO(name="p99", kind="latency", target=0.99,
              metric="rekey_seconds", labels=(("op", "join"),),
              threshold_s=threshold)
    status = evaluate_one(slo, registry.snapshot())
    assert status.total == 100
    assert status.good == 98
    assert status.compliance == pytest.approx(0.98)
    assert not status.compliant
    assert status.bad == 2
    assert status.budget_remaining < 0


def test_label_filter_restricts_series():
    registry = _registry_with_rekeys(fast=10)
    hist = registry._families["rekey_seconds"]
    hist.observe(10.0, op="leave")  # slow, but a different op
    slo = SLO(name="p99", kind="latency", target=0.5,
              metric="rekey_seconds", labels=(("op", "join"),),
              threshold_s=LATENCY_BUCKETS_S[-1])
    status = evaluate_one(slo, registry.snapshot())
    assert status.total == 10  # the leave observation was filtered out


def test_availability_counts_sheds_and_errors_as_bad():
    registry = MetricRegistry("test")
    requests = registry.counter("serve_requests_total", "reqs",
                                labels=("type",))
    sheds = registry.counter("serve_shed_total", "sheds",
                             labels=("reason",))
    requests.inc(200, type="join")
    sheds.inc(3, reason="saturated")
    slo = SLO(name="avail", kind="availability", target=0.995)
    status = evaluate_one(slo, registry.snapshot())
    assert status.total == 200
    assert status.bad == 3
    assert not status.compliant  # 197/200 = 98.5% < 99.5%


def test_empty_snapshot_is_vacuously_compliant():
    registry = MetricRegistry("test")
    slo = SLO(name="avail", kind="availability", target=0.999)
    status = evaluate_one(slo, registry.snapshot())
    assert status.total == 0
    assert status.compliance == 1.0
    assert status.compliant


def test_evaluate_accepts_document_envelope():
    """Scraped documents wrap metrics; evaluate must unwrap them."""
    registry = _registry_with_rekeys(fast=5)
    document = {"schema": "repro-metrics/1", "label": "x",
                "metrics": registry.snapshot()}
    slo = SLO(name="p", kind="latency", target=0.5,
              metric="rekey_seconds", labels=(("op", "join"),),
              threshold_s=LATENCY_BUCKETS_S[-1])
    assert evaluate_one(slo, document).total == 5


def test_burn_rate_between_snapshots():
    registry = MetricRegistry("test")
    requests = registry.counter("serve_requests_total", "reqs",
                                labels=("type",))
    errors = registry.counter("serve_errors_total", "errs",
                              labels=("op",))
    requests.inc(100, type="join")
    older = registry.snapshot()
    requests.inc(100, type="join")
    errors.inc(1, op="join")
    newer = registry.snapshot()
    slo = SLO(name="avail", kind="availability", target=0.99)
    # 1 bad / 100 new = 1% bad against a 1% budget: burning at 1.0x.
    assert burn_rate(slo, older, newer) == pytest.approx(1.0)
    # No new traffic: burn is zero by definition.
    assert burn_rate(slo, newer, newer) == 0.0


def test_render_slo_report_marks_breaches():
    threshold = LATENCY_BUCKETS_S[10]
    registry = _registry_with_rekeys(fast=1, slow=9, threshold_s=threshold)
    slos = [SLO(name="p99", kind="latency", target=0.99,
                metric="rekey_seconds", labels=(("op", "join"),),
                threshold_s=threshold),
            SLO(name="avail", kind="availability", target=0.9)]
    text = render_slo_report(evaluate(slos, registry.snapshot()),
                             burn_rates={"p99": 42.0})
    assert "BREACH" in text
    assert "42.00x" in text
    assert "avail" in text
    assert render_slo_report([]) == "no objectives declared\n"

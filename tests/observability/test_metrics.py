"""MetricRegistry: families, histogram math, snapshot/merge determinism."""

import math
import subprocess
import sys

import pytest

from repro.observability.metrics import (COUNT_BUCKETS, LATENCY_BUCKETS_S,
                                         NULL_REGISTRY, SIZE_BUCKETS_BYTES,
                                         MetricError, MetricRegistry,
                                         merge_snapshots)


class TestFamilies:
    def test_counter_inc_and_value(self):
        registry = MetricRegistry("t")
        family = registry.counter("requests_total", "Requests.",
                                  labels=("op",))
        family.labels(op="join").inc()
        family.labels(op="join").inc(2)
        family.labels(op="leave").inc()
        assert family.labels(op="join").value == 3
        assert family.labels(op="leave").value == 1

    def test_counter_rejects_negative(self):
        registry = MetricRegistry("t")
        counter = registry.counter("c", "").labels()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_family_shortcut_with_labels(self):
        registry = MetricRegistry("t")
        family = registry.counter("c", "", labels=("op",))
        family.inc(5, op="join")
        assert family.labels(op="join").value == 5

    def test_gauge_set_inc_dec(self):
        registry = MetricRegistry("t")
        gauge = registry.gauge("g", "").labels()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_labels_cached_identity(self):
        registry = MetricRegistry("t")
        family = registry.counter("c", "", labels=("op",))
        assert family.labels(op="x") is family.labels(op="x")

    def test_declaration_idempotent(self):
        registry = MetricRegistry("t")
        first = registry.counter("c", "Help.", labels=("op",))
        again = registry.counter("c", "Help.", labels=("op",))
        assert first is again

    def test_declaration_mismatch_raises(self):
        registry = MetricRegistry("t")
        registry.counter("c", "", labels=("op",))
        with pytest.raises(MetricError):
            registry.counter("c", "", labels=("other",))
        with pytest.raises(MetricError):
            registry.gauge("c", "")

    def test_unknown_label_rejected(self):
        registry = MetricRegistry("t")
        family = registry.counter("c", "", labels=("op",))
        with pytest.raises(MetricError):
            family.labels(op="x", extra="y")


class TestHistogramBuckets:
    def test_latency_bounds_are_powers_of_two_microseconds(self):
        assert LATENCY_BUCKETS_S[0] == pytest.approx(1e-6)
        for lower, upper in zip(LATENCY_BUCKETS_S, LATENCY_BUCKETS_S[1:]):
            assert upper == pytest.approx(2 * lower)
        # Spans 1us .. ~16.8s: covers every stage and request latency.
        assert LATENCY_BUCKETS_S[-1] > 10.0

    def test_size_and_count_bounds(self):
        assert SIZE_BUCKETS_BYTES[0] == 64.0
        assert SIZE_BUCKETS_BYTES[-1] == float(1 << 21)
        assert COUNT_BUCKETS[0] == 1.0
        assert COUNT_BUCKETS[-1] == float(1 << 16)

    def test_boundary_value_lands_in_its_bucket(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(1.0, 2.0, 4.0)
                                       ).labels()
        # A value equal to an upper bound belongs to that bucket
        # (le semantics: count of observations <= bound).
        histogram.observe(1.0)
        histogram.observe(2.0)
        histogram.observe(4.0)
        histogram.observe(5.0)   # overflow
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(12.0)
        assert histogram.min == pytest.approx(1.0)
        assert histogram.max == pytest.approx(5.0)

    def test_mean(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(10.0,)).labels()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(2.0)


class TestHistogramQuantiles:
    def _uniform(self, n=1000, hi=1.0):
        registry = MetricRegistry("t")
        histogram = registry.histogram(
            "h", "", bounds=tuple(hi * k / 20 for k in range(1, 21))
        ).labels()
        for index in range(n):
            histogram.observe(hi * (index + 0.5) / n)
        return histogram

    def test_quantiles_of_uniform_data(self):
        histogram = self._uniform()
        # With 20 equal buckets over uniform data, interpolation puts
        # each quantile within one bucket width of the true value.
        for q in (0.1, 0.5, 0.9, 0.99):
            assert histogram.quantile(q) == pytest.approx(q, abs=0.06)

    def test_quantile_clamped_to_observed_range(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(1.0, 10.0)).labels()
        histogram.observe(3.0)
        assert histogram.quantile(0.0) >= histogram.min
        assert histogram.quantile(1.0) <= histogram.max

    def test_quantile_in_overflow_bucket_returns_max(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(1.0,)).labels()
        histogram.observe(100.0)
        histogram.observe(200.0)
        assert histogram.quantile(0.99) == pytest.approx(200.0)

    def test_quantile_empty_is_zero(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(1.0,)).labels()
        assert histogram.quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        registry = MetricRegistry("t")
        histogram = registry.histogram("h", "", bounds=(1.0,)).labels()
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


def _build_registry(insertion_order):
    """Same series content, inserted in the given order."""
    registry = MetricRegistry("worker")
    for name, op in insertion_order:
        registry.counter(name, "Help.", labels=("op",)).inc(3, op=op)
    registry.gauge("size", "Help.").set(7)
    registry.histogram("lat", "Help.", bounds=(1.0, 2.0)).observe(1.5)
    return registry


class TestSnapshotDeterminism:
    ORDER_A = [("b_total", "join"), ("a_total", "leave"), ("a_total", "join")]
    ORDER_B = [("a_total", "join"), ("b_total", "join"), ("a_total", "leave")]

    def test_snapshot_independent_of_insertion_order(self):
        assert (_build_registry(self.ORDER_A).snapshot()
                == _build_registry(self.ORDER_B).snapshot())

    def test_snapshot_stable_across_hash_seeds(self):
        script = (
            "import json, sys; sys.path.insert(0, 'src')\n"
            "from tests.observability.test_metrics import _build_registry, "
            "TestSnapshotDeterminism\n"
            "snap = _build_registry(TestSnapshotDeterminism.ORDER_A)"
            ".snapshot()\n"
            "print(json.dumps(snap, sort_keys=False))\n"
        )
        outputs = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True, cwd=".",
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src:."})
            outputs.add(result.stdout)
        assert len(outputs) == 1

    def test_snapshot_is_json_clean(self):
        import json
        snapshot = _build_registry(self.ORDER_A).snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestMerge:
    def test_counters_and_histograms_add_gauges_adopt(self):
        first = _build_registry(TestSnapshotDeterminism.ORDER_A)
        second = _build_registry(TestSnapshotDeterminism.ORDER_B)
        merged = merge_snapshots(first.snapshot(), second.snapshot())
        a_series = {tuple(sorted(s["labels"].items())): s["value"]
                    for s in merged["counters"]["a_total"]["series"]}
        assert a_series[(("op", "join"),)] == 6
        assert a_series[(("op", "leave"),)] == 6
        assert merged["gauges"]["size"]["series"][0]["value"] == 7
        histogram = merged["histograms"]["lat"]["series"][0]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(3.0)

    def test_merge_into_registry(self):
        first = _build_registry(TestSnapshotDeterminism.ORDER_A)
        registry = MetricRegistry("aggregate")
        registry.merge(first.snapshot())
        registry.merge(first.snapshot())
        family = registry.get("a_total")
        assert family.labels(op="join").value == 6

    def test_merge_bounds_mismatch_raises(self):
        registry = MetricRegistry("t")
        registry.histogram("lat", "Help.", bounds=(5.0,)).observe(1.0)
        other = MetricRegistry("o")
        other.histogram("lat", "Help.", bounds=(1.0, 2.0)).observe(1.0)
        with pytest.raises(MetricError):
            registry.merge(other.snapshot())


class TestResetAndCollectors:
    def test_reset_values_preserves_child_identity(self):
        registry = MetricRegistry("t")
        counter = registry.counter("c", "", labels=("op",)).labels(op="x")
        counter.inc(5)
        registry.reset_values()
        assert counter.value == 0
        assert registry.counter("c", "", labels=("op",)
                                ).labels(op="x") is counter

    def test_collector_runs_before_snapshot(self):
        registry = MetricRegistry("t")
        gauge = registry.gauge("g", "").labels()
        registry.add_collector(lambda reg: gauge.set(42))
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["g"]["series"][0]["value"] == 42


class TestNullRegistry:
    def test_null_registry_accepts_everything(self):
        family = NULL_REGISTRY.counter("c", "", labels=("op",))
        family.inc(1, op="x")
        family.labels(op="x").inc()
        NULL_REGISTRY.gauge("g", "").set(1)
        NULL_REGISTRY.histogram("h", "").observe(1.0)
        NULL_REGISTRY.add_collector(lambda reg: None)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

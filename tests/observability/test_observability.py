"""Unit tests for the shared observability core."""

import pytest

from repro.observability import (NULL_INSTRUMENTATION, NULL_TRACE, Counters,
                                 Instrumentation, NullInstrumentation,
                                 NullTraceBuffer, StageClock, StageTimers,
                                 Stopwatch, TimerStat, TraceBuffer)


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        assert counters.get("x") == 0
        assert counters.add("x") == 1
        assert counters.add("x", 5) == 6
        assert counters["x"] == 6
        assert "x" in counters and "y" not in counters

    def test_snapshot_is_independent(self):
        counters = Counters()
        counters.add("a", 2)
        snap = counters.snapshot()
        counters.add("a")
        assert snap == {"a": 2}

    def test_merge_and_clear(self):
        left, right = Counters(), Counters()
        left.add("a", 1)
        right.add("a", 2)
        right.add("b", 3)
        left.merge(right)
        assert left.snapshot() == {"a": 3, "b": 3}
        left.clear()
        assert len(left) == 0

    def test_iteration_is_sorted(self):
        counters = Counters()
        counters.add("zeta")
        counters.add("alpha")
        assert [name for name, _ in counters] == ["alpha", "zeta"]


class FakeClock:
    """Deterministic monotonic clock for timer tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestStageClock:
    def test_stages_and_total(self):
        clock = FakeClock()
        stage_clock = StageClock(clock=clock)
        with stage_clock.stage("plan"):
            clock.now += 1.0
        clock.now += 0.25          # inter-stage work counts in the total
        with stage_clock.stage("encrypt"):
            clock.now += 2.0
        total = stage_clock.stop()
        assert stage_clock.stages == {"plan": 1.0, "encrypt": 2.0}
        assert total == pytest.approx(3.25)

    def test_total_fixed_after_stop(self):
        clock = FakeClock()
        stage_clock = StageClock(clock=clock)
        clock.now = 2.0
        assert stage_clock.stop() == 2.0
        clock.now = 99.0
        assert stage_clock.total == 2.0

    def test_repeated_stage_accumulates(self):
        clock = FakeClock()
        stage_clock = StageClock(clock=clock)
        for _ in range(3):
            with stage_clock.stage("plan"):
                clock.now += 0.5
        assert stage_clock.stages["plan"] == pytest.approx(1.5)


class TestStageTimers:
    def test_stat_aggregation(self):
        timers = StageTimers()
        for seconds in (1.0, 3.0, 2.0):
            timers.add("join.plan", seconds)
        stat = timers.stat("join.plan")
        assert stat.count == 3
        assert stat.total == pytest.approx(6.0)
        assert stat.minimum == 1.0 and stat.maximum == 3.0
        assert stat.mean == pytest.approx(2.0)

    def test_missing_stat_is_empty(self):
        stat = StageTimers().stat("nope")
        assert stat.count == 0 and stat.mean == 0.0

    def test_snapshot_and_names(self):
        timers = StageTimers()
        timers.add("b", 1.0)
        timers.add("a", 2.0)
        assert timers.names() == ["a", "b"]
        assert timers.snapshot()["a"] == (1, 2.0, 2.0, 2.0)

    def test_time_context_manager(self):
        timers = StageTimers()
        with timers.time("region"):
            pass
        assert timers.stat("region").count == 1


class TestStopwatch:
    def test_elapsed_and_restart(self):
        clock = FakeClock()
        watch = Stopwatch(clock=clock)
        clock.now = 5.0
        assert watch.elapsed() == 5.0
        watch.restart()
        clock.now = 7.5
        assert watch.elapsed() == 2.5


class TestTraceBuffer:
    def test_emit_and_read(self):
        trace = TraceBuffer(capacity=8)
        trace.emit("a", n=1)
        trace.emit("b", n=2)
        names = [event.name for event in trace.events()]
        assert names == ["a", "b"]
        assert trace.events()[1].fields == {"n": 2}
        assert trace.dropped == 0

    def test_ring_overwrites_oldest(self):
        trace = TraceBuffer(capacity=3)
        for index in range(5):
            trace.emit(f"e{index}")
        assert [event.name for event in trace.events()] == ["e2", "e3", "e4"]
        assert trace.dropped == 2
        assert len(trace) == 3

    def test_clear(self):
        trace = TraceBuffer(capacity=2)
        trace.emit("x")
        trace.clear()
        assert trace.events() == [] and trace.dropped == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_null_buffer_is_inert(self):
        assert NULL_TRACE.enabled is False
        NULL_TRACE.emit("ignored", x=1)
        assert NULL_TRACE.events() == []
        assert len(NULL_TRACE) == 0
        assert isinstance(NULL_TRACE, NullTraceBuffer)


class TestInstrumentation:
    def test_record_run_aggregates(self):
        inst = Instrumentation("test")
        clock = FakeClock()
        stage_clock = StageClock(clock=clock)
        with stage_clock.stage("plan"):
            clock.now += 1.0
        stage_clock.stop()
        inst.record_run("join", stage_clock)
        inst.record_run("join", stage_clock)
        assert inst.counters.get("join.runs") == 2
        assert inst.timers.stat("join.plan").count == 2
        assert inst.timers.stat("join.total").total == pytest.approx(2.0)

    def test_trace_opt_in(self):
        trace = TraceBuffer(capacity=4)
        inst = Instrumentation("test", trace=trace)
        clock = StageClock(clock=FakeClock())
        clock.stop()
        inst.record_run("leave", clock)
        assert [event.name for event in trace.events()] == ["leave.run"]

    def test_snapshot_and_clear(self):
        inst = Instrumentation("test")
        inst.count("things", 3)
        snap = inst.snapshot()
        assert snap["name"] == "test"
        assert snap["counters"] == {"things": 3}
        inst.clear()
        assert inst.snapshot()["counters"] == {}

    def test_null_instrumentation_is_inert(self):
        NULL_INSTRUMENTATION.count("x")
        with NULL_INSTRUMENTATION.stage("y"):
            pass
        clock = StageClock(clock=FakeClock())
        clock.stop()
        NULL_INSTRUMENTATION.record_run("op", clock)
        assert NULL_INSTRUMENTATION.snapshot()["counters"] == {}
        assert isinstance(NULL_INSTRUMENTATION, NullInstrumentation)

"""Registry concurrency: collectors and snapshots race in lockstep.

The transport layers publish socket stats through *delta collectors*:
each ``snapshot()`` call runs ``collector(registry)``, which reads an
external counter, increments its series by the delta since its own
baseline, and advances the baseline.  Two unserialised concurrent
snapshots would both read the same baseline and apply the same delta
twice — the double-count this file pins down, plus general
histogram-consistency under mutation.
"""

import threading

import pytest

from repro.observability.metrics import MetricRegistry


class _Barrier:
    """Start-line barrier so threads hit snapshot() truly concurrently."""

    def __init__(self, parties):
        self._barrier = threading.Barrier(parties)

    def wait(self):
        self._barrier.wait()


def _delta_collector(registry, source, state):
    """The transport idiom: publish `source` as a counter via deltas."""
    counter = registry.counter("external_events_total", "external")

    def collect(_registry):
        current = source["value"]
        delta = current - state["baseline"]
        if delta > 0:
            counter.inc(delta)
        state["baseline"] = current

    registry.add_collector(collect)
    return counter


def test_concurrent_snapshots_do_not_double_count_collector_deltas():
    registry = MetricRegistry("stress")
    source = {"value": 0}
    state = {"baseline": 0}
    _delta_collector(registry, source, state)

    n_threads = 8
    rounds = 60
    start = _Barrier(n_threads)
    errors = []

    def snapshotter():
        try:
            start.wait()
            for _ in range(rounds):
                registry.snapshot()
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=snapshotter)
               for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    # Keep the external counter moving while snapshots race: every
    # concurrent pair of snapshots that reads one baseline would
    # overshoot the true total.
    for value in range(1, 2001):
        source["value"] = value
    for thread in threads:
        thread.join()
    assert not errors

    final = registry.snapshot()
    total = sum(series["value"]
                for series in final["counters"]["external_events_total"]
                ["series"])
    assert total == source["value"], \
        f"collector applied {total - source['value']} duplicate deltas"


def test_lockstep_snapshot_while_collector_mutates_series():
    """Collectors update series (which take the registry data lock)
    *inside* snapshot — the dedicated collector lock must not deadlock
    against it, even from many threads at once."""
    registry = MetricRegistry("stress")
    gauge = registry.gauge("external_depth", "depth")
    calls = {"n": 0}

    def collect(_registry):
        calls["n"] += 1
        gauge.set(calls["n"])

    registry.add_collector(collect)

    n_threads = 6
    start = _Barrier(n_threads)
    done = []

    def worker():
        start.wait()
        for _ in range(50):
            registry.snapshot()
        done.append(True)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(done) == n_threads, "snapshot/collector deadlocked"
    # Serialised collectors ran exactly once per snapshot.
    assert calls["n"] == n_threads * 50
    value = registry.snapshot()["gauges"]["external_depth"]["series"][0][
        "value"]
    assert value == calls["n"]


def test_histogram_snapshot_is_internally_consistent_under_mutation():
    registry = MetricRegistry("stress")
    hist = registry.histogram("work_seconds", "work", labels=("op",))
    stop = threading.Event()

    def mutate():
        value = 1e-6
        while not stop.is_set():
            hist.observe(value, op="join")
            value = value * 7 % 1.0 + 1e-6

    thread = threading.Thread(target=mutate)
    thread.start()
    try:
        for _ in range(200):
            snapshot = registry.snapshot()
            families = snapshot["histograms"].get("work_seconds")
            if not families:
                continue
            for series in families["series"]:
                # Bucket counts must always sum to the series count —
                # a torn read would break this invariant.
                assert sum(series["counts"]) == series["count"]
                assert series["count"] >= 0
    finally:
        stop.set()
        thread.join()


def test_collectors_registered_during_snapshots_still_run():
    registry = MetricRegistry("stress")
    counter = registry.counter("late_total", "late")
    hits = []

    def late_collector(_registry):
        hits.append(1)
        counter.inc()

    def snapshots():
        for _ in range(100):
            registry.snapshot()

    thread = threading.Thread(target=snapshots)
    thread.start()
    registry.add_collector(late_collector)
    thread.join()
    registry.snapshot()
    assert hits, "late-registered collector never ran"

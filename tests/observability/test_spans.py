"""Span tracing: IDs, nesting, wire trailer, end-to-end propagation."""

import pytest

from repro.core.pipeline import STAGES
from repro.core.server import GroupKeyServer, ServerConfig
from repro.observability import Instrumentation
from repro.observability.spans import (NULL_TRACER, TRAILER_SIZE, SpanContext,
                                       Tracer, attach_trace_trailer,
                                       split_trace_trailer)


class TestSpanBasics:
    def test_root_span_starts_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("a") as first:
            pass
        with tracer.span("b") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.parent_id == 0 and second.parent_id == 0

    def test_nested_spans_share_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert tracer.current() is None

    def test_ids_are_deterministic(self):
        def run():
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            return [(s.trace_id, s.span_id, s.parent_id)
                    for s in tracer.finished()]

        assert run() == run()

    def test_exception_marks_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.error

    def test_remote_parent_continues_trace(self):
        tracer = Tracer()
        remote = SpanContext(trace_id=77, span_id=12)
        with tracer.span("local", parent=remote) as span:
            pass
        assert span.trace_id == 77
        assert span.parent_id == 12

    def test_ring_bounds_finished_spans(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished()) == 2
        assert tracer.dropped == 3
        assert [s.name for s in tracer.finished()] == ["s3", "s4"]

    def test_export_shape(self):
        tracer = Tracer()
        with tracer.span("op", user="u1"):
            pass
        (exported,) = tracer.export()
        assert exported["name"] == "op"
        assert exported["attributes"] == {"user": "u1"}
        assert exported["duration_ns"] >= 0
        assert exported["error"] is False

    def test_attributes_and_set_chaining(self):
        tracer = Tracer()
        with tracer.span("op", a=1) as span:
            span.set("b", 2).set("c", 3)
        assert span.attributes == {"a": 1, "b": 2, "c": 3}


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", key="value") as span:
            assert span.trace_id == 0
            span.set("x", 1)
        assert NULL_TRACER.finished() == []
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.current() is None


class TestWireTrailer:
    def test_round_trip(self):
        payload = b"protocol-bytes"
        context = SpanContext(trace_id=123456789, span_id=42)
        datagram = attach_trace_trailer(payload, context)
        assert len(datagram) == len(payload) + TRAILER_SIZE
        assert datagram.startswith(payload)
        recovered, trace = split_trace_trailer(datagram)
        assert recovered == payload
        assert trace == context

    def test_untagged_datagram_passes_through(self):
        payload = b"no-trailer-here"
        recovered, trace = split_trace_trailer(payload)
        assert recovered == payload
        assert trace is None

    def test_short_datagram_passes_through(self):
        recovered, trace = split_trace_trailer(b"tiny")
        assert recovered == b"tiny"
        assert trace is None


class TestPipelinePropagation:
    """A trace follows join -> rekey pipeline -> every stage."""

    def _server(self):
        tracer = Tracer()
        instrumentation = Instrumentation("traced", tracer=tracer)
        server = GroupKeyServer(ServerConfig(signing="none", seed=b"seed"),
                                instrumentation=instrumentation)
        return server, tracer

    def test_join_produces_one_trace_with_all_stages(self):
        server, tracer = self._server()
        key = server.new_individual_key()
        server.join("u1", key)

        spans = tracer.finished()
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1, "one operation => one trace"
        (root,) = [span for span in spans if span.parent_id == 0]
        assert root.name == "rekey.join"
        assert root.attributes["user"] == "u1"
        stage_spans = {span.name for span in spans if span is not root}
        assert stage_spans == set(STAGES)
        for span in spans:
            if span is not root:
                assert span.parent_id == root.span_id

    def test_run_carries_trace_ids(self):
        server, tracer = self._server()
        server.join("u1", server.new_individual_key())
        outcome = server.leave("u1")
        assert outcome is not None
        leave_roots = [span for span in tracer.finished()
                       if span.name == "rekey.leave"]
        assert len(leave_roots) == 1

    def test_consecutive_operations_get_distinct_traces(self):
        server, tracer = self._server()
        server.join("u1", server.new_individual_key())
        server.join("u2", server.new_individual_key())
        roots = [span for span in tracer.finished() if span.parent_id == 0]
        assert len(roots) == 2
        assert roots[0].trace_id != roots[1].trace_id

    def test_failed_plan_marks_error_span(self):
        server, tracer = self._server()
        with pytest.raises(Exception):
            server.leave("nobody")   # not a member -> plan stage raises
        plan_spans = [span for span in tracer.finished()
                      if span.name == "plan"]
        assert plan_spans and plan_spans[-1].error
        roots = [span for span in tracer.finished() if span.parent_id == 0]
        assert roots and roots[-1].error

"""Flight recorder: ring semantics, dumps, schema validation."""

import json
import threading

import pytest

from repro.observability.flight import (DUMP_MIN_INTERVAL_S, FLIGHT_SCHEMA,
                                        NULL_FLIGHT, FlightError,
                                        FlightRecorder, validate_flight)


class FakeClock:
    def __init__(self):
        self.now = 1  # monotonic_ns is never zero; zero means "no dump yet"

    def __call__(self):
        return self.now


def test_record_and_events_roundtrip():
    recorder = FlightRecorder(capacity=8)
    recorder.record("req", trace_id=7, op="join", user="u1")
    recorder.record("done", trace_id=7, op="join")
    events = recorder.events()
    assert [event[2] for event in events] == ["req", "done"]
    assert events[0][3] == 7
    assert events[0][4] == {"op": "join", "user": "u1"}
    assert len(recorder) == 2
    assert recorder.recorded == 2
    assert recorder.dropped == 0


def test_ring_overwrites_oldest_and_counts_drops():
    recorder = FlightRecorder(capacity=4)
    for index in range(10):
        recorder.record("e", seq_hint=index)
    events = recorder.events()
    assert len(events) == 4
    # Oldest first, and only the newest four survive.
    assert [event[4]["seq_hint"] for event in events] == [6, 7, 8, 9]
    assert recorder.recorded == 10
    assert recorder.dropped == 6


def test_sequence_numbers_strictly_increase_across_wrap():
    recorder = FlightRecorder(capacity=3)
    for _ in range(7):
        recorder.record("e")
    seqs = [event[0] for event in recorder.events()]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_dump_document_is_schema_valid(tmp_path):
    recorder = FlightRecorder(capacity=16)
    recorder.record("req", trace_id=3, op="join")
    recorder.record("fault.drop", trace_id=3, user="u1")
    path = tmp_path / "flight.json"
    document = recorder.dump("chaos", path=str(path))
    validate_flight(document)
    assert document["schema"] == FLIGHT_SCHEMA
    assert document["reason"] == "chaos"
    assert [event["kind"] for event in document["events"]] == \
        ["req", "fault.drop"]
    # The on-disk copy round-trips through validation too.
    with open(path) as handle:
        validate_flight(json.load(handle))
    assert recorder.dump_count == 1


def test_maybe_dump_rate_limits():
    clock = FakeClock()
    recorder = FlightRecorder(capacity=4, clock=clock)
    recorder.record("e")
    assert recorder.maybe_dump("error") is not None
    # Within the interval: suppressed.
    clock.now += int(DUMP_MIN_INTERVAL_S * 1e9) // 2
    assert recorder.maybe_dump("error") is None
    # Past the interval: allowed again.
    clock.now += int(DUMP_MIN_INTERVAL_S * 1e9)
    assert recorder.maybe_dump("error") is not None


def test_clear_keeps_sequence_monotonic():
    recorder = FlightRecorder(capacity=4)
    recorder.record("a")
    recorder.clear()
    assert recorder.events() == []
    recorder.record("b")
    (event,) = recorder.events()
    assert event[0] == 1  # sequence continued, did not restart


def test_null_flight_is_inert_but_schema_valid():
    assert not NULL_FLIGHT.enabled
    NULL_FLIGHT.record("anything", trace_id=1, x=2)
    assert NULL_FLIGHT.events() == []
    assert len(NULL_FLIGHT) == 0
    assert NULL_FLIGHT.maybe_dump("error") is None
    validate_flight(NULL_FLIGHT.dump("signal"))


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.pop("schema"), "schema"),
    (lambda d: d.update(schema="repro-flight/9"), "schema"),
    (lambda d: d.pop("events"), "events"),
    (lambda d: d.update(events=[{"seq": 0}]), "missing"),
    (lambda d: d["events"].reverse(), "increasing"),
])
def test_validate_flight_rejects_malformed(mutate, message):
    recorder = FlightRecorder(capacity=4)
    recorder.record("a")
    recorder.record("b")
    document = recorder.dump("test")
    mutate(document)
    with pytest.raises(FlightError, match=message):
        validate_flight(document)


def test_concurrent_recording_loses_nothing():
    recorder = FlightRecorder(capacity=4096)
    n_threads, per_thread = 8, 200

    def work(tid):
        for index in range(per_thread):
            recorder.record("e", tid=tid, i=index)

    threads = [threading.Thread(target=work, args=(tid,))
               for tid in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert recorder.recorded == n_threads * per_thread
    events = recorder.events()
    assert len(events) == n_threads * per_thread
    seqs = [event[0] for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)

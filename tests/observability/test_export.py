"""Exporters: snapshot schema, Prometheus golden, paper-shaped report."""

import io
import json

import pytest

from repro.observability.export import (SNAPSHOT_SCHEMA, build_snapshot,
                                        load_snapshot, render_report,
                                        to_prometheus, validate_snapshot,
                                        write_snapshot)
from repro.observability.metrics import MetricRegistry
from repro.observability.spans import Tracer


def _sample_registry():
    registry = MetricRegistry("sample")
    requests = registry.counter("server_requests_total",
                                "Requests processed by outcome.",
                                labels=("op", "status"))
    requests.inc(3, op="join", status="ok")
    requests.inc(1, op="leave", status="ok")
    registry.gauge("group_size", "Members.").set(17)
    histogram = registry.histogram("rekey_seconds", "Latency.",
                                   bounds=(0.001, 0.01, 0.1),
                                   labels=("op", "status"))
    histogram.observe(0.0005, op="join", status="ok")
    histogram.observe(0.05, op="join", status="ok")
    histogram.observe(0.5, op="join", status="ok")
    return registry


class TestSnapshotDocument:
    def test_build_and_validate(self):
        document = build_snapshot(_sample_registry(), label="unit")
        validate_snapshot(document)
        assert document["schema"] == SNAPSHOT_SCHEMA
        assert document["label"] == "unit"

    def test_extra_registries_are_merged(self):
        other = MetricRegistry("other")
        other.counter("keycache_lookups_total", "Lookups.",
                      labels=("result",)).inc(9, result="hit")
        document = build_snapshot(_sample_registry(), extra=(other,))
        assert "keycache_lookups_total" in document["metrics"]["counters"]
        assert "server_requests_total" in document["metrics"]["counters"]

    def test_spans_sidecar(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        document = build_snapshot(_sample_registry(),
                                  spans=tracer.export())
        validate_snapshot(document)
        assert document["spans"][0]["name"] == "op"

    def test_write_and_load_round_trip(self, tmp_path):
        document = build_snapshot(_sample_registry(), label="roundtrip")
        path = tmp_path / "snapshot.json"
        write_snapshot(str(path), document)
        assert load_snapshot(str(path)) == document

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.__setitem__("schema", "repro-metrics/0"),
        lambda d: d.pop("label"),
        lambda d: d.pop("metrics"),
        lambda d: d["metrics"].pop("histograms"),
        lambda d: d["metrics"]["counters"]["server_requests_total"]
        ["series"][0].pop("value"),
        lambda d: d["metrics"]["histograms"]["rekey_seconds"]
        ["series"][0]["counts"].pop(),
        lambda d: d.__setitem__("spans", "not-a-list"),
    ])
    def test_validate_rejects_malformed(self, mutate):
        document = build_snapshot(_sample_registry(), label="bad")
        # JSON round trip gives an isolated deep copy to mutate.
        document = json.loads(json.dumps(document))
        mutate(document)
        with pytest.raises(ValueError):
            validate_snapshot(document)


PROM_GOLDEN = """\
# HELP server_requests_total Requests processed by outcome.
# TYPE server_requests_total counter
server_requests_total{op="join",status="ok"} 3
server_requests_total{op="leave",status="ok"} 1
# HELP group_size Members.
# TYPE group_size gauge
group_size 17
# HELP rekey_seconds Latency.
# TYPE rekey_seconds histogram
rekey_seconds_bucket{op="join",status="ok",le="0.001"} 1
rekey_seconds_bucket{op="join",status="ok",le="0.01"} 1
rekey_seconds_bucket{op="join",status="ok",le="0.1"} 2
rekey_seconds_bucket{op="join",status="ok",le="+Inf"} 3
rekey_seconds_sum{op="join",status="ok"} 0.5505
rekey_seconds_count{op="join",status="ok"} 3
"""


class TestPrometheus:
    def test_golden_exposition(self):
        assert to_prometheus(_sample_registry()) == PROM_GOLDEN

    def test_registry_snapshot_and_document_agree(self):
        registry = _sample_registry()
        from_registry = to_prometheus(registry)
        from_snapshot = to_prometheus(registry.snapshot())
        from_document = to_prometheus(build_snapshot(registry))
        assert from_registry == from_snapshot == from_document

    def test_label_escaping(self):
        registry = MetricRegistry("t")
        registry.counter("c", "", labels=("path",)).inc(
            1, path='a"b\\c\nd')
        text = to_prometheus(registry)
        assert r'path="a\"b\\c\nd"' in text


class TestReport:
    def test_report_contains_paper_tables(self):
        document = build_snapshot(_sample_registry(), label="report")
        report = render_report(document)
        assert "Table 4 shape" in report
        assert "join" in report

    def test_report_from_experiment_snapshot(self):
        """Acceptance: one runner snapshot regenerates the full report."""
        from repro.simulation.runner import ExperimentConfig, run_experiment

        result = run_experiment(ExperimentConfig(
            initial_size=8, n_requests=10, client_mode="accounting",
            signing="per-message"))
        document = result.metrics_snapshot
        validate_snapshot(document)
        report = render_report(document)
        # Table 4 shape: processing-time percentiles per op.
        assert "Server processing time per request" in report
        assert "p50" in report and "p99" in report
        # Table 5 shape: rekey cost per request.
        assert "Rekey cost per request" in report
        assert "msgs/req" in report and "encr/req" in report
        # Table 6 shape: client-side cost.
        assert "Client-side cost per request" in report
        assert "key changes/req" in report
        # Stage breakdown from the pipeline clock.
        assert "Pipeline stage latency" in report
        for stage in ("plan", "encrypt", "sign", "dispatch"):
            assert stage in report

    def test_report_round_trips_through_disk(self, tmp_path):
        """The CLI path: write the snapshot, re-render from the file."""
        from repro.observability.__main__ import main
        from repro.simulation.runner import ExperimentConfig, run_experiment

        result = run_experiment(ExperimentConfig(
            initial_size=8, n_requests=6, client_mode="none",
            signing="none"))
        path = tmp_path / "run.json"
        write_snapshot(str(path), result.metrics_snapshot)

        import contextlib
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["report", str(path)]) == 0
        assert "Rekey cost per request" in buffer.getvalue()

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["validate", str(path)]) == 0
        assert "OK" in buffer.getvalue()

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["prom", str(path)]) == 0
        assert "server_requests_total" in buffer.getvalue()

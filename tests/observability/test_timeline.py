"""Timeline waterfall rendering of exported spans."""

import pytest

from repro.observability.spans import Tracer
from repro.observability.timeline import (TimelineError, render_timeline,
                                          render_trace_index, trace_ids)


def _span(name, trace_id, span_id, parent_id=0, start_ns=0,
          duration_ns=1000, error=False):
    return {"name": name, "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "start_ns": start_ns,
            "duration_ns": duration_ns, "error": error, "attributes": {}}


def test_trace_ids_orders_by_span_count_then_id():
    spans = [_span("a", 2, 1), _span("b", 2, 2),
             _span("c", 1, 3), _span("d", 3, 4)]
    assert trace_ids(spans) == [2, 1, 3]


def test_render_picks_busiest_trace_by_default():
    spans = [_span("big.root", 5, 1), _span("big.child", 5, 2, parent_id=1),
             _span("small", 9, 3)]
    text = render_timeline(spans)
    assert text.startswith("trace 5")
    assert "big.root" in text
    assert "small" not in text


def test_render_indents_children_and_marks_errors():
    spans = [
        _span("root", 1, 1, start_ns=0, duration_ns=10_000_000),
        _span("child", 1, 2, parent_id=1, start_ns=2_000_000,
              duration_ns=3_000_000),
        _span("bad", 1, 3, parent_id=2, start_ns=2_500_000,
              duration_ns=1_000_000, error=True),
    ]
    text = render_timeline(spans)
    lines = text.splitlines()
    assert lines[0] == "trace 1 — 3 spans, 10.00ms"
    assert lines[1].startswith("root")
    assert lines[2].startswith("  child")
    assert lines[3].startswith("    bad !")
    # Bars are proportional: the root's spans the full width, the
    # child starts later and is shorter.
    assert lines[1].count("█") > lines[2].count("█") > 0
    assert lines[2].index("█") > lines[1].index("█")


def test_orphan_parents_render_as_extra_roots():
    # The parent span was evicted from the ring (or lives remotely):
    # its children must still render, not vanish.
    spans = [_span("orphan", 1, 5, parent_id=99)]
    text = render_timeline(spans)
    assert "orphan" in text


def test_render_rejects_empty_and_unknown_traces():
    with pytest.raises(TimelineError):
        render_timeline([])
    with pytest.raises(TimelineError):
        render_timeline([_span("a", 1, 1)], trace_id=42)


def test_render_trace_index_lists_roots_and_errors():
    spans = [_span("rootA", 1, 1), _span("kid", 1, 2, parent_id=1),
             _span("rootB", 2, 3, error=True)]
    text = render_trace_index(spans)
    assert "trace 1: 2 spans, root=rootA" in text
    assert "errors=1" in text
    assert render_trace_index([]) == "no traces recorded\n"


def test_renders_real_tracer_export_end_to_end():
    tracer = Tracer()
    with tracer.span("serve.request", op="join") as root:
        with tracer.span("serve.plan"):
            pass
        with tracer.span("serve.exec"):
            with tracer.span("rekey.join"):
                pass
    assert root.trace_id
    text = render_timeline(tracer.export())
    assert "serve.request" in text
    assert "  serve.plan" in text
    assert "    rekey.join" in text

"""Failed runs are recorded, not dropped: clock, instrumentation, pipeline."""

import pytest

from repro.core.server import GroupKeyServer, ServerConfig, ServerError
from repro.observability import Instrumentation, StageClock


class TestStageClockErrors:
    def test_raising_stage_still_records_elapsed_time(self):
        clock = StageClock()
        with pytest.raises(RuntimeError):
            with clock.stage("encrypt"):
                raise RuntimeError("boom")
        assert clock.stages["encrypt"] > 0.0

    def test_error_flag_and_failed_stage(self):
        clock = StageClock()
        assert clock.error is False
        assert clock.failed_stage is None
        with pytest.raises(RuntimeError):
            with clock.stage("plan"):
                raise RuntimeError("boom")
        assert clock.error is True
        assert clock.failed_stage == "plan"

    def test_first_failure_wins(self):
        clock = StageClock()
        for name in ("plan", "sign"):
            with pytest.raises(RuntimeError):
                with clock.stage(name):
                    raise RuntimeError(name)
        assert clock.failed_stage == "plan"

    def test_clean_stages_leave_no_error(self):
        clock = StageClock()
        with clock.stage("plan"):
            pass
        assert clock.error is False
        assert clock.failed_stage is None


class TestInstrumentationErrorRuns:
    def _failed_clock(self):
        clock = StageClock()
        with pytest.raises(RuntimeError):
            with clock.stage("encrypt"):
                raise RuntimeError("boom")
        clock.stop()
        return clock

    def test_error_run_counted_separately(self):
        instrumentation = Instrumentation("t")
        instrumentation.record_run("join", self._failed_clock())
        assert instrumentation.counters.get("join.errors") == 1
        assert instrumentation.counters.get("join.runs") == 0

    def test_error_run_timers_still_recorded(self):
        instrumentation = Instrumentation("t")
        instrumentation.record_run("join", self._failed_clock())
        assert instrumentation.timers.stat("join.encrypt").count == 1
        assert instrumentation.timers.stat("join.total").count == 1

    def test_error_status_label_on_histogram(self):
        instrumentation = Instrumentation("t")
        instrumentation.record_run("join", self._failed_clock())
        snapshot = instrumentation.registry.snapshot()
        series = snapshot["histograms"]["rekey_seconds"]["series"]
        by_labels = {tuple(sorted(s["labels"].items())): s["count"]
                     for s in series}
        assert by_labels[(("op", "join"), ("status", "error"))] == 1


class TestServerErrorRuns:
    def test_failed_leave_is_recorded_not_dropped(self):
        server = GroupKeyServer(ServerConfig(signing="none", seed=b"s"))
        server.bootstrap([("u1", server.new_individual_key())])
        with pytest.raises(ServerError):
            server.leave("ghost")
        instrumentation = server.instrumentation
        assert instrumentation.counters.get("leave.errors") == 1
        assert instrumentation.timers.stat("leave.total").count == 1
        # The successful path stays untouched.
        assert instrumentation.counters.get("leave.runs") == 0

    def test_error_and_success_histograms_are_disjoint(self):
        server = GroupKeyServer(ServerConfig(signing="none", seed=b"s"))
        server.bootstrap([("u1", server.new_individual_key()),
                          ("u2", server.new_individual_key())])
        with pytest.raises(ServerError):
            server.leave("ghost")
        server.leave("u2")
        snapshot = server.instrumentation.registry.snapshot()
        series = snapshot["histograms"]["rekey_seconds"]["series"]
        by_labels = {tuple(sorted(s["labels"].items())): s["count"]
                     for s in series}
        assert by_labels[(("op", "leave"), ("status", "error"))] == 1
        assert by_labels[(("op", "leave"), ("status", "ok"))] == 1

"""Cross-subsystem integration tests.

Each test wires several subsystems together the way a deployment would:
multigroup + channels, UDP + channels, batch rekeying + FEC transport,
persistence + multigroup.
"""

import pytest

from repro.batch import BatchRekeyServer
from repro.core.channel import ChannelError, SecureGroupChannel
from repro.core.client import GroupClient
from repro.core.persistence import restore, snapshot
from repro.crypto.suite import PAPER_SUITE_NO_SIG as SUITE
from repro.multigroup import MultiGroupService
from repro.transport import FecMulticast, InMemoryNetwork


def deliver(outcome, clients):
    for message in outcome.control_messages:
        for receiver in message.receivers:
            if receiver in clients:
                clients[receiver].process_control(message.encoded)
    for message in outcome.rekey_messages:
        for receiver in message.receivers:
            clients[receiver].process_message(message.encoded)


class TestMultigroupChannels:
    """Per-room channels: room isolation holds at the application layer."""

    def setup_method(self):
        self.service = MultiGroupService(suite=SUITE, seed=b"integration")
        self.rooms = ("ops", "engineering")
        self.members = {"ops": ["ana", "boris"],
                        "engineering": ["boris", "chen"]}
        for user in ("ana", "boris", "chen"):
            self.service.register_user(user)
        self.clients = {}  # (room, user) -> GroupClient
        for room in self.rooms:
            self.service.create_group(room, degree=3)
            for user in self.members[room]:
                client = GroupClient(user, SUITE, verify=False)
                client.set_individual_key(self.service.individual_key(user))
                self.clients[(room, user)] = client
                outcome = self.service.join(room, user)
                client.process_control(outcome.control_messages[0].encoded)
                for message in outcome.rekey_messages:
                    for receiver in message.receivers:
                        self.clients[(room, receiver)].process_message(
                            message.encoded)
        self.channels = {key: SecureGroupChannel.for_client(client)
                         for key, client in self.clients.items()}

    def test_in_room_chat_works(self):
        frame = self.channels[("ops", "ana")].seal(b"deploy at noon")
        payload, sender, _seq = self.channels[("ops", "boris")].open(frame)
        assert payload == b"deploy at noon" and sender == "ana"

    def test_cross_room_isolation(self):
        """chen (engineering only) cannot read ops frames, even though
        boris shares an individual key across both rooms."""
        frame = self.channels[("ops", "ana")].seal(b"ops secret")
        with pytest.raises(ChannelError):
            self.channels[("engineering", "chen")].open(frame)

    def test_shared_member_bridges_consciously(self):
        """boris can read in both rooms with the right channel each time."""
        ops_frame = self.channels[("ops", "ana")].seal(b"to ops")
        eng_frame = self.channels[("engineering", "chen")].seal(b"to eng")
        assert self.channels[("ops", "boris")].open(ops_frame)[0] == b"to ops"
        assert self.channels[("engineering", "boris")].open(
            eng_frame)[0] == b"to eng"


class TestBatchOverFec:
    """A batch flush delivered over a lossy network via FEC."""

    def test_flush_via_fec(self):
        server = BatchRekeyServer(degree=4, suite=SUITE, seed=b"batch-fec")
        members = [(f"u{i}", server.new_individual_key()) for i in range(64)]
        server.bootstrap(members)
        network = InMemoryNetwork(drop_rate=0.15, seed=b"batch-fec-loss")
        fec = FecMulticast(network, k=4, r=6)
        clients = {}
        for uid, key in members:
            client = GroupClient(uid, SUITE, verify=False)
            client.set_individual_key(key)
            client.set_leaf(server.tree.leaf_of(uid).node_id)
            for node in server.tree.user_key_path(uid)[1:]:
                client.keys[node.node_id] = (node.version, node.key)
            client.root_ref = (server.tree.root.node_id,
                               server.tree.root.version)
            clients[uid] = client
            fec.attach(uid, client.process_message)
        for i in range(12):
            server.request_leave(f"u{i}")
            fec.detach(f"u{i}")
            del clients[f"u{i}"]
        result = server.flush()
        fec.send(result.rekey_message)
        group_key = server.tree.root.key
        synchronized = sum(1 for client in clients.values()
                           if client.group_key() == group_key)
        # r=6 parity over 15% loss: everyone (or nearly) reconstructs.
        assert synchronized >= len(clients) - 1


class TestPersistenceAcrossGroups:
    def test_each_group_snapshots_independently(self):
        service = MultiGroupService(suite=SUITE, seed=b"persist-mg")
        for user in ("ana", "boris"):
            service.register_user(user)
        service.create_group("alpha", degree=3)
        service.create_group("beta", degree=3)
        service.join("alpha", "ana")
        service.join("beta", "boris")
        alpha_blob = snapshot(service.group("alpha"))
        beta_blob = snapshot(service.group("beta"))
        alpha_standby = restore(alpha_blob)
        beta_standby = restore(beta_blob)
        assert alpha_standby.group_key() == service.group("alpha").group_key()
        assert beta_standby.group_key() == service.group("beta").group_key()
        assert alpha_standby.group_key() != beta_standby.group_key()


class TestRefreshThroughChannel:
    def test_channels_survive_scheduled_refresh(self):
        from repro.core.server import GroupKeyServer, ServerConfig
        server = GroupKeyServer(ServerConfig(
            strategy="group", degree=3, suite=SUITE, signing="none",
            seed=b"refresh-chat"))
        clients = {}
        for i in range(4):
            uid = f"u{i}"
            key = server.new_individual_key()
            client = GroupClient(uid, SUITE, verify=False)
            client.set_individual_key(key)
            clients[uid] = client
            deliver(server.join(uid, key), clients)
        channels = {uid: SecureGroupChannel.for_client(client,
                                                       accept_previous_epochs=1)
                    for uid, client in clients.items()}
        channels["u0"].seal(b"warm-up")
        for _round in range(3):
            outcome = server.refresh()
            for message in outcome.rekey_messages:
                for receiver in message.receivers:
                    clients[receiver].process_message(message.encoded)
            frame = channels["u0"].seal(f"round".encode())
            for uid in ("u1", "u2", "u3"):
                payload, _s, _q = channels[uid].open(frame)
                assert payload == b"round"

"""Interval batch rekeying: correctness, security, savings."""

import pytest

from repro.batch.rekeying import BatchError, BatchRekeyServer
from repro.core.client import GroupClient
from repro.core.messages import INDIVIDUAL_KEY, decrypt_records
from repro.crypto.suite import PAPER_SUITE_NO_SIG


def make_server(n=27, degree=3, seed=b"batch-tests"):
    server = BatchRekeyServer(degree=degree, suite=PAPER_SUITE_NO_SIG,
                              seed=seed)
    members = [(f"u{i}", server.new_individual_key()) for i in range(n)]
    server.bootstrap(members)
    return server, dict(members)


def make_clients(server, members):
    clients = {}
    for uid, key in members.items():
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        client.set_leaf(server.tree.leaf_of(uid).node_id)
        for node in server.tree.user_key_path(uid)[1:]:
            client.keys[node.node_id] = (node.version, node.key)
        client.root_ref = (server.tree.root.node_id,
                           server.tree.root.version)
        clients[uid] = client
    return clients


def apply_flush(result, clients):
    if result.rekey_message is not None:
        for uid in result.rekey_message.receivers:
            if uid in clients:
                clients[uid].process_message(result.rekey_message.encoded)
    for message in result.joiner_messages:
        clients[message.receivers[0]].process_message(message.encoded)


def test_flush_synchronizes_everyone():
    server, members = make_server()
    clients = make_clients(server, members)
    for i in range(5):
        server.request_leave(f"u{i}")
        del clients[f"u{i}"]
    joiners = {}
    for i in range(5):
        key = server.new_individual_key()
        joiners[f"n{i}"] = key
        server.request_join(f"n{i}", key)
    result = server.flush()
    server.tree.validate()
    for uid, key in joiners.items():
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
    apply_flush(result, clients)
    group_key = server.tree.root.key
    for uid, client in clients.items():
        assert client.group_key() == group_key, uid


def test_batch_is_cheaper_than_individual():
    server, members = make_server(n=64, degree=4)
    for i in range(16):
        server.request_leave(f"u{i}")
        server.request_join(f"n{i}", server.new_individual_key())
    result = server.flush()
    assert result.n_joins == 16 and result.n_leaves == 16
    assert result.encryptions < result.individual_cost_estimate
    assert 0.0 < result.saving < 1.0


def test_join_then_leave_cancels():
    server, _ = make_server(n=8)
    server.request_join("fleeting", server.new_individual_key())
    server.request_leave("fleeting")
    assert server.pending == (0, 0)
    result = server.flush()
    assert result.n_joins == 0 and result.n_leaves == 0
    assert result.rekey_message is None
    assert not server.tree.has_user("fleeting")


def test_leave_then_rejoin_in_same_interval():
    server, members = make_server(n=8)
    server.request_leave("u3")
    new_key = server.new_individual_key()
    server.request_join("u3", new_key)
    result = server.flush()
    server.tree.validate()
    assert server.tree.has_user("u3")
    assert server.tree.leaf_of("u3").key == new_key
    assert result.n_joins == 1 and result.n_leaves == 1


def test_request_validation():
    server, _ = make_server(n=4)
    with pytest.raises(BatchError):
        server.request_join("u0", bytes(8))         # already a member
    with pytest.raises(BatchError):
        server.request_leave("ghost")
    server.request_leave("u1")
    with pytest.raises(BatchError):
        server.request_leave("u1")                  # already leaving
    server.request_join("x", bytes(8))
    with pytest.raises(BatchError):
        server.request_join("x", bytes(8))          # already pending


def test_bootstrap_guard():
    server, _ = make_server(n=4)
    with pytest.raises(BatchError):
        server.bootstrap([("y", bytes(8))])


def test_flush_forward_secrecy():
    """No flush item is encrypted under any key a departed user held."""
    server, members = make_server(n=27, degree=3)
    victim_path = server.tree.user_key_path("u5")
    victim_refs = {(node.node_id, node.version) for node in victim_path}
    server.request_leave("u5")
    server.request_leave("u6")
    result = server.flush()
    assert result.rekey_message is not None
    for item in result.rekey_message.message.items:
        assert (item.enc_node_id, item.enc_version) not in victim_refs


def test_flush_backward_secrecy():
    """A batch joiner's keys decrypt nothing from before the flush."""
    server, members = make_server(n=16, degree=4)
    # Pre-flush "captured traffic": one flush rekeying u0's departure.
    server.request_leave("u0")
    old_result = server.flush()
    joiner_key = server.new_individual_key()
    server.request_join("late", joiner_key)
    result = server.flush()
    # Reconstruct the joiner's keyset from its unicast.
    client = GroupClient("late", PAPER_SUITE_NO_SIG, verify=False)
    client.set_individual_key(joiner_key)
    apply_flush(result, {"late": client})
    for item in old_result.rekey_message.message.items:
        held = client.keys.get(item.enc_node_id)
        assert held is None or held[0] != item.enc_version


def test_empty_flush():
    server, _ = make_server(n=4)
    result = server.flush()
    assert result.encryptions == 0
    assert result.rekey_message is None
    assert result.saving == 0.0


def test_flush_drains_whole_group_and_refills():
    server, members = make_server(n=4, degree=2)
    for uid in list(members):
        server.request_leave(uid)
    result = server.flush()
    assert server.tree.n_users == 0
    assert server.tree.root is None
    key = server.new_individual_key()
    server.request_join("phoenix", key)
    result = server.flush()
    assert server.tree.has_user("phoenix")
    server.tree.validate()


def test_signing_mode():
    server = BatchRekeyServer(degree=3, signing="merkle", seed=b"signed")
    server.bootstrap([(f"u{i}", server.new_individual_key())
                      for i in range(9)])
    server.request_leave("u0")
    result = server.flush()
    assert result.rekey_message.message.auth.signature
    with pytest.raises(BatchError):
        BatchRekeyServer(signing="carrier-pigeon")


def test_flush_joins_into_empty_bootstrap():
    """Joins-only flush on a never-bootstrapped server builds the tree."""
    server = BatchRekeyServer(degree=3, suite=PAPER_SUITE_NO_SIG,
                              seed=b"empty-boot")
    keys = {}
    for i in range(5):
        keys[f"u{i}"] = server.new_individual_key()
        server.request_join(f"u{i}", keys[f"u{i}"])
    result = server.flush()
    server.tree.validate()
    assert server.tree.n_users == 5
    assert len(result.joiner_messages) == 5
    # Everyone can reconstruct the group key from their bundle.
    for uid, key in keys.items():
        client = GroupClient(uid, PAPER_SUITE_NO_SIG, verify=False)
        client.set_individual_key(key)
        bundle = next(m for m in result.joiner_messages
                      if m.receivers == (uid,))
        client.process_message(bundle.encoded)
        assert client.group_key() == server.tree.root.key

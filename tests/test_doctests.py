"""Run the doctests embedded in public docstrings.

The examples in the docstrings are part of the documented contract;
this harness keeps them honest.
"""

import doctest

import pytest

import repro.crypto.aes
import repro.crypto.des
import repro.crypto.des3
import repro.experiments.plot

MODULES = [
    repro.crypto.des,
    repro.crypto.aes,
    repro.crypto.des3,
    repro.experiments.plot,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[module.__name__ for module in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0

#!/usr/bin/env python3
"""Live metrics dashboard: scrape a churning key server over UDP.

Runs the Figure 10 workload — a degree-4 key tree with group-oriented
rekeying, DES-CBC + MD5 + RSA-signed rekey messages, clients joining
and leaving over real loopback sockets — while the main thread
periodically sends ``MSG_STATS_REQUEST`` datagrams and redraws a
per-operation latency/percentile table from the server's live
``repro-metrics/1`` snapshot.  Nothing is shared in process: every
number on screen crossed the wire.

Run:  python examples/metrics_dashboard.py [--seconds 12] [--refresh 0.5]
"""

import argparse
import random
import sys
import threading
import time

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE
from repro.observability import Instrumentation, Tracer
from repro.transport.udp import UdpGroupMember, UdpKeyServer, scrape_stats

MAX_MEMBERS = 24


def churn(endpoint, stop):
    """Figure 10-shaped churn: biased-random joins and leaves."""
    rng = random.Random(10)  # Figure 10
    core = endpoint.server
    members = {}
    counter = 0
    while not stop.is_set():
        joining = len(members) < 4 or (len(members) < MAX_MEMBERS
                                       and rng.random() < 0.6)
        if joining:
            name = f"user{counter}"
            counter += 1
            key = core.new_individual_key()
            core.register_individual_key(name, key)
            member = UdpGroupMember(name, PAPER_SUITE, endpoint.address,
                                    server_public_key=core.public_key,
                                    timeout=10.0)
            member.join(key)
            members[name] = member
        else:
            name = rng.choice(sorted(members))
            departing = members.pop(name)
            departing.leave()
            departing.close()
        for member in members.values():
            member.pump(timeout=0.02)
    for member in members.values():
        member.close()


def quantile(bounds, series, q):
    """Latency estimate from one histogram series of the snapshot."""
    count = series["count"]
    if not count:
        return 0.0
    target = q * count
    cumulative = 0
    for index, bucket_count in enumerate(series["counts"]):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(bounds):
                return series["max"]
            upper = bounds[index]
            lower = bounds[index - 1] if index else 0.0
            estimate = lower + (upper - lower) * (
                (target - cumulative) / bucket_count)
            return min(max(estimate, series["min"]), series["max"])
        cumulative += bucket_count
    return series["max"]


def render(document):
    metrics = document["metrics"]
    lines = ["live key-server stats — %s" % document["label"],
             ""]

    gauges = metrics["gauges"]
    size = gauges.get("group_size", {"series": [{"value": 0}]})
    lines.append("group size: %d    spans captured: %d" % (
        size["series"][0]["value"], len(document.get("spans", ()))))
    lines.append("")

    entry = metrics["histograms"].get("rekey_seconds")
    header = "%-6s %-7s %6s %8s %8s %8s %8s" % (
        "op", "status", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms")
    lines.append("Server processing time per request (Table 4 / Figure 10)")
    lines.append(header)
    lines.append("-" * len(header))
    if entry:
        for series in entry["series"]:
            labels = series["labels"]
            mean = (series["sum"] / series["count"] * 1000.0
                    if series["count"] else 0.0)
            row = [quantile(entry["bounds"], series, q) * 1000.0
                   for q in (0.5, 0.9, 0.99)]
            lines.append("%-6s %-7s %6d %8.3f %8.3f %8.3f %8.3f" % (
                labels.get("op", "?"), labels.get("status", "?"),
                series["count"], mean, *row))

    counters = metrics["counters"]
    totals = {}
    for name in ("rekey_messages_total", "rekey_bytes_total",
                 "encryptions_total", "signatures_total"):
        entry = counters.get(name)
        if entry:
            totals[name] = sum(s["value"] for s in entry["series"])
    if totals:
        lines.append("")
        lines.append("rekey messages: %d    bytes: %d    "
                     "encryptions: %d    signatures: %d" % (
                         totals.get("rekey_messages_total", 0),
                         totals.get("rekey_bytes_total", 0),
                         totals.get("encryptions_total", 0),
                         totals.get("signatures_total", 0)))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=12.0,
                        help="how long to run the workload")
    parser.add_argument("--refresh", type=float, default=0.5,
                        help="scrape/redraw interval")
    args = parser.parse_args(argv)

    core = GroupKeyServer(
        ServerConfig(strategy="group", degree=4, suite=PAPER_SUITE,
                     signing="merkle", seed=b"metrics-dashboard"),
        instrumentation=Instrumentation("dashboard", tracer=Tracer()))

    stop = threading.Event()
    with UdpKeyServer(core) as endpoint:
        worker = threading.Thread(target=churn, args=(endpoint, stop),
                                  daemon=True)
        worker.start()
        interactive = sys.stdout.isatty()
        deadline = time.monotonic() + args.seconds
        try:
            while time.monotonic() < deadline:
                time.sleep(args.refresh)
                frame = render(scrape_stats(endpoint.address))
                if interactive:
                    sys.stdout.write("\x1b[2J\x1b[H")
                sys.stdout.write(frame + "\n")
                sys.stdout.flush()
        finally:
            stop.set()
            worker.join()

    print("\nfinal scrape rendered above — done")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

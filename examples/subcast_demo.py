#!/usr/bin/env python3
"""Subgroup messaging: the key-covering problem, solved and sealed.

The paper's §2.1 asks how to message an *arbitrary subset* of a
secure group: pick a set of keys whose usersets exactly tile the
subset (the key-covering problem — NP-hard in general), then seal one
message key under each.  This demo walks the whole PR 9 pipeline:

* the covering ladder on a hard instance (exact vs greedy vs
  first-fit-decreasing) and on a key tree, where the minimum cover is
  just the maximal fully-selected subtrees;
* how subset *shape* drives cover size: a clustered member window
  collapses to a handful of subtree keys while a scattered sample
  degenerates toward individual keys;
* sealed delivery: exactly the targets decrypt, outsiders and evicted
  members fail closed;
* the cluster lift: a fully-targeted shard rides one root-layer key.

Run:  python examples/subcast_demo.py
"""

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.client import GroupClient, SubcastNotAddressed
from repro.core.server import GroupKeyServer, ServerConfig
from repro.keygraph.covering import (exact_cover, greedy_cover,
                                     group_from_set_cover,
                                     partition_cover, tree_subset_cover)


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def primed_client(server, user):
    leaf = server.tree.leaf_of(user)
    client = GroupClient(user, server.suite, server.public_key)
    client.set_individual_key(leaf.key)
    client.set_leaf(leaf.node_id)
    for node in leaf.path_to_root():
        client.keys[node.node_id] = (node.version, node.key)
    return client


def covering_ladder():
    banner("the covering ladder (general instance)")
    # Encode a set-cover instance as a group: elements are users, each
    # candidate set is a key held by exactly its elements.
    universe = list(range(8))
    subsets = [[0, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7], [1, 3, 5, 7],
               [0, 2, 4, 6], [6, 7]]
    group = group_from_set_cover(universe, subsets)
    target = [f"e{e}" for e in (0, 1, 2, 3, 6, 7)]
    for name, algorithm in (("exact (exhaustive)", exact_cover),
                            ("greedy (H_k approx)", greedy_cover),
                            ("first-fit-decreasing", partition_cover)):
        cover = algorithm(group, target)
        print(f"  {name:22}: {len(cover)} keys")


def tree_shapes():
    banner("subset shape drives cover size (n=4096 tree)")
    server = GroupKeyServer(ServerConfig(
        degree=4, strategy="group", signing="none",
        seed=b"subcast-demo", backend="flat"))
    members = [f"u{index:04d}" for index in range(4096)]
    server.bootstrap([(user, server.new_individual_key())
                      for user in members])
    shapes = {
        "clustered window": members[512:768],       # 256 contiguous
        "scattered sample": members[7::16],         # 256 spread out
    }
    for label, subset in shapes.items():
        cover = tree_subset_cover(server.tree, subset)
        print(f"  {label:18}: |S|={len(subset)} -> {len(cover)} cover keys")
    return server, members


def sealed_delivery(server, members):
    banner("sealed delivery: exactly the targets decrypt")
    targets = members[100:140]
    out = server.subcast(targets, b"quarterly numbers, subgroup only")
    print(f"  {len(targets)} targets, {len(out.message.items) - 1} "
          f"cover keys, {len(out.encoded)} wire bytes")

    insider = primed_client(server, targets[0])
    print(f"  target {targets[0]}      : "
          f"{insider.open_subcast(out.encoded)!r}")

    bystander = primed_client(server, members[0])
    try:
        bystander.open_subcast(out.encoded)
    except SubcastNotAddressed:
        print(f"  member {members[0]} (not targeted): SubcastNotAddressed")

    victim = targets[-1]
    stale = primed_client(server, victim)
    server.leave(victim)
    out2 = server.subcast(targets[:-1], b"post-eviction follow-up")
    try:
        stale.open_subcast(out2.encoded)
    except SubcastNotAddressed:
        print(f"  evicted {victim}    : fails closed "
              f"(holds only stale key versions)")


def cluster_lift():
    banner("cluster: a fully-targeted shard lifts to the root layer")
    coordinator = ClusterCoordinator(ClusterConfig(
        n_shards=4, degree=4, signing="none", seed=b"subcast-demo-cl",
        backend="flat"))
    members = [f"c{index:03d}" for index in range(128)]
    coordinator.bootstrap([(user, coordinator.new_individual_key())
                           for user in members])
    by_shard = {}
    for user in members:
        by_shard.setdefault(coordinator.shard_of(user).shard_id,
                            []).append(user)
    whole_shard = by_shard[0]
    few_others = by_shard[1][:3]
    out = coordinator.subcast(whole_shard + few_others, b"mixed targets")
    print(f"  shard 0 in full ({len(whole_shard)} members) + "
          f"{len(few_others)} members of shard 1")
    print(f"  -> {len(out.message.items) - 1} cover keys "
          f"(1 root-layer ref for shard 0, individual/subtree keys "
          f"for the rest)")
    out = coordinator.subcast(members, b"all hands")
    print(f"  whole cluster ({len(members)} members) -> "
          f"{len(out.message.items) - 1} cover key")


def main():
    covering_ladder()
    server, members = tree_shapes()
    sealed_delivery(server, members)
    cluster_lift()
    print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live UDP demo: the paper's deployment shape over real sockets.

Runs the group key server behind a loopback UDP endpoint (the paper ran
it on one SGI Origin 200 and the clients on another over 100 Mbps
Ethernet), with each client on its own socket sending real join/leave
request datagrams and receiving real rekey message datagrams.

Run:  python examples/udp_live_demo.py
"""

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE
from repro.transport.udp import UdpGroupMember, UdpKeyServer


def main():
    core = GroupKeyServer(ServerConfig(
        strategy="group", degree=4, suite=PAPER_SUITE, signing="merkle",
        seed=b"udp-demo"))

    with UdpKeyServer(core) as endpoint:
        host, port = endpoint.address
        print(f"key server listening on {host}:{port}")

        members = []
        try:
            for i in range(8):
                name = f"client{i}"
                # The authentication exchange happens out of band; the
                # session key it produced is registered with the server.
                individual_key = core.new_individual_key()
                core.register_individual_key(name, individual_key)

                member = UdpGroupMember(name, PAPER_SUITE, endpoint.address,
                                        server_public_key=core.public_key,
                                        timeout=10.0)
                member.join(individual_key)
                members.append(member)
                print(f"  {name} joined over UDP "
                      f"(leaf node {member.client.leaf_node_id})")

            # Drain the rekey traffic each later join multicast to the rest.
            for member in members:
                member.pump()

            group_key = core.group_key()
            in_sync = sum(1 for member in members
                          if member.client.group_key() == group_key)
            print(f"\n{in_sync}/{len(members)} clients hold the current "
                  "group key (verified RSA-signed rekey messages)")

            print("\nclient3 leaves over UDP...")
            members[3].leave()
            for index, member in enumerate(members):
                if index != 3:
                    member.pump()
            new_key = core.group_key()
            survivors = [m for i, m in enumerate(members) if i != 3]
            in_sync = sum(1 for member in survivors
                          if member.client.group_key() == new_key)
            print(f"  group rekeyed: {in_sync}/{len(survivors)} remaining "
                  "clients converged on the new key")
            assert members[3].client.group_key() is None  # leave-ack wiped it
            print("  client3's state was cleared by the leave ack")

            stats = members[0].client.stats
            print(f"\nclient0 processed {stats.rekey_messages} rekey "
                  f"messages, {stats.rekey_bytes} bytes, "
                  f"{stats.decryptions} decryptions")
        finally:
            for member in members:
                member.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chaos and recovery: surviving loss, reorder, crashes, and eviction.

The paper assumes "a reliable message delivery system, for both unicast
and multicast" (§5).  This demo removes that assumption and shows the
recovery layer putting the group back together:

1. a seeded ChaosTransport drops, duplicates and reorders 15% of rekey
   traffic while members churn — gap detection plus resync heals every
   survivor without manual intervention;
2. one member crashes mid-run and restarts four rounds later — its
   heartbeat betrays the stale key view and the server pushes a resync;
3. three members die for good — heartbeat silence escalates to an
   automatic eviction, and the batch backend sheds the whole queue as
   ONE group-oriented rekey (not three);
4. the evicted keys are forward-secure: the dead members' keysets
   cannot open post-eviction traffic.

Run:  python examples/chaos_demo.py
"""

from repro.chaos import ChaosTransport, FaultProfile
from repro.chaos.scenarios import ScenarioConfig, _execute
from repro.core.client import StaleKeyError
from repro.core.messages import Destination, Message, OutboundMessage
from repro.recovery import RecoveryPolicy
from repro.transport.inmemory import InMemoryNetwork


def main():
    print("== 1. seeded faults at the transport boundary ==")
    profile = FaultProfile(name="demo", seed=b"chaos-demo",
                           drop_rate=0.15, duplicate_rate=0.10,
                           delay_rate=0.25, max_delay=3)
    chaos = ChaosTransport(InMemoryNetwork(strict=False), profile)
    inbox = []
    chaos.attach("alice", inbox.append)
    for i in range(100):
        message = Message(msg_type=7, body=bytes([i]))
        chaos.send(OutboundMessage(Destination.to_user("alice"), message,
                                   ("alice",), message.encode()))
    chaos.quiesce()
    order = [Message.decode(m).body[0] for m in inbox]
    print(f"  sent 100, delivered {len(order)} "
          f"(faults: {dict(chaos.injected)})")
    print(f"  reordered: {order != sorted(order)}, "
          f"deterministic: same seed replays the same run\n")

    print("== 2. churn under chaos, one member crash/restart ==")
    report_config = ScenarioConfig(
        name="demo-crash", stack="server", profile="lossy-reorder",
        n_initial=12, rounds=12,
        crash_at={3: ["u1"]}, restart_at={7: ["u1"]},
        seed=b"chaos-demo")
    harness, report = _execute(report_config)
    print(f"  {report.summary()}")
    print(f"  u1 crashed at round 3, restarted at 7, healed by resync; "
          f"desyncs detected: {report.desyncs}, "
          f"resyncs served: {report.resyncs}")
    assert report.passed and report.evicted == []
    print(f"  all {report.survivors} survivors hold the group key and "
          f"decrypted the post-recovery probe\n")

    print("== 3. mass death -> eviction shed as one batch flush ==")
    shed_config = ScenarioConfig(
        name="demo-shed", stack="batch", profile="drop10",
        n_initial=16, rounds=10,
        crash_at={2: ["u0", "u1", "u2"]},
        policy=RecoveryPolicy(dead_after=3, shed_threshold=3),
        seed=b"chaos-demo-shed")
    harness, report = _execute(shed_config)
    print(f"  {report.summary()}")
    print(f"  three members went silent; heartbeat surveillance evicted "
          f"{sorted(report.evicted)}")
    print(f"  shed flushes: {report.shed_flushes} "
          f"(one group-oriented rekey for the whole queue)\n")
    assert report.passed and report.shed_flushes == 1

    print("== 4. evicted keys are forward-secure ==")
    dead = harness.members["u0"].client
    sealed = harness.server.seal_group_message(b"post-eviction secret")
    try:
        dead.open_data(sealed.encoded)
        raise AssertionError("evicted member decrypted new traffic!")
    except StaleKeyError:
        print("  u0's retained keyset cannot open post-eviction traffic")
    survivor = harness.members[report_survivor(harness)].client
    print(f"  a survivor decrypts it fine: "
          f"{survivor is not None and harness.data_check()}")
    print("\nThe paper's reliable-delivery assumption is now a module, "
          "not a requirement.")


def report_survivor(harness):
    return harness._live()[0]


if __name__ == "__main__":
    main()

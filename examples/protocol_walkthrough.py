#!/usr/bin/env python3
"""The paper's Figure 5 worked example, down to the wire bytes.

Builds the exact tree of Figure 5 — root k1-8 over subgroups
k123 = {u1,u2,u3}, k456 = {u4,u5,u6}, k78 = {u7,u8} — then walks u9's
join and leave under each rekeying strategy, printing every rekey
message: destination, audience, the encrypted items inside, and sizes.
Compare with §3.3/§3.4's message lists; the structure matches line for
line.

Run:  python examples/protocol_walkthrough.py
"""

from repro.core import GroupClient
from repro.core.messages import DEST_ALL, DEST_SUBGROUP, DEST_USER
from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE_NO_SIG as SUITE


def build_figure5(strategy):
    """Eight members under degree 3: exactly Figure 5's upper tree."""
    server = GroupKeyServer(ServerConfig(
        strategy=strategy, degree=3, suite=SUITE, signing="none",
        seed=b"figure5"))
    server.bootstrap([(f"u{i}", server.new_individual_key())
                      for i in range(1, 9)])
    return server


def label_for(server, node_id):
    """Human label for a k-node: the users below it (k78-style)."""
    if server.tree is None:
        return f"k{node_id}"
    for node in server.tree.nodes():
        if node.node_id == node_id:
            users = sorted(server.tree.userset(node))
            suffix = "".join(u[1:] for u in users)
            return f"k{suffix}" if suffix else f"k{node_id}"
    return f"k(old #{node_id})"


def describe(server, outcome):
    for message in outcome.rekey_messages:
        destination = message.destination
        if destination.kind == DEST_ALL:
            where = "multicast to the whole group"
        elif destination.kind == DEST_SUBGROUP:
            where = f"subgroup multicast [{label_for(server, destination.node_id)}]"
        elif destination.kind == DEST_USER:
            where = f"unicast to {destination.user_id}"
        else:
            where = f"to {destination.user_ids}"
        audience = ",".join(sorted(message.receivers))
        print(f"    -> {where}  ({message.size} bytes, "
              f"receivers: {audience})")
        for item in message.message.items:
            if item.enc_node_id == 0xFFFFFFFF:
                under = "the receiver's individual key"
            else:
                under = label_for(server, item.enc_node_id)
            n_keys = item.plaintext_len // (8 + SUITE.key_size)
            plural = "s" if n_keys != 1 else ""
            print(f"         {{{n_keys} new key{plural}}} encrypted under "
                  f"{under}")


def main():
    for strategy, join_note, leave_note in (
            ("user", "3 messages, 5 encryptions (= h(h+1)/2 - 1)",
             "4 messages, 6 encryptions (= (d-1)h(h-1)/2)"),
            ("key", "3 combined messages, 4 encryptions (= 2(h-1))",
             "4 messages, ~d(h-1) encryptions with shared chain items"),
            ("group", "1 multicast + 1 unicast, 4 encryptions",
             "a single multicast, d(h-1) encryptions")):
        print(f"\n{'=' * 68}\n{strategy.upper()}-ORIENTED REKEYING"
              f"\n{'=' * 68}")
        server = build_figure5(strategy)
        print(f"Figure 5 upper tree: n=8, d=3, h={server.tree.height()}; "
              f"group key {label_for(server, server.tree.root.node_id)}")

        print(f"\n  u9 joins (paper: {join_note}):")
        outcome = server.join("u9", server.new_individual_key())
        describe(server, outcome)
        print(f"    [measured: {outcome.record.n_rekey_messages} messages, "
              f"{outcome.record.encryptions} encryptions]")

        print(f"\n  u9 leaves (paper: {leave_note}):")
        outcome = server.leave("u9")
        describe(server, outcome)
        print(f"    [measured: {outcome.record.n_rekey_messages} messages, "
              f"{outcome.record.encryptions} encryptions]")


if __name__ == "__main__":
    main()

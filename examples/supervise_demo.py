#!/usr/bin/env python3
"""Self-healing serving: kill a live shard, watch it come back identical.

The paper's key server is one process and one failure domain.  This
demo runs the PR 10 supervision loop end to end:

1. a supervisor starts a 2-shard async cluster (journal mode) and a
   few members join through the real serving cores;
2. shard 0 is killed SIGKILL-style and restarted from its journal,
   byte-identical to its pre-crash snapshot, on the same port;
3. a *torn journal tail* — the real crash signature — loses the last
   op; the client's ResilientRpc (deadline + capped backoff + jitter)
   rides out the gap and its retry re-executes the lost join;
4. a retry storm re-sends one join 8 times with the same correlation
   token: the idempotency cache answers every duplicate by replaying
   the original bytes, with zero extra sequence draws;
5. a CRC-corrupt journal — bit rot, not a crash — is refused loudly:
   the shard parks in ``failed`` instead of serving truncated history.

Run:  python examples/supervise_demo.py
"""

import asyncio
import tempfile

from repro.core import persistence
from repro.core.messages import MSG_JOIN_REQUEST, Message
from repro.core.server import ServerConfig
from repro.serve import (ResilientRpc, RetryPolicy, ServeConfig,
                         SupervisePolicy, Supervisor, SupervisorError)
from repro.serve.wire import attach_corr_trailer

KEY_FILL = 7


async def _join(shard, user, token):
    shard.server.register_individual_key(
        user, bytes([KEY_FILL]) * shard.server.suite.key_size)
    request = attach_corr_trailer(
        Message(msg_type=MSG_JOIN_REQUEST, body=user.encode()).encode(),
        token)
    box = []
    await shard.core.submit(request, box.append, path_id=None)
    return request, box


async def main():
    journal_dir = tempfile.mkdtemp(prefix="supervise-demo-")
    supervisor = Supervisor(
        2,
        server_config=ServerConfig(signing="none", backend="flat",
                                   seed=b"supervise-demo"),
        serve_config=ServeConfig(tcp_port=None, tick_interval=0),
        journal_dir=journal_dir,
        policy=SupervisePolicy(probe_interval=0, mode="journal"))
    await supervisor.start()
    try:
        print("== 1. a supervised 2-shard cluster ==")
        for doc in supervisor.describe():
            print(f"  {doc['shard']}: {doc['state']} on {doc['address']}")
        shard = supervisor.shard(0)
        for index in range(6):
            await _join(shard, f"u{index}", index)
        before = persistence.snapshot(shard.server)
        address = shard.address
        print(f"  6 members joined shard-0; seq={shard.server._seq}\n")

        print("== 2. SIGKILL-equivalent, restart from the journal ==")
        await supervisor.kill(0)
        print(f"  shard-0 {shard.state}; probe: "
              f"{await supervisor.probe(0)}")
        await supervisor.restart(0)
        identical = persistence.snapshot(shard.server) == before
        print(f"  restarted on {shard.address} "
              f"(port pinned: {shard.address == address})")
        print(f"  byte-identical to the pre-crash snapshot: {identical}")
        print(f"  journal replay == live bytes: "
              f"{supervisor.verify_shard(0)}\n")
        assert identical

        print("== 3. a torn tail loses the last op; the retry heals it ==")
        request, first = await _join(shard, "retrier", 0xBEEF)
        # Tear mid-record: the crash hit during the join's append.
        await supervisor.kill(0, tear_tail=7)
        revive = asyncio.create_task(supervisor.restart(0))
        rpc = ResilientRpc(RetryPolicy(timeout=0.3, deadline=10.0,
                                       budget=8, backoff_base=0.05))
        attempts = []

        async def attempt(timeout):
            # The same datagram, re-sent: at first the shard is down.
            if shard.state != "up":
                attempts.append("down")
                return None  # timeout
            box = []
            await shard.core.submit(request, box.append, path_id=None)
            attempts.append("served")
            return box[0] if box else None

        outcome = await rpc.call(attempt)
        await revive
        print(f"  the op was torn away (member after restart+retry: "
              f"{shard.server.is_member('retrier')})")
        print(f"  outcome: {outcome.status} after {outcome.attempts} "
              f"attempts {attempts}")
        print(f"  repaired journal still replays to the live state: "
              f"{supervisor.verify_shard(0)}\n")
        assert outcome.ok and shard.server.is_member("retrier")

        print("== 4. a retry storm is absorbed by the idempotency cache ==")
        seq_before = shard.server._seq
        replayed = 0
        for _ in range(8):
            box = []
            await shard.core.submit(request, box.append, path_id=None)
            replayed += bool(box and box[0] == outcome.reply)
        print(f"  8 duplicates, {replayed} answered by byte-replay, "
              f"{shard.server._seq - seq_before} extra sequence draws\n")
        assert shard.server._seq == seq_before

        print("== 5. corruption is refused, not repaired away ==")
        other = supervisor.shard(1)
        await _join(other, "v0", 100)
        await supervisor.kill(1, corrupt_tail=True)
        try:
            await supervisor.restart(1)
            raise AssertionError("corrupt journal was accepted!")
        except Exception as error:
            print(f"  restart refused: {type(error).__name__}")
        print(f"  shard-1 parked: {other.state} "
              f"(operator intervention required)")
        restarts = supervisor._m_restarts.labels(shard="shard-0",
                                                 mode="journal")
        print(f"\nsupervisor_restarts_total{{shard-0}} = "
              f"{restarts.value}: crashes are routine, corruption is not.")
    finally:
        await supervisor.aclose()


if __name__ == "__main__":
    asyncio.run(main())

#!/usr/bin/env python3
"""Pay-per-view: the paper's motivating workload.

A broadcaster streams three paid program segments to a large audience
with heavy churn between segments (viewers buy individual programs).
Confidentiality requirements map exactly onto the paper's model:

* a viewer who leaves after segment 1 must not decrypt segment 2
  (forward secrecy — the group key changes on every leave);
* a viewer who buys only segment 3 must not decrypt earlier segments
  (backward secrecy — the group key changes on every join);
* rekeying cost must stay ~log(n) per membership change or the
  broadcaster cannot scale (the paper's headline result).

Run:  python examples/pay_per_view.py
"""

from repro import GroupClient, GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE_NO_SIG as SUITE
from repro.simulation.workload import initial_members


class Broadcaster:
    def __init__(self, audience_size):
        self.server = GroupKeyServer(ServerConfig(
            strategy="group", degree=4, suite=SUITE, signing="none",
            seed=b"ppv-demo"))
        self.viewers = {}
        # Bulk-admit the opening audience.
        names = initial_members(audience_size, prefix="viewer")
        enrollment = [(name, self.server.new_individual_key())
                      for name in names]
        self.server.bootstrap(enrollment)
        for name, key in enrollment:
            self._make_viewer(name, key, primed=True)

    def _make_viewer(self, name, key, primed=False):
        viewer = GroupClient(name, SUITE, verify=False)
        viewer.set_individual_key(key)
        self.viewers[name] = viewer
        if primed:
            # Initial key distribution (the bootstrap's equivalent of the
            # paper's initial n joins).
            path = self.server.tree.user_key_path(name)
            viewer.set_leaf(path[0].node_id)
            for node in path[1:]:
                viewer.keys[node.node_id] = (node.version, node.key)
            viewer.root_ref = self.server.group_key_ref()
        return viewer

    def subscribe(self, name):
        key = self.server.new_individual_key()
        viewer = self._make_viewer(name, key)
        outcome = self.server.join(name, key)
        viewer.process_control(outcome.control_messages[0].encoded)
        self._deliver(outcome)
        return outcome.record

    def unsubscribe(self, name):
        outcome = self.server.leave(name)
        self.viewers.pop(name)
        self._deliver(outcome)
        return outcome.record

    def _deliver(self, outcome):
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                self.viewers[receiver].process_message(message.encoded)

    def broadcast(self, segment_bytes):
        return self.server.seal_group_message(segment_bytes)


def can_watch(viewer, sealed):
    try:
        viewer.open_data(sealed.encoded)
        return True
    except Exception:
        return False


def main():
    broadcaster = Broadcaster(audience_size=512)
    print(f"audience bootstrapped: {broadcaster.server.n_users} viewers, "
          f"key tree height {broadcaster.server.tree.height()}")

    # --- segment 1 -------------------------------------------------------
    segment1 = broadcaster.broadcast(b"[segment 1: championship game]")
    early_bird = broadcaster.viewers["viewer0007"]
    assert can_watch(early_bird, segment1)
    print("segment 1 on air; viewer0007 is watching")

    # --- churn between segments -----------------------------------------
    print("\nintermission churn: 40 leave, 40 join")
    leave_records = [broadcaster.unsubscribe(f"viewer{i:04d}")
                     for i in range(40)]
    join_records = [broadcaster.subscribe(f"latecomer{i}")
                    for i in range(40)]
    mean = lambda records: sum(r.encryptions for r in records) / len(records)
    print(f"  mean encryptions per leave: {mean(leave_records):.1f} "
          f"(star baseline would need ~{broadcaster.server.n_users})")
    print(f"  mean encryptions per join:  {mean(join_records):.1f}")

    # --- segment 2 --------------------------------------------------------
    segment2 = broadcaster.broadcast(b"[segment 2: overtime thriller]")
    churned_out = GroupClient("viewer0003", SUITE, verify=False)
    # viewer0003 left; its last known keys are stale.
    latecomer = broadcaster.viewers["latecomer5"]
    assert can_watch(latecomer, segment2)
    print("\nsegment 2 on air; latecomer5 is watching")
    # Forward secrecy: everyone who left during intermission is locked out.
    locked_out = sum(1 for i in range(40)
                     if f"viewer{i:04d}" not in broadcaster.viewers)
    print(f"  {locked_out}/40 departed viewers hold only stale keys")

    # Backward secrecy: latecomers cannot decrypt segment 1 (captured
    # earlier) — their keys postdate it.
    assert not can_watch(latecomer, segment1)
    print("  latecomer5 cannot decrypt the segment-1 recording "
          "(backward secrecy)")

    # --- the scalability ledger -------------------------------------------
    history = broadcaster.server.history
    total_bytes = sum(r.rekey_bytes for r in history)
    total_ms = sum(r.seconds for r in history) * 1000
    print(f"\nledger: {len(history)} membership changes, "
          f"{total_bytes} rekey bytes, {total_ms:.1f} ms server time "
          f"({total_ms / len(history):.2f} ms per change)")


if __name__ == "__main__":
    main()

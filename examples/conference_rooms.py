#!/usr/bin/env python3
"""Teleconference service: multiple secure groups over one population.

The paper's closing section (§7) motivates key *graphs* (not just trees):
"applications that require the formation of multiple secure groups over
a population of users and a user can join several secure groups.  For
these applications, the key trees of different group keys are merged to
form a key graph."

This example runs a conference service with three rooms, users attending
several rooms at once, and inspects the merged key graph.

Run:  python examples/conference_rooms.py
"""

from repro.multigroup import MultiGroupService


def main():
    service = MultiGroupService(seed=b"conference-demo")

    people = ["ana", "boris", "chen", "divya", "emeka", "fatima", "grace",
              "hugo"]
    for person in people:
        service.register_user(person)
    print(f"{len(people)} users registered "
          "(one authentication exchange each — the individual key is "
          "shared across all their rooms)")

    rooms = {
        "plenary": people,                       # everyone
        "steering": ["ana", "boris", "chen"],    # the committee
        "hallway": ["chen", "divya", "emeka", "fatima"],
    }
    for room, attendees in rooms.items():
        service.create_group(room, degree=3)
        for person in attendees:
            service.join(room, person)
        server = service.group(room)
        print(f"room {room!r}: {server.n_users} attendees, "
              f"{server.tree.n_keys} keys, height {server.tree.height()}")

    print("\nmembership view:")
    for person in people:
        print(f"  {person:7s} -> {sorted(service.groups_of(person))}")

    # The merged key graph is a real (validated) key graph: u-nodes reach
    # exactly the keys of the groups they belong to.
    graph = service.merged_key_graph()
    graph.validate()
    secure_group = graph.secure_group()
    chen_keys = secure_group.keyset("chen")
    print(f"\nchen holds {len(chen_keys)} keys across "
          f"{len(service.groups_of('chen'))} rooms:")
    for key in sorted(chen_keys):
        print(f"  {key}")

    # Rooms rekey independently: churn in the hallway leaves the
    # steering committee's key untouched.
    steering_key = service.group("steering").group_key()
    service.leave("hallway", "divya")
    service.join("hallway", "grace")
    assert service.group("steering").group_key() == steering_key
    print("\nhallway churned twice; steering's group key is untouched "
          "(groups rekey independently)")

    # But the hallway's key did change — divya is rekeyed out.
    assert "hallway" not in service.groups_of("divya")
    print("divya left the hallway and was rekeyed out of it; "
          "she still attends:", sorted(service.groups_of("divya")))


if __name__ == "__main__":
    main()

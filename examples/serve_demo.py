#!/usr/bin/env python3
"""Live async serving demo: the event-loop front end over real sockets.

The successor to the retired ``udp_live_demo.py`` (which drove the
one-request-at-a-time thread server): this demo runs the asyncio
serving layer — request parsing and rekey *planning* on the event
loop, encrypt/sign offloaded to a worker pool, admission control in
front — behind a loopback UDP endpoint, with every client on its own
datagram socket:

* eight members join **concurrently**; their staged rekeys overlap on
  the worker pool, the turnstile keeps the wire bytes identical to a
  serial run, and each member verifies the Merkle-signed rekey
  messages fanned out to its socket;
* one member leaves; the survivors follow the leave rekey;
* a member that fell behind (lost datagrams, slow start) resyncs
  through the same front end;
* a deliberate request flood from one client draws ``MSG_BUSY`` — the
  per-client token bucket sheds instead of queueing without bound;
* a stats scrape over the same socket shows the serving counters.

Run:  python examples/serve_demo.py
"""

import asyncio
import json

from repro.core.client import GroupClient
from repro.core.messages import (MSG_BUSY, MSG_JOIN_ACK, MSG_JOIN_DENIED,
                                 MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                                 MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                                 MSG_REKEY, MSG_RESYNC_REPLY,
                                 MSG_RESYNC_REQUEST, MSG_STATS_REQUEST,
                                 Message)
from repro.core.server import GroupKeyServer, ServerConfig
from repro.serve import (AsyncKeyService, ImmediateServingCore, ServeConfig,
                         default_server_config)

_CONTROL = (MSG_JOIN_ACK, MSG_LEAVE_ACK, MSG_JOIN_DENIED, MSG_LEAVE_DENIED)


class _Inbox(asyncio.DatagramProtocol):
    """Collects every datagram a member's socket receives."""

    def __init__(self):
        self.queue = asyncio.Queue()

    def datagram_received(self, data, addr):
        self.queue.put_nowait(data)


class Member:
    """One group member: its own UDP socket plus the key state machine."""

    def __init__(self, user_id, server):
        self.user_id = user_id
        self.client = GroupClient(user_id, server.config.suite,
                                  server_public_key=server.public_key)
        self.transport = None
        self.inbox = None
        self.busy = 0
        self._pump_task = None

    async def connect(self, address):
        loop = asyncio.get_running_loop()
        self.transport, self.inbox = await loop.create_datagram_endpoint(
            _Inbox, remote_addr=address)
        self._pump_task = asyncio.ensure_future(self._pump())

    async def _pump(self):
        while True:
            data = await self.inbox.queue.get()
            try:
                message = Message.decode(data)
            except Exception:
                continue
            try:
                if message.msg_type == MSG_REKEY:
                    self.client.process_message(message)
                elif message.msg_type in _CONTROL:
                    self.client.process_control(message)
                elif message.msg_type == MSG_RESYNC_REPLY:
                    self.client.process_resync(message)
                elif message.msg_type == MSG_BUSY:
                    self.busy += 1
            except Exception:
                self.client.desynced = True

    def send(self, msg_type):
        self.transport.sendto(
            Message(msg_type=msg_type, body=self.user_id.encode()).encode())

    async def close(self):
        if self._pump_task is not None:
            self._pump_task.cancel()
        if self.transport is not None:
            self.transport.close()


async def _settle(predicate, timeout=5.0):
    """Poll until ``predicate()`` holds (the traffic is real UDP)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            return False
        await asyncio.sleep(0.02)
    return True


async def main():
    protocol = default_server_config(ServerConfig(
        strategy="group", degree=4, signing="merkle", seed=b"serve-demo"))
    server = GroupKeyServer(protocol)
    core = ImmediateServingCore(server, ServeConfig(
        tick_interval=0, open_enroll=False,
        client_rate=50.0, client_burst=8))
    async with AsyncKeyService(core) as service:
        host, port = service.udp_address
        print(f"async key service on {host}:{port} "
              f"(backend={protocol.backend}, "
              f"workers={core.executor._max_workers})")

        members = [Member(f"client{i}", server) for i in range(8)]
        for member in members:
            # The authentication exchange happens out of band; the
            # session key it produced is registered on both sides.
            key = server.new_individual_key()
            server.register_individual_key(member.user_id, key)
            member.client.set_individual_key(key)
            await member.connect(service.udp_address)

        # All eight joins hit the endpoint at once: plans run in
        # arrival order on the loop, encrypt/sign overlap on the pool.
        for member in members:
            member.send(MSG_JOIN_REQUEST)
        await _settle(lambda: all(
            m.client.leaf_node_id is not None for m in members))

        # Anyone who missed a concurrent rekey recovers via resync.
        def in_sync():
            return [m for m in members
                    if m.client.group_key() == server.group_key()]
        if not await _settle(lambda: len(in_sync()) == len(members),
                             timeout=1.0):
            for member in members:
                if member.client.group_key() != server.group_key():
                    print(f"  {member.user_id} fell behind -> resync")
                    member.send(MSG_RESYNC_REQUEST)
            await _settle(lambda: len(in_sync()) == len(members))
        print(f"{len(in_sync())}/{len(members)} members hold the group "
              "key (verified Merkle-signed rekeys over UDP)")

        print("\nclient3 leaves...")
        members[3].send(MSG_LEAVE_REQUEST)
        survivors = members[:3] + members[4:]
        await _settle(lambda: all(
            m.client.group_key() == server.group_key()
            for m in survivors))
        print(f"{sum(1 for m in survivors if m.client.group_key() == server.group_key())}"
              f"/{len(survivors)} survivors follow the leave rekey; "
              "client3's key no longer opens the group")

        print("\nclient0 floods the server with resync requests...")
        for _ in range(24):
            members[0].send(MSG_RESYNC_REQUEST)
        await _settle(lambda: members[0].busy > 0)
        print(f"admission control shed {members[0].busy} of them "
              "with MSG_BUSY (per-client token bucket)")

        # Stats scrape on a throwaway socket: one request, one reply.
        loop = asyncio.get_running_loop()
        transport, inbox = await loop.create_datagram_endpoint(
            _Inbox, remote_addr=service.udp_address)
        transport.sendto(Message(msg_type=MSG_STATS_REQUEST).encode())
        data = await asyncio.wait_for(inbox.queue.get(), timeout=5.0)
        stats = json.loads(Message.decode(data).body.decode("utf-8"))
        transport.close()
        served = stats["metrics"]["counters"]["serve_requests_total"]
        print("\nscraped serving counters:")
        for series in served["series"]:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(series["labels"].items()))
            print(f"  serve_requests_total{{{labels}}} = "
                  f"{int(series['value'])}")

        for member in members:
            await member.close()


if __name__ == "__main__":
    asyncio.run(main())

#!/usr/bin/env python3
"""General key graphs and the key-covering problem (paper §2).

The paper's experiments use key *trees*, but its model — and its title —
is key *graphs*: arbitrary DAGs of users and keys, where rekeying after
a leave means solving a key-covering problem.  This example works
directly with the paper's Figure 1 graph:

    u1 -> k1, k12
    u2 -> k2, k12, k234
    u3 -> k3, k234
    u4 -> k4, k234          k12, k234 -> k1234 (the group key)

and shows a covering-driven leave and join, plus the exact/greedy
covering solvers and a Graphviz export of the graph.

Run:  python examples/general_key_graphs.py
"""

from repro.crypto import PAPER_SUITE_NO_SIG as SUITE
from repro.crypto.drbg import HmacDrbg
from repro.keygraph import (MaterializedKeyGraph, exact_cover,
                            figure1_example, greedy_cover)


def main():
    # -- the formal model --------------------------------------------------
    graph = figure1_example()
    graph.validate()
    group = graph.secure_group()
    print("Figure 1 secure group (U, K, R):")
    for user in sorted(group.users):
        print(f"  keyset({user}) = {sorted(group.keyset(user))}")
    print(f"  userset(k234)   = {sorted(group.userset('k234'))}")

    # -- the key covering problem ------------------------------------------
    print("\nkey covering (the NP-hard core of rekeying, §2.1):")
    target = ["u2", "u3", "u4"]          # everyone but u1
    print(f"  cover {{u2,u3,u4}} exactly  -> {exact_cover(group, target)}")
    target = ["u1", "u2", "u3"]
    print(f"  cover {{u1,u2,u3}} exactly  -> "
          f"{sorted(exact_cover(group, target))} (no single key fits)")
    print(f"  greedy gives the same size -> "
          f"{sorted(greedy_cover(group, target))}")

    # -- operational rekeying over the graph ---------------------------------
    source = HmacDrbg(b"general-graphs-demo")
    material, individual = MaterializedKeyGraph.figure1(
        SUITE, lambda: source.generate(8))

    print("\nu1 leaves; covering drives the rekey:")
    outcome = material.leave("u1")
    print(f"  replaced keys : {sorted(outcome.replaced)}")
    print(f"  encryptions   : {outcome.encryptions} "
          "(k12' under k2; k1234' under k234 — the minimal covers)")
    print(f"  rekey message : {len(outcome.messages[0].encoded)} bytes to "
          f"{len(outcome.messages[0].receivers)} users")

    print("\nu5 joins holding k234; its closure is rekeyed:")
    outcome = material.join("u5", source.generate(8), ["k234"])
    print(f"  replaced keys : {sorted(outcome.replaced)}")
    print(f"  messages      : {len(outcome.messages)} "
          "(old-key multicast + joiner bundle)")

    # -- visualization ----------------------------------------------------------
    print("\nGraphviz DOT of the current graph "
          "(pipe into `dot -Tpng` to draw):\n")
    print(material.graph.to_dot("figure-1 after churn"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Secure group chat: the full stack in one example.

Combines everything the library provides:

* group key management (LKH key tree, group-oriented rekeying),
* authenticated member-to-group data frames with replay protection
  (``SecureGroupChannel``),
* FEC-protected multicast over a lossy network (no retransmissions),
* a server failover via state snapshot/restore mid-conversation.

Run:  python examples/secure_chat.py
"""

from repro.core import (GroupClient, GroupKeyServer, SecureGroupChannel,
                        ServerConfig, restore, snapshot)
from repro.crypto import PAPER_SUITE_NO_SIG as SUITE
from repro.transport import FecMulticast, InMemoryNetwork


def main():
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=3, suite=SUITE, signing="none",
        seed=b"chat-demo"))

    # A 10%-lossy network; rekey messages ride FEC (k=3 data + 3 parity),
    # so nobody ever asks for a retransmission.
    network = InMemoryNetwork(drop_rate=0.10, seed=b"chat-loss")
    fec = FecMulticast(network, k=3, r=3)

    clients, channels = {}, {}

    def join(name):
        key = server.new_individual_key()
        client = GroupClient(name, SUITE, verify=False)
        client.set_individual_key(key)
        clients[name] = client
        fec.attach(name, client.process_message)
        outcome = server.join(name, key)
        client.process_control(outcome.control_messages[0].encoded)
        fec.send_all(outcome.rekey_messages)
        channels[name] = SecureGroupChannel.for_client(
            client, accept_previous_epochs=1)

    def say(sender, text):
        frame = channels[sender].seal(text.encode())
        heard = []
        for name, channel in channels.items():
            if name == sender:
                continue
            try:
                payload, who, _seq = channel.open(frame)
                heard.append(name)
            except Exception:
                pass
        print(f"  <{sender}> {text}   [heard by {', '.join(sorted(heard))}]")
        return frame

    print("== ana, boris, chen join over a 10% lossy network ==")
    for name in ("ana", "boris", "chen"):
        join(name)
    in_sync = sum(1 for c in clients.values()
                  if c.group_key() == server.group_key())
    print(f"  {in_sync}/3 in sync; FEC recovered "
          f"{fec.recovered_with_parity} message copies from parity, "
          f"0 retransmissions")

    print("\n== chat ==")
    say("ana", "did everyone get the new build?")
    frame = say("boris", "yes — deploying tonight")

    print("\n== replay attack ==")
    try:
        channels["chen"].open(frame)
        channels["chen"].open(frame)  # replayed
        print("  REPLAY ACCEPTED (bug!)")
    except Exception as exc:
        print(f"  chen's channel rejected the replayed frame: {exc}")

    print("\n== server failover mid-conversation ==")
    blob = snapshot(server)
    server = restore(blob)
    print(f"  standby restored: {server.n_users} members, "
          "same keys, same sequence numbers")
    join("divya")  # served by the standby
    say("divya", "hi all, just joined via the standby server")

    print("\n== boris is expelled; his channel goes dark ==")
    boris_channel = channels.pop("boris")
    clients.pop("boris")
    fec.detach("boris")
    outcome = server.leave("boris")
    fec.send_all(outcome.rekey_messages)
    # Rebind remaining channels to the fresh epoch only.
    for name in list(channels):
        channels[name] = SecureGroupChannel.for_client(clients[name])
    frame = say("ana", "boris must not read this")
    try:
        boris_channel.open(frame)
        print("  BORIS READ IT (bug!)")
    except Exception:
        print("  boris's stale keys cannot open post-expulsion frames "
              "(forward secrecy, end to end)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Batch rekeying under flash-crowd churn (extension beyond the paper).

Per-request rekeying changes the group key on *every* join/leave — with
a flash crowd, the root key is replaced hundreds of times a second and
most of that work overlaps.  The interval batching extension collects an
interval's requests and rekeys each affected path once.

Run:  python examples/batch_rekeying_demo.py
"""

from repro.batch import BatchRekeyServer
from repro.core import GroupClient
from repro.crypto import PAPER_SUITE_NO_SIG as SUITE


def main():
    server = BatchRekeyServer(degree=4, suite=SUITE, seed=b"batch-demo")
    enrollment = [(f"u{i}", server.new_individual_key())
                  for i in range(256)]
    server.bootstrap(enrollment)

    # Keep real clients for 256 members so we can prove the flush output
    # actually resynchronises everyone.
    clients = {}
    for uid, key in enrollment:
        client = GroupClient(uid, SUITE, verify=False)
        client.set_individual_key(key)
        client.set_leaf(server.tree.leaf_of(uid).node_id)
        for node in server.tree.user_key_path(uid)[1:]:
            client.keys[node.node_id] = (node.version, node.key)
        client.root_ref = (server.tree.root.node_id,
                           server.tree.root.version)
        clients[uid] = client

    print("flash crowd: 32 leaves + 32 joins arrive within one interval")
    for i in range(32):
        server.request_leave(f"u{i}")
        del clients[f"u{i}"]
    joiners = {}
    for i in range(32):
        key = server.new_individual_key()
        joiners[f"crowd{i}"] = key
        server.request_join(f"crowd{i}", key)

    result = server.flush()
    print(f"  one flush: {result.encryptions} encryptions vs "
          f"{result.individual_cost_estimate} for per-request rekeying "
          f"-> {result.saving:.0%} saved")
    print(f"  one multicast of "
          f"{len(result.rekey_message.encoded)} bytes + "
          f"{len(result.joiner_messages)} joiner unicasts")

    # Deliver and verify synchrony.
    for uid, key in joiners.items():
        client = GroupClient(uid, SUITE, verify=False)
        client.set_individual_key(key)
        clients[uid] = client
    for uid in result.rekey_message.receivers:
        if uid in clients:
            clients[uid].process_message(result.rekey_message.encoded)
    for message in result.joiner_messages:
        clients[message.receivers[0]].process_message(message.encoded)

    group_key = server.tree.root.key
    in_sync = sum(1 for client in clients.values()
                  if client.group_key() == group_key)
    print(f"  {in_sync}/{len(clients)} members hold the new group key")

    print("\nsaving vs batch size (same total churn):")
    for batch_size in (1, 4, 16, 64):
        probe = BatchRekeyServer(degree=4, suite=SUITE, seed=b"probe")
        probe.bootstrap([(f"u{i}", probe.new_individual_key())
                         for i in range(256)])
        batched = individual = 0
        leaver = joiner = 0
        for _ in range(64 // batch_size):
            for _ in range(batch_size):
                probe.request_leave(f"u{leaver}")
                leaver += 1
                probe.request_join(f"j{joiner}",
                                   probe.new_individual_key())
                joiner += 1
            flush = probe.flush()
            batched += flush.encryptions
            individual += flush.individual_cost_estimate
        print(f"  batch={batch_size:3d}: {batched:5d} encryptions "
              f"({1 - batched / individual:.0%} saved)")


if __name__ == "__main__":
    main()

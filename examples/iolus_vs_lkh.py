#!/usr/bin/env python3
"""Iolus vs LKH (paper §6): where does the "1 affects n" work land?

Runs the same community — 64 clients, churn, and confidential data
messages — through both architectures and prints the ledger:

* Iolus rekeys only the local subgroup on membership changes but every
  agent decrypts/re-encrypts the message key on every data message;
* LKH (this paper) pays ~d log n on membership changes but exactly one
  encryption per data message, and trusts one server instead of every
  agent.

Run:  python examples/iolus_vs_lkh.py
"""

from repro.core.server import GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE_NO_SIG as SUITE
from repro.iolus import IolusSystem

N_CLIENTS = 64
N_CHURN = 20          # leave+join pairs
DATA_PER_CHURN = 5    # confidential messages between membership changes


def run_iolus():
    system = IolusSystem(suite=SUITE, agent_fanout=4, agent_levels=2,
                         seed=b"iolus-vs-lkh")
    for i in range(N_CLIENTS):
        system.join(f"c{i}")
    system.history.clear()

    membership_ops = data_ops = 0
    for i in range(N_CHURN):
        membership_ops += system.leave(f"c{i}").crypto_ops
        membership_ops += system.join(f"c{i}").crypto_ops
        for j in range(DATA_PER_CHURN):
            record, received = system.multicast(f"c{(i + 1) % N_CLIENTS}",
                                                b"market data tick")
            assert len(received) == N_CLIENTS
            data_ops += record.crypto_ops
    return membership_ops, data_ops, system.trusted_entities()


def run_lkh():
    server = GroupKeyServer(ServerConfig(strategy="group", degree=4,
                                         suite=SUITE, signing="none",
                                         seed=b"iolus-vs-lkh"))
    server.bootstrap([(f"c{i}", server.new_individual_key())
                      for i in range(N_CLIENTS)])
    membership_ops = data_ops = 0
    for i in range(N_CHURN):
        membership_ops += server.leave(f"c{i}").record.encryptions
        membership_ops += server.join(
            f"c{i}", server.new_individual_key()).record.encryptions
        for j in range(DATA_PER_CHURN):
            server.seal_group_message(b"market data tick")
            data_ops += 1  # one group-key encryption; no relay hops
    return membership_ops, data_ops, 1


def main():
    iolus_membership, iolus_data, iolus_trusted = run_iolus()
    lkh_membership, lkh_data, lkh_trusted = run_lkh()

    print(f"community: {N_CLIENTS} clients, {N_CHURN} leave+join pairs, "
          f"{N_CHURN * DATA_PER_CHURN} confidential data messages\n")
    header = f"{'':24s}{'Iolus':>12s}{'LKH (paper)':>14s}"
    print(header)
    print("-" * len(header))
    print(f"{'membership crypto ops':24s}{iolus_membership:>12d}"
          f"{lkh_membership:>14d}")
    print(f"{'data-path crypto ops':24s}{iolus_data:>12d}{lkh_data:>14d}")
    print(f"{'total crypto ops':24s}{iolus_membership + iolus_data:>12d}"
          f"{lkh_membership + lkh_data:>14d}")
    print(f"{'trusted entities':24s}{iolus_trusted:>12d}{lkh_trusted:>14d}")

    print("\nreading (paper §6): Iolus wins when churn dominates and "
          "data is rare;")
    print("LKH wins when data dominates — its data path costs one "
          "encryption, ever —")
    print("and needs a single trusted entity instead of an agent "
          "hierarchy.")


if __name__ == "__main__":
    main()

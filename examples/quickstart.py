#!/usr/bin/env python3
"""Quickstart: a secure group in ~60 lines.

Creates a group key server (key tree, group-oriented rekeying, DES +
MD5 + RSA-512 — the paper's configuration), admits three members,
sends a confidential group message, and shows that a departed member
is rekeyed out (forward secrecy).

Run:  python examples/quickstart.py
"""

from repro import GroupClient, GroupKeyServer, ServerConfig
from repro.crypto import PAPER_SUITE


def main():
    # The server is the single trusted entity (paper §6 "Trust").
    server = GroupKeyServer(ServerConfig(
        strategy="group",      # one rekey multicast per join/leave
        degree=4,              # the paper's optimal key tree degree
        suite=PAPER_SUITE,     # DES-CBC + MD5 + RSA-512
        signing="merkle",      # §4's one-signature-per-request technique
        seed=b"quickstart",    # deterministic demo
    ))

    clients = {}

    def join(name):
        # In deployment the individual key comes from an authentication
        # exchange (Kerberos etc.); here the server issues it directly.
        individual_key = server.new_individual_key()
        client = GroupClient(name, PAPER_SUITE, server.public_key)
        client.set_individual_key(individual_key)
        clients[name] = client
        outcome = server.join(name, individual_key)
        deliver(outcome)
        print(f"  {name} joined: {outcome.record.n_rekey_messages} rekey "
              f"message(s), {outcome.record.encryptions} key encryptions, "
              f"{outcome.record.rekey_bytes} bytes")

    def deliver(outcome):
        """Play the network: hand every message to its receivers."""
        for message in outcome.control_messages:
            for receiver in message.receivers:
                if receiver in clients:
                    clients[receiver].process_control(message.encoded)
        for message in outcome.rekey_messages:
            for receiver in message.receivers:
                clients[receiver].process_message(message.encoded)

    print("== three members join ==")
    for name in ("alice", "bob", "carol"):
        join(name)

    print("\n== confidential group message ==")
    sealed = server.seal_group_message(b"meeting moved to 3pm")
    for name, client in clients.items():
        plaintext = client.open_data(sealed.encoded)
        print(f"  {name} reads: {plaintext.decode()}")

    print("\n== bob leaves; the group key changes ==")
    bob = clients.pop("bob")
    bobs_old_group_key = bob.group_key()
    outcome = server.leave("bob")
    deliver(outcome)
    print(f"  leave: {outcome.record.n_rekey_messages} rekey message(s), "
          f"{outcome.record.encryptions} key encryptions")

    sealed = server.seal_group_message(b"salary review notes (not for bob)")
    for name, client in clients.items():
        print(f"  {name} reads: {client.open_data(sealed.encoded).decode()}")

    assert bob.group_key() == bobs_old_group_key  # bob learned nothing new
    assert bobs_old_group_key != server.group_key()
    print("  bob still holds only the OLD group key -> forward secrecy")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sharded key-server cluster: partitioned LKH, failover, one scrape.

The paper sizes a *single* key server against the whole group (§5's
scalability analysis).  This demo runs the cluster extension instead:
the logical group is consistent-hash partitioned over four shard
servers, each owning a full LKH subtree, with a small root key layer
spanning the shard roots.  A join or leave rekeys only the owning
shard's O(log shard_size) path plus the O(log n_shards) root layer —
per-operation cost is bounded by the shard size, not the group size.

The demo then kills a shard mid-workload and promotes its warm standby
(checkpoint + journal replay): members keep decrypting with the keys
they already hold, no out-of-band recovery.  Finally one stats request
returns a single cluster-wide ``repro-metrics/1`` snapshot merging
every shard's telemetry.

Run:  python examples/cluster_demo.py
"""

from repro.cluster import (ClusterConfig, ClusterCoordinator,
                           ClusterFrontEnd, ClusterMember)
from repro.crypto import PAPER_SUITE
from repro.observability import Instrumentation, Tracer
from repro.observability.export import to_prometheus, validate_snapshot


def main():
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=4, degree=4, signing="merkle",
                      seed=b"cluster-demo"),
        instrumentation=Instrumentation("cluster", tracer=Tracer()))
    coordinator.bootstrap([])
    front_end = ClusterFrontEnd(coordinator)

    print("== 1. one endpoint, four shards ==")
    members = {}
    for index in range(24):
        user_id = f"user-{index:02d}"
        member = ClusterMember(user_id, PAPER_SUITE,
                               server_public_key=coordinator.public_key)
        key = coordinator.new_individual_key()
        coordinator.register_individual_key(user_id, key)
        member.client.set_individual_key(key)
        front_end.attach_member(member)
        front_end.submit(member.join_request())
        members[user_id] = member
    for shard in coordinator.shards:
        print(f"  shard {shard.shard_id}: {shard.server.n_users:2d} members "
              f"(node ids {shard.server.tree.root.node_id:#010x}...)")
    group_key = coordinator.group_key()
    synced = sum(member.group_key == group_key for member in members.values())
    print(f"  {synced}/{len(members)} members hold the cluster group key")

    print("\n== 2. per-op cost is shard-local ==")
    record = coordinator.history[-1]
    print(f"  last join: {record.shard_encryptions} shard-layer + "
          f"{record.root_encryptions} root-layer encryptions "
          f"({coordinator.n_users} members total)")

    print("\n== 3. kill a shard, promote the warm standby ==")
    coordinator.enable_standbys(checkpoint_interval=8)
    victim = coordinator.shard_of("user-05").shard_id
    # More churn after the checkpoint, so promotion must replay a journal.
    for index in range(24, 28):
        user_id = f"user-{index:02d}"
        member = ClusterMember(user_id, PAPER_SUITE,
                               server_public_key=coordinator.public_key)
        key = coordinator.new_individual_key()
        coordinator.register_individual_key(user_id, key)
        member.client.set_individual_key(key)
        front_end.attach_member(member)
        front_end.submit(member.join_request())
        members[user_id] = member
    coordinator.fail_shard(victim)
    coordinator.promote_standby(victim)
    print(f"  shard {victim} failed and was promoted from its standby")
    front_end.submit(members["user-05"].leave_request())  # through successor
    departed = members.pop("user-05")
    front_end.detach_member("user-05")
    group_key = coordinator.group_key()
    synced = sum(member.group_key == group_key for member in members.values())
    print(f"  post-failover leave: {synced}/{len(members)} members "
          f"followed, departed member excluded: "
          f"{departed.group_key != group_key}")

    print("\n== 4. one scrape, cluster-wide ==")
    document = front_end.scrape()
    validate_snapshot(document)
    lines = to_prometheus(document).splitlines()
    print(f"  snapshot valid ({len(document['metrics']['counters'])} counter "
          f"families, {len(lines)} exposition lines); samples:")
    for line in lines:
        if line.startswith(("cluster_shard_members", "cluster_failovers",
                            "cluster_encryptions_total")):
            print(f"    {line}")


if __name__ == "__main__":
    main()

"""Sharded key-server cluster (one logical group across N shards).

* :mod:`~repro.cluster.partition` — deterministic consistent-hash ring;
* :mod:`~repro.cluster.coordinator` — per-shard
  :class:`~repro.core.server.GroupKeyServer` subtrees composed under a
  root key layer, one group-oriented multicast per operation;
* :mod:`~repro.cluster.failover` — warm standby: checkpoint + journaled
  key-material draws, byte-identical promotion;
* :mod:`~repro.cluster.routing` — the members' single front-end plus the
  cluster-wide stats scrape.
"""

from .coordinator import (MAX_SHARDS, ROOT_LAYER_BASE, SHARD_ID_SPACE,
                          ClusterConfig, ClusterCoordinator, ClusterError,
                          ClusterRecord, ClusterRekeyOutcome, RootKeyLayer,
                          Shard, namespace_tree, shard_id_base)
from .failover import JOURNAL_FORMAT, FailoverError, WarmStandby
from .partition import (DEFAULT_VNODES, HashRing, PartitionError, ShardId,
                        ring_point)
from .routing import ClusterFrontEnd, ClusterMember, RoutingError

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterRecord",
    "ClusterRekeyOutcome",
    "RootKeyLayer",
    "Shard",
    "namespace_tree",
    "shard_id_base",
    "SHARD_ID_SPACE",
    "ROOT_LAYER_BASE",
    "MAX_SHARDS",
    "WarmStandby",
    "FailoverError",
    "JOURNAL_FORMAT",
    "HashRing",
    "PartitionError",
    "ShardId",
    "DEFAULT_VNODES",
    "ring_point",
    "ClusterFrontEnd",
    "ClusterMember",
    "RoutingError",
]

"""Deterministic user -> shard partitioning (consistent-hash ring).

The paper notes the key server "may be replicated for reliability /
performance enhancement"; running one logical group across N shard
servers requires a stable assignment of users to shards.  A consistent-
hash ring with virtual nodes gives us:

* **determinism** — the owner of a user id is a pure function of the
  ring configuration, so every component (coordinator, front-end
  routers, failover tooling) agrees without coordination and
  independent of ``PYTHONHASHSEED`` (points come from MD5, not
  ``hash()``);
* **balance** — with enough virtual nodes per shard the user population
  spreads near-uniformly (``spread`` reports the actual distribution);
* **minimal movement** — adding or removing a shard remaps only the
  users whose arc changed hands (roughly ``1/N`` of them), which keeps
  a future resharding operation's rekey traffic proportional to the
  moved population, not the whole group.

The ring hashes *ids*, never key material: partitioning is routing
metadata, so the C-speed :mod:`hashlib` MD5 is used directly rather
than the repo's scratch implementation (same policy as the DRBG's
hashlib backend).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple, Union

ShardId = Union[int, str]

DEFAULT_VNODES = 64


class PartitionError(ValueError):
    """Raised on invalid ring configuration or lookups."""


def ring_point(token: str) -> int:
    """The 64-bit ring coordinate of a token (user id or virtual node)."""
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping user ids onto shard ids."""

    def __init__(self, shard_ids: Iterable[ShardId],
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise PartitionError("vnodes must be >= 1")
        shards = list(shard_ids)
        if not shards:
            raise PartitionError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise PartitionError("duplicate shard ids")
        self.vnodes = vnodes
        self._shards: List[ShardId] = []
        self._points: List[int] = []     # sorted ring coordinates
        self._owners: List[ShardId] = []  # owner of each coordinate
        for shard in shards:
            self._insert(shard)

    # -- construction ------------------------------------------------------

    def _vnode_points(self, shard: ShardId) -> List[int]:
        return [ring_point(f"{shard}#{index}") for index in range(self.vnodes)]

    def _insert(self, shard: ShardId) -> None:
        self._shards.append(shard)
        for point in self._vnode_points(shard):
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def add_shard(self, shard: ShardId) -> None:
        """Add a shard; only ~1/N of the keyspace changes owners."""
        if shard in self._shards:
            raise PartitionError(f"shard {shard!r} already on the ring")
        self._insert(shard)

    def remove_shard(self, shard: ShardId) -> None:
        """Remove a shard; its arcs fall to the next shard clockwise."""
        if shard not in self._shards:
            raise PartitionError(f"shard {shard!r} not on the ring")
        if len(self._shards) == 1:
            raise PartitionError("cannot remove the last shard")
        self._shards.remove(shard)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != shard]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- lookups -----------------------------------------------------------

    @property
    def shards(self) -> List[ShardId]:
        """The shard ids currently on the ring (insertion order)."""
        return list(self._shards)

    def shard_for(self, user_id: str) -> ShardId:
        """The shard owning ``user_id`` (first vnode clockwise)."""
        index = bisect_right(self._points, ring_point(user_id))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def partition(self, user_ids: Iterable[str]) -> Dict[ShardId, List[str]]:
        """Group ``user_ids`` by owning shard (every shard present)."""
        assignment: Dict[ShardId, List[str]] = {
            shard: [] for shard in self._shards}
        for user_id in user_ids:
            assignment[self.shard_for(user_id)].append(user_id)
        return assignment

    def spread(self, user_ids: Iterable[str]) -> Dict[ShardId, int]:
        """Population count per shard, for balance checks."""
        return {shard: len(users)
                for shard, users in self.partition(user_ids).items()}

    def moved_keys(self, other: "HashRing",
                   user_ids: Iterable[str]) -> List[str]:
        """Users whose owner differs between this ring and ``other``."""
        return [user_id for user_id in user_ids
                if self.shard_for(user_id) != other.shard_for(user_id)]

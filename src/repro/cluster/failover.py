"""Warm-standby failover: snapshot + operation-journal replay.

The paper's reliability note ("the key server may be replicated for
reliability/performance enhancement") needs more than the snapshots in
:mod:`repro.core.persistence`: a snapshot taken every operation would
serialize the whole tree on the hot path, while a stale snapshot alone
loses the operations after it.  The standard warm-standby answer is a
**checkpoint plus a journal**: snapshot occasionally, journal each
join/leave since, and promote by restoring the checkpoint and replaying
the journal.

The subtlety is key material.  A replayed join draws fresh keys from
the server's DRBG — and a restored server's DRBG is *reseeded* (running
primary and standby from one stream is a key-reuse hazard), so a naïve
replay would regenerate *different* keys than the primary already
multicast to members, silently partitioning them.  Each journal entry
therefore records the exact key/IV draws the primary made during the
operation (:class:`_RecordingSource`), and :meth:`WarmStandby.promote`
replays the operation with those draws fed back verbatim
(:class:`_ReplaySource`).  The promoted server's key state is
**byte-identical** to the failed primary's — members keep decrypting
with the keys they already hold and never need out-of-band recovery —
while all *post*-promotion draws come from the reseeded DRBG.

Journal entries carry the joiner's individual key and the draw bytes,
so the journal is as secret as a snapshot; ``storage_key`` encrypts
checkpoints at rest (:func:`~repro.core.persistence.snapshot_encrypted`)
for deployments that need it.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from ..core import persistence
from ..core.pipeline import KeyMaterialSource
from ..core.server import GroupKeyServer

JOURNAL_FORMAT = 1


class FailoverError(ValueError):
    """Raised on invalid standby state or a diverging replay."""


class _RecordingSource:
    """Wraps a :class:`KeyMaterialSource`, mirroring draws into a sink.

    Installed permanently on the primary (both ``server.material`` and
    ``server.pipeline.material`` — the strategies draw keys through the
    former, the pipeline draws IVs through the latter); with no sink
    armed it is a pure pass-through.
    """

    __slots__ = ("inner", "sink")

    def __init__(self, inner: KeyMaterialSource):
        self.inner = inner
        self.sink: Optional[List[Tuple[str, bytes]]] = None

    @property
    def suite(self):
        return self.inner.suite

    def _record(self, kind: str, value: bytes) -> bytes:
        if self.sink is not None:
            self.sink.append((kind, value))
        return value

    def new_key(self) -> bytes:
        return self._record("key", self.inner.new_key())

    def new_iv(self) -> bytes:
        return self._record("iv", self.inner.new_iv())

    def new_individual_key(self) -> bytes:
        return self._record("key", self.inner.new_individual_key())


class _ReplaySource:
    """Feeds recorded draws back to a replayed operation, in order.

    A kind mismatch or an exhausted journal means the replayed code
    path diverged from what the primary executed — that must fail loud,
    not fall back to fresh randomness (members hold the primary's keys).
    """

    __slots__ = ("suite", "_draws")

    def __init__(self, suite, draws: List[Tuple[str, bytes]]):
        self.suite = suite
        self._draws = list(draws)

    @property
    def remaining(self) -> int:
        return len(self._draws)

    def _pop(self, kind: str) -> bytes:
        if not self._draws:
            raise FailoverError(
                f"replay diverged: drew an extra {kind} past the journal")
        recorded_kind, value = self._draws[0]
        if recorded_kind != kind:
            raise FailoverError(
                f"replay diverged: drew a {kind} where the primary "
                f"drew a {recorded_kind}")
        self._draws.pop(0)
        return value

    def new_key(self) -> bytes:
        return self._pop("key")

    def new_iv(self) -> bytes:
        return self._pop("iv")

    def new_individual_key(self) -> bytes:
        return self._pop("key")


class _JournalEntry:
    """One journaled operation with its recorded material draws."""

    __slots__ = ("op", "user_id", "individual_key", "draws")

    def __init__(self, op: str, user_id: str,
                 individual_key: Optional[bytes],
                 draws: List[Tuple[str, bytes]]):
        self.op = op
        self.user_id = user_id
        self.individual_key = individual_key
        self.draws = draws

    def to_dict(self) -> dict:
        return {"op": self.op, "user": self.user_id,
                "key": (self.individual_key.hex()
                        if self.individual_key is not None else None),
                "draws": [[kind, value.hex()] for kind, value in self.draws]}

    @classmethod
    def from_dict(cls, data: dict) -> "_JournalEntry":
        return cls(data["op"], data["user"],
                   bytes.fromhex(data["key"]) if data["key"] else None,
                   [(kind, bytes.fromhex(value))
                    for kind, value in data["draws"]])


class _Recording:
    """Context manager for journaling one operation on the primary."""

    __slots__ = ("_standby", "_entry", "_sink")

    def __init__(self, standby: "WarmStandby", op: str, user_id: str,
                 individual_key: Optional[bytes]):
        self._standby = standby
        self._entry = _JournalEntry(op, user_id, individual_key, [])
        self._sink = self._entry.draws

    def __enter__(self) -> "_Recording":
        recorder = self._standby._recorder
        if recorder.sink is not None:
            raise FailoverError("operation recording already active")
        recorder.sink = self._sink
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._standby._recorder.sink = None
        if exc_type is None:
            self._standby._commit(self._entry)
        # A failed operation left no member-visible state: discard.


class WarmStandby:
    """Checkpoint + journal for one shard server; promotes on demand.

    Construction wraps the primary's key-material source with a
    recorder and takes an immediate checkpoint, so the standby can be
    promoted at any instant.  Wrap each join/leave in
    :meth:`recording`; promote with :meth:`promote`.

    ``storage_key`` switches checkpoints to encrypted-at-rest snapshots
    (a fresh random IV per checkpoint).  ``checkpoint_interval`` bounds
    the journal: after that many journaled operations the standby
    re-checkpoints and truncates the journal, keeping both promote time
    and journal exposure O(interval) instead of O(history).
    """

    def __init__(self, server: GroupKeyServer, *,
                 storage_key: Optional[bytes] = None,
                 checkpoint_interval: Optional[int] = None):
        if isinstance(server.material, _RecordingSource):
            raise FailoverError("server already has a standby recorder")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise FailoverError("checkpoint_interval must be >= 1")
        if storage_key is not None and (
                len(storage_key) != server.suite.key_size):
            raise FailoverError(
                f"storage key must be {server.suite.key_size} bytes")
        self.server = server
        self.suite = server.suite
        self.storage_key = storage_key
        self.checkpoint_interval = checkpoint_interval
        self._recorder = _RecordingSource(server.material)
        server.material = self._recorder
        server.pipeline.material = self._recorder
        self._journal: List[_JournalEntry] = []
        self._checkpoint_blob: bytes = b""
        self._checkpoint_iv: Optional[bytes] = None
        self.checkpoints_taken = 0
        self.checkpoint()

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot the primary now and truncate the journal."""
        if self.storage_key is not None:
            iv = os.urandom(self.suite.block_size)
            self._checkpoint_blob = persistence.snapshot_encrypted(
                self.server, self.storage_key, iv)
            self._checkpoint_iv = iv
        else:
            self._checkpoint_blob = persistence.snapshot(self.server)
            self._checkpoint_iv = None
        self._journal.clear()
        self.checkpoints_taken += 1

    @property
    def journal_size(self) -> int:
        """Journaled operations since the latest checkpoint."""
        return len(self._journal)

    def journal_blob(self) -> bytes:
        """The journal serialized for shipping to a standby host."""
        return json.dumps(
            {"format": JOURNAL_FORMAT,
             "entries": [entry.to_dict() for entry in self._journal]},
            sort_keys=True).encode("utf-8")

    @staticmethod
    def parse_journal(blob: bytes) -> List[_JournalEntry]:
        """Decode :meth:`journal_blob` output (format-checked)."""
        try:
            doc = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FailoverError(f"malformed journal: {exc}") from None
        if doc.get("format") != JOURNAL_FORMAT:
            raise FailoverError(
                f"unsupported journal format {doc.get('format')!r}")
        return [_JournalEntry.from_dict(entry) for entry in doc["entries"]]

    # -- journaling --------------------------------------------------------

    def recording(self, op: str, user_id: str,
                  individual_key: Optional[bytes] = None) -> _Recording:
        """Journal one operation: ``with standby.recording("join", u, k):``.

        Commits the entry (with every key/IV the operation drew) only on
        clean exit; an operation that raised changed no member-visible
        state and is not journaled.
        """
        if op not in ("join", "leave"):
            raise FailoverError(f"cannot journal operation {op!r}")
        if op == "join" and individual_key is None:
            raise FailoverError("a join entry needs the individual key")
        return _Recording(self, op, user_id, individual_key)

    def _commit(self, entry: _JournalEntry) -> None:
        self._journal.append(entry)
        if (self.checkpoint_interval is not None
                and len(self._journal) >= self.checkpoint_interval):
            self.checkpoint()

    # -- promotion ---------------------------------------------------------

    def promote(self, reseed: Optional[bytes] = None) -> GroupKeyServer:
        """Build the successor server: restore + replay, byte-identical.

        Restores the latest checkpoint, then re-runs each journaled
        operation with the primary's recorded draws fed back in place of
        the DRBG, so every key the replay generates matches what members
        already received.  The replayed operations' rekey messages are
        discarded — members processed the primary's copies.  Future
        draws come from the reseeded DRBG (``reseed`` overrides the
        snapshot's default), so primary and successor diverge from the
        promotion point onward.
        """
        if self.storage_key is not None:
            promoted = persistence.restore_encrypted(
                self._checkpoint_blob, self.storage_key,
                self._checkpoint_iv, self.suite, seed=reseed)
        else:
            promoted = persistence.restore(self._checkpoint_blob,
                                           seed=reseed)
        fresh_material = promoted.material
        for entry in self._journal:
            replay = _ReplaySource(self.suite, entry.draws)
            promoted.material = replay
            promoted.pipeline.material = replay
            try:
                if entry.op == "join":
                    promoted.join(entry.user_id, entry.individual_key)
                else:
                    promoted.leave(entry.user_id)
            finally:
                promoted.material = fresh_material
                promoted.pipeline.material = fresh_material
            if replay.remaining:
                raise FailoverError(
                    f"replay diverged: {entry.op} of {entry.user_id!r} "
                    f"left {replay.remaining} recorded draws unused")
        return promoted

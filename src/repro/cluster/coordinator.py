"""Sharded key-server cluster: partitioned LKH shards + a root key layer.

The paper's §6 comparison with Iolus shows the trade-off of splitting
one flat group into subgroup servers; this module takes the key-graph
answer instead of Iolus's: the logical group's key tree is **partitioned
across N shard servers**, each a full :class:`~repro.core.server.
GroupKeyServer` owning an LKH subtree over its users, and a coordinator
maintains a **root key layer** — a small key tree whose leaves are the
shards' subtree roots.  Composition:

* a member of shard *s* holds its shard path (``log(u/N)`` keys, up to
  the shard root) plus the root-layer path above shard *s*'s leaf
  (``log N`` keys, up to the cluster group key);
* a join/leave rekeys only the owning shard's path — multicast to that
  shard's members only — plus the ``O(log N)`` root-layer path,
  multicast cluster-wide.  Shard-local traffic never fans out
  cluster-wide, and per-operation server cost is ``O(log(u/N) + log N)``
  — bounded by shard size, not total group size;
* unlike Iolus there is still a true group key (the root-layer root),
  so data traffic costs one encryption regardless of shard count — the
  "1 affects n" problem is contained at rekey time without moving work
  to data time.

Node-id namespacing: every shard tree and the root-layer tree share one
member-visible id space (clients keep a flat ``node_id -> key`` map), so
each shard's tree is renumbered into its own :data:`SHARD_ID_SPACE`-wide
window and the root layer lives at :data:`ROOT_LAYER_BASE`.

The root layer reuses the staged :class:`~repro.core.pipeline.
RekeyPipeline` (plan → encrypt → sign → dispatch): a root-layer rekey is
planned as one group-oriented multicast whose items encrypt each changed
node's new key under each child's current key; for leaf children the
encrypting-key *reference* is the owning shard's live root ``(node id,
version)``, which members already hold from the shard-local rekey they
processed first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.messages import (MSG_DATA, MSG_HEARTBEAT, MSG_JOIN_DENIED,
                             MSG_JOIN_REQUEST, MSG_LEAVE_DENIED,
                             MSG_LEAVE_REQUEST, MSG_RESYNC_REQUEST,
                             MSG_SUBCAST_REQUEST,
                             STRATEGY_GROUP_ORIENTED, Destination,
                             EncryptedItem, KeyRecord, Message,
                             OutboundMessage, WireError)
from ..core.pipeline import (KeyMaterialSource, PipelineRun, RekeyPipeline,
                             Sequencer, make_signer)
from ..core.resync import RESYNC_NOT_MEMBER, RESYNC_OK, build_resync_reply
from ..core.server import (AccessDenied, GroupKeyServer, RekeyOutcome,
                           ServerConfig, ServerError)
from ..core.strategies.base import PlannedMessage, RekeyContext
from ..crypto.suite import PAPER_SUITE, CipherSuite
from ..keygraph.backend import BACKENDS, build_tree
from ..keygraph.covering import tree_subset_cover
from ..keygraph.tree import KeyTree, TreeNode
from ..observability import LATENCY_BUCKETS_S, Instrumentation
from ..observability.export import build_snapshot
from .failover import WarmStandby
from .partition import DEFAULT_VNODES, HashRing

#: Width of each shard's node-id window.  Shard ``i`` allocates tree
#: node ids in ``[(i + 1) * SHARD_ID_SPACE, (i + 2) * SHARD_ID_SPACE)``.
SHARD_ID_SPACE = 1 << 24

#: Base of the root layer's node-id window (clear of every shard window
#: and of the ``INDIVIDUAL_KEY`` sentinel ``0xFFFFFFFF``).
ROOT_LAYER_BASE = 0xF0000000

#: Hard cap keeping shard windows below the root-layer window.
MAX_SHARDS = ROOT_LAYER_BASE // SHARD_ID_SPACE - 1


class ClusterError(ValueError):
    """Raised on invalid cluster configuration or operations."""


def shard_id_base(shard_id: int) -> int:
    """Base of shard ``shard_id``'s node-id window."""
    return (shard_id + 1) * SHARD_ID_SPACE


def namespace_tree(tree, base: int) -> None:
    """Shift a key tree's node ids into the window starting at ``base``.

    Applied once, right after a tree is (re)built, so shard trees and
    the root-layer tree never collide in the members' flat key map.
    Future allocations continue inside the window.  Works on any
    :class:`~repro.keygraph.backend.TreeBackend` via ``shift_node_ids``.
    """
    if base <= 0:
        return
    for node in tree.nodes():
        if node.node_id >= base:
            raise ClusterError("tree already namespaced")
    tree.shift_node_ids(base)


# -- the root key layer --------------------------------------------------------


class RootKeyLayer:
    """The ``O(log N)`` key tree spanning the shards' subtree roots.

    Leaves are pseudo-users named after the shards; each leaf's key is
    kept equal to that shard's current subtree root key, so members of a
    shard can always decrypt the lowest root-layer item with the shard
    root key they already hold.  The layer is usable standalone (the
    batch-boundary tests drive it over :class:`~repro.batch.rekeying.
    BatchRekeyServer` shards) as well as under the coordinator.
    """

    def __init__(self, suite: CipherSuite, shard_names: Sequence[str], *,
                 degree: int = 4, seed: Optional[bytes] = None,
                 signing: str = "none", group_id: int = 1,
                 backend: str = "object",
                 instrumentation: Optional[Instrumentation] = None):
        if not shard_names:
            raise ClusterError("root layer needs at least one shard")
        if len(set(shard_names)) != len(shard_names):
            raise ClusterError("duplicate shard names")
        self.suite = suite
        self.degree = degree
        self.backend = backend
        self.material = KeyMaterialSource(suite, seed, b"cluster-root-layer")
        self._signer, self.signing_keypair = make_signer(
            suite, signing, seed, error=ClusterError)
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("cluster-root"))
        self.pipeline = RekeyPipeline(
            suite, self.material, signer=self._signer,
            sequencer=Sequencer(), group_id=group_id,
            instrumentation=self.instrumentation)
        self._names = list(shard_names)
        self._tree: Optional[KeyTree] = None
        # shard name -> live (node id, version) of that shard's subtree
        # root, or None while the shard is empty (placeholder leaf key).
        self._shard_refs: Dict[str, Optional[Tuple[int, int]]] = {}

    # -- state -------------------------------------------------------------

    def bootstrap(self, leaves: Dict[str, Tuple[Optional[Tuple[int, int]],
                                                Optional[bytes]]]) -> None:
        """Build the layer over ``{shard name: (root ref or None, key)}``."""
        if self._tree is not None:
            raise ClusterError("root layer already bootstrapped")
        missing = [name for name in self._names if name not in leaves]
        if missing:
            raise ClusterError(f"missing leaf keys for shards {missing}")
        # An empty shard has no subtree root yet: its leaf gets an
        # undecryptable placeholder key (held by nobody) until the
        # shard's first member arrives and rekey() installs the real one.
        self._tree = build_tree(
            self.backend,
            [(name, leaves[name][1] if leaves[name][1] is not None
              else self.material.new_key()) for name in self._names],
            self.degree, self.material.new_key)
        namespace_tree(self._tree, ROOT_LAYER_BASE)
        self._shard_refs = {
            name: leaves[name][0] if leaves[name][1] is not None else None
            for name in self._names}

    def _require_tree(self) -> KeyTree:
        if self._tree is None:
            raise ClusterError("root layer not bootstrapped")
        return self._tree

    @property
    def tree(self) -> KeyTree:
        """The root-layer key tree (raises until bootstrapped)."""
        return self._require_tree()

    def group_key(self) -> bytes:
        """The cluster-wide group key (the layer's root key)."""
        return self._require_tree().group_key_node().key

    def group_key_ref(self) -> Tuple[int, int]:
        """(node id, version) of the cluster group key."""
        root = self._require_tree().group_key_node()
        return root.node_id, root.version

    def path_records(self, shard_name: str) -> List[KeyRecord]:
        """Key records a member of ``shard_name`` holds above its shard
        root (for priming bootstrapped clients), leaf excluded — the
        leaf key *is* the shard root key the member already holds."""
        leaf = self._require_tree().leaf_of(shard_name)
        return [KeyRecord(node.node_id, node.version, node.key)
                for node in leaf.path_to_root()[1:]]

    def n_keys(self) -> int:
        """Keys the layer holds (root-layer nodes, leaves included)."""
        return self._require_tree().n_keys

    # -- rekeying ----------------------------------------------------------

    def rekey(self, updates: Iterable[Tuple[str, Optional[Tuple[int, int]],
                                            Optional[bytes]]],
              receivers: Callable[[], tuple]) -> PipelineRun:
        """Fold shard-root changes into the layer and rekey the paths.

        ``updates`` is ``(shard name, shard root (id, version) or None,
        shard root key or None)`` per changed shard — ``None`` key means
        the shard emptied and its leaf gets an undecryptable placeholder.
        With no updates the call degrades to a root-key refresh (only the
        cluster group key rotates).  Returns the pipeline run; its single
        message is the cluster-wide multicast.
        """
        updates = list(updates)
        tree = self._require_tree()

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            dirty: List[TreeNode] = []
            seen = set()
            for name, ref, key in updates:
                leaf = tree.leaf_of(name)
                leaf.replace_key(key if key is not None
                                 else self.material.new_key())
                self._shard_refs[name] = ref if key is not None else None
                for node in leaf.path_to_root()[1:]:
                    if node.node_id in seen:
                        break  # an already-dirty ancestor implies the rest
                    seen.add(node.node_id)
                    dirty.append(node)
            if not updates:
                dirty.append(tree.group_key_node())
            # Replace every dirty key first: items below encrypt parent
            # keys under the *new* child keys (members decrypt leaf-up).
            for node in dirty:
                node.replace_key(self.material.new_key())
            items = []
            for node in dirty:
                record = KeyRecord(node.node_id, node.version, node.key)
                for child in node.children:
                    enc_key, (enc_id, enc_version) = self._child_handle(child)
                    items.append(ctx.encrypt(enc_key, [record],
                                             enc_id, enc_version))
            return [PlannedMessage(Destination.to_all(), items, receivers)]

        root = tree.group_key_node()
        return self.pipeline.run(
            "root-rekey", planner, strategy_code=STRATEGY_GROUP_ORIENTED,
            root_ref=lambda: (root.node_id, root.version))

    def _child_handle(self, child: TreeNode) -> Tuple[bytes,
                                                      Tuple[int, int]]:
        """(encrypting key, wire reference) for one root-layer child.

        Leaf children are referenced by the owning shard's live subtree
        root — the id members actually hold — not the root-layer leaf id;
        an empty shard's placeholder leaf is referenced by itself (held
        by nobody, decryptable by nobody, by design).
        """
        if child.is_leaf:
            ref = self._shard_refs.get(child.user_id)
            if ref is not None:
                return child.key, ref
        return child.key, (child.node_id, child.version)


# -- the cluster ---------------------------------------------------------------


@dataclass
class ClusterConfig:
    """Deployment shape of one sharded logical group."""

    n_shards: int = 4
    degree: int = 4                   # shard LKH tree degree
    root_degree: int = 4              # root-layer tree degree
    vnodes: int = DEFAULT_VNODES      # ring virtual nodes per shard
    strategy: str = "group"           # shard rekeying strategy
    suite: CipherSuite = PAPER_SUITE
    signing: str = "none"
    seed: Optional[bytes] = None
    group_id: int = 1
    backend: str = "object"           # tree storage, "object" or "flat"

    def validate(self) -> None:
        """Check field consistency; raises ClusterError."""
        if not 1 <= self.n_shards <= MAX_SHARDS:
            raise ClusterError(
                f"n_shards must be in [1, {MAX_SHARDS}]")
        if self.vnodes < 1:
            raise ClusterError("vnodes must be >= 1")
        if self.root_degree < 2:
            raise ClusterError("root_degree must be >= 2")
        if self.backend not in BACKENDS:
            raise ClusterError(f"unknown tree backend {self.backend!r}")


@dataclass
class ClusterRecord:
    """Statistics of one processed cluster join/leave."""

    op: str
    user_id: str
    shard_id: int
    seconds: float                 # shard + root-layer processing time
    shard_seconds: float
    root_seconds: float
    shard_encryptions: int
    root_encryptions: int
    n_rekey_messages: int
    rekey_bytes: int
    n_users_after: int

    @property
    def encryptions(self) -> int:
        """Total keys encrypted (the Table 2 measure, both layers)."""
        return self.shard_encryptions + self.root_encryptions


@dataclass
class ClusterRekeyOutcome:
    """Everything produced by one cluster join/leave."""

    record: ClusterRecord
    shard_id: int
    shard_outcome: RekeyOutcome
    root_messages: List[OutboundMessage]

    @property
    def control_messages(self) -> List[OutboundMessage]:
        """The requester-facing ack(s), from the owning shard."""
        return self.shard_outcome.control_messages

    @property
    def rekey_messages(self) -> List[OutboundMessage]:
        """Shard-local rekeys first, then the cluster-wide root rekey."""
        return self.shard_outcome.rekey_messages + self.root_messages

    @property
    def all_messages(self) -> List[OutboundMessage]:
        """Control messages followed by rekey messages, delivery order."""
        return self.control_messages + self.rekey_messages


class Shard:
    """One shard slot: a live server plus its optional warm standby."""

    __slots__ = ("shard_id", "name", "server", "standby", "failed")

    def __init__(self, shard_id: int, server: GroupKeyServer):
        self.shard_id = shard_id
        self.name = f"shard-{shard_id}"
        self.server = server
        self.standby: Optional[WarmStandby] = None
        self.failed = False


class ClusterCoordinator:
    """Runs one logical secure group across N shard key servers."""

    def __init__(self, config: ClusterConfig,
                 instrumentation: Optional[Instrumentation] = None):
        config.validate()
        self.config = config
        self.suite = config.suite
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("cluster"))
        registry = self.instrumentation.registry
        self._m_requests = registry.counter(
            "cluster_requests_total",
            "Cluster requests processed, by owning shard and outcome.",
            labels=("shard", "op", "status"))
        self._m_encryptions = registry.counter(
            "cluster_encryptions_total",
            "Keys encrypted per rekey layer (shard-local vs root).",
            labels=("shard", "layer"))
        self._m_messages = registry.counter(
            "cluster_rekey_messages_total",
            "Rekey messages sent per layer.", labels=("shard", "layer"))
        self._m_members = registry.gauge(
            "cluster_shard_members", "Current members per shard.",
            labels=("shard",))
        self._m_failovers = registry.counter(
            "cluster_failovers_total", "Standby promotions per shard.",
            labels=("shard",))
        self._m_journal = registry.gauge(
            "cluster_journal_entries",
            "Operations journaled since the shard's last checkpoint.",
            labels=("shard",))
        self._m_seconds = registry.histogram(
            "cluster_request_seconds",
            "End-to-end cluster request time (shard + root layer).",
            labels=("op",), bounds=LATENCY_BUCKETS_S)

        self.ring = HashRing(range(config.n_shards), vnodes=config.vnodes)
        self.shards: List[Shard] = []
        for shard_id in range(config.n_shards):
            seed = (config.seed + b"/shard-%d" % shard_id
                    if config.seed is not None else None)
            server = GroupKeyServer(
                ServerConfig(group_id=config.group_id, degree=config.degree,
                             strategy=config.strategy, suite=config.suite,
                             signing=config.signing, seed=seed,
                             backend=config.backend),
                instrumentation=Instrumentation(f"shard-{shard_id}"))
            namespace_tree(server.tree, shard_id_base(shard_id))
            self.shards.append(Shard(shard_id, server))
        self.root_layer = RootKeyLayer(
            config.suite, [shard.name for shard in self.shards],
            degree=config.root_degree,
            seed=(config.seed + b"/root" if config.seed is not None
                  else None),
            signing=config.signing, group_id=config.group_id,
            backend=config.backend,
            instrumentation=self.instrumentation)
        if config.signing != "none":
            self._share_signing_identity()
        self.material = KeyMaterialSource(
            config.suite,
            config.seed + b"/coordinator" if config.seed is not None
            else None,
            b"cluster")
        # Resync replies and sealed data draw IVs here, never from the
        # shard/root-layer material: serving a resync must not perturb
        # the rekey key stream (chaos runs stay byte-identical to the
        # fault-free control run).
        self.resync_material = KeyMaterialSource(
            config.suite,
            config.seed + b"/coordinator" if config.seed is not None
            else None,
            b"cluster-resync")
        self._m_resyncs = registry.counter(
            "resync_replies_total", "Resync replies served, by status.",
            labels=("status",))
        # Subcast message keys/IVs come from a dedicated personalization
        # for the same reason: covered multicasts leave every shard and
        # root-layer rekey stream byte-identical.
        self.subcast_material = KeyMaterialSource(
            config.suite,
            config.seed + b"/coordinator" if config.seed is not None
            else None,
            b"cluster-subcast")
        from ..subcast.sealing import SubcastSealer
        self.subcast_sealer = SubcastSealer(
            config.suite, self.subcast_material, self.root_layer._signer,
            self.root_layer.pipeline.sequencer,
            group_id=config.group_id,
            seal_lock=self.root_layer.pipeline.seal_lock)
        self._m_subcasts = registry.counter(
            "subcast_messages_total", "Subcast messages sealed.").labels()
        self._m_subcast_cover = registry.counter(
            "subcast_cover_keys_total",
            "Cover keys used, by layer (shard subtree vs root layer).",
            labels=("layer",))
        self._registered_keys: Dict[str, bytes] = {}
        self.history: List[ClusterRecord] = []
        self._bootstrapped = False

    def _share_signing_identity(self) -> None:
        """Give every shard the root layer's signer, so the cluster
        presents one signature-verification key to its members."""
        signer = self.root_layer._signer
        keypair = self.root_layer.signing_keypair
        for shard in self.shards:
            shard.server._signer = signer
            shard.server.pipeline.signer = signer
            shard.server.signing_keypair = keypair

    @property
    def public_key(self):
        """The cluster's signature-verification key (None unsigned)."""
        return (self.root_layer.signing_keypair.public_key
                if self.root_layer.signing_keypair is not None else None)

    # -- population --------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Total members across all shards."""
        return sum(shard.server.n_users for shard in self.shards)

    def members(self) -> List[str]:
        """Every current member, shard by shard."""
        result: List[str] = []
        for shard in self.shards:
            result.extend(shard.server.members())
        return result

    def is_member(self, user_id: str) -> bool:
        """True iff ``user_id`` is currently in the logical group."""
        return self.shard_of(user_id).server.is_member(user_id)

    def shard_of(self, user_id: str) -> Shard:
        """The shard owning ``user_id`` (pure ring lookup)."""
        return self.shards[self.ring.shard_for(user_id)]

    def _all_members(self) -> tuple:
        return tuple(self.members())

    def new_individual_key(self) -> bytes:
        """Generate an individual key (stands in for the auth exchange)."""
        return self.material.new_individual_key()

    def register_individual_key(self, user_id: str, key: bytes) -> None:
        """Record the session key from the authentication exchange."""
        if len(key) != self.suite.key_size:
            raise ClusterError(
                f"individual key must be {self.suite.key_size} bytes")
        self._registered_keys[user_id] = key

    # -- group key ---------------------------------------------------------

    def group_key(self) -> bytes:
        """The cluster-wide group key (root-layer root)."""
        return self.root_layer.group_key()

    def group_key_ref(self) -> Tuple[int, int]:
        """(node id, version) of the cluster group key."""
        return self.root_layer.group_key_ref()

    def server_key_count(self) -> int:
        """Total keys held server-side (all shard trees + root layer)."""
        total = self.root_layer.n_keys()
        for shard in self.shards:
            if shard.server.tree is not None:
                total += shard.server.tree.n_keys
        return total

    # -- bootstrap ---------------------------------------------------------

    def bootstrap(self, members: Iterable[Tuple[str, bytes]]) -> None:
        """Bulk-initialise the cluster without rekey traffic.

        Partitions the roster over the ring, bootstraps each shard's
        tree in its namespaced id window, then builds the root layer
        over the shard roots.
        """
        if self._bootstrapped:
            raise ClusterError("cluster already bootstrapped")
        members = list(members)
        by_shard: Dict[int, List[Tuple[str, bytes]]] = {
            shard.shard_id: [] for shard in self.shards}
        for user_id, key in members:
            by_shard[self.ring.shard_for(user_id)].append((user_id, key))
        leaves: Dict[str, Tuple[Optional[Tuple[int, int]], bytes]] = {}
        for shard in self.shards:
            shard.server.bootstrap(by_shard[shard.shard_id])
            # bootstrap() rebuilt the tree from id 0: renumber it back
            # into this shard's window.
            namespace_tree(shard.server.tree, shard_id_base(shard.shard_id))
            leaves[shard.name] = self._shard_leaf_state(shard)
            self._m_members.labels(shard=str(shard.shard_id)).set(
                shard.server.n_users)
        self.root_layer.bootstrap(leaves)
        self._bootstrapped = True

    def _shard_leaf_state(self, shard: Shard
                          ) -> Tuple[Optional[Tuple[int, int]],
                                     Optional[bytes]]:
        """(root ref, root key) of a shard, placeholdered when empty."""
        tree = shard.server.tree
        if tree is None or tree.root is None:
            return None, None
        return (tree.root.node_id, tree.root.version), tree.root.key

    def _require_bootstrap(self) -> None:
        if not self._bootstrapped:
            raise ClusterError("cluster not bootstrapped")

    # -- member priming ----------------------------------------------------

    def member_records(self, user_id: str
                       ) -> Tuple[int, List[KeyRecord], Tuple[int, int]]:
        """(leaf node id, path key records, cluster root ref) for priming
        a bootstrapped member's client — shard path first, then the
        root-layer path (compatible with ``ClientSimulator.prime_member``
        and ``GroupClient`` key maps)."""
        self._require_bootstrap()
        shard = self.shard_of(user_id)
        path = shard.server.tree.user_key_path(user_id)
        records = [KeyRecord(node.node_id, node.version, node.key)
                   for node in path[1:]]
        records.extend(self.root_layer.path_records(shard.name))
        return path[0].node_id, records, self.group_key_ref()

    # -- requests ----------------------------------------------------------

    def join(self, user_id: str, individual_key: Optional[bytes] = None,
             ticket=None) -> ClusterRekeyOutcome:
        """Admit a user: shard-local LKH rekey + root-layer rekey."""
        self._require_bootstrap()
        shard = self._live_shard(user_id, "join")
        if individual_key is None:
            individual_key = self._registered_keys.pop(user_id, None)
            if individual_key is None:
                raise ClusterError(f"no individual key for {user_id!r}")

        def op() -> RekeyOutcome:
            return shard.server.join(user_id, individual_key, ticket=ticket)

        return self._run("join", user_id, shard, op,
                         journal_key=individual_key)

    def leave(self, user_id: str) -> ClusterRekeyOutcome:
        """Expel/release a user: shard-local rekey + root-layer rekey."""
        self._require_bootstrap()
        shard = self._live_shard(user_id, "leave")

        def op() -> RekeyOutcome:
            return shard.server.leave(user_id)

        return self._run("leave", user_id, shard, op)

    def refresh(self) -> PipelineRun:
        """Rotate the cluster group key (root-layer refresh only)."""
        self._require_bootstrap()
        return self.root_layer.rekey([], self._all_members)

    def _live_shard(self, user_id: str, op: str) -> Shard:
        shard = self.shard_of(user_id)
        if shard.failed:
            self._m_requests.inc(shard=str(shard.shard_id), op=op,
                                 status="unavailable")
            raise ClusterError(
                f"shard {shard.shard_id} is down; promote its standby")
        return shard

    def _run(self, op: str, user_id: str, shard: Shard,
             perform: Callable[[], RekeyOutcome],
             journal_key: Optional[bytes] = None) -> ClusterRekeyOutcome:
        tracer = self.instrumentation.tracer
        label = str(shard.shard_id)
        started = time.perf_counter()
        with tracer.span(f"cluster.{op}", shard=shard.shard_id,
                         user=user_id):
            try:
                # The shard span makes the shard-layer hop visible on
                # the coordinator's tracer: each shard server carries
                # its own per-shard instrumentation, so its rekey
                # pipeline spans land in the shard registry, not here.
                with tracer.span(f"shard.{op}", shard=shard.shard_id):
                    if shard.standby is not None:
                        with shard.standby.recording(op, user_id,
                                                     journal_key):
                            outcome = perform()
                        self._m_journal.labels(shard=label).set(
                            shard.standby.journal_size)
                    else:
                        outcome = perform()
            except (ServerError, AccessDenied):
                self._m_requests.inc(shard=label, op=op, status="denied")
                raise
            ref, key = self._shard_leaf_state(shard)
            root_run = self.root_layer.rekey([(shard.name, ref, key)],
                                             self._all_members)
        seconds = time.perf_counter() - started

        record = ClusterRecord(
            op=op, user_id=user_id, shard_id=shard.shard_id,
            seconds=seconds,
            shard_seconds=outcome.record.seconds,
            root_seconds=root_run.seconds,
            shard_encryptions=outcome.record.encryptions,
            root_encryptions=root_run.encryptions,
            n_rekey_messages=(outcome.record.n_rekey_messages
                              + len(root_run.messages)),
            rekey_bytes=outcome.record.rekey_bytes + root_run.total_bytes,
            n_users_after=self.n_users)
        self.history.append(record)
        self._m_requests.inc(shard=label, op=op, status="ok")
        self._m_encryptions.inc(record.shard_encryptions, shard=label,
                                layer="shard")
        self._m_encryptions.inc(record.root_encryptions, shard=label,
                                layer="root")
        self._m_messages.inc(outcome.record.n_rekey_messages, shard=label,
                             layer="shard")
        self._m_messages.inc(len(root_run.messages), shard=label,
                             layer="root")
        self._m_members.labels(shard=label).set(shard.server.n_users)
        self._m_seconds.observe(seconds, op=op)
        return ClusterRekeyOutcome(record, shard.shard_id, outcome,
                                   list(root_run.messages))

    # -- resynchronization -------------------------------------------------

    def resync(self, user_id: str) -> OutboundMessage:
        """Serve one ``MSG_RESYNC_REPLY`` across both layers.

        A member's reply carries its full current key path — shard leaf
        parent up to the shard root, then the root-layer path to the
        cluster group key — in one item under its individual key, so one
        unicast repairs any gap.  Raises :class:`ClusterError` while the
        owning shard is failed (the recovery loop retries after the
        standby is promoted); a non-member gets ``RESYNC_NOT_MEMBER``.
        """
        self._require_bootstrap()
        shard = self.shard_of(user_id)
        with self.instrumentation.tracer.span(
                "resync.reply", user=user_id,
                shard=shard.shard_id) as span:
            signer = self.root_layer._signer
            sequencer = self.root_layer.pipeline.sequencer
            if not shard.server.is_member(user_id):
                self._m_resyncs.inc(status="not-member")
                span.set("status", "not-member")
                return build_resync_reply(
                    self.suite, signer, sequencer,
                    group_id=self.config.group_id, user_id=user_id,
                    status=RESYNC_NOT_MEMBER, leaf_node_id=0)
            if shard.failed:
                self._m_resyncs.inc(status="unavailable")
                span.set("status", "unavailable")
                raise ClusterError(
                    f"shard {shard.shard_id} is down; promote its standby")
            path = shard.server.tree.user_key_path(user_id)
            records = [KeyRecord(node.node_id, node.version, node.key)
                       for node in path[1:]]
            records.extend(self.root_layer.path_records(shard.name))
            self._m_resyncs.inc(status="ok")
            span.set("status", "ok").set("records", len(records))
            return build_resync_reply(
                self.suite, signer, sequencer,
                group_id=self.config.group_id, user_id=user_id,
                status=RESYNC_OK, leaf_node_id=path[0].node_id,
                records=records, root_ref=self.group_key_ref(),
                individual_key=path[0].key,
                iv=self.resync_material.new_iv())

    # -- application data --------------------------------------------------

    def seal_group_message(self, payload: bytes) -> OutboundMessage:
        """Encrypt application data under the cluster group key."""
        self._require_bootstrap()
        group_key = self.group_key()
        root_id, root_version = self.group_key_ref()
        iv = self.resync_material.new_iv()
        from ..crypto import modes
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        padded = payload.ljust(padded_len, b"\x00")
        cipher = self.suite.new_cipher(group_key)
        ciphertext = modes.cbc_encrypt_nopad(cipher, padded, iv)
        item = EncryptedItem(root_id, root_version, iv, ciphertext,
                             len(payload))
        message = Message(
            msg_type=MSG_DATA, group_id=self.config.group_id,
            seq=self.root_layer.pipeline.sequencer.next(),
            timestamp_us=time.time_ns() // 1000,
            root_node_id=root_id, root_version=root_version, items=[item])
        self.root_layer._signer.seal([message])
        return OutboundMessage(Destination.to_all(), message,
                               self._all_members(), message.encode())

    def subcast(self, targets: Iterable[str],
                payload: bytes) -> OutboundMessage:
        """Seal ``payload`` to exactly ``targets`` across the shard split.

        The cover is computed layer by layer: a shard whose members are
        only partially targeted contributes a subset cover on its own
        subtree; a shard that is *fully* targeted is lifted into the
        root layer, where one subset cover over the fully-covered shard
        names yields root-layer keys (each addressing whole shards at
        once).  Root-layer leaf nodes are referenced by the owning
        shard's live subtree root — the id members actually hold — via
        the same mapping root-layer rekeys use.
        """
        self._require_bootstrap()
        target_list = sorted(set(targets))
        if not target_list:
            raise ClusterError("subcast needs at least one target")
        started = time.perf_counter()
        by_shard: Dict[int, List[str]] = {}
        for user_id in target_list:
            shard = self.shard_of(user_id)
            if shard.failed:
                raise ClusterError(
                    f"shard {shard.shard_id} is failed; "
                    f"cannot cover {user_id!r}")
            if not shard.server.is_member(user_id):
                raise ClusterError(
                    f"subcast target {user_id!r} is not a member")
            by_shard.setdefault(shard.shard_id, []).append(user_id)
        with self.instrumentation.tracer.span(
                "cluster.subcast", targets=len(target_list),
                shards=len(by_shard)) as span:
            cover: List[Tuple[int, int, bytes]] = []
            full_shards: List[str] = []
            shard_keys = 0
            for shard_id, shard_targets in sorted(by_shard.items()):
                shard = self.shards[shard_id]
                if len(shard_targets) == shard.server.n_users:
                    full_shards.append(shard.name)
                    continue
                for node in tree_subset_cover(shard.server.tree,
                                              shard_targets):
                    cover.append((node.node_id, node.version, node.key))
                    shard_keys += 1
            root_keys = 0
            if full_shards:
                for node in tree_subset_cover(self.root_layer.tree,
                                              full_shards):
                    key, (node_id, version) = \
                        self.root_layer._child_handle(node)
                    cover.append((node_id, version, key))
                    root_keys += 1
            span.set("cover", len(cover)).set("root_keys", root_keys)
            out = self.subcast_sealer.seal(
                cover, payload, receivers=target_list,
                root_ref=self.group_key_ref())
        self._m_subcasts.inc()
        if shard_keys:
            self._m_subcast_cover.inc(shard_keys, layer="shard")
        if root_keys:
            self._m_subcast_cover.inc(root_keys, layer="root")
        self._m_seconds.observe(time.perf_counter() - started, op="subcast")
        return out

    # -- failover ----------------------------------------------------------

    def enable_standbys(self, storage_key: Optional[bytes] = None,
                        checkpoint_interval: Optional[int] = None) -> None:
        """Arm a warm standby (snapshot + journal) on every shard."""
        for shard in self.shards:
            if shard.standby is None:
                shard.standby = WarmStandby(
                    shard.server, storage_key=storage_key,
                    checkpoint_interval=checkpoint_interval)
                self._m_journal.labels(shard=str(shard.shard_id)).set(0)

    def fail_shard(self, shard_id: int) -> GroupKeyServer:
        """Simulate a shard crash; requests for its users now raise.

        Returns the dead server (tests compare against it); the warm
        standby keeps its snapshot + journal and can be promoted.
        """
        shard = self._shard_slot(shard_id)
        if shard.failed:
            raise ClusterError(f"shard {shard_id} already failed")
        shard.failed = True
        return shard.server

    def promote_standby(self, shard_id: int) -> GroupKeyServer:
        """Promote the shard's warm standby and resume service.

        The promoted server is rebuilt from the latest snapshot plus a
        replay of the operation journal, which regenerates key state
        byte-identical to the failed primary — members keep decrypting
        with the keys they already hold (no out-of-band recovery).
        """
        shard = self._shard_slot(shard_id)
        if shard.standby is None:
            raise ClusterError(f"shard {shard_id} has no standby")
        with self.instrumentation.tracer.span("cluster.failover",
                                              shard=shard_id):
            promoted = shard.standby.promote()
            # Invariant: the promoted subtree root must equal the key the
            # root layer recorded for this shard, or members of other
            # shards could no longer follow root-layer rekeys.
            expected_ref, expected_key = self._shard_leaf_state(shard)
            if expected_key is not None:
                promoted_root = promoted.tree.root
                if (promoted_root is None
                        or promoted_root.key != expected_key
                        or (promoted_root.node_id,
                            promoted_root.version) != expected_ref):
                    raise ClusterError(
                        f"standby for shard {shard_id} diverged from the "
                        f"root layer; members would need out-of-band "
                        f"recovery")
            shard.server = promoted
            shard.failed = False
            shard.standby = WarmStandby(
                promoted, storage_key=shard.standby.storage_key,
                checkpoint_interval=shard.standby.checkpoint_interval)
        label = str(shard_id)
        self._m_failovers.inc(shard=label)
        self._m_journal.labels(shard=label).set(0)
        return promoted

    def _shard_slot(self, shard_id: int) -> Shard:
        try:
            return self.shards[shard_id]
        except IndexError:
            raise ClusterError(f"unknown shard {shard_id}") from None

    # -- datagram interface ------------------------------------------------

    def handle_datagram(self, data: bytes) -> List[OutboundMessage]:
        """Socket-facing entry point: route a request to its shard.

        Join/leave requests carry the UTF-8 user id in the body (the
        individual key must have been registered beforehand, as with the
        single-server datagram path).  Stats scrapes are served by the
        front-end (:mod:`repro.cluster.routing`), which wraps
        :meth:`stats_document`.
        """
        try:
            message = Message.decode(data)
        except WireError as exc:
            raise ClusterError(f"malformed request: {exc}") from None
        user_id = message.body.decode("utf-8", errors="replace")
        shard = self.shard_of(user_id)
        if message.msg_type == MSG_JOIN_REQUEST:
            try:
                outcome = self.join(user_id)
            except (AccessDenied, ServerError, ClusterError):
                return [shard.server._control_message(MSG_JOIN_DENIED,
                                                      user_id)]
            return outcome.all_messages
        if message.msg_type == MSG_LEAVE_REQUEST:
            try:
                outcome = self.leave(user_id)
            except (ServerError, ClusterError):
                return [shard.server._control_message(MSG_LEAVE_DENIED,
                                                      user_id)]
            return outcome.all_messages
        if message.msg_type == MSG_RESYNC_REQUEST:
            return [self.resync(user_id)]
        if message.msg_type == MSG_SUBCAST_REQUEST:
            from ..subcast.wire import SubcastWireError, \
                parse_subcast_request
            try:
                sender, targets, payload = parse_subcast_request(
                    message.body)
            except SubcastWireError as exc:
                raise ClusterError(
                    f"malformed subcast request: {exc}") from None
            if not self.is_member(sender):
                raise ClusterError(
                    f"subcast sender {sender!r} is not a member")
            return [self.subcast(targets, payload)]
        if message.msg_type == MSG_HEARTBEAT:
            # Heartbeats are consumed by a RecoveryManager wired in front
            # of the coordinator; a bare coordinator ignores them.
            return []
        raise ClusterError(f"unexpected message type {message.msg_type}")

    # -- telemetry ---------------------------------------------------------

    def stats_document(self) -> dict:
        """One cluster-wide ``repro-metrics/1`` snapshot.

        The coordinator's registry (shard-labeled families) merged with
        every shard server's registry, so per-op totals aggregate across
        the fleet while the ``shard=...`` series keep them attributable.
        """
        tracer = self.instrumentation.tracer
        spans = tracer.export() if tracer.enabled else None
        return build_snapshot(
            self.instrumentation.registry,
            label=self.instrumentation.name or "cluster", spans=spans,
            extra=[shard.server.instrumentation.registry
                   for shard in self.shards])

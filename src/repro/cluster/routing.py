"""Cluster front-end: routes member datagrams shard-ward.

Members speak the existing wire protocol to *one* logical endpoint; the
front-end owns the routing decision (the consistent-hash ring, via the
coordinator) so members never know — or care — which shard holds their
subtree.  The same front-end answers ``MSG_STATS_REQUEST`` with the
coordinator's merged, cluster-wide ``repro-metrics/1`` snapshot, so one
scrape covers the whole fleet.

Delivery runs over the existing transport stack (default: an
:class:`~repro.transport.inmemory.InMemoryNetwork` in non-strict mode —
a cluster multicast legitimately reaches users the simulation has not
attached).  :class:`ClusterMember` is the matching member-side shim: a
:class:`~repro.core.client.GroupClient` plus the datagram dispatch the
UDP member loop performs, reusable from tests and examples.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.client import GroupClient, StaleKeyError
from ..core.messages import (MSG_DATA, MSG_HEARTBEAT, MSG_JOIN_ACK,
                             MSG_JOIN_DENIED, MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                             MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST, MSG_REKEY,
                             MSG_RESYNC_REPLY, MSG_RESYNC_REQUEST,
                             MSG_STATS_REQUEST, MSG_STATS_RESPONSE,
                             Destination, Message, OutboundMessage, WireError)
from ..observability.export import validate_snapshot
from ..transport.inmemory import InMemoryNetwork
from .coordinator import ClusterCoordinator, ClusterError


class RoutingError(ValueError):
    """Raised on datagrams the front-end cannot route."""


class ClusterFrontEnd:
    """The members' single entry point to a sharded cluster."""

    def __init__(self, coordinator: ClusterCoordinator, transport=None):
        self.coordinator = coordinator
        self.transport = (transport if transport is not None
                          else InMemoryNetwork(strict=False))
        #: Optional :class:`~repro.recovery.manager.RecoveryManager`
        #: consuming heartbeats and driving resync pushes/evictions.
        self.recovery = None
        self._m_routed = coordinator.instrumentation.registry.counter(
            "cluster_routed_datagrams_total",
            "Member datagrams routed through the front-end, by shard.",
            labels=("shard",))

    def enable_recovery(self, policy=None):
        """Arm heartbeat-driven recovery over this front-end's transport.

        Returns the manager; call its ``tick()`` once per protocol round
        (and ``track()`` members as they join) to get resync pushes,
        dead-member eviction and overload shedding.
        """
        from ..recovery import ClusterBackend, RecoveryManager
        self.recovery = RecoveryManager(
            ClusterBackend(self.coordinator), self.transport, policy=policy)
        return self.recovery

    # -- membership of the delivery fabric ---------------------------------

    def attach_member(self, member: "ClusterMember") -> None:
        """Subscribe a member's handler to the delivery fabric."""
        self.transport.attach(member.user_id, member.handle)

    def detach_member(self, user_id: str) -> None:
        """Unsubscribe a member."""
        self.transport.detach(user_id)

    # -- the request path --------------------------------------------------

    def submit(self, data: bytes) -> List[OutboundMessage]:
        """Route one member datagram; deliver and return the outputs.

        Stats requests are answered locally (returned, not transported —
        the scraper is not a group member).  Join/leave requests are
        routed to the owning shard via the coordinator and every
        resulting control/rekey message is pushed onto the transport.
        """
        try:
            message = Message.decode(data)
        except WireError as exc:
            raise RoutingError(f"malformed datagram: {exc}") from None
        if message.msg_type == MSG_STATS_REQUEST:
            body = json.dumps(self.coordinator.stats_document(),
                              sort_keys=True).encode("utf-8")
            response = Message(msg_type=MSG_STATS_RESPONSE, body=body)
            return [OutboundMessage(Destination.to_all(), response, (),
                                    response.encode())]
        if message.msg_type not in (MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST,
                                    MSG_RESYNC_REQUEST, MSG_HEARTBEAT):
            raise RoutingError(
                f"unroutable message type {message.msg_type}")
        user_id = message.body.decode("utf-8", errors="replace")
        shard = self.coordinator.shard_of(user_id)
        self._m_routed.inc(shard=str(shard.shard_id))
        if self.recovery is not None and message.msg_type in (
                MSG_RESYNC_REQUEST, MSG_HEARTBEAT):
            # The recovery manager owns liveness bookkeeping; it serves
            # resyncs through the same coordinator backend.
            outputs = self.recovery.receive(data)
        else:
            outputs = self.coordinator.handle_datagram(data)
        for outbound in outputs:
            self.transport.send(outbound)
        return outputs

    # -- scraping ----------------------------------------------------------

    def scrape(self) -> dict:
        """One validated cluster-wide snapshot, as a scraper would see it."""
        outputs = self.submit(
            Message(msg_type=MSG_STATS_REQUEST).encode())
        document = json.loads(outputs[0].message.body.decode("utf-8"))
        validate_snapshot(document)
        return document


class ClusterMember:
    """Member-side shim: a :class:`GroupClient` plus datagram dispatch."""

    def __init__(self, user_id: str, suite, server_public_key=None,
                 verify: bool = True):
        self.user_id = user_id
        self.client = GroupClient(user_id, suite,
                                  server_public_key=server_public_key,
                                  verify=verify)
        self.denials = 0
        self.acks: List[int] = []
        self.received: List[bytes] = []
        self.data_failures = 0

    def join_request(self) -> bytes:
        """The wire join request for this member."""
        return Message(msg_type=MSG_JOIN_REQUEST,
                       body=self.user_id.encode("utf-8")).encode()

    def leave_request(self) -> bytes:
        """The wire leave request for this member."""
        return Message(msg_type=MSG_LEAVE_REQUEST,
                       body=self.user_id.encode("utf-8")).encode()

    def resync_request(self) -> bytes:
        """The wire resync request for this member."""
        return Message(msg_type=MSG_RESYNC_REQUEST,
                       body=self.user_id.encode("utf-8")).encode()

    def heartbeat(self) -> bytes:
        """One heartbeat carrying this member's group-key view."""
        node_id, version = (self.client.root_ref
                            if self.client.root_ref is not None else (0, 0))
        return Message(msg_type=MSG_HEARTBEAT, root_node_id=node_id,
                       root_version=version,
                       body=self.user_id.encode("utf-8")).encode()

    def handle(self, payload: bytes) -> None:
        """Dispatch one delivered datagram onto the client state machine."""
        message = Message.decode(payload)
        if message.msg_type == MSG_REKEY:
            self.client.process_message(message)
        elif message.msg_type == MSG_RESYNC_REPLY:
            self.client.process_resync(message)
        elif message.msg_type == MSG_DATA:
            try:
                self.received.append(self.client.open_data(message))
            except StaleKeyError:
                self.data_failures += 1
        elif message.msg_type in (MSG_JOIN_ACK, MSG_LEAVE_ACK):
            self.client.process_control(message)
            self.acks.append(message.msg_type)
        elif message.msg_type in (MSG_JOIN_DENIED, MSG_LEAVE_DENIED):
            self.denials += 1
        # Anything else (e.g. stats traffic) is not this shim's concern.

    @property
    def group_key(self) -> Optional[bytes]:
        """The member's current view of the cluster group key."""
        return self.client.group_key()

"""Iolus baseline: a hierarchy of group security agents (paper §6).

Mittra's Iolus (SIGCOMM '97) is the approach the paper compares against.
Structure (as summarised in §6):

* clients sit at the leaves under *group security agents* (GSAs), with a
  *group security controller* at the top;
* every tree node (agent) forms a subgroup with its children (clients or
  lower-level agents) and shares a subgroup key (SGK) with them;
* there is **no** globally shared group key, so a join/leave rekeys only
  the local subgroup (the "1 does not equal n" win);
* but confidential data needs a per-message *message key* that agents
  decrypt and re-encrypt subgroup-by-subgroup as the message propagates
  (the "1 affects n" work moves to data time).

This implementation is a real substrate — subgroup keys are real cipher
keys, message keys really are re-encrypted hop by hop, and clients can
decrypt end to end — so the §6 comparison benchmarks count actual
cryptographic operations on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto import drbg
from ..crypto import modes
from ..crypto.suite import PAPER_SUITE, CipherSuite


class IolusError(ValueError):
    """Raised on invalid Iolus operations."""


@dataclass
class IolusOpRecord:
    """Cost of one Iolus operation, in key encryptions/decryptions."""

    op: str
    encryptions: int = 0
    decryptions: int = 0
    messages: int = 0

    @property
    def crypto_ops(self) -> int:
        """Encryptions plus decryptions."""
        return self.encryptions + self.decryptions


class Agent:
    """One group security agent and the subgroup it anchors.

    The subgroup = this agent + its children (client members or child
    agents); all of them share ``subgroup_key``.
    """

    def __init__(self, agent_id: str, keygen):
        self.agent_id = agent_id
        self._keygen = keygen
        self.subgroup_key: bytes = keygen()
        self.key_version = 0
        self.parent: Optional["Agent"] = None
        self.children: List["Agent"] = []
        # client id -> individual key shared between client and this agent
        self.clients: Dict[str, bytes] = {}

    @property
    def is_leaf(self) -> bool:
        """True iff this agent hosts clients directly."""
        return not self.children

    def rotate_key(self) -> Tuple[bytes, bytes]:
        """Replace the subgroup key; returns (old, new)."""
        old = self.subgroup_key
        self.subgroup_key = self._keygen()
        self.key_version += 1
        return old, self.subgroup_key

    def subgroup_size(self) -> int:
        """Members sharing this SGK: clients + child agents (+ parent link
        is *not* part of this subgroup)."""
        return len(self.clients) + len(self.children)


class IolusSystem:
    """A complete Iolus deployment for one secure group."""

    def __init__(self, suite: CipherSuite = PAPER_SUITE,
                 agent_fanout: int = 4, agent_levels: int = 2,
                 seed: Optional[bytes] = None):
        if agent_fanout < 1 or agent_levels < 1:
            raise IolusError("need positive fanout and levels")
        self.suite = suite
        self._random = drbg.make_source(seed, b"iolus")
        self.history: List[IolusOpRecord] = []

        # Build the agent hierarchy: a full agent tree of `agent_levels`
        # levels with the GSC at the top.
        self.gsc = Agent("gsc", self._new_key)
        frontier = [self.gsc]
        count = 0
        for _level in range(agent_levels - 1):
            next_frontier = []
            for parent in frontier:
                for _ in range(agent_fanout):
                    agent = Agent(f"gsa{count}", self._new_key)
                    count += 1
                    agent.parent = parent
                    parent.children.append(agent)
                    next_frontier.append(agent)
            frontier = next_frontier
        self.leaf_agents = frontier
        self._client_home: Dict[str, Agent] = {}

    def _new_key(self) -> bytes:
        return self.suite.safe_key(self._random)

    def _new_iv(self) -> bytes:
        return self._random.generate(self.suite.block_size)

    # -- membership -----------------------------------------------------------

    @property
    def n_clients(self) -> int:
        """Current client population."""
        return len(self._client_home)

    def agents(self) -> List[Agent]:
        """Every agent, GSC first (preorder)."""
        result = []
        stack = [self.gsc]
        while stack:
            agent = stack.pop()
            result.append(agent)
            stack.extend(agent.children)
        return result

    def join(self, client_id: str,
             individual_key: Optional[bytes] = None) -> IolusOpRecord:
        """Admit a client into the least-loaded leaf subgroup.

        Local rekey only (the Iolus advantage): the new SGK goes to the
        joiner under its individual key (1 encryption) and to the rest of
        the subgroup under the old SGK (1 encryption).
        """
        if client_id in self._client_home:
            raise IolusError(f"client {client_id!r} already joined")
        if individual_key is None:
            individual_key = self._new_key()
        home = min(self.leaf_agents, key=lambda agent: len(agent.clients))
        had_members = home.subgroup_size() > 0
        home.clients[client_id] = individual_key
        self._client_home[client_id] = home
        home.rotate_key()
        record = IolusOpRecord(op="join",
                               encryptions=2 if had_members else 1,
                               messages=2 if had_members else 1)
        self.history.append(record)
        return record

    def leave(self, client_id: str) -> IolusOpRecord:
        """Remove a client; rekey only its home subgroup.

        The agent unicasts the new SGK to each remaining subgroup member
        (clients under their individual keys; child agents under
        pairwise agent keys — counted the same).
        """
        home = self._client_home.pop(client_id, None)
        if home is None:
            raise IolusError(f"unknown client {client_id!r}")
        del home.clients[client_id]
        home.rotate_key()
        remaining = home.subgroup_size()
        record = IolusOpRecord(op="leave", encryptions=remaining,
                               messages=remaining)
        self.history.append(record)
        return record

    # -- data path ---------------------------------------------------------------

    def multicast(self, sender_id: str, payload: bytes) -> Tuple[IolusOpRecord, Dict[str, bytes]]:
        """Confidential data from ``sender_id`` to the whole group.

        The sender generates a message key, encrypts it under its leaf
        SGK; every agent on the distribution tree decrypts the message
        key with one subgroup key and re-encrypts it for each adjacent
        subgroup.  Returns the cost record and the plaintext as decrypted
        by every receiving client (tests assert these all match).

        The LKH equivalent costs exactly one encryption (under the group
        key) regardless of group size — the §6 trade-off.
        """
        home = self._client_home.get(sender_id)
        if home is None:
            raise IolusError(f"unknown sender {sender_id!r}")
        message_key = self._new_key()
        data_iv = self._new_iv()
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        cipher = self.suite.new_cipher(message_key)
        body = modes.cbc_encrypt_nopad(cipher, payload.ljust(padded_len, b"\x00"),
                                       data_iv)
        record = IolusOpRecord(op="data")

        # An envelope {Km}_{SGK_X} is readable by agent X and by the
        # members of X's anchored subgroup (X's clients and child agents).
        # Each agent knows exactly two subgroup keys: its own anchored
        # SGK and its parent's; forwarding means producing the envelope
        # for the *other* key space it belongs to.
        envelopes: Dict[str, Tuple[bytes, bytes]] = {}  # anchor id -> (ct, iv)

        def produce(anchor: Agent, key_material: bytes) -> None:
            iv = self._new_iv()
            envelopes[anchor.agent_id] = (
                self.suite.encrypt(anchor.subgroup_key, key_material, iv), iv)
            record.encryptions += 1
            record.messages += 1

        # The sender is a member of its home subgroup and seeds it.
        produce(home, message_key)

        # Flood: an agent obtains Km by decrypting any envelope it can
        # read (one decryption each), then produces missing envelopes for
        # the key spaces it belongs to.
        has_km: Dict[str, bytes] = {}
        progress = True
        while progress:
            progress = False
            for agent in self.agents():
                if agent.agent_id in has_km:
                    continue
                readable = None
                if agent.agent_id in envelopes:
                    readable = (agent.subgroup_key,
                                envelopes[agent.agent_id])
                elif (agent.parent is not None
                        and agent.parent.agent_id in envelopes):
                    readable = (agent.parent.subgroup_key,
                                envelopes[agent.parent.agent_id])
                if readable is None:
                    continue
                key, (ciphertext, iv) = readable
                has_km[agent.agent_id] = self.suite.decrypt(key, ciphertext, iv)
                record.decryptions += 1
                progress = True
            for agent in self.agents():
                key_material = has_km.get(agent.agent_id)
                if key_material is None:
                    continue
                if agent.agent_id not in envelopes and (
                        agent.clients or agent.children):
                    produce(agent, key_material)
                    progress = True
                if (agent.parent is not None
                        and agent.parent.agent_id not in envelopes):
                    produce(agent.parent, key_material)
                    progress = True

        # Clients read their home subgroup's envelope and decrypt the data.
        received: Dict[str, bytes] = {}
        for agent in self.agents():
            if not agent.clients:
                continue
            ciphertext, iv = envelopes[agent.agent_id]
            for client_id in agent.clients:
                client_key = self.suite.decrypt(agent.subgroup_key,
                                                ciphertext, iv)
                client_cipher = self.suite.new_cipher(client_key)
                plain = modes.cbc_decrypt_nopad(client_cipher, body, data_iv)
                received[client_id] = plain[:len(payload)]
        self.history.append(record)
        return record, received

    # -- analytics ------------------------------------------------------------------

    def trusted_entities(self) -> int:
        """Every agent is a trusted entity in Iolus (§6 'Trust')."""
        return len(self.agents())

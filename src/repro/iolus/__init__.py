"""Iolus baseline (paper §6): hierarchy of group security agents."""

from .system import Agent, IolusError, IolusOpRecord, IolusSystem

__all__ = ["IolusSystem", "IolusOpRecord", "IolusError", "Agent"]

"""The resilient RPC contract: client retry discipline, server replay.

Retries are only safe when both sides agree on what a retry *means*.
This module carries both halves of that agreement:

* **Client side** — :class:`RetryPolicy` + :class:`ResilientRpc`, a
  small state machine that replaces ad-hoc "resend after a flat
  timeout" loops: each logical request gets a per-attempt timeout, an
  overall deadline, a bounded retry budget, and capped exponential
  backoff with jitter between attempts (so a restarting shard is met
  with a decaying trickle, not a synchronized storm).  A reply the
  caller classifies as retryable (``MSG_BUSY``) re-enters the same
  backoff loop instead of growing a second retry mechanism.
* **Server side** — :class:`IdempotencyCache`, a bounded per-client
  map from correlation token to the sealed direct reply of the first
  execution.  A retried join/leave/resync/subcast whose original
  attempt already executed replays the original reply byte-for-byte
  instead of double-executing (a duplicate join used to earn "a denial
  nobody waits for"); a retry that races the original in flight is
  simply dropped — the original's reply resolves the client's future,
  because every attempt of one logical request carries the same token.

The cache stores replies *without* their correlation trailer; the
serving core re-attaches the (identical) token on replay.  ``MSG_BUSY``
is never cached: busy is a statement about the moment, not the op.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple


class RpcError(ValueError):
    """Raised on invalid retry-policy configuration."""


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one logical request's retry behavior.

    ``timeout`` bounds each attempt; ``deadline`` bounds the whole
    request including backoff sleeps; ``budget`` bounds the number of
    *retries* (a budget of 0 means exactly one attempt).  Backoff for
    retry *n* (0-based) is ``min(cap, base * multiplier**n)``, scaled
    by a jitter factor uniform in ``[1 - jitter, 1 + jitter)``.
    """

    timeout: float = 2.0
    deadline: float = 8.0
    budget: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def validate(self) -> None:
        if self.timeout <= 0:
            raise RpcError("timeout must be > 0")
        if self.deadline <= 0:
            raise RpcError("deadline must be > 0")
        if self.budget < 0:
            raise RpcError("budget must be >= 0")
        if self.backoff_base < 0:
            raise RpcError("backoff_base must be >= 0")
        if self.backoff_cap < self.backoff_base:
            raise RpcError("backoff_cap must be >= backoff_base")
        if self.multiplier < 1.0:
            raise RpcError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise RpcError("jitter must be in [0, 1]")

    def backoff(self, retry: int, rng: Callable[[], float]) -> float:
        """The sleep before 0-based retry number ``retry``."""
        base = min(self.backoff_cap,
                   self.backoff_base * self.multiplier ** retry)
        if self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter + 2.0 * self.jitter * rng())


@dataclass
class RpcOutcome:
    """What one :meth:`ResilientRpc.call` observed.

    ``status`` is ``"ok"`` (a terminal reply arrived), ``"budget"``
    (the retry budget ran dry) or ``"deadline"`` (the overall deadline
    passed first).  ``reply`` is None unless ``status == "ok"``.
    """

    reply: Any = None
    status: str = "ok"
    attempts: int = 0
    timeouts: int = 0
    retried_replies: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ResilientRpc:
    """Deadline + capped-backoff + budget retry loop, dependency-injected.

    ``attempt`` (passed per call) performs one send-and-wait bounded by
    the timeout it is given and returns the reply, or None on timeout.
    ``sleep``/``clock``/``rng`` default to the real event loop and are
    injectable so tests can drive the state machine deterministically
    without wall-clock waits.
    """

    def __init__(self, policy: Optional[RetryPolicy] = None, *,
                 rng: Optional[Callable[[], float]] = None,
                 sleep=asyncio.sleep, clock=time.monotonic):
        self.policy = policy if policy is not None else RetryPolicy()
        self.policy.validate()
        self._rng = rng if rng is not None else random.random
        self._sleep = sleep
        self._clock = clock

    async def call(self, attempt, *,
                   retryable: Optional[Callable[[Any], bool]] = None
                   ) -> RpcOutcome:
        """Run one logical request to a terminal outcome.

        ``retryable(reply)`` marks replies that should re-enter the
        backoff loop (busy shedding) rather than terminate the call;
        by default only timeouts retry.
        """
        policy = self.policy
        started = self._clock()
        deadline = started + policy.deadline
        outcome = RpcOutcome()
        retries_left = policy.budget
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                outcome.status = "deadline"
                break
            outcome.attempts += 1
            reply = await attempt(min(policy.timeout, remaining))
            if reply is None:
                outcome.timeouts += 1
            elif retryable is None or not retryable(reply):
                outcome.reply = reply
                outcome.status = "ok"
                break
            else:
                outcome.retried_replies += 1
            if retries_left <= 0:
                outcome.status = "budget"
                break
            retries_left -= 1
            delay = policy.backoff(
                policy.budget - retries_left - 1, self._rng)
            delay = min(delay, max(0.0, deadline - self._clock()))
            if delay > 0:
                await self._sleep(delay)
        outcome.elapsed = self._clock() - started
        return outcome


#: Marker for an op that was admitted but has not replied yet.  A
#: duplicate arriving while the original is PENDING is dropped: both
#: attempts carry the same token, so the original's reply resolves the
#: retrying client's future.
PENDING = object()


class IdempotencyCache:
    """Bounded per-client map: (user, corr token) -> first direct reply.

    Loop-thread-only by design (every serving-core mutation of it
    happens on the event loop), so it needs no lock.  Two bounds keep
    it honest under adversarial load: at most ``per_client`` live
    entries per user (oldest evicted first), and at most
    ``max_entries`` overall (globally oldest evicted first).  Eviction
    prefers completed entries but will drop a pending one rather than
    grow — a dropped pending entry only costs the duplicate a
    re-execution, never correctness.
    """

    PENDING = PENDING

    def __init__(self, max_entries: int = 4096, per_client: int = 8):
        if max_entries < 1:
            raise RpcError("max_entries must be >= 1")
        if per_client < 1:
            raise RpcError("per_client must be >= 1")
        self.max_entries = max_entries
        self.per_client = per_client
        self._entries: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
        self._client_tokens: Dict[str, "OrderedDict[int, None]"] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, user_id: str, token: int):
        """None = unknown; :data:`PENDING` = in flight; bytes = reply."""
        return self._entries.get((user_id, token))

    def _drop(self, user_id: str, token: int) -> None:
        self._entries.pop((user_id, token), None)
        tokens = self._client_tokens.get(user_id)
        if tokens is not None:
            tokens.pop(token, None)
            if not tokens:
                del self._client_tokens[user_id]

    def _evict_for(self, user_id: str) -> None:
        tokens = self._client_tokens.get(user_id)
        if tokens is not None and len(tokens) >= self.per_client:
            # Prefer the oldest completed entry; fall back to the
            # oldest outright so the bound always holds.
            victim = next(
                (tok for tok in tokens
                 if self._entries.get((user_id, tok)) is not PENDING),
                next(iter(tokens)))
            self._drop(user_id, victim)
        while len(self._entries) >= self.max_entries:
            old_user, old_token = next(iter(self._entries))
            self._drop(old_user, old_token)

    def begin(self, user_id: str, token: int) -> None:
        """Mark the op in flight (call after admission, before work)."""
        key = (user_id, token)
        if key in self._entries:
            return
        self._evict_for(user_id)
        self._entries[key] = PENDING
        self._client_tokens.setdefault(user_id, OrderedDict())[token] = None

    def commit(self, user_id: str, token: int, reply: bytes) -> None:
        """Record the op's first direct reply (later commits are no-ops).

        Commits only land on a tracked entry: if the pending entry was
        evicted (or never begun), the reply is simply not cached.
        """
        key = (user_id, token)
        if self._entries.get(key) is PENDING:
            self._entries[key] = reply

    def abort(self, user_id: str, token: int) -> None:
        """Forget a pending op that produced no cacheable reply."""
        if self._entries.get((user_id, token)) is PENDING:
            self._drop(user_id, token)

"""Configuration of the async serving layer.

:class:`ServeConfig` bundles the socket, concurrency and admission
knobs; the group-protocol parameters stay in
:class:`~repro.core.server.ServerConfig` (built from the paper's spec
file).  ``from_spec``/``from_spec_file`` wire both together, defaulting
the serving layer to the PR6 ``flat`` tree backend — the array engine
is the right choice once a live server faces sustained churn — unless
the spec names a backend explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.server import ServerConfig

#: Worker threads used when ``ServerConfig.workers`` is 0 (auto).  The
#: encrypt stage is pure-Python crypto, so past a handful of threads
#: the GIL caps the win; 4 keeps request overlap without churn.
DEFAULT_WORKERS = 4


class ServeError(ValueError):
    """Raised on invalid serving configuration."""


@dataclass
class ServeConfig:
    """Knobs of one async serving endpoint (or one per-shard endpoint)."""

    host: str = "127.0.0.1"
    #: Base UDP port (0 = ephemeral).  A cluster service binds one UDP
    #: port per shard, starting here.
    udp_port: int = 0
    #: Base TCP port (0 = ephemeral, None = no TCP endpoint).
    tcp_port: Optional[int] = 0
    #: Rekey operations admitted but not yet completed.  Beyond this
    #: the server sheds: an immediate ``MSG_BUSY`` reply, no state
    #: change.  Sized so a join burst queues a little and sheds a lot.
    max_inflight: int = 64
    #: Per-client token bucket for state-changing requests
    #: (join/leave/resync): sustained ops/sec and burst allowance.
    #: ``0`` disables the cap.  Heartbeats are never capped — punishing
    #: liveness signals under load would manufacture false evictions.
    client_rate: float = 0.0
    client_burst: int = 8
    #: Coalescing mode: queue joins/leaves into a
    #: :class:`~repro.batch.rekeying.BatchRekeyServer` and flush every
    #: ``coalesce_interval`` seconds (or sooner at ``coalesce_max``
    #: pending requests), folding a concurrent burst into one rekey.
    coalesce: bool = False
    coalesce_interval: float = 0.05
    coalesce_max: int = 256
    #: Seconds between recovery ticks (heartbeat silence detection,
    #: resync pushes, evictions).  0 disables the ticker.
    tick_interval: float = 1.0
    #: Mint-and-register an individual key for unknown joiners (stands
    #: in for the authentication exchange, like the CLI's
    #: pre-registration).  The load harness needs this; a closed
    #: deployment pre-registers keys and turns it off.
    open_enroll: bool = True
    #: Flight-recorder ring capacity (events).  0 disables recording;
    #: the default keeps the last couple thousand request events, a few
    #: seconds of history at full load, for pennies per op.
    flight_capacity: int = 2048
    #: Directory for automatic flight-recorder dumps (error, SLO
    #: breach).  None keeps dumps in-memory only (reachable through
    #: :attr:`AsyncServingCore.flight`).
    flight_dump_dir: Optional[str] = None
    #: Seconds between event-loop lag probes.  0 disables the probe.
    loop_probe_interval: float = 0.25
    #: Declared service-level objectives
    #: (:class:`~repro.observability.slo.SLO` tuples, usually from the
    #: spec file's ``slo-*`` keys).
    slos: Tuple = ()
    #: Seconds between SLO evaluations (needs ``slos``).  0 disables
    #: the evaluator.
    slo_interval: float = 5.0
    #: Server-side idempotency cache: total cached direct replies kept
    #: for retried requests (see :mod:`repro.serve.rpc`).  0 disables
    #: replay — a retried op then re-executes (and a duplicate join
    #: earns a denial again).
    idempotency_entries: int = 4096
    #: Cached replies kept per client user id (oldest evicted first).
    idempotency_per_client: int = 8
    #: Seconds :meth:`AsyncServingCore.aclose` waits for admitted ops
    #: to complete before tearing down the executor.  New arrivals are
    #: shed with ``MSG_BUSY`` for the whole drain; stragglers past the
    #: deadline are shed too.  0 tears down immediately.
    drain_deadline: float = 2.0

    def validate(self) -> None:
        """Check field consistency; raises ServeError."""
        if self.max_inflight < 1:
            raise ServeError("max_inflight must be >= 1")
        if self.client_rate < 0:
            raise ServeError("client_rate must be >= 0")
        if self.client_burst < 1:
            raise ServeError("client_burst must be >= 1")
        if self.coalesce_interval <= 0:
            raise ServeError("coalesce_interval must be > 0")
        if self.coalesce_max < 1:
            raise ServeError("coalesce_max must be >= 1")
        if self.tick_interval < 0:
            raise ServeError("tick_interval must be >= 0")
        if self.flight_capacity < 0:
            raise ServeError("flight_capacity must be >= 0")
        if self.loop_probe_interval < 0:
            raise ServeError("loop_probe_interval must be >= 0")
        if self.slo_interval < 0:
            raise ServeError("slo_interval must be >= 0")
        if self.idempotency_entries < 0:
            raise ServeError("idempotency_entries must be >= 0")
        if self.idempotency_per_client < 1:
            raise ServeError("idempotency_per_client must be >= 1")
        if self.drain_deadline < 0:
            raise ServeError("drain_deadline must be >= 0")


def default_server_config(config: ServerConfig) -> ServerConfig:
    """The serving layer's defaults applied over a protocol config.

    Live serving defaults to the ``flat`` tree backend; a config that
    chose a backend other than the dataclass default keeps its choice.
    """
    if config.backend == ServerConfig.backend:
        return replace(config, backend="flat")
    return config


def worker_count(config: ServerConfig) -> int:
    """The executor size for a server config (0 = auto)."""
    return config.workers if config.workers > 0 else DEFAULT_WORKERS


def from_spec_file(path: str) -> Tuple[ServerConfig, int]:
    """Load a spec file with serving defaults applied.

    Returns ``(server_config, initial_size)``; the returned config uses
    the flat backend unless the spec file named one explicitly.
    """
    from ..specfile import parse_spec, config_from_spec
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    config, initial_size = config_from_spec(text)
    if "backend" not in parse_spec(text):
        config = replace(config, backend="flat")
    return config, initial_size

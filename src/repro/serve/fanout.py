"""Socket fan-out: the async serving layer's outbound transport.

The simulation transports (:mod:`repro.transport.inmemory`) deliver by
calling member handlers; a live server instead *sends* — each member's
join registered a reply path (a UDP source address or a TCP stream),
and a rekey multicast fans out one datagram per distinct reply path.

:class:`SocketFanout` implements the :class:`~repro.transport.base.
Transport` interface over such reply paths, which makes the PR5
recovery stack work unmodified against live sockets: a
:class:`~repro.recovery.manager.RecoveryManager` pushes resyncs and
eviction rekeys through ``send``/``send_all`` exactly as it does over
the in-memory bus.

Two serving-specific behaviours:

* **Address-level dedup** — the load generator multiplexes thousands
  of simulated clients over a few sockets, so a group-wide rekey to
  10,000 members must not become 10,000 loopback datagrams to 32
  addresses.  ``send`` emits one copy per *distinct* reply path, which
  is exactly real multicast semantics (the paper's server sends to a
  group address, not per member).
* **A per-copy drop filter** — the chaos harness injects loss between
  the serialized message and the socket (``drop_filter(user_id,
  payload) -> bool``), so the PR5 fault profiles apply to the async
  front end without a custom lossy socket layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..core.messages import OutboundMessage
from ..observability.metrics import MetricRegistry
from ..transport.base import Transport

#: A registered reply path: a hashable identity (e.g. a UDP address)
#: plus the callable that writes one payload to it.
SendFn = Callable[[bytes], None]


class SocketFanout(Transport):
    """Fan outbound messages out to registered per-user reply paths."""

    def __init__(self, registry: Optional[MetricRegistry] = None):
        super().__init__(registry)
        # user id -> (path identity, send callable).  Identity is kept
        # separate from the callable so dedup works across users that
        # share a socket (callables are fresh closures per attach).
        self._paths: Dict[str, Tuple[Hashable, SendFn]] = {}
        #: Optional chaos hook: ``drop_filter(user_id, payload)`` True
        #: drops that user's copy before the socket write.
        self.drop_filter: Optional[Callable[[str, bytes], bool]] = None

    def attach(self, user_id: str, handler: SendFn,
               path_id: Optional[Hashable] = None) -> None:
        """Register ``user_id``'s reply path.

        ``handler`` writes one payload; ``path_id`` identifies the
        underlying socket/peer for multicast dedup (defaults to the
        handler object itself, which disables sharing).
        """
        self._paths[user_id] = (path_id if path_id is not None else handler,
                                handler)

    def detach(self, user_id: str) -> None:
        """Remove a reply path (no-op when absent)."""
        self._paths.pop(user_id, None)

    def known(self, user_id: str) -> bool:
        """True iff ``user_id`` has a registered reply path."""
        return user_id in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def send(self, outbound: OutboundMessage,
             payload: Optional[bytes] = None) -> None:
        """Deliver ``outbound`` once per distinct receiver reply path.

        ``payload`` overrides the wire bytes (used to append trailers);
        default is the outbound's encoded message.
        """
        data = payload if payload is not None else (
            outbound.encoded or outbound.message.encode())
        seen = set()
        targets: List[SendFn] = []
        dropped = 0
        for user_id in outbound.receivers:
            path = self._paths.get(user_id)
            if path is None:
                continue
            path_id, send_fn = path
            if path_id in seen:
                continue
            if self.drop_filter is not None \
                    and self.drop_filter(user_id, data):
                # Count the drop but still dedup: a real lost multicast
                # datagram is lost for every member behind that path.
                seen.add(path_id)
                dropped += 1
                continue
            seen.add(path_id)
            targets.append(send_fn)
        if len(targets) + dropped > 1:
            self.stats.multicast_sends += 1
        elif targets or dropped:
            self.stats.unicast_sends += 1
        self.stats.drops += dropped
        for send_fn in targets:
            try:
                send_fn(data)
            except OSError:
                self.stats.drops += 1
                continue
            self.stats.bytes_sent += len(data)
            self.stats.deliveries += 1
            self.stats.bytes_delivered += len(data)

"""The async serving core: event-loop front end over pipelined rekeying.

One :class:`AsyncServingCore` sits behind any number of socket
endpoints (:mod:`repro.serve.endpoint`).  Endpoints hand it raw
datagrams/frames plus a reply callable; the core parses, admits,
dispatches, and routes the outputs — direct replies back through the
callable, group traffic through a :class:`~repro.serve.fanout.
SocketFanout`.

Concurrency model (one process, GIL, possibly one core):

* **Parsing, admission and rekey *planning* run on the event loop.**
  Planning must be serialized anyway (it reads and edits the key tree),
  and it is cheap — the tree edit plus key draws.  Keeping it on the
  loop costs nothing and needs no locks against other loop work.
* **Encrypt/sign/dispatch stages run on a worker pool** via
  ``run_in_executor`` as a :class:`~repro.core.server.StagedRekeyOp`.
  The expensive stages of request *N* overlap the planning and parsing
  of request *N+1* — the paper's observation that rekey encryption
  dominates server cost, turned into pipeline overlap.
* **One op lock** (a plain ``threading.Lock``) guards every tree/DRBG
  mutation: planning, recovery ticks, batch flushes.  The loop only
  ever *tries* the lock; when an executor thread holds it (a tick, a
  flush), a rekey op waits for the lock *on a worker* and then still
  plans on the loop — planning anywhere else would draw seal tickets
  out of executor-submission order and void the
  :class:`~repro.core.pipeline.SealTurnstile`'s no-deadlock
  invariant.  Lock-only helpers (heartbeats, recovery) fall back to
  the executor wholesale instead.

Admission control:

* a bounded in-flight budget for rekey operations — beyond it the
  server sheds with an immediate (unsigned — shedding must be cheap)
  ``MSG_BUSY`` reply instead of queueing unboundedly;
* an optional per-client token bucket over state-changing requests
  (join/leave/resync).  Heartbeats are never capped: punishing
  liveness signals under load would manufacture false evictions.

Three flavors share the skeleton: :class:`ImmediateServingCore` (one
:class:`~repro.core.server.GroupKeyServer`, staged per-request
rekeying), :class:`CoalescingServingCore` (a :class:`~repro.batch.
rekeying.BatchRekeyServer`; concurrent joins/leaves fold into one
flush), and :class:`ClusterServingCore` (a PR4 sharded
:class:`~repro.cluster.coordinator.ClusterCoordinator`).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..batch.rekeying import BatchError, BatchRekeyServer
from ..cluster.coordinator import ClusterCoordinator, ClusterError
from ..core.messages import (DEST_USER, MSG_BUSY, MSG_HEARTBEAT,
                             MSG_JOIN_ACK, MSG_JOIN_DENIED,
                             MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                             MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                             MSG_RESYNC_REQUEST, MSG_STATS_REQUEST,
                             MSG_STATS_RESPONSE, MSG_SUBCAST_REQUEST,
                             Message, OutboundMessage, WireError)
from ..core.server import GroupKeyServer, ServerError
from ..observability import LATENCY_BUCKETS_S
from ..observability.export import build_snapshot
from ..subcast.wire import SubcastWireError, parse_subcast_request
from ..observability.flight import FlightRecorder, NULL_FLIGHT
from ..observability.instrumentation import Instrumentation
from ..observability.slo import evaluate as evaluate_slos
from ..recovery.backends import BatchBackend, ClusterBackend, ServerBackend
from ..recovery.manager import RecoveryManager, RecoveryPolicy
from .config import DEFAULT_WORKERS, ServeConfig, worker_count
from .fanout import SocketFanout
from .health import InstrumentedExecutor, LoopHealthMonitor, WAIT_BUCKETS_S
from .rpc import IdempotencyCache
from .wire import (attach_corr_trailer, attach_trailers, split_corr_trailer,
                   split_trailers)

_TYPE_NAMES = {
    MSG_JOIN_REQUEST: "join", MSG_LEAVE_REQUEST: "leave",
    MSG_HEARTBEAT: "heartbeat", MSG_RESYNC_REQUEST: "resync",
    MSG_STATS_REQUEST: "stats", MSG_SUBCAST_REQUEST: "subcast",
}

#: Stats-reply size budget: one UDP datagram, with headroom under the
#: 65,507-byte payload ceiling for trailers and kernel quirks.
_MAX_STATS_BODY = 60_000

#: Reply types that go straight back on the requester's socket (with
#: the request's correlation token echoed) instead of the fan-out.
_DIRECT_TYPES = frozenset({
    MSG_JOIN_ACK, MSG_JOIN_DENIED, MSG_LEAVE_ACK, MSG_LEAVE_DENIED,
    MSG_BUSY,
})


def _corr(payload: bytes, token: Optional[int]) -> bytes:
    """Echo the request's correlation token, when it carried one."""
    if token is None:
        return payload
    return attach_corr_trailer(payload, token)


class AsyncServingCore:
    """Shared skeleton: parse, admit, dispatch, route (see module doc)."""

    flavor = "serve"

    def __init__(self, config: ServeConfig,
                 instrumentation: Instrumentation,
                 workers: int = DEFAULT_WORKERS,
                 recovery_policy: Optional[RecoveryPolicy] = None):
        config.validate()
        self.config = config
        self.instrumentation = instrumentation
        registry = instrumentation.registry
        self._m_requests = registry.counter(
            "serve_requests_total",
            "Requests received by the async front end, by type.",
            labels=("type",))
        self._m_shed = registry.counter(
            "serve_shed_total",
            "Requests shed with MSG_BUSY, by reason.", labels=("reason",))
        self._m_errors = registry.counter(
            "serve_errors_total",
            "Serving-side failures, by operation.", labels=("op",))
        self._m_inflight = registry.gauge(
            "serve_inflight",
            "Admitted rekey operations not yet completed.").labels()
        self._m_rate_limited = registry.counter(
            "serve_rate_limited_total",
            "Requests rejected by the per-client token bucket, by type.",
            labels=("type",))
        self._m_op_lock_wait = registry.histogram(
            "serve_op_lock_wait_seconds",
            "Time spent waiting for the op lock (contended paths only).",
            bounds=WAIT_BUCKETS_S).labels()
        self._m_turnstile_wait = registry.histogram(
            "serve_turnstile_wait_seconds",
            "Time staged seals spent blocked in the SealTurnstile.",
            bounds=WAIT_BUCKETS_S).labels()
        self._m_slo_breaches = registry.counter(
            "serve_slo_breaches_total",
            "Objectives that crossed from compliant to breached.",
            labels=("slo",))
        self._m_subcast_seconds = registry.histogram(
            "serve_subcast_seconds",
            "End-to-end subcast request time (cover + seal + fan-out).",
            bounds=LATENCY_BUCKETS_S).labels()
        self._m_idempotent = registry.counter(
            "serve_idempotent_total",
            "Duplicate correlated requests absorbed by the reply cache: "
            "replayed from cache or suppressed while the original is "
            "in flight.", labels=("result",))
        # Heartbeats dominate a live group's request mix; bind their
        # series once instead of resolving labels per datagram.
        self._m_heartbeats = self._m_requests.labels(type="heartbeat")
        self.fanout = SocketFanout(registry)
        self.flight = (FlightRecorder(config.flight_capacity)
                       if config.flight_capacity > 0 else NULL_FLIGHT)
        self.loop_health = (
            LoopHealthMonitor(registry, config.loop_probe_interval)
            if config.loop_probe_interval > 0 else None)
        self.executor = InstrumentedExecutor(
            registry, max_workers=max(1, workers),
            thread_name_prefix="repro-serve")
        # Guards every tree/DRBG mutation across loop and executor:
        # plan, whole-op fallback, recovery tick, batch flush.
        self._op_lock = threading.Lock()
        self._inflight = 0
        self._closing = False
        # The server half of the ResilientRpc contract: retried ops
        # replay their original reply instead of double-executing.
        # Mutated only on the event loop — no lock.
        self._idem = (IdempotencyCache(config.idempotency_entries,
                                       config.idempotency_per_client)
                      if config.idempotency_entries > 0 else None)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._admits_since_prune = 0
        self._tick_task: Optional[asyncio.Task] = None
        self._slo_task: Optional[asyncio.Task] = None
        self._slo_breached: set = set()
        self.recovery = RecoveryManager(
            self._recovery_backend(), self.fanout,
            policy=recovery_policy, instrumentation=instrumentation)

    # -- subclass hooks ----------------------------------------------------

    def _recovery_backend(self):
        raise NotImplementedError

    async def _rekey(self, op: str, user_id: str, payload: bytes,
                     reply, token: Optional[int], span) -> None:
        raise NotImplementedError

    def _stats_document(self) -> dict:
        tracer = self.instrumentation.tracer
        spans = tracer.export() if tracer.enabled else None
        return build_snapshot(self.instrumentation.registry,
                              label=self.instrumentation.name, spans=spans)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start background work (ticker, health probe, SLO evaluator)."""
        if self.config.tick_interval > 0 and self._tick_task is None:
            self._tick_task = asyncio.get_running_loop().create_task(
                self._tick_loop())
        if self.loop_health is not None:
            self.loop_health.start()
        if (self.config.slos and self.config.slo_interval > 0
                and self._slo_task is None):
            self._slo_task = asyncio.get_running_loop().create_task(
                self._slo_loop())

    async def _drain(self) -> None:
        """Wait (bounded) for admitted ops to finish before teardown.

        ``_closing`` is already set, so every new arrival sheds with
        ``MSG_BUSY`` — the in-flight count can only fall.  Stragglers
        past the deadline are abandoned to the executor shutdown's
        ``cancel_futures``, which sheds them through the ordinary
        error path.
        """
        deadline = time.monotonic() + self.config.drain_deadline
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)

    async def aclose(self) -> None:
        """Drain in-flight ops (bounded), then stop the worker pool."""
        self._closing = True
        await self._drain()
        for attr in ("_tick_task", "_slo_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self.loop_health is not None:
            await self.loop_health.aclose()
        self.executor.shutdown(wait=True, cancel_futures=True)

    # -- helpers -----------------------------------------------------------

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self.executor, fn, *args)

    async def _locked(self, fn, *args):
        """Run ``fn`` under the op lock without ever blocking the loop.

        Free lock: run inline (the common case — ticks and flushes are
        rare).  Held lock: run on the executor, where waiting is fine.
        """
        if self._op_lock.acquire(blocking=False):
            try:
                return fn(*args)
            finally:
                self._op_lock.release()

        def call():
            with self._op_lock:
                return fn(*args)
        return await self._in_executor(call)

    async def _acquire_op_lock(self) -> None:
        """Wait for the op lock on a worker; the caller must release it.

        Lets a coroutine take the lock and then keep working *on the
        loop* (rekey planning must happen there — see the module doc)
        without ever blocking the loop on the acquire.  If the await
        is cancelled after the pool task has started, that task will
        still acquire the lock eventually; a done-callback hands it
        straight back so cancellation cannot leak the lock.
        """
        future = asyncio.get_running_loop().run_in_executor(
            self.executor, self._op_lock.acquire)
        try:
            await future
        except asyncio.CancelledError:
            def release(done):
                if not done.cancelled():
                    self._op_lock.release()
            future.add_done_callback(release)
            raise

    async def _acquire_op_lock_timed(self, parent=None) -> None:
        """:meth:`_acquire_op_lock` plus wait attribution.

        Contended acquires (the only callers of this variant) land in
        the op-lock wait histogram and, when the request is traced, a
        ``serve.lock_wait`` child span.
        """
        span = self.instrumentation.tracer.span("serve.lock_wait",
                                                parent=parent)
        started = time.perf_counter()
        await self._acquire_op_lock()
        self._m_op_lock_wait.observe(time.perf_counter() - started)
        span.finish()

    # -- flight recorder / SLO ---------------------------------------------

    def _dump_path(self, reason: str) -> Optional[str]:
        directory = self.config.flight_dump_dir
        if directory is None:
            return None
        return os.path.join(
            directory, f"flight-{self.flavor}-{reason}.json")

    def dump_flight(self, reason: str = "signal",
                    path: Optional[str] = None) -> dict:
        """Dump the flight ring now (the operator-signal entry point)."""
        return self.flight.dump(reason, path if path is not None
                                else self._dump_path(reason))

    async def _slo_once(self) -> list:
        """Evaluate declared objectives against a fresh snapshot.

        A breach is counted (and triggers a rate-limited flight dump)
        only on the compliant-to-breached edge, so a sustained breach
        is one incident, not one per evaluation tick.
        """
        snapshot = await self._in_executor(
            self.instrumentation.registry.snapshot)
        statuses = evaluate_slos(self.config.slos, snapshot)
        for status in statuses:
            name = status.slo.name
            if status.compliant:
                self._slo_breached.discard(name)
                continue
            if name not in self._slo_breached:
                self._slo_breached.add(name)
                self._m_slo_breaches.inc(slo=name)
                self.flight.record(
                    "slo.breach", slo=name,
                    compliance=round(status.compliance, 6),
                    target=status.slo.target)
                self.flight.maybe_dump("slo-breach",
                                       self._dump_path("slo-breach"))
        return statuses

    async def _slo_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.slo_interval)
            try:
                await self._slo_once()
            except Exception:
                self._m_errors.inc(op="slo")

    def _admit_rate(self, user_id: str) -> bool:
        """Per-client token bucket (state-changing requests only)."""
        rate = self.config.client_rate
        if rate <= 0:
            return True
        # The ticker prunes idle buckets, but with tick_interval=0 it
        # never runs — prune opportunistically so the per-client dict
        # cannot grow without bound across distinct user_ids.
        self._admits_since_prune += 1
        if self._admits_since_prune >= 1024:
            self._admits_since_prune = 0
            self._prune_buckets()
        now = time.monotonic()
        burst = float(self.config.client_burst)
        tokens, last = self._buckets.get(user_id, (burst, now))
        tokens = min(burst, tokens + (now - last) * rate)
        if tokens < 1.0:
            self._buckets[user_id] = (tokens, now)
            return False
        self._buckets[user_id] = (tokens - 1.0, now)
        return True

    def _prune_buckets(self) -> None:
        # A bucket back at full burst carries no state worth keeping.
        now = time.monotonic()
        rate = self.config.client_rate
        burst = float(self.config.client_burst)
        full = [user_id for user_id, (tokens, last) in self._buckets.items()
                if tokens + (now - last) * rate >= burst]
        for user_id in full:
            del self._buckets[user_id]

    # -- idempotent replay (the server half of ResilientRpc) ---------------

    def _idem_handled(self, user_id: str, token: Optional[int],
                      reply) -> bool:
        """True when the request is a duplicate and is fully dealt with.

        A completed original replays its cached reply (token re-echoed);
        an in-flight original absorbs the duplicate silently — both
        attempts carry the same token, so the original's reply resolves
        the retrying client's future.
        """
        cache = self._idem
        if cache is None or token is None:
            return False
        entry = cache.get(user_id, token)
        if entry is None:
            return False
        if entry is IdempotencyCache.PENDING:
            self._m_idempotent.inc(result="inflight")
            return True
        self._m_idempotent.inc(result="replay")
        self.flight.record("idem.replay", user=user_id)
        reply(attach_corr_trailer(entry, token))
        return True

    def _idem_begin(self, user_id: str, token: Optional[int]) -> None:
        if self._idem is not None and token is not None:
            self._idem.begin(user_id, token)

    def _idem_commit(self, user_id: str, token: Optional[int],
                     payload: bytes) -> None:
        """Cache a direct reply (correlation trailer already stripped)."""
        if self._idem is not None and token is not None:
            self._idem.commit(user_id, token, payload)

    def _idem_finish(self, user_id: str, token: Optional[int]) -> None:
        """Drop a still-pending entry once the op can no longer reply."""
        if self._idem is not None and token is not None:
            self._idem.abort(user_id, token)

    def _idem_tee(self, user_id: str, token: Optional[int], reply):
        """Wrap a direct-reply callable so the first reply is cached.

        Only the requester's direct replies flow through the wrapper —
        fan-out traffic uses the callable registered with
        :meth:`SocketFanout.attach` (the unwrapped one).  ``MSG_BUSY``
        aborts instead of caching: busy describes the moment, not the
        op, and a retry must be allowed to execute.
        """
        cache = self._idem
        if cache is None or token is None:
            return reply

        def tee(payload: bytes) -> None:
            body, _tok = split_corr_trailer(payload)
            try:
                msg_type = Message.decode(body).msg_type
            except WireError:
                msg_type = None
            if msg_type == MSG_BUSY:
                cache.abort(user_id, token)
            else:
                cache.commit(user_id, token, body)
            reply(payload)
        return tee

    def _shed(self, user_id: str, reply, token: Optional[int],
              reason: str, trace=None) -> None:
        self._m_shed.inc(reason=reason)
        self.flight.record("shed",
                           trace_id=trace.trace_id if trace else 0,
                           reason=reason, user=user_id)
        busy = Message(msg_type=MSG_BUSY, body=user_id.encode("utf-8"))
        reply(attach_trailers(busy.encode(), trace, token))

    def _route(self, outputs: Sequence[OutboundMessage], user_id: str,
               reply, token: Optional[int], trace=None) -> None:
        """Direct replies back to the requester; the rest to the fan-out."""
        for out in outputs:
            payload = out.encoded or out.message.encode()
            if trace is not None:
                payload = attach_trailers(payload, trace)
            if (out.message.msg_type in _DIRECT_TYPES
                    and out.destination.kind == DEST_USER
                    and out.destination.user_id == user_id):
                reply(_corr(payload, token))
            else:
                self.fanout.send(out, payload=payload)

    async def _tick_once(self) -> None:
        await self._locked(self.recovery.tick)

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_interval)
            try:
                await self._tick_once()
            except Exception:
                self._m_errors.inc(op="tick")
            self._prune_buckets()

    # -- the front door ----------------------------------------------------

    def submit_nowait(self, data: bytes, reply, path_id=None) -> bool:
        """Inline fast path for cheap datagrams; True when fully served.

        Heartbeats dominate a live group's request mix and touch only
        the recovery tables, so when the op lock is free they are
        served synchronously on the calling loop iteration — no task,
        no executor hop, no await.  Anything else (or a held op lock)
        returns False and the caller falls back to :meth:`submit` on a
        task.  Malformed payloads are consumed here too: they deserve
        a counter bump, not a task.
        """
        payload, _token = split_corr_trailer(data)
        try:
            message = Message.decode(payload)
        except WireError:
            self._m_requests.inc(type="malformed")
            return True
        if message.msg_type != MSG_HEARTBEAT:
            return False
        if not self._op_lock.acquire(blocking=False):
            return False
        try:
            self._m_heartbeats.inc()
            user_id = message.body.decode("utf-8", errors="replace")
            if path_id is not None:
                self.fanout.attach(user_id, reply, path_id)
            self.recovery.heartbeat(
                user_id, (message.root_node_id, message.root_version))
        finally:
            self._op_lock.release()
        return True

    async def submit(self, data: bytes, reply,
                     path_id=None) -> None:
        """Serve one inbound payload.

        ``reply`` writes one payload back on the requester's path (it
        must be loop-thread-safe — see :mod:`repro.serve.endpoint`);
        ``path_id`` identifies that path for fan-out registration and
        multicast dedup (None = do not register, e.g. one-shot tools).
        """
        payload, inbound, token = split_trailers(data)
        try:
            message = Message.decode(payload)
        except WireError:
            self._m_requests.inc(type="malformed")
            return
        msg_type = message.msg_type
        self._m_requests.inc(type=_TYPE_NAMES.get(msg_type, "other"))
        if msg_type == MSG_STATS_REQUEST:
            body = await self._in_executor(self._stats_body)
            response = Message(msg_type=MSG_STATS_RESPONSE, body=body)
            reply(attach_trailers(response.encode(), inbound, token))
            return
        if msg_type == MSG_SUBCAST_REQUEST:
            await self._subcast(message, reply, inbound, token, path_id)
            return
        user_id = message.body.decode("utf-8", errors="replace")
        if msg_type == MSG_HEARTBEAT:
            if path_id is not None:
                self.fanout.attach(user_id, reply, path_id)
            await self._locked(
                self.recovery.heartbeat, user_id,
                (message.root_node_id, message.root_version))
            return
        tracer = self.instrumentation.tracer
        if msg_type == MSG_RESYNC_REQUEST:
            # Duplicate check before admission: a retry already paid
            # the token bucket once, and a replay is a cheap loop-side
            # copy that must not be shed.
            if self._idem_handled(user_id, token, reply):
                return
            if self._closing:
                self._shed(user_id, reply, token, "closing", inbound)
                return
            if not self._admit_rate(user_id):
                self._m_rate_limited.inc(type="resync")
                self._shed(user_id, reply, token, "rate-cap", inbound)
                return
            if path_id is not None:
                self.fanout.attach(user_id, reply, path_id)
            # Created, never entered: the span must not sit on the
            # loop thread's active stack across the await below.
            span = tracer.span("serve.request", parent=inbound,
                               op="resync", user=user_id)
            trace = span.context if span.trace_id else None
            self.flight.record("req", trace_id=span.trace_id,
                               op="resync", user=user_id)
            self._idem_begin(user_id, token)
            out = await self._locked(self.recovery.serve_request, user_id)
            if out is not None:
                body = out.encoded or out.message.encode()
                if trace is not None:
                    body = attach_trailers(body, trace)
                self._idem_commit(user_id, token, body)
                reply(_corr(body, token))
            else:
                self._idem_finish(user_id, token)
            span.finish()
            self.flight.record("done", trace_id=span.trace_id,
                               op="resync", served=out is not None)
            return
        if msg_type in (MSG_JOIN_REQUEST, MSG_LEAVE_REQUEST):
            op = "join" if msg_type == MSG_JOIN_REQUEST else "leave"
            if self._idem_handled(user_id, token, reply):
                return
            if self._closing:
                self._shed(user_id, reply, token, "closing", inbound)
                return
            if not self._admit_rate(user_id):
                self._m_rate_limited.inc(type=op)
                self._shed(user_id, reply, token, "rate-cap", inbound)
                return
            if self._inflight >= self.config.max_inflight:
                self._shed(user_id, reply, token, "saturated", inbound)
                return
            if path_id is not None and op == "join":
                self.fanout.attach(user_id, reply, path_id)
            self._inflight += 1
            self._m_inflight.set(self._inflight)
            # The request's root span.  Created, never entered — it
            # spans awaits, and entering would corrupt the loop
            # thread's active-span stack.  Children attach to it
            # explicitly (plan on the loop, exec on workers).
            span = tracer.span("serve.request", parent=inbound,
                               op=op, user=user_id)
            self.flight.record("req", trace_id=span.trace_id,
                               op=op, user=user_id)
            self._idem_begin(user_id, token)
            # Direct replies (ack, denial, shed) flow through the tee
            # so the first one lands in the reply cache; the fan-out
            # path registered above keeps the raw callable.
            teed = self._idem_tee(user_id, token, reply)
            try:
                await self._rekey(op, user_id, payload, teed, token, span)
            except asyncio.CancelledError:
                # Executor teardown cancelled the op's future (the
                # drain deadline passed); the task itself is alive, so
                # shed instead of vanishing without a reply.
                span.finish(error=True)
                self._shed(user_id, teed, token, "closing", span.context)
            except Exception as exc:
                self._m_errors.inc(op=op)
                span.finish(error=True)
                self.flight.record("error", trace_id=span.trace_id,
                                   op=op, user=user_id,
                                   cause=type(exc).__name__)
                self.flight.maybe_dump("error", self._dump_path("error"))
                # An admitted op that died server-side must still fail
                # fast for the client — a busy reply beats a timeout.
                self._shed(user_id, teed, token, "error", span.context)
            else:
                span.finish()
                self.flight.record("done", trace_id=span.trace_id, op=op,
                                   us=span.duration_ns // 1000)
            finally:
                # Ops that never replied directly (cluster routing
                # errors) must not blackhole their token forever.
                self._idem_finish(user_id, token)
                self._inflight -= 1
                self._m_inflight.set(self._inflight)
            return
        # Known-to-wire but not servable here (MSG_REKEY, MSG_DATA, ...).

    def _subcast_backend(self):
        """The object exposing ``subcast()``/``is_member()`` (per flavor)."""
        raise NotImplementedError

    async def _subcast(self, message: Message, reply, inbound,
                       token: Optional[int], path_id) -> None:
        """Serve one covered-multicast request.

        The whole op (membership check, cover, seal) runs on the
        executor under the op lock — the cover must see a consistent
        tree, and must never interleave with a rekey mid-edit.  The
        sealed message fans out to the target subset; the requester
        additionally gets a direct correlation-tagged copy as its ack.
        """
        try:
            sender, targets, app_payload = parse_subcast_request(
                message.body)
        except SubcastWireError:
            self._m_requests.inc(type="malformed")
            return
        if self._idem_handled(sender, token, reply):
            return
        if self._closing:
            self._shed(sender, reply, token, "closing", inbound)
            return
        if not self._admit_rate(sender):
            self._m_rate_limited.inc(type="subcast")
            self._shed(sender, reply, token, "rate-cap", inbound)
            return
        if self._inflight >= self.config.max_inflight:
            self._shed(sender, reply, token, "saturated", inbound)
            return
        if path_id is not None:
            self.fanout.attach(sender, reply, path_id)
        self._inflight += 1
        self._m_inflight.set(self._inflight)
        tracer = self.instrumentation.tracer
        # Created, never entered (it spans awaits); the exec child is
        # entered on the worker so backend spans parent to it.
        span = tracer.span("serve.request", parent=inbound,
                           op="subcast", user=sender)
        trace = span.context if span.trace_id else None
        self.flight.record("req", trace_id=span.trace_id, op="subcast",
                           user=sender, targets=len(targets))
        started = time.perf_counter()

        def run():
            with self._op_lock:
                self._m_op_lock_wait.observe(time.perf_counter() - started)
                with tracer.span("serve.exec", parent=span, op="subcast"):
                    backend = self._subcast_backend()
                    if not backend.is_member(sender):
                        raise ServerError(
                            f"subcast sender {sender!r} is not a member")
                    return backend.subcast(targets, app_payload)

        self._idem_begin(sender, token)
        try:
            out = await self._in_executor(run)
        except asyncio.CancelledError:
            span.finish(error=True)
            self._shed(sender, reply, token, "closing", span.context)
        except Exception as exc:
            self._m_errors.inc(op="subcast")
            span.finish(error=True)
            self.flight.record("error", trace_id=span.trace_id,
                               op="subcast", user=sender,
                               cause=type(exc).__name__)
            self._shed(sender, reply, token, "error", span.context)
        else:
            payload_out = out.encoded or out.message.encode()
            if trace is not None:
                payload_out = attach_trailers(payload_out, trace)
            self.fanout.send(out, payload=payload_out)
            # A replayed subcast re-sends only the requester's direct
            # copy — the original fan-out already reached the targets.
            self._idem_commit(sender, token, payload_out)
            reply(_corr(payload_out, token))
            span.finish()
            self._m_subcast_seconds.observe(time.perf_counter() - started)
            self.flight.record("done", trace_id=span.trace_id,
                               op="subcast", us=span.duration_ns // 1000)
        finally:
            self._idem_finish(sender, token)
            self._inflight -= 1
            self._m_inflight.set(self._inflight)

    def _stats_body(self) -> bytes:
        document = self._stats_document()
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        # A stats reply rides one UDP datagram; a full span ring is
        # megabytes and sendto would fail silently.  Keep the newest
        # spans that fit and say how many were cut — truncation must
        # be visible, never silent.  Full exports go through the
        # in-process tracer (loadgen --trace-out), not the wire.
        spans = document.get("spans")
        if spans:
            total = len(spans)
            while spans and len(body) > _MAX_STATS_BODY:
                spans = spans[max(1, len(spans) // 2):]
                document["spans"] = spans
                document["spans_dropped"] = total - len(spans)
                body = json.dumps(document,
                                  sort_keys=True).encode("utf-8")
        return body

    async def _track(self, op: str, user_id: str) -> None:
        if op == "join":
            await self._locked(self.recovery.track, user_id)
        else:
            await self._locked(self.recovery.untrack, user_id)
            self.fanout.detach(user_id)


class ImmediateServingCore(AsyncServingCore):
    """Per-request staged rekeying over one :class:`GroupKeyServer`."""

    flavor = "immediate"

    def __init__(self, server: GroupKeyServer,
                 config: Optional[ServeConfig] = None,
                 workers: Optional[int] = None,
                 recovery_policy: Optional[RecoveryPolicy] = None):
        self.server = server
        super().__init__(
            config if config is not None else ServeConfig(),
            server.instrumentation,
            workers if workers is not None else worker_count(server.config),
            recovery_policy)
        server.pipeline.seal_order.wait_observer = \
            self._m_turnstile_wait.observe
        #: Force the whole-op serialized path even without a journal.
        #: The supervisor sets this for standby-recorded shards: the
        #: WarmStandby's single recording sink must see one op's draws
        #: at a time, which the overlapped staged path cannot promise.
        self.serialize_ops = False

    def _recovery_backend(self):
        return ServerBackend(self.server)

    def _subcast_backend(self):
        return self.server

    async def _tick_once(self):
        # The tick's evictions run synchronous leaves that draw a seal
        # ticket and wait their turn.  With staged request ops still
        # in flight that wait can starve: the earlier-ticket staged
        # task may sit queued behind workers blocked on the very op
        # lock the tick holds.  So take the lock only once the
        # turnstile is idle — plans (and so ticket draws) happen under
        # the lock, so idleness holds for as long as we do — and run
        # the tick inline; its sync leaves then never wait.
        turnstile = self.server.pipeline.seal_order
        while True:
            if not self._op_lock.acquire(blocking=False):
                await self._acquire_op_lock()
            if turnstile.idle:
                break
            self._op_lock.release()
            await asyncio.sleep(0.005)
        try:
            self.recovery.tick()
        finally:
            self._op_lock.release()

    def _ensure_enrolled(self, user_id: str) -> None:
        server = self.server
        if (self.config.open_enroll and not server.is_member(user_id)
                and user_id not in server._registered_keys):
            server.register_individual_key(
                user_id, server.new_individual_key())

    async def _rekey(self, op, user_id, payload, reply, token, span):
        server = self.server
        tracer = self.instrumentation.tracer
        trace = span.context if span.trace_id else None
        if getattr(server, "_journal", None) is not None or self.serialize_ops:
            # A journaled (or standby-recorded) server must append ops
            # in plan order, which the overlapped path cannot
            # guarantee — serialize the whole op on a worker.  Every op on this server takes
            # this path, so each seal ticket is drawn and retired
            # under the op lock before the next op plans: the
            # turnstile never actually waits here.
            def run():
                started = time.perf_counter()
                with self._op_lock:
                    self._m_op_lock_wait.observe(
                        time.perf_counter() - started)
                    # Entered on this worker thread, so the rekey
                    # pipeline's spans parent to it thread-locally —
                    # the executor hop stays one connected trace.
                    with tracer.span("serve.exec", parent=span, op=op):
                        if op == "join":
                            self._ensure_enrolled(user_id)
                            return server.join(user_id)
                        return server.leave(user_id)
            try:
                outcome = await self._in_executor(run)
            except ServerError:
                await self._deny(op, user_id, reply, token, trace)
                return
            self._route(outcome.all_messages, user_id, reply, token, trace)
            await self._track(op, user_id)
            return
        # Plan here on the loop, then ship the heavy encrypt/sign/
        # dispatch stages to the pool; the next request plans while
        # these stages run.  Planning must stay on the loop even when
        # the op lock is busy: plan + submit with no await between
        # keeps seal tickets in executor-submission order, which is
        # the SealTurnstile's no-deadlock invariant — a whole-op
        # executor fallback here could draw its ticket after a staged
        # task it then starves of a worker, wedging the server.
        if not self._op_lock.acquire(blocking=False):
            await self._acquire_op_lock_timed(span)
        staged = None
        try:
            with tracer.span("serve.plan", parent=span, op=op):
                try:
                    if op == "join":
                        self._ensure_enrolled(user_id)
                        staged = server.begin_join(user_id)
                    else:
                        staged = server.begin_leave(user_id)
                except ServerError:
                    staged = None
        finally:
            self._op_lock.release()
        if staged is None:
            await self._deny(op, user_id, reply, token, trace)
            return
        outcome = await self._in_executor(
            lambda: staged.encrypt().seal().finish())
        self._route(outcome.all_messages, user_id, reply, token, trace)
        await self._track(op, user_id)

    async def _deny(self, op, user_id, reply, token, trace=None):
        server = self.server
        server._m_requests.inc(op=op, status="denied")
        msg_type = MSG_JOIN_DENIED if op == "join" else MSG_LEAVE_DENIED
        out = await self._locked(server._control_message, msg_type, user_id)
        reply(attach_trailers(out.encoded or out.message.encode(),
                              trace, token))


class CoalescingServingCore(AsyncServingCore):
    """Fold concurrent joins/leaves into one batch flush.

    Requests queue into a :class:`BatchRekeyServer` on arrival (cheap,
    on the loop) and the flush loop rekeys once per
    ``coalesce_interval`` — or as soon as ``coalesce_max`` requests
    are pending.  Joiners are answered with their path-keys unicast
    from the flush; leavers (and joins cancelled by a same-interval
    leave) get a synthesized signed ack.  ``max_inflight`` should be
    at least ``coalesce_max`` or admission will cap batch size first.
    """

    flavor = "coalesce"

    def __init__(self, server: BatchRekeyServer,
                 config: Optional[ServeConfig] = None,
                 workers: int = DEFAULT_WORKERS,
                 recovery_policy: Optional[RecoveryPolicy] = None):
        self.server = server
        super().__init__(
            config if config is not None else ServeConfig(coalesce=True),
            server.instrumentation, workers, recovery_policy)
        registry = self.instrumentation.registry
        self._m_pending = registry.gauge(
            "serve_coalesce_pending",
            "Rekey requests queued for the next flush.").labels()
        self._m_flushes = registry.counter(
            "serve_flushes_total",
            "Coalesced rekey flushes executed.").labels()
        self._registered: Dict[str, bytes] = {}
        self._waiters: List[tuple] = []
        self._flush_event = asyncio.Event()
        self._flush_task: Optional[asyncio.Task] = None

    def _recovery_backend(self):
        return BatchBackend(self.server)

    def _subcast_backend(self):
        # Covers address the flushed tree; users still queued for the
        # next flush hold no tree keys and cannot be targeted yet.
        return self.server

    def register_individual_key(self, user_id: str, key: bytes) -> None:
        """Pre-register a joiner's key (the auth-exchange stand-in)."""
        self._registered[user_id] = key

    async def start(self):
        await super().start()
        if self._flush_task is None:
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush_loop())

    async def aclose(self):
        # Final drain: ops already accepted into the batch get their
        # flush under the drain deadline (new arrivals shed with
        # MSG_BUSY via the closing gate), so an accepted op is never
        # silently dropped by shutdown.
        self._closing = True
        deadline = time.monotonic() + self.config.drain_deadline
        while self._waiters and time.monotonic() < deadline:
            self._flush_event.set()
            await asyncio.sleep(0.005)
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        # Stragglers past the deadline fail fast, not silently.
        for w_op, w_user, w_reply, w_token, w_trace, future in self._waiters:
            self._shed(w_user, w_reply, w_token, "closing", w_trace)
            if not future.done():
                future.set_result(None)
        self._waiters = []
        await super().aclose()

    def _enroll_key(self, user_id: str) -> bytes:
        registered = self._registered.pop(user_id, None)
        if registered is not None:
            return registered
        if not self.config.open_enroll:
            raise BatchError(f"{user_id}: no registered individual key")
        # Under the op lock (the DRBG is shared with the flush).
        return self.server.material.new_individual_key()

    def _control(self, msg_type: int, user_id: str) -> bytes:
        """A synthesized signed control reply against the batch tree."""
        server = self.server
        try:
            root_id, root_version = server.group_key_ref()
        except Exception:
            root_id, root_version = 0, 0
        message = Message(
            msg_type=msg_type, group_id=1,
            seq=server.pipeline.sequencer.next(),
            timestamp_us=time.time_ns() // 1000,
            root_node_id=root_id, root_version=root_version,
            body=user_id.encode("utf-8"))
        with server.pipeline.seal_lock:
            server._signer.seal([message])
        return message.encode()

    async def _deny(self, op, user_id, reply, token, trace=None):
        msg_type = MSG_JOIN_DENIED if op == "join" else MSG_LEAVE_DENIED
        payload = await self._in_executor(self._control, msg_type, user_id)
        reply(attach_trailers(payload, trace, token))

    async def _rekey(self, op, user_id, payload, reply, token, span):
        server = self.server
        trace = span.context if span.trace_id else None
        # Enqueue and waiter registration must be one atomic step
        # under the op lock: the flush consumes the pending set and
        # the waiter list together (also under the lock), so a flush
        # landing between them would eat the pending join but find no
        # waiter — silently dropping the joiner's path-key unicast.
        # When the lock is busy (a flush, a tick) we wait for it on a
        # worker and then enqueue here on the loop.
        if not self._op_lock.acquire(blocking=False):
            await self._acquire_op_lock_timed(span)
        future = asyncio.get_running_loop().create_future()
        denied = False
        try:
            with self.instrumentation.tracer.span("serve.enqueue",
                                                  parent=span, op=op):
                if op == "join":
                    server.request_join(user_id, self._enroll_key(user_id))
                else:
                    server.request_leave(user_id)
                self._waiters.append(
                    (op, user_id, reply, token, trace, future))
        except BatchError:
            denied = True
        finally:
            self._op_lock.release()
        if denied:
            await self._deny(op, user_id, reply, token, trace)
            return
        self._m_pending.set(len(self._waiters))
        if len(self._waiters) >= self.config.coalesce_max:
            self._flush_event.set()
        await future

    async def _flush_loop(self):
        while True:
            try:
                await asyncio.wait_for(self._flush_event.wait(),
                                       timeout=self.config.coalesce_interval)
            except asyncio.TimeoutError:
                pass
            self._flush_event.clear()
            if not self._waiters:
                continue
            await self._flush()

    async def _flush(self):
        server = self.server

        # Snapshot the waiters and flush the pending set in ONE
        # critical section: a loop-side snapshot would race the
        # worker-side flush, letting a request enqueued in between be
        # consumed by a flush that holds no waiter for it.
        def do_flush():
            with self._op_lock:
                waiters, self._waiters = self._waiters, []
                if not waiters:
                    return waiters, None, None
                try:
                    return waiters, server.flush(), None
                except Exception as exc:
                    return waiters, None, exc
        waiters, result, error = await self._in_executor(do_flush)
        self._m_pending.set(len(self._waiters))
        if not waiters:
            return
        if error is not None:
            self._m_errors.inc(op="flush")
            for w_op, w_user, w_reply, w_token, w_trace, future in waiters:
                # Fail fast: a busy reply beats leaving the client to
                # tell server failure from packet loss by timeout.
                self._shed(w_user, w_reply, w_token, "error", w_trace)
                if not future.done():
                    future.set_result(None)
            return
        self._m_flushes.inc()
        joiner_payloads = {
            out.destination.user_id: out.encoded or out.message.encode()
            for out in result.joiner_messages
            if out.destination.kind == DEST_USER}

        def build_acks():
            acks = {}
            for op, user_id, _reply, _token, _trace, _future in waiters:
                if op == "leave" or user_id not in joiner_payloads:
                    msg_type = (MSG_LEAVE_ACK if op == "leave"
                                else MSG_JOIN_ACK)
                    acks[(op, user_id)] = self._control(msg_type, user_id)
            return acks
        acks = await self._in_executor(build_acks)
        if result.rekey_message is not None:
            self.fanout.send(result.rekey_message)
        joins: List[str] = []
        leaves: List[str] = []
        for op, user_id, reply, token, trace, future in waiters:
            payload = joiner_payloads.get(user_id) if op == "join" else None
            if payload is None:
                payload = acks[(op, user_id)]
            reply(attach_trailers(payload, trace, token))
            (joins if op == "join" else leaves).append(user_id)
            if not future.done():
                future.set_result(None)

        def apply_tracking():
            for user_id in joins:
                self.recovery.track(user_id)
            for user_id in leaves:
                self.recovery.untrack(user_id)
        await self._locked(apply_tracking)
        for user_id in leaves:
            self.fanout.detach(user_id)


class ClusterServingCore(AsyncServingCore):
    """The PR4 sharded cluster behind the async front end.

    Cluster ops compose a shard rekey with a root-layer rekey, so the
    whole request runs on the executor under the op lock — the loop
    stays free for heartbeats and parsing, and intra-cluster ordering
    stays exactly the coordinator's.
    """

    flavor = "cluster"

    def __init__(self, coordinator: ClusterCoordinator,
                 config: Optional[ServeConfig] = None,
                 workers: int = DEFAULT_WORKERS,
                 recovery_policy: Optional[RecoveryPolicy] = None):
        self.coordinator = coordinator
        super().__init__(
            config if config is not None else ServeConfig(),
            coordinator.instrumentation, workers, recovery_policy)

    def _recovery_backend(self):
        return ClusterBackend(self.coordinator)

    def _subcast_backend(self):
        return self.coordinator

    def _stats_document(self) -> dict:
        return self.coordinator.stats_document()

    def _ensure_enrolled(self, user_id: str) -> None:
        coordinator = self.coordinator
        if (self.config.open_enroll
                and user_id not in coordinator._registered_keys
                and not coordinator.shard_of(user_id)
                        .server.is_member(user_id)):
            coordinator.register_individual_key(
                user_id, coordinator.new_individual_key())

    async def _rekey(self, op, user_id, payload, reply, token, span):
        coordinator = self.coordinator
        tracer = self.instrumentation.tracer
        trace = span.context if span.trace_id else None

        def run():
            started = time.perf_counter()
            with self._op_lock:
                self._m_op_lock_wait.observe(time.perf_counter() - started)
                # Entered on this worker thread: the coordinator's
                # ``cluster.{op}`` span (and below it the shard and
                # root-layer rekey spans) parent to it thread-locally,
                # so the executor hop stays one connected trace.
                with tracer.span("serve.exec", parent=span, op=op):
                    if op == "join":
                        self._ensure_enrolled(user_id)
                    return coordinator.handle_datagram(payload)
        try:
            outputs = await self._in_executor(run)
        except ClusterError:
            self._m_errors.inc(op=op)
            return
        self._route(outputs, user_id, reply, token, trace)
        ack_type = MSG_JOIN_ACK if op == "join" else MSG_LEAVE_ACK
        if any(out.message.msg_type == ack_type for out in outputs):
            await self._track(op, user_id)

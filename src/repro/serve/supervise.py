"""Self-healing shard supervision: probe, kill-detect, restart, promote.

The paper treats the key server as a single trusted process and notes
only that it "may be replicated for reliability".  PR6 built the two
recovery substrates — the on-disk op journal (restart by replay,
:mod:`repro.core.persistence`) and the in-memory warm standby
(checkpoint + draw-replay, :mod:`repro.cluster.failover`) — but both
waited for someone to *notice* the crash and drive the recovery by
hand.  This module is that someone.

A :class:`Supervisor` owns N independent shard serving cores (one
:class:`~repro.serve.core.ImmediateServingCore` + UDP endpoint each)
and runs one watchdog task per shard:

* **probe** — every ``probe_interval`` the watchdog submits a no-op to
  the shard's worker pool under ``probe_deadline`` and cross-checks the
  :class:`~repro.serve.health.LoopHealthMonitor` beat.  A shard whose
  executor is gone (the SIGKILL-equivalent teardown used by the chaos
  harness) or whose beat went stale misses the probe.
* **declare** — ``probe_misses`` consecutive misses mark the shard
  dead; the watchdog tears down whatever is left of it.
* **restart** — in ``journal`` mode the shard is rebuilt with
  :func:`~repro.core.persistence.restore_from_journal` (strict CRC
  checking: a *torn* tail from the crash is dropped, a *corrupt*
  complete record refuses the restart loudly); in ``standby`` mode its
  :class:`~repro.cluster.failover.WarmStandby` is promoted.  Either
  way the revived server is byte-identical to the pre-crash one —
  members keep their keys — and rebinds the shard's original UDP port
  so client affinity survives.

Restart attempts are budgeted (``max_restarts``) and backed off; a
shard that exhausts the budget, or whose journal fails its integrity
check, is marked ``failed`` and left down for an operator.  Every
transition is published: ``supervisor_restarts_total`` /
``supervisor_promotions_total`` / ``supervisor_probe_failures_total``
counters, a ``supervisor_shard_up`` gauge, a
``supervisor_restart_seconds`` histogram, ``supervise.restart`` spans
in the supervisor's tracer, and kill/miss/restart events in its flight
recorder.

``python -m repro.serve.supervise --smoke`` self-hosts a 3-shard
supervised cluster, runs the PR7 load generator against it, kills one
shard mid-steady-state, and asserts the watchdog brought it back
converged — the CI ``supervise-smoke`` job drives exactly this.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field, replace
from functools import partial
from typing import List, Optional, Tuple

from ..cluster.failover import FailoverError, WarmStandby
from ..core import persistence
from ..core.persistence import PersistenceError
from ..core.server import GroupKeyServer, ServerConfig
from ..keygraph.journal import _FRAME, MAGIC, JournalError, TreeJournal
from ..observability.flight import FlightRecorder
from ..observability.instrumentation import Instrumentation
from ..observability.metrics import LATENCY_BUCKETS_S
from ..observability.spans import Tracer
from .config import ServeConfig, ServeError
from .core import ImmediateServingCore
from .endpoint import AsyncKeyService


class SupervisorError(ValueError):
    """Raised on invalid supervision configuration or shard state."""


@dataclass(frozen=True)
class SupervisePolicy:
    """Failure-detection and restart knobs for one supervisor."""

    #: Seconds between health probes per shard.  0 disables the
    #: watchdogs — the supervisor only restarts on explicit request.
    probe_interval: float = 0.25
    #: Seconds a probe may take before it counts as missed.
    probe_deadline: float = 1.0
    #: Consecutive missed probes before the shard is declared dead.
    probe_misses: int = 2
    #: Restart attempts per shard before it is marked ``failed``.
    max_restarts: int = 8
    #: Backoff before re-attempting a failed restart (doubles per
    #: consecutive failure, capped).
    restart_backoff: float = 0.25
    restart_backoff_cap: float = 2.0
    #: Recovery substrate: ``journal`` replays the shard's on-disk op
    #: journal; ``standby`` promotes its in-memory warm standby.
    mode: str = "journal"
    #: Standby mode only: re-checkpoint after this many journaled ops
    #: (None keeps the whole journal until promotion).
    standby_checkpoint_interval: Optional[int] = None

    def validate(self) -> None:
        """Check field consistency; raises SupervisorError."""
        if self.probe_interval < 0:
            raise SupervisorError("probe_interval must be >= 0")
        if self.probe_deadline <= 0:
            raise SupervisorError("probe_deadline must be > 0")
        if self.probe_misses < 1:
            raise SupervisorError("probe_misses must be >= 1")
        if self.max_restarts < 0:
            raise SupervisorError("max_restarts must be >= 0")
        if self.restart_backoff < 0 or self.restart_backoff_cap < 0:
            raise SupervisorError("restart backoff must be >= 0")
        if self.mode not in ("journal", "standby"):
            raise SupervisorError(f"unknown recovery mode {self.mode!r}")


@dataclass
class SupervisedShard:
    """One shard's live state as the supervisor sees it."""

    shard_id: int
    name: str
    config: ServerConfig
    serve_config: ServeConfig
    journal_path: Optional[str]
    server: Optional[GroupKeyServer] = None
    core: Optional[ImmediateServingCore] = None
    service: Optional[AsyncKeyService] = None
    journal: Optional[TreeJournal] = None
    standby: Optional[WarmStandby] = None
    #: ``up`` | ``down`` | ``restarting`` | ``failed``.
    state: str = "down"
    #: Bumped on every successful restart; lets tests and clients
    #: distinguish "the same shard, new incarnation".
    generation: int = 0
    restarts: int = 0
    address: Optional[Tuple[str, int]] = None
    last_error: Optional[BaseException] = None
    _consecutive_failures: int = field(default=0, repr=False)


def arm_standby(server: GroupKeyServer, *,
                checkpoint_interval: Optional[int] = None,
                storage_key: Optional[bytes] = None) -> WarmStandby:
    """Attach a :class:`WarmStandby` and journal every join/leave.

    Wraps ``server.join``/``server.leave`` so each successful op is
    recorded with its exact key/IV draws — the coordinator does this
    explicitly per call; a supervised shard gets it transparently.  The
    serving core must run ops one at a time (``serialize_ops``): the
    standby has a single recording sink and interleaved draws from
    overlapped staged ops would corrupt the journal.
    """
    standby = WarmStandby(server, storage_key=storage_key,
                          checkpoint_interval=checkpoint_interval)
    orig_join, orig_leave = server.join, server.leave

    def join(user_id, individual_key=None, ticket=None):
        # The join consumes the registered key, so capture it first —
        # the journal entry must carry it for the replay.
        key = individual_key
        if key is None:
            key = server._registered_keys.get(user_id)
        if key is None:
            # No key means the join will be denied; nothing to record.
            return orig_join(user_id, individual_key, ticket)
        with standby.recording("join", user_id, key):
            return orig_join(user_id, individual_key, ticket)

    def leave(user_id):
        with standby.recording("leave", user_id):
            return orig_leave(user_id)

    server.join = join
    server.leave = leave
    return standby


def tear_journal_tail(path: str, nbytes: int) -> int:
    """Truncate ``nbytes`` off the journal — a crash mid-append.

    Never cuts into the file magic.  Returns the new size.
    """
    size = os.path.getsize(path)
    new_size = max(len(MAGIC), size - max(0, nbytes))
    os.truncate(path, new_size)
    return new_size


def corrupt_journal_tail(path: str) -> int:
    """Flip one byte inside the last *complete* record.

    Unlike :func:`tear_journal_tail` this leaves the record's length
    intact, so the damage reads as bit rot (CRC mismatch on a complete
    record) rather than a torn append — the class of damage a strict
    restart must refuse.  Returns the corrupted offset.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if data[:len(MAGIC)] != MAGIC:
        raise SupervisorError(f"{path}: not a key-graph journal")
    offset, last = len(MAGIC), None
    while offset + _FRAME.size <= len(data):
        length, _crc = _FRAME.unpack(data[offset:offset + _FRAME.size])
        start = offset + _FRAME.size
        if start + length > len(data):
            break  # torn tail; the record before it is the target
        last = start
        offset = start + length
    if last is None:
        raise SupervisorError(f"{path}: no complete record to corrupt")
    with open(path, "r+b") as fh:
        fh.seek(last)
        byte = fh.read(1)[0]
        fh.seek(last)
        fh.write(bytes([byte ^ 0xFF]))
    return last


class Supervisor:
    """Owns N shard serving cores; detects crashes and revives them."""

    def __init__(self, n_shards: int = 3, *,
                 server_config: Optional[ServerConfig] = None,
                 serve_config: Optional[ServeConfig] = None,
                 journal_dir: Optional[str] = None,
                 policy: Optional[SupervisePolicy] = None,
                 instrumentation: Optional[Instrumentation] = None):
        if n_shards < 1:
            raise SupervisorError("n_shards must be >= 1")
        self.policy = policy if policy is not None else SupervisePolicy()
        self.policy.validate()
        if self.policy.mode == "journal" and journal_dir is None:
            raise SupervisorError("journal mode needs a journal_dir")
        self.journal_dir = journal_dir
        self.instrumentation = (
            instrumentation if instrumentation is not None
            else Instrumentation("supervisor", tracer=Tracer(capacity=2048)))
        registry = self.instrumentation.registry
        self._m_restarts = registry.counter(
            "supervisor_restarts_total",
            "Shard restarts completed, by recovery mode.",
            labels=("shard", "mode"))
        self._m_promotions = registry.counter(
            "supervisor_promotions_total",
            "Warm-standby promotions performed during restarts.",
            labels=("shard",))
        self._m_probe_failures = registry.counter(
            "supervisor_probe_failures_total",
            "Health probes that missed their deadline.", labels=("shard",))
        self._g_up = registry.gauge(
            "supervisor_shard_up",
            "1 while the shard serves; 0 while down, restarting or failed.",
            labels=("shard",))
        self._h_restart = registry.histogram(
            "supervisor_restart_seconds",
            "Declared-dead to serving-again restart latency.",
            bounds=LATENCY_BUCKETS_S).labels()
        self.flight = FlightRecorder(1024)
        base_server = (server_config if server_config is not None
                       else ServerConfig(signing="none", backend="flat"))
        base_serve = (serve_config if serve_config is not None
                      else ServeConfig(tcp_port=None))
        self.shards: List[SupervisedShard] = []
        for index in range(n_shards):
            name = f"shard-{index}"
            seed = base_server.seed
            if seed is not None:
                seed = seed + b"/" + name.encode("ascii")
            config = replace(base_server, seed=seed)
            shard_serve = replace(
                base_serve,
                udp_port=(base_serve.udp_port + index
                          if base_serve.udp_port else 0),
                tcp_port=None)
            journal_path = (os.path.join(journal_dir, f"{name}.journal")
                            if journal_dir is not None else None)
            self.shards.append(SupervisedShard(
                index, name, config, shard_serve, journal_path))
        self._watch_tasks: List[asyncio.Task] = []
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """Bound UDP addresses, shard order (valid after ``start``)."""
        return [shard.address for shard in self.shards]

    def shard(self, shard_id: int) -> SupervisedShard:
        if not 0 <= shard_id < len(self.shards):
            raise SupervisorError(f"no shard {shard_id}")
        return self.shards[shard_id]

    def _make_server(self, shard: SupervisedShard) -> GroupKeyServer:
        if self.policy.mode == "journal":
            path = shard.journal_path
            if os.path.exists(path) and os.path.getsize(path) > len(MAGIC):
                # A prior incarnation left a journal: resume from it
                # (the supervisor process itself may have restarted).
                server = persistence.restore_from_journal(path, strict=True)
                TreeJournal(path).repair()
            else:
                server = GroupKeyServer(shard.config)
            shard.journal = persistence.attach_journal(server, path)
        else:
            server = GroupKeyServer(shard.config)
            shard.standby = arm_standby(
                server,
                checkpoint_interval=self.policy.standby_checkpoint_interval)
        return server

    async def _launch(self, shard: SupervisedShard) -> None:
        """Bind the shard's endpoint (retrying a just-freed port)."""
        core = ImmediateServingCore(shard.server, shard.serve_config)
        if self.policy.mode == "standby":
            core.serialize_ops = True
        service = AsyncKeyService(core)
        for attempt in range(20):
            try:
                await service.start()
                break
            except OSError:
                if attempt == 19:
                    raise
                await asyncio.sleep(0.05)
        shard.core, shard.service = core, service
        shard.address = service.udp_address
        if shard.serve_config.udp_port == 0:
            # Pin the ephemeral port: restarts rebind the same address
            # so client shard affinity survives the crash.
            shard.serve_config = replace(shard.serve_config,
                                         udp_port=shard.address[1])
        shard.state = "up"
        self._g_up.labels(shard=shard.name).set(1)

    async def start(self) -> "Supervisor":
        """Build and serve every shard; start the watchdogs."""
        for shard in self.shards:
            shard.server = self._make_server(shard)
            await self._launch(shard)
        if self.policy.probe_interval > 0:
            loop = asyncio.get_running_loop()
            self._watch_tasks = [loop.create_task(self._watch(shard))
                                 for shard in self.shards]
        return self

    async def aclose(self) -> None:
        """Stop watchdogs, then drain and close every live shard."""
        self._closing = True
        for task in self._watch_tasks:
            task.cancel()
        for task in self._watch_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._watch_tasks = []
        for shard in self.shards:
            if shard.state == "up" and shard.service is not None:
                await shard.service.aclose()
            else:
                self._hard_teardown(shard)
            if shard.journal is not None:
                shard.journal.close()
            self._g_up.labels(shard=shard.name).set(0)

    # -- failure injection and teardown ------------------------------------

    def _hard_teardown(self, shard: SupervisedShard) -> None:
        """SIGKILL-equivalent: no drain, no flush, no goodbyes.

        Closes the transport, cancels the background tasks, and yanks
        the worker pool out from under any in-flight op — exactly what
        the process's death would do, minus the OS reclaiming the fds.
        The journal file keeps whatever bytes were flushed (the chaos
        harness tears the tail separately to model an unflushed append).
        """
        service, core = shard.service, shard.core
        if service is not None:
            if service._tcp_server is not None:
                service._tcp_server.close()
                service._tcp_server = None
            if service._udp_transport is not None:
                service._udp_transport.close()
                service._udp_transport = None
        if core is not None:
            core._closing = True
            for attr in ("_tick_task", "_slo_task", "_flush_task"):
                task = getattr(core, attr, None)
                if task is not None:
                    task.cancel()
                    setattr(core, attr, None)
            if (core.loop_health is not None
                    and core.loop_health._task is not None):
                core.loop_health._task.cancel()
                core.loop_health._task = None
            core.executor.shutdown(wait=False, cancel_futures=True)
        if shard.journal is not None:
            shard.journal.close()
            shard.journal = None
        shard.service = None
        shard.core = None

    async def kill(self, shard_id: int, *, tear_tail: int = 0,
                   corrupt_tail: bool = False) -> None:
        """Crash a shard (chaos injection; the watchdog will notice).

        ``tear_tail`` truncates that many bytes off the journal after
        the crash (an append the OS never flushed); ``corrupt_tail``
        flips a byte in the last complete record (bit rot the strict
        restart must refuse).
        """
        shard = self.shard(shard_id)
        if shard.state != "up":
            raise SupervisorError(f"{shard.name} is {shard.state}, not up")
        shard.state = "down"
        self._g_up.labels(shard=shard.name).set(0)
        self.flight.record("supervise.kill", shard=shard.name,
                           generation=shard.generation)
        self._hard_teardown(shard)
        if shard.journal_path is not None and tear_tail > 0:
            tear_journal_tail(shard.journal_path, tear_tail)
        if shard.journal_path is not None and corrupt_tail:
            corrupt_journal_tail(shard.journal_path)

    # -- probing and restart -----------------------------------------------

    async def probe(self, shard_id: int) -> bool:
        """One health probe: is the shard's machinery responsive?"""
        shard = self.shard(shard_id)
        if shard.state != "up" or shard.core is None:
            return False
        core = shard.core
        monitor = core.loop_health
        if monitor is not None and monitor.last_beat is not None:
            stale = time.monotonic() - monitor.last_beat
            if stale > max(self.policy.probe_deadline,
                           3.0 * monitor.interval):
                return False
        try:
            await asyncio.wait_for(core._in_executor(time.monotonic),
                                   self.policy.probe_deadline)
        except (asyncio.TimeoutError, RuntimeError):
            # Timeout: the pool is wedged.  RuntimeError: the executor
            # was shut down — the shard is dead, not slow.
            return False
        except asyncio.CancelledError:
            if self._closing:
                raise
            return False  # the dying executor cancelled our future
        return True

    async def restart(self, shard_id: int) -> None:
        """Revive a dead shard from its journal or standby.

        Raises :class:`SupervisorError` once the restart budget is
        exhausted, and marks the shard ``failed`` (no further attempts)
        when the recovery substrate itself is unusable — a CRC-corrupt
        journal or a diverging standby replay.
        """
        shard = self.shard(shard_id)
        if shard.state == "failed":
            raise SupervisorError(f"{shard.name} is marked failed")
        if shard.restarts >= self.policy.max_restarts:
            shard.state = "failed"
            self._g_up.labels(shard=shard.name).set(0)
            raise SupervisorError(
                f"{shard.name}: restart budget exhausted "
                f"({self.policy.max_restarts})")
        if shard.state == "up":
            # Declared dead while parts still stand: finish the kill.
            self._hard_teardown(shard)
        shard.state = "restarting"
        self._g_up.labels(shard=shard.name).set(0)
        tracer = self.instrumentation.tracer
        span = tracer.span("supervise.restart", shard=shard.name,
                           mode=self.policy.mode)
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            if self.policy.mode == "standby":
                standby = shard.standby
                if standby is None:
                    raise SupervisorError(f"{shard.name} has no standby")
                server = await loop.run_in_executor(None, standby.promote)
                self._m_promotions.inc(shard=shard.name)
                shard.standby = arm_standby(
                    server, checkpoint_interval=(
                        self.policy.standby_checkpoint_interval))
            else:
                server = await loop.run_in_executor(
                    None, partial(persistence.restore_from_journal,
                                  shard.journal_path, strict=True))
                # Drop the torn tail (if any) so the re-attach's fresh
                # checkpoint — and everything after it — stays readable.
                TreeJournal(shard.journal_path).repair()
                shard.journal = persistence.attach_journal(
                    server, shard.journal_path)
            shard.server = server
            await self._launch(shard)
        except BaseException as exc:
            span.finish(error=True)
            shard.state = "down"
            shard.last_error = exc
            shard._consecutive_failures += 1
            if isinstance(exc, (JournalError, PersistenceError,
                                FailoverError)):
                # The recovery substrate is corrupt or diverging:
                # retrying cannot help, and serving from it would hand
                # members keys nobody can vouch for.  Refuse loudly.
                shard.state = "failed"
            self.flight.record("supervise.restart-failed", shard=shard.name,
                               error=type(exc).__name__)
            raise
        shard.restarts += 1
        shard.generation += 1
        shard.last_error = None
        shard._consecutive_failures = 0
        elapsed = time.monotonic() - started
        self._m_restarts.inc(shard=shard.name, mode=self.policy.mode)
        self._h_restart.observe(elapsed)
        self.flight.record("supervise.restart", shard=shard.name,
                           generation=shard.generation, seconds=elapsed)
        span.finish()

    async def _watch(self, shard: SupervisedShard) -> None:
        """Per-shard watchdog: probe, declare, restart, back off."""
        policy = self.policy
        misses = 0
        backoff = policy.restart_backoff
        while not self._closing:
            await asyncio.sleep(policy.probe_interval)
            if self._closing or shard.state == "failed":
                return
            if shard.state == "restarting":
                continue
            if await self.probe(shard.shard_id):
                misses = 0
                backoff = policy.restart_backoff
                continue
            misses += 1
            self._m_probe_failures.inc(shard=shard.name)
            self.flight.record("supervise.probe-miss", shard=shard.name,
                               misses=misses)
            if misses < policy.probe_misses:
                continue
            misses = 0
            try:
                await self.restart(shard.shard_id)
            except asyncio.CancelledError:
                raise
            except Exception:
                if shard.state == "failed":
                    return  # refused loudly; an operator's problem now
                await asyncio.sleep(backoff)
                backoff = min(policy.restart_backoff_cap, backoff * 2)

    # -- verification ------------------------------------------------------

    def verify_shard(self, shard_id: int) -> bool:
        """Journal mode: does a fresh replay match the live server?

        Replays the shard's journal into a brand-new server and
        compares full snapshots — the byte-identity acceptance check,
        taken under the shard's op lock so no op lands mid-compare.
        """
        shard = self.shard(shard_id)
        if shard.journal_path is None or shard.server is None:
            raise SupervisorError(f"{shard.name}: nothing to verify")
        replayed = persistence.restore_from_journal(shard.journal_path)
        if shard.core is not None:
            with shard.core._op_lock:
                live = persistence.snapshot(shard.server)
        else:
            live = persistence.snapshot(shard.server)
        return persistence.snapshot(replayed) == live

    def describe(self) -> List[dict]:
        """One status document per shard (CLI / test introspection)."""
        return [{
            "shard": shard.name,
            "state": shard.state,
            "generation": shard.generation,
            "restarts": shard.restarts,
            "address": list(shard.address) if shard.address else None,
            "error": (type(shard.last_error).__name__
                      if shard.last_error is not None else None),
        } for shard in self.shards]


# -- smoke CLI -------------------------------------------------------------

async def _run_smoke(args) -> int:
    from .loadgen import LoadProfile, run_load, scrape
    from ..observability.export import validate_snapshot

    journal_dir = args.journal_dir or tempfile.mkdtemp(
        prefix="supervise-smoke-")
    policy = SupervisePolicy(
        probe_interval=0.1, probe_deadline=0.75, probe_misses=1,
        restart_backoff=0.1, mode=args.mode)
    supervisor = Supervisor(
        args.shards,
        server_config=ServerConfig(signing="none", backend="flat",
                                   seed=b"supervise-smoke"),
        serve_config=ServeConfig(tcp_port=None, max_inflight=256,
                                 tick_interval=0.5),
        journal_dir=journal_dir, policy=policy)
    await supervisor.start()
    profile = LoadProfile(
        clients=args.clients, sockets=8, duration=args.duration,
        churn_clients=max(4, args.clients // 8),
        heartbeat_interval=0.5, request_timeout=0.5,
        request_deadline=6.0, retry_budget=8)
    victim = supervisor.shard(args.kill_shard % args.shards)
    kill_after = (args.kill_after if args.kill_after is not None
                  else max(0.5, args.duration * 0.35))
    crash: dict = {}

    async def chaos() -> None:
        await asyncio.sleep(kill_after)
        generation = victim.generation
        started = time.monotonic()
        await supervisor.kill(victim.shard_id, tear_tail=args.tear_tail)
        crash["killed_at"] = started
        while victim.generation == generation or victim.state != "up":
            if victim.state == "failed":
                raise SupervisorError(f"{victim.name} failed to restart")
            await asyncio.sleep(0.02)
        crash["recover_seconds"] = time.monotonic() - started

    async def on_phase(phase: str) -> None:
        if phase == "steady-start" and "task" not in crash:
            crash["task"] = asyncio.create_task(chaos())

    failures: List[str] = []
    stats = None
    try:
        stats = await run_load(supervisor.addresses, profile,
                               on_phase=on_phase)
        if "task" in crash:
            await crash["task"]
        else:
            failures.append("load never reached steady state")
        if "recover_seconds" not in crash:
            failures.append("victim shard never recovered")
        if policy.mode == "journal":
            for shard in supervisor.shards:
                if not supervisor.verify_shard(shard.shard_id):
                    failures.append(
                        f"{shard.name}: journal replay diverged from "
                        f"the live server")
        snapshots = []
        for shard in supervisor.shards:
            document = await scrape(shard.address)
            validate_snapshot(document)
            snapshots.append(document)
        if args.snapshot_out:
            with open(args.snapshot_out, "w", encoding="utf-8") as handle:
                json.dump(snapshots[victim.shard_id], handle)
        joined = stats.ramp_joined
        if joined < 0.9 * args.clients:
            failures.append(
                f"only {joined}/{args.clients} clients joined")
        if victim.restarts < 1:
            failures.append("victim shard records no restart")
    finally:
        await supervisor.aclose()
    report = {
        "mode": policy.mode,
        "shards": supervisor.describe(),
        "recover_seconds": crash.get("recover_seconds"),
        "load": stats.as_dict() if stats is not None else None,
        "failures": failures,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for shard in report["shards"]:
            print(f"{shard['shard']}: {shard['state']} "
                  f"(restarts={shard['restarts']})")
        if report["recover_seconds"] is not None:
            print(f"recovered in {report['recover_seconds'] * 1e3:.0f} ms")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.supervise",
        description="Self-healing shard supervision smoke run: serve, "
                    "load, kill one shard, assert the watchdog revives "
                    "it converged.")
    parser.add_argument("--smoke", action="store_true",
                        help="run the kill/restart smoke scenario")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--mode", choices=("journal", "standby"),
                        default="journal")
    parser.add_argument("--clients", type=int, default=96)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--kill-shard", type=int, default=1,
                        help="index of the shard to crash")
    parser.add_argument("--kill-after", type=float, default=None,
                        help="seconds into steady state to crash it")
    parser.add_argument("--tear-tail", type=int, default=0,
                        help="bytes to tear off the victim's journal")
    parser.add_argument("--journal-dir", default=None)
    parser.add_argument("--snapshot-out", default=None,
                        help="write the victim's metrics snapshot here")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke runs are supported")
    return asyncio.run(_run_smoke(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Out-of-band wire helpers for the async serving layer.

Two small mechanisms, both riding *after* the encoded protocol message
(``Message.decode`` ignores trailing bytes, so the message proper is
unchanged on the wire — the same trick the PR3 trace trailer uses):

* **Correlation trailer** — magic + a caller-chosen 64-bit token.  The
  load generator multiplexes thousands of simulated clients over a few
  sockets; a request carries a token, the server echoes it on the
  *direct* reply (ack, denial, busy, resync reply, stats response), and
  the client side demultiplexes replies to the issuing client without
  per-client sockets.  Multicast rekey traffic carries no token.
* **TCP framing** — UDP keeps one-message-per-datagram for free; over a
  stream each payload is length-prefixed with 4 big-endian bytes.

Trailers stack: a payload may carry a trace trailer and then a
correlation trailer.  The correlation trailer is always appended last
(stripped first), so either side can be absent independently.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from ..observability.spans import (SpanContext, attach_trace_trailer,
                                   split_trace_trailer)

CORR_MAGIC = b"KGC1"
_CORR = struct.Struct(">Q")
CORR_TRAILER_SIZE = len(CORR_MAGIC) + _CORR.size

_FRAME = struct.Struct(">I")
#: Upper bound on one framed payload (a rekey message for a very deep
#: tree plus trailers stays far below this).
MAX_FRAME = 1 << 24


class FramingError(ValueError):
    """Raised on malformed stream frames."""


def attach_corr_trailer(payload: bytes, token: int) -> bytes:
    """Append a correlation trailer carrying ``token``."""
    return payload + CORR_MAGIC + _CORR.pack(token & 0xFFFFFFFFFFFFFFFF)


def split_corr_trailer(payload: bytes) -> Tuple[bytes, Optional[int]]:
    """Strip a correlation trailer if present: ``(payload, token|None)``."""
    if (len(payload) >= CORR_TRAILER_SIZE
            and payload[-CORR_TRAILER_SIZE:-_CORR.size] == CORR_MAGIC):
        (token,) = _CORR.unpack(payload[-_CORR.size:])
        return payload[:-CORR_TRAILER_SIZE], token
    return payload, None


def attach_trailers(payload: bytes,
                    trace: Optional[SpanContext] = None,
                    token: Optional[int] = None) -> bytes:
    """Stack the out-of-band trailers in canonical order.

    Trace trailer first, correlation trailer last — the single attach
    point shared by the UDP and framed-TCP reply paths so the two can
    never disagree about trailer order or presence.
    """
    if trace is not None and trace.trace_id:
        payload = attach_trace_trailer(payload, trace)
    if token is not None:
        payload = attach_corr_trailer(payload, token)
    return payload


def split_trailers(data: bytes
                   ) -> Tuple[bytes, Optional[SpanContext], Optional[int]]:
    """Strip stacked trailers: ``(payload, trace|None, token|None)``.

    The inverse of :func:`attach_trailers` — correlation trailer comes
    off first, then the trace trailer; either may be absent.
    """
    payload, token = split_corr_trailer(data)
    payload, trace = split_trace_trailer(payload)
    return payload, trace, token


def frame(payload: bytes) -> bytes:
    """Length-prefix one payload for stream transports."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"payload of {len(payload)} bytes exceeds "
                           f"the {MAX_FRAME}-byte frame bound")
    return _FRAME.pack(len(payload)) + payload


async def read_frame(reader) -> Optional[bytes]:
    """Read one length-prefixed payload; ``None`` on clean EOF."""
    import asyncio
    try:
        header = await reader.readexactly(_FRAME.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _FRAME.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"frame of {length} bytes exceeds the "
                           f"{MAX_FRAME}-byte bound")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None

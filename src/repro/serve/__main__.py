"""CLI for the async serving layer.

    python -m repro.serve keyserver.spec [--host H] [--udp-port P]
        [--tcp-port P] [--coalesce] [--max-inflight N] [--rate R]
        [--trace]

Runs one spec-configured group key server behind the asyncio front
end until interrupted.  Unknown joiners are enrolled on first contact
(``--closed`` disables that and requires pre-registered keys, like
``python -m repro serve``).

``slo-*`` keys in the spec file become live objectives: the core
evaluates them periodically, counts breaches, and dumps the flight
recorder (into ``--flight-dir``, when given) on each new breach.  On
platforms with ``SIGUSR1`` the signal dumps the flight recorder on
demand.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional, Sequence

from ..core.server import GroupKeyServer
from ..observability.instrumentation import Instrumentation
from ..observability.slo import slos_from_spec_text
from ..observability.spans import Tracer
from .config import ServeConfig, from_spec_file, worker_count
from .core import CoalescingServingCore, ImmediateServingCore
from .endpoint import AsyncKeyService


async def _amain(args) -> int:
    config, initial_size = from_spec_file(args.spec)
    with open(args.spec, "r", encoding="utf-8") as handle:
        slos = slos_from_spec_text(handle.read())
    serve_config = ServeConfig(
        host=args.host, udp_port=args.udp_port, tcp_port=args.tcp_port,
        max_inflight=args.max_inflight, client_rate=args.rate,
        coalesce=args.coalesce, open_enroll=not args.closed,
        slos=tuple(slos), flight_dump_dir=args.flight_dir)
    instrumentation = Instrumentation(
        "serve", tracer=Tracer() if args.trace else None)
    if args.coalesce:
        from ..batch.rekeying import BatchRekeyServer
        server = BatchRekeyServer(
            degree=config.degree, suite=config.suite, seed=config.seed,
            signing=config.signing, instrumentation=instrumentation,
            backend=config.backend)
        core = CoalescingServingCore(server, serve_config,
                                     workers=worker_count(config))
    else:
        server = GroupKeyServer(config, instrumentation=instrumentation)
        core = ImmediateServingCore(server, serve_config)
        if initial_size:
            roster = [(f"user-{index:04d}", server.new_individual_key())
                      for index in range(initial_size)]
            server.bootstrap(roster)
    async with AsyncKeyService(core) as service:
        print(f"async key server on udp {service.udp_address}"
              + (f", tcp {service.tcp_address}"
                 if service.tcp_address else ""))
        print(f"  mode={core.flavor} workers={worker_count(config)} "
              f"backend={config.backend} "
              f"open-enroll={serve_config.open_enroll}"
              + (f" slos={len(slos)}" if slos else ""))
        print("  scrape: python -m repro.observability report --scrape "
              f"{service.udp_address[0]}:{service.udp_address[1]}")
        if hasattr(signal, "SIGUSR1"):
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGUSR1,
                    lambda: print(core.dump_flight("signal"),
                                  file=sys.stderr))
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await asyncio.Event().wait()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a spec-configured group key server over "
                    "asyncio UDP/TCP endpoints.")
    parser.add_argument("spec", help="keyserver spec file (paper §5)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--udp-port", type=int, default=0)
    parser.add_argument("--tcp-port", type=int, default=0)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-client state-change rate cap (0 = off)")
    parser.add_argument("--coalesce", action="store_true",
                        help="fold concurrent joins/leaves into batch "
                             "flushes")
    parser.add_argument("--closed", action="store_true",
                        help="require pre-registered individual keys")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing")
    parser.add_argument("--flight-dir", default=None,
                        help="directory for automatic flight-recorder "
                             "dumps (error / SLO breach)")
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())

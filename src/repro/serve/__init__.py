"""Async concurrent serving: event-loop front end over pipelined rekeying.

The PR2 UDP layer serves one request at a time on a thread; this
package is the concurrent successor — an asyncio front end that parses
and *plans* on the event loop, ships the expensive encrypt/sign stages
to a worker pool (:class:`~repro.core.server.StagedRekeyOp`), applies
admission control (bounded in-flight budget, per-client rate caps,
``MSG_BUSY`` shedding), and optionally coalesces concurrent
joins/leaves into one batch rekey.

Quick start (a live single-server group on loopback)::

    from repro.serve import (ImmediateServingCore, AsyncKeyService,
                             ServeConfig)
    core = ImmediateServingCore(server, ServeConfig())
    async with AsyncKeyService(core) as service:
        print("serving on", service.udp_address)
        ...

``python -m repro.serve`` runs a service from a spec file;
``python -m repro.serve.loadgen`` drives one with 10k simulated
clients.
"""

from .config import (DEFAULT_WORKERS, ServeConfig, ServeError,
                     default_server_config, from_spec_file, worker_count)
from .core import (AsyncServingCore, ClusterServingCore,
                   CoalescingServingCore, ImmediateServingCore)
from .endpoint import AsyncClusterService, AsyncKeyService
from .fanout import SocketFanout
from .health import InstrumentedExecutor, LoopHealthMonitor
from .rpc import (IdempotencyCache, ResilientRpc, RetryPolicy, RpcError,
                  RpcOutcome)
from .wire import (CORR_TRAILER_SIZE, FramingError, attach_corr_trailer,
                   attach_trailers, frame, read_frame, split_corr_trailer,
                   split_trailers)

#: Supervision names resolve lazily (PEP 562) so ``python -m
#: repro.serve.supervise`` does not import the module twice.
_SUPERVISE_NAMES = frozenset({
    "SupervisedShard", "SupervisePolicy", "Supervisor",
    "SupervisorError", "arm_standby",
})


def __getattr__(name):
    if name in _SUPERVISE_NAMES:
        from . import supervise
        return getattr(supervise, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AsyncClusterService", "AsyncKeyService", "AsyncServingCore",
    "CORR_TRAILER_SIZE", "ClusterServingCore", "CoalescingServingCore",
    "DEFAULT_WORKERS", "FramingError", "IdempotencyCache",
    "ImmediateServingCore", "InstrumentedExecutor", "LoopHealthMonitor",
    "ResilientRpc", "RetryPolicy", "RpcError", "RpcOutcome",
    "ServeConfig", "ServeError", "SocketFanout", "SupervisedShard",
    "SupervisePolicy", "Supervisor", "SupervisorError",
    "arm_standby", "attach_corr_trailer",
    "attach_trailers", "default_server_config", "frame", "from_spec_file",
    "read_frame", "split_corr_trailer", "split_trailers", "worker_count",
]

"""Runtime health instrumentation for the async serving stack.

Two probes that watch the concurrency machinery itself rather than the
protocol work it carries:

* :class:`LoopHealthMonitor` — a periodic task that sleeps a fixed
  interval and measures how late the loop woke it.  Sustained lag means
  something is hogging the event loop (a plan that grew expensive, a
  collector gone quadratic) — the one failure mode request latency
  histograms cannot localize, because *every* request pays for it.
* :class:`InstrumentedExecutor` — a ``ThreadPoolExecutor`` whose
  ``submit`` wraps each task to publish queue depth, submit-to-start
  wait, and running-thread occupancy.  A deep queue with idle-looking
  request rates means the pool is the bottleneck, not the tree.

Both publish into the serving registry; with :data:`~repro.
observability.metrics.NULL_REGISTRY` every update is discarded and the
wrapper cost is a few attribute lookups per task.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..observability.metrics import MetricRegistry

#: Fine-grained buckets for loop lag and executor waits: 10µs .. ~2.6s.
WAIT_BUCKETS_S = tuple(1e-5 * (1 << k) for k in range(19))


class LoopHealthMonitor:
    """Measures event-loop scheduling lag with a periodic sleeper."""

    def __init__(self, registry: MetricRegistry,
                 interval: float = 0.25):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self._m_lag = registry.histogram(
            "serve_loop_lag_seconds",
            "Event-loop scheduling lag observed by the health probe.",
            bounds=WAIT_BUCKETS_S).labels()
        self._m_lag_last = registry.gauge(
            "serve_loop_lag_last_seconds",
            "Most recent event-loop lag sample.").labels()
        self._task: Optional[asyncio.Task] = None
        #: Monotonic time of the latest completed probe (None until the
        #: first).  A supervisor reads this as the loop's health beat:
        #: a beat older than its probe deadline means the loop is
        #: wedged or dead, even if nothing else looks wrong.
        self.last_beat: Optional[float] = None
        #: The latest lag sample, for callers without registry access.
        self.last_lag: float = 0.0

    async def _probe_loop(self) -> None:
        interval = self.interval
        while True:
            before = time.perf_counter()
            await asyncio.sleep(interval)
            lag = max(0.0, time.perf_counter() - before - interval)
            self._m_lag.observe(lag)
            self._m_lag_last.set(lag)
            self.last_beat = time.monotonic()
            self.last_lag = lag

    def start(self) -> None:
        """Start probing on the running loop (idempotent)."""
        if self._task is None:
            self.last_beat = time.monotonic()
            self._task = asyncio.get_running_loop().create_task(
                self._probe_loop())

    async def aclose(self) -> None:
        """Stop the probe task."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None


class InstrumentedExecutor(ThreadPoolExecutor):
    """A worker pool that publishes queue depth and wait times.

    Gauges/counters come from the registry and carry their own locks,
    so the bookkeeping is safe from any thread; with a null registry
    the updates all discard and only the closure wrapper remains.
    """

    def __init__(self, registry: MetricRegistry, max_workers: int,
                 thread_name_prefix: str = "repro-serve"):
        super().__init__(max_workers=max_workers,
                         thread_name_prefix=thread_name_prefix)
        self._m_queue_depth = registry.gauge(
            "serve_executor_queue_depth",
            "Tasks submitted to the worker pool but not yet started."
            ).labels()
        self._m_running = registry.gauge(
            "serve_executor_running",
            "Worker-pool tasks currently executing.").labels()
        self._m_tasks = registry.counter(
            "serve_executor_tasks_total",
            "Tasks completed by the worker pool.").labels()
        self._m_wait = registry.histogram(
            "serve_executor_wait_seconds",
            "Submit-to-start wait in the worker-pool queue.",
            bounds=WAIT_BUCKETS_S).labels()

    def submit(self, fn, /, *args, **kwargs):
        """Submit with queue/wait accounting around ``fn``."""
        submitted = time.perf_counter()
        self._m_queue_depth.inc()

        def run():
            self._m_queue_depth.dec()
            self._m_wait.observe(time.perf_counter() - submitted)
            self._m_running.inc()
            try:
                return fn(*args, **kwargs)
            finally:
                self._m_running.dec()
                self._m_tasks.inc()
        return super().submit(run)
